"""repro: sketch-based change detection for massive network data streams.

A faithful, full-system reproduction of Krishnamurthy, Sen, Zhang & Chen,
*"Sketch-based Change Detection: Methods, Evaluation, and Applications"*
(ACM IMC 2003).

Quick start::

    import numpy as np
    from repro import KArySchema, OfflineTwoPassDetector, IntervalStream
    from repro.traffic import TrafficGenerator, get_profile

    records = TrafficGenerator(get_profile("medium")).generate()
    batches = IntervalStream(records, interval_seconds=300)
    detector = OfflineTwoPassDetector(
        KArySchema(depth=5, width=32768), "ewma", alpha=0.4,
        t_fraction=0.05, top_n=50,
    )
    for report in detector.run(batches):
        print(report.index, report.alarm_count, report.top_keys[:5])

Package map:

* :mod:`repro.hashing` -- 4-universal hash families.
* :mod:`repro.sketch` -- k-ary sketch + Count-Min / Count Sketch baselines
  and exact summaries.
* :mod:`repro.forecast` -- the six forecast models over linear states.
* :mod:`repro.detection` -- two-pass, online, per-flow and group-testing
  detectors.
* :mod:`repro.streams` -- Turnstile streams, key schemes, trace I/O.
* :mod:`repro.archive` -- multi-resolution temporal archive with
  retrospective change queries.
* :mod:`repro.traffic` -- synthetic traffic and anomaly substrate.
* :mod:`repro.gridsearch` -- model parameter search.
* :mod:`repro.evaluation` -- the paper's comparison metrics.
* :mod:`repro.analysis` -- Theorems 1-5 accuracy bounds.
* :mod:`repro.experiments` -- every figure and table, regenerable.
"""

from repro._version import __version__
from repro.detection import (
    Alarm,
    OfflineTwoPassDetector,
    OnlineDetector,
    run_per_flow,
)
from repro.forecast import (
    ArimaForecaster,
    EWMAForecaster,
    Forecaster,
    HoltWintersForecaster,
    MODEL_NAMES,
    MovingAverageForecaster,
    SShapedMovingAverageForecaster,
    make_forecaster,
)
from repro.sketch import (
    CountMinSketch,
    CountSketch,
    DictVector,
    KArySchema,
    KArySketch,
    combine,
)
from repro.streams import IntervalStream, read_trace, write_trace

__all__ = [
    "Alarm",
    "ArimaForecaster",
    "CountMinSketch",
    "CountSketch",
    "DictVector",
    "EWMAForecaster",
    "Forecaster",
    "HoltWintersForecaster",
    "IntervalStream",
    "KArySchema",
    "KArySketch",
    "MODEL_NAMES",
    "MovingAverageForecaster",
    "OfflineTwoPassDetector",
    "OnlineDetector",
    "SShapedMovingAverageForecaster",
    "__version__",
    "combine",
    "make_forecaster",
    "read_trace",
    "run_per_flow",
    "write_trace",
]
