"""Distributed detection tier: per-site agents, a combining coordinator.

The paper's deployment model sketches at every observation point and
COMBINEs centrally; this package is that topology over TCP.
:mod:`~repro.distributed.frames` defines the length-prefixed wire
format, :mod:`~repro.distributed.agent` the per-site runtime (local
interval sketching + error-bounded communication filtering),
:mod:`~repro.distributed.coordinator` the merge policy and network-wide
detection pipeline, and :mod:`~repro.distributed.loopback` the
single-process end-to-end harness proving the bit-identity guarantee.
"""

from repro.distributed.agent import (
    AgentStats,
    DriftGate,
    LocalSketcher,
    run_agent,
    stream_trace,
)
from repro.distributed.coordinator import (
    CoordinatorServer,
    IntervalMerger,
    load_merger_checkpoint,
    restore_merger,
)
from repro.distributed.frames import (
    DEFAULT_MAX_PAYLOAD,
    FRAME_HEADER_SIZE,
    FRAME_TYPES,
    FrameError,
    FrameTooLargeError,
    TruncatedFrameError,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.distributed.loopback import (
    LoopbackResult,
    partition_records,
    run_loopback,
    run_loopback_async,
    run_serial_reference,
)

__all__ = [
    "AgentStats",
    "DriftGate",
    "LocalSketcher",
    "run_agent",
    "stream_trace",
    "CoordinatorServer",
    "IntervalMerger",
    "load_merger_checkpoint",
    "restore_merger",
    "DEFAULT_MAX_PAYLOAD",
    "FRAME_HEADER_SIZE",
    "FRAME_TYPES",
    "FrameError",
    "FrameTooLargeError",
    "TruncatedFrameError",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "write_frame",
    "LoopbackResult",
    "partition_records",
    "run_loopback",
    "run_loopback_async",
    "run_serial_reference",
]
