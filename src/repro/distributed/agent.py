"""Per-site agent: local interval sketching with communication filtering.

The paper's motivating deployment sketches at every router and combines
centrally.  The agent is the router half: it ingests its site's records
through the same interval machinery as a :class:`StreamingSession`
(chunk splitting, gap intervals, lateness policy, key collection), seals
per-interval sketches locally, and ships them to the coordinator --
unless *error-bounded communication filtering* decides the sketch has
not drifted enough to be worth transmitting.

Filtering rule (the continuous-distributed-monitoring idea of
"Sketch-based Querying of Distributed Sliding-Window Data Streams"): let
``S`` be the interval's sealed sketch and ``S_last`` the site's last
*transmitted* sketch.  The agent ships ``S`` when

    ``||S - S_last||_2  >  drift_fraction * t_fraction * ||S||_2``

i.e. when the local L2 drift since the last transmission exceeds a
configurable fraction of the site's share of the detection threshold
(``T * sqrt(F2)`` is the network-wide alarm bar; a site whose local
change is far below it cannot move the global decision by more than the
budget).  Otherwise it sends a ~60-byte drift digest and the coordinator
substitutes ``S_last`` -- introducing a bounded, operator-chosen error.
``drift_fraction = 0`` disables filtering: every interval ships and the
coordinator's reports are **bit-identical** to a single-process run over
the concatenated traffic (sketch linearity; integral update values are
exact in float64).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, NamedTuple, Optional

import numpy as np

from repro.detection.session import StreamingSession
from repro.distributed.frames import read_frame, write_frame
from repro.sketch.serialization import dumps, schema_identity


class SealedInterval(NamedTuple):
    """One locally sealed interval, ready for the transmit decision."""

    index: int
    summary: object
    keys: np.ndarray


class LocalSketcher(StreamingSession):
    """A :class:`StreamingSession` that seals into an outbox, never detects.

    Reuses the session's entire ingestion surface -- chunk-to-interval
    splitting, empty gap sealing, lateness tolerance, per-interval key
    collection (``key_source="twopass"``) or its omission (recovering
    sources) -- but replaces the seal step: instead of forecasting and
    alarming locally, the sealed ``(index, summary, keys)`` lands in
    :attr:`outbox` for the agent runtime to ship.  Forecasting and
    detection are the coordinator's job; running them per site would
    alarm on local noise the network-wide view averages out.
    """

    def __init__(self, schema, **kwargs) -> None:
        # The forecaster slot is required by the base constructor but
        # never stepped -- _seal_current below bypasses it entirely.
        kwargs.setdefault("index_cache", False)
        super().__init__(schema, "ewma", **kwargs)
        self.outbox: List[SealedInterval] = []

    def _seal_current(self) -> list:
        with self.recorder.time("seal"):
            observed, keys = self._collect_current()
        self._intervals_sealed += 1
        self.outbox.append(
            SealedInterval(int(self._current_index), observed, keys)
        )
        return []

    def drain(self) -> List[SealedInterval]:
        """Remove and return every sealed interval accumulated so far."""
        out, self.outbox = self.outbox, []
        return out


class DriftGate:
    """Decides transmit-vs-suppress per sealed interval (see module docs)."""

    def __init__(self, t_fraction: float, drift_fraction: float) -> None:
        if drift_fraction < 0:
            raise ValueError(
                f"drift_fraction must be >= 0, got {drift_fraction}"
            )
        self.t_fraction = float(t_fraction)
        self.drift_fraction = float(drift_fraction)
        self._last_sent = None

    def decide(self, summary) -> tuple:
        """Return ``(transmit, drift_l2)`` for one sealed summary.

        The first interval always transmits (there is nothing cached to
        substitute); with ``drift_fraction = 0`` everything does.
        """
        if self._last_sent is None or self.drift_fraction == 0.0:
            return True, float("inf") if self._last_sent is None else 0.0
        drift = (summary - self._last_sent).l2_norm()
        budget = self.drift_fraction * self.t_fraction * summary.l2_norm()
        return drift > budget, drift

    def mark_sent(self, summary) -> None:
        """Record ``summary`` as the site's last transmitted sketch."""
        self._last_sent = summary


@dataclass
class AgentStats:
    """Transmission counters for one agent run."""

    records_streamed: int = 0
    intervals_sealed: int = 0
    sketches_sent: int = 0
    suppressed: int = 0
    frames_sent: int = 0
    bytes_sent: int = 0
    heartbeats_sent: int = 0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {
            "records_streamed": self.records_streamed,
            "intervals_sealed": self.intervals_sealed,
            "sketches_sent": self.sketches_sent,
            "suppressed": self.suppressed,
            "frames_sent": self.frames_sent,
            "bytes_sent": self.bytes_sent,
            "heartbeats_sent": self.heartbeats_sent,
        }
        out.update(self.extra)
        return out


async def run_agent(
    records: np.ndarray,
    host: str,
    port: int,
    *,
    schema,
    site: str,
    interval_seconds: float = 300.0,
    key_scheme: str = "dst_ip",
    value_scheme: str = "bytes",
    key_source: str = "twopass",
    t_fraction: float = 0.05,
    drift_fraction: float = 0.0,
    chunk_records: int = 4096,
    heartbeat_interval: Optional[float] = None,
    lateness_tolerance: float = 0.0,
    recorder=None,
) -> AgentStats:
    """Stream one site's records to a coordinator; returns the stats.

    Connects, handshakes (``HELLO`` carrying the schema identity; the
    coordinator refuses mismatches with an ``ERROR`` frame), then feeds
    ``records`` through a :class:`LocalSketcher` in ``chunk_records``
    slices, shipping each sealed interval through the
    :class:`DriftGate`.  Ends with a flush and a clean ``BYE``.
    """
    if chunk_records < 1:
        raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
    stats = AgentStats()
    sketcher = LocalSketcher(
        schema,
        interval_seconds=interval_seconds,
        key_scheme=key_scheme,
        value_scheme=value_scheme,
        key_source=key_source,
        lateness_tolerance=lateness_tolerance,
        recorder=recorder,
    )
    gate = DriftGate(t_fraction, drift_fraction)
    reader, writer = await asyncio.open_connection(host, port)
    try:
        stats.bytes_sent += await write_frame(
            writer,
            "hello",
            {
                "site": site,
                "schema": schema_identity(schema),
                "interval_seconds": float(interval_seconds),
                "key_source": key_source,
            },
        )
        stats.frames_sent += 1
        reply = await read_frame(reader)
        if reply is None:
            raise ConnectionError(
                f"coordinator closed the connection during handshake "
                f"(site {site!r})"
            )
        kind, payload = reply
        if kind != "ack":
            raise ConnectionError(
                f"coordinator refused site {site!r}: "
                f"{payload.get('reason', kind)}"
            )

        async def _ship_sealed() -> None:
            for sealed in sketcher.drain():
                stats.intervals_sealed += 1
                transmit, drift = gate.decide(sealed.summary)
                if transmit:
                    stats.bytes_sent += await write_frame(
                        writer,
                        "sketch",
                        {
                            "site": site,
                            "interval": sealed.index,
                            "sketch": dumps(sealed.summary),
                            "keys": np.asarray(sealed.keys, dtype=np.uint64),
                        },
                    )
                    stats.sketches_sent += 1
                    gate.mark_sent(sealed.summary)
                else:
                    stats.bytes_sent += await write_frame(
                        writer,
                        "digest",
                        {
                            "site": site,
                            "interval": sealed.index,
                            "drift": float(drift),
                            "l2": float(sealed.summary.l2_norm()),
                        },
                    )
                    stats.suppressed += 1
                stats.frames_sent += 1
                if recorder is not None and recorder.enabled:
                    recorder.count("repro_agent_frames_total", site=site)

        last_beat = time.monotonic()
        for start in range(0, len(records), chunk_records):
            sketcher.ingest(records[start : start + chunk_records])
            stats.records_streamed += len(
                records[start : start + chunk_records]
            )
            await _ship_sealed()
            now = time.monotonic()
            if (
                heartbeat_interval is not None
                and now - last_beat >= heartbeat_interval
            ):
                stats.bytes_sent += await write_frame(
                    writer,
                    "heartbeat",
                    {"site": site, "watermark": float(sketcher.watermark)},
                )
                stats.frames_sent += 1
                stats.heartbeats_sent += 1
                last_beat = now
        sketcher.flush()
        await _ship_sealed()
        stats.bytes_sent += await write_frame(writer, "bye", {"site": site})
        stats.frames_sent += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
    return stats


def stream_trace(records: np.ndarray, host: str, port: int, **kwargs) -> AgentStats:
    """Synchronous wrapper around :func:`run_agent` (the CLI entry point)."""
    return asyncio.run(run_agent(records, host, port, **kwargs))
