"""Length-prefixed wire frames for the distributed detection tier.

Agents and the coordinator exchange *frames* over a TCP stream.  A frame
is a fixed 9-byte header followed by a packed payload:

======  ====  ===========================================
offset  size  field
======  ====  ===========================================
0       4     magic ``b"KDF1"``
4       1     frame type (uint8, see :data:`FRAME_TYPES`)
5       4     payload length (little-endian uint32)
9       --    payload (KCP1 tagged codec, one dict)
======  ====  ===========================================

Payloads are encoded with the checkpoint layer's tagged state codec
(:func:`~repro.sketch.serialization.pack_state`), so a frame can carry
ints, floats, strings, bytes and NumPy arrays without inventing another
serializer -- a SKETCH frame embeds the interval's KSK2 blob as a plain
``bytes`` field and its key set as a ``uint64`` array.

Frame types
-----------
``HELLO``
    First frame on every connection: the agent's site name, its schema
    identity (checked against the coordinator's -- COMBINE across
    mismatched schemas would estimate garbage), and its stream config.
``SKETCH``
    One sealed interval: index, serialized summary, candidate keys.
``DIGEST``
    A *suppressed* interval: the agent's local sketch drifted less than
    the communication-filtering budget since its last transmission, so
    only the drift estimate travels (a few dozen bytes instead of the
    full counter table).
``HEARTBEAT``
    Liveness signal while no interval is ready.
``BYE``
    Clean end of stream: the site has no further intervals.
``ACK`` / ``ERROR``
    Coordinator responses to ``HELLO`` (accept / refuse with reason).

Decode failures raise typed errors so the transport can distinguish a
corrupt or truncated frame (drop, count, resynchronize or close) from a
programming error: :class:`FrameError` and its subclasses
:class:`TruncatedFrameError` (stream ended mid-frame) and
:class:`FrameTooLargeError` (declared payload exceeds the reader's
budget -- refusing up front bounds coordinator memory per connection).
"""

from __future__ import annotations

import asyncio
import struct
from typing import Optional, Tuple

from repro.sketch.serialization import pack_state, unpack_state

FRAME_MAGIC = b"KDF1"
_FRAME_HEADER = struct.Struct("<4sBI")

#: Wire codes for every frame type.
FRAME_TYPES = {
    "hello": 1,
    "sketch": 2,
    "digest": 3,
    "heartbeat": 4,
    "bye": 5,
    "ack": 6,
    "error": 7,
}
_CODE_TYPES = {code: name for name, code in FRAME_TYPES.items()}

#: Default per-frame payload budget (bytes).  A 16 MiB frame comfortably
#: holds an H=5, K=262144 float64 table (~10.5 MiB) plus a large key set;
#: anything bigger is almost certainly a corrupt length field.
DEFAULT_MAX_PAYLOAD = 16 * 1024 * 1024

FRAME_HEADER_SIZE = _FRAME_HEADER.size


class FrameError(ValueError):
    """A wire frame is malformed (bad magic, unknown type, bad payload)."""


class TruncatedFrameError(FrameError):
    """The stream ended in the middle of a frame."""


class FrameTooLargeError(FrameError):
    """A frame declared a payload larger than the reader's budget."""


def encode_frame(frame_type: str, payload: Optional[dict] = None) -> bytes:
    """Encode one frame: header plus tagged-codec payload."""
    code = FRAME_TYPES.get(frame_type)
    if code is None:
        raise ValueError(
            f"unknown frame type {frame_type!r} (expected one of "
            f"{sorted(FRAME_TYPES)})"
        )
    blob = pack_state(payload if payload is not None else {})
    return _FRAME_HEADER.pack(FRAME_MAGIC, code, len(blob)) + blob


def decode_header(header: bytes) -> Tuple[str, int]:
    """Decode a 9-byte frame header into ``(frame_type, payload_len)``."""
    if len(header) < FRAME_HEADER_SIZE:
        raise TruncatedFrameError(
            f"frame header is {len(header)} bytes, need {FRAME_HEADER_SIZE}"
        )
    magic, code, length = _FRAME_HEADER.unpack_from(header)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    name = _CODE_TYPES.get(code)
    if name is None:
        raise FrameError(f"unknown frame type code {code}")
    return name, length


def decode_payload(blob: bytes) -> dict:
    """Decode a frame payload, normalizing codec failures to FrameError."""
    try:
        payload = unpack_state(blob)
    except (ValueError, IndexError, KeyError, struct.error) as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from None
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be a dict, got {type(payload).__name__}"
        )
    return payload


def decode_frame(
    data: bytes, max_payload: int = DEFAULT_MAX_PAYLOAD
) -> Tuple[str, dict, int]:
    """Decode one frame from a buffer: ``(type, payload, bytes_consumed)``.

    The synchronous twin of :func:`read_frame`, used by tests and by any
    transport that already holds whole frames in memory.
    """
    name, length = decode_header(data)
    if length > max_payload:
        raise FrameTooLargeError(
            f"frame payload of {length} bytes exceeds the {max_payload}-byte "
            "budget"
        )
    end = FRAME_HEADER_SIZE + length
    if len(data) < end:
        raise TruncatedFrameError(
            f"frame needs {end} bytes, buffer holds {len(data)}"
        )
    return name, decode_payload(data[FRAME_HEADER_SIZE:end]), end


async def read_frame(
    reader: asyncio.StreamReader, max_payload: int = DEFAULT_MAX_PAYLOAD
) -> Optional[Tuple[str, dict]]:
    """Read one frame from an asyncio stream.

    Returns ``None`` on clean EOF (the peer closed between frames);
    raises :class:`TruncatedFrameError` when the stream ends mid-frame,
    :class:`FrameTooLargeError` before buffering an over-budget payload.
    """
    try:
        header = await reader.readexactly(FRAME_HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedFrameError(
            f"stream ended {len(exc.partial)} bytes into a frame header"
        ) from None
    name, length = decode_header(header)
    if length > max_payload:
        raise FrameTooLargeError(
            f"frame payload of {length} bytes exceeds the {max_payload}-byte "
            "budget"
        )
    try:
        blob = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrameError(
            f"stream ended {len(exc.partial)}/{length} bytes into a "
            f"{name} payload"
        ) from None
    return name, decode_payload(blob)


async def write_frame(
    writer: asyncio.StreamWriter, frame_type: str, payload: Optional[dict] = None
) -> int:
    """Encode and send one frame; returns the bytes put on the wire."""
    data = encode_frame(frame_type, payload)
    writer.write(data)
    await writer.drain()
    return len(data)
