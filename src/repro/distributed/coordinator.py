"""Coordinator: network-wide detection over per-site interval sketches.

The paper's deployment story is exactly this shape: every router (site)
sketches its own traffic, a central box COMBINEs the per-interval
sketches and runs forecasting/detection over the *network-wide* summary.
Two classes split the job:

:class:`IntervalMerger`
    The deterministic core, free of any I/O: site registry, per-interval
    contribution tracking, the quorum/deadline merge policy, COMBINE,
    the forecast step and report build (the exact arithmetic of
    :class:`~repro.detection.session.StreamingSession`'s seal, so a
    filtering-off distributed run is bit-identical to a single-process
    one), per-site counters, and KCP1 checkpoints for durability.

:class:`CoordinatorServer`
    The asyncio shell: accepts TCP connections, enforces a per-connection
    read timeout and a per-frame payload budget, verifies each agent's
    schema identity at HELLO (COMBINE across mismatched schemas would
    silently estimate garbage), and funnels decoded frames through a
    bounded queue -- when the merge loop falls behind, ``queue.put``
    blocks the readers, which stops reading sockets, which backpressures
    agents through TCP flow control.  One merge task consumes the queue,
    so the merger needs no locking.

Merge policy (late/missing sites)
---------------------------------
Interval ``t`` seals as soon as every *active* site is **accounted for**:
it contributed ``t`` (sketch or digest), or it has already contributed a
later interval (agents send in order, so ``t`` predates its traffic --
its contribution is zero), or it said BYE (clean end of stream -- zero),
or its connection was lost (its last transmitted sketch substitutes).
When ``deadline_seconds`` is set, an interval whose oldest contribution
has waited that long seals anyway once at least ``quorum`` sites have
contributed; missing sites substitute their cached sketch, and their
contributions, if they ever arrive, are counted late and dropped.
Suppressed intervals (DIGEST frames, see
:mod:`~repro.distributed.agent`) substitute the site's last transmitted
sketch and key set -- the error-bounded approximation the drift gate
bounded at the agent.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Dict, List, Optional

import numpy as np

from repro.detection.keysource import resolve_key_source
from repro.detection.threshold import IntervalDetection, build_interval_report
from repro.distributed.frames import (
    DEFAULT_MAX_PAYLOAD,
    FRAME_HEADER_SIZE,
    FrameError,
    read_frame,
    write_frame,
)
from repro.forecast.model_zoo import make_forecaster
from repro.obs.recorder import NULL_RECORDER
from repro.sketch.mergeable import merge
from repro.sketch.serialization import (
    SketchDecodeError,
    checkpoint_meta,
    dumps_checkpoint,
    loads_checkpoint,
    schema_from_identity,
    schema_identity,
)
from repro.sketch.serialization import loads as sketch_loads

_EMPTY_KEYS = np.array([], dtype=np.uint64)

_CKPT_FORMAT = "dist-coordinator"

#: Coordinator counters pre-created at zero when a recorder attaches.
_COORDINATOR_COUNTERS = (
    "repro_dist_intervals_sealed_total",
    "repro_dist_deadline_seals_total",
    "repro_dist_substituted_total",
    "repro_dist_decode_errors_total",
    "repro_dist_lost_sites_total",
)


class SiteState:
    """Per-site registry entry: caches, progress cursor, counters."""

    __slots__ = (
        "name",
        "last_sketch",
        "last_keys",
        "max_contributed",
        "departed",
        "lost",
        "last_seen",
        "frames",
        "bytes",
        "sketches",
        "digests",
        "late",
        "substituted",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.last_sketch = None
        self.last_keys = _EMPTY_KEYS
        self.max_contributed = -1
        self.departed = False
        self.lost = False
        self.last_seen = 0.0
        self.frames = 0
        self.bytes = 0
        self.sketches = 0
        self.digests = 0
        self.late = 0
        self.substituted = 0

    @property
    def active(self) -> bool:
        """Still expected to contribute (connected, pre-BYE)."""
        return not (self.departed or self.lost)

    def stats(self) -> dict:
        return {
            "frames": self.frames,
            "bytes": self.bytes,
            "sketches": self.sketches,
            "digests": self.digests,
            "late": self.late,
            "substituted": self.substituted,
            "max_contributed": self.max_contributed,
            "departed": self.departed,
            "lost": self.lost,
        }


class IntervalMerger:
    """Deterministic site registry + merge policy + network-wide detection.

    Parameters
    ----------
    schema:
        Summary schema shared by every site (verified per connection).
    forecaster:
        Forecaster instance or model-zoo name (+ ``model_params``).
    interval_seconds:
        Analysis interval length; agents must agree (checked at HELLO).
    t_fraction / top_n / key_source:
        Detection parameters, exactly as in
        :class:`~repro.detection.session.StreamingSession`.
    quorum:
        Minimum site contributions required for a *deadline* seal
        (default 1).  Irrelevant while ``deadline_seconds`` is None.
    deadline_seconds:
        How long the oldest pending interval may wait for stragglers
        before sealing without them (``None``, the default, waits
        forever -- the lossless mode the bit-identity guarantee needs).
    checkpoint_path / checkpoint_every:
        When both set, a KCP1 coordinator checkpoint is written
        atomically to ``checkpoint_path`` every ``checkpoint_every``
        sealed intervals (see :meth:`checkpoint_bytes`).
    recorder:
        Optional :class:`~repro.obs.recorder.PipelineRecorder` for
        per-site frame/byte/suppression counters and seal events.
    clock:
        Monotonic time source for deadline ages (injectable for tests).
    """

    def __init__(
        self,
        schema,
        forecaster,
        *,
        interval_seconds: float = 300.0,
        t_fraction: float = 0.05,
        top_n: int = 0,
        key_source: str = "twopass",
        quorum: int = 1,
        deadline_seconds: Optional[float] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 0,
        recorder=None,
        clock=time.monotonic,
        **model_params,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        if quorum < 1:
            raise ValueError(f"quorum must be >= 1, got {quorum}")
        if deadline_seconds is not None and deadline_seconds < 0:
            raise ValueError(
                f"deadline_seconds must be >= 0, got {deadline_seconds}"
            )
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.schema = schema
        if isinstance(forecaster, str):
            forecaster = make_forecaster(forecaster, **model_params)
        elif model_params:
            raise ValueError(
                "model_params only apply when forecaster is given by name"
            )
        self.forecaster = forecaster
        self.interval_seconds = float(interval_seconds)
        self.t_fraction = float(t_fraction)
        self.top_n = int(top_n)
        self.key_source = key_source
        self.quorum = int(quorum)
        self.deadline_seconds = deadline_seconds
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = int(checkpoint_every)
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self.recorder.preregister(*_COORDINATOR_COUNTERS)
        self._clock = clock

        self.sites: Dict[str, SiteState] = {}
        # pending[t][site] = ("sketch", summary, keys) | ("digest", None, None)
        self.pending: Dict[int, Dict[str, tuple]] = {}
        self._first_seen: Dict[int, float] = {}
        self._sealed_through: Optional[int] = None
        self.reports: List[IntervalDetection] = []
        self._detection_stats = {"candidates": 0, "median_evaluated": 0}
        self._seal_scratch = None
        self.stats = {
            "frames": 0,
            "bytes": 0,
            "sketches": 0,
            "suppressed": 0,
            "late_frames": 0,
            "substituted": 0,
            "deadline_seals": 0,
            "lost_sites": 0,
            "decode_errors": 0,
            "intervals_sealed": 0,
        }

    # -- site registry -------------------------------------------------------

    def register(self, site: str) -> None:
        """Register (or re-activate) a site at HELLO time."""
        state = self.sites.get(site)
        if state is None:
            self.sites[site] = SiteState(site)
        else:
            # Reconnect: the cached sketch and progress cursor survive, so
            # a bounced agent resumes mid-stream without re-shipping.
            state.departed = False
            state.lost = False

    def _site(self, site: str) -> SiteState:
        state = self.sites.get(site)
        if state is None:
            raise ValueError(f"site {site!r} sent data before HELLO")
        return state

    @property
    def sealed_through(self) -> Optional[int]:
        """Highest interval index sealed so far (None before any seal)."""
        return self._sealed_through

    @property
    def complete(self) -> bool:
        """True when every registered site ended and nothing is pending."""
        return (
            bool(self.sites)
            and not self.pending
            and all(not s.active for s in self.sites.values())
        )

    def site_stats(self) -> dict:
        """Per-site counter snapshot, keyed by site name."""
        return {name: s.stats() for name, s in sorted(self.sites.items())}

    # -- contribution events -------------------------------------------------

    def _is_late(self, interval: int) -> bool:
        return (
            self._sealed_through is not None
            and interval <= self._sealed_through
        )

    def _count_frame(self, state: SiteState, nbytes: int) -> None:
        state.frames += 1
        state.bytes += nbytes
        state.last_seen = self._clock()
        self.stats["frames"] += 1
        self.stats["bytes"] += nbytes
        obs = self.recorder
        if obs.enabled:
            obs.count("repro_dist_frames_total", site=state.name)
            obs.count("repro_dist_bytes_total", nbytes, site=state.name)

    def _drop_late(self, state: SiteState, interval: int) -> None:
        state.late += 1
        self.stats["late_frames"] += 1
        obs = self.recorder
        if obs.enabled:
            obs.count("repro_dist_late_frames_total", site=state.name)
            obs.event(
                "late_contribution", site=state.name, interval=interval,
                sealed_through=self._sealed_through,
            )

    def on_sketch(
        self,
        site: str,
        interval: int,
        summary,
        keys: Optional[np.ndarray] = None,
        nbytes: int = 0,
    ) -> List[IntervalDetection]:
        """One site's sealed sketch for ``interval``; returns new reports."""
        state = self._site(site)
        self._count_frame(state, nbytes)
        state.sketches += 1
        self.stats["sketches"] += 1
        keys = (
            _EMPTY_KEYS if keys is None else np.asarray(keys, dtype=np.uint64)
        )
        if self._is_late(interval):
            self._drop_late(state, interval)
            return []
        self.pending.setdefault(interval, {})[site] = ("sketch", summary, keys)
        self._first_seen.setdefault(interval, self._clock())
        state.max_contributed = max(state.max_contributed, interval)
        state.last_sketch = summary
        state.last_keys = keys
        return self._drain()

    def on_digest(
        self, site: str, interval: int, drift: float = 0.0, nbytes: int = 0
    ) -> List[IntervalDetection]:
        """A suppressed interval: the site's sketch stayed within budget."""
        state = self._site(site)
        self._count_frame(state, nbytes)
        state.digests += 1
        self.stats["suppressed"] += 1
        obs = self.recorder
        if obs.enabled:
            obs.count("repro_dist_suppressed_total", site=site)
        if self._is_late(interval):
            self._drop_late(state, interval)
            return []
        self.pending.setdefault(interval, {})[site] = ("digest", None, None)
        self._first_seen.setdefault(interval, self._clock())
        state.max_contributed = max(state.max_contributed, interval)
        return self._drain()

    def on_heartbeat(self, site: str, nbytes: int = 0) -> List[IntervalDetection]:
        self._count_frame(self._site(site), nbytes)
        return []

    def on_bye(self, site: str, nbytes: int = 0) -> List[IntervalDetection]:
        """Clean end of stream: the site contributes zero from here on."""
        state = self._site(site)
        self._count_frame(state, nbytes)
        state.departed = True
        return self._drain()

    def on_lost(self, site: str, reason: str = "") -> List[IntervalDetection]:
        """Connection lost without BYE: substitute the cached sketch."""
        state = self._site(site)
        state.lost = True
        self.stats["lost_sites"] += 1
        obs = self.recorder
        if obs.enabled:
            obs.count("repro_dist_lost_sites_total")
            obs.event("site_lost", site=site, reason=reason)
        return self._drain()

    def on_decode_error(self, site: Optional[str], reason: str = "") -> None:
        """A corrupt frame or sketch blob (typed decode error) was dropped."""
        self.stats["decode_errors"] += 1
        obs = self.recorder
        if obs.enabled:
            obs.count("repro_dist_decode_errors_total")
            obs.event("decode_error", site=site or "?", reason=reason)

    # -- merge policy --------------------------------------------------------

    def _accounted(self, state: SiteState, interval: int) -> bool:
        # In-order shipping makes "contributed anything >= t" proof that
        # the site has nothing (or exactly its recorded contribution)
        # for t; BYE and lost sites resolve by substitution rules.
        return not state.active or state.max_contributed >= interval

    def _next_to_seal(self) -> int:
        t_min = min(self.pending)
        if self._sealed_through is None:
            return t_min
        return min(t_min, self._sealed_through + 1)

    def _drain(self) -> List[IntervalDetection]:
        """Seal every interval the policy allows, in index order.

        Gap intervals between sealed ones (possible when site traffic
        ranges are disjoint) seal as empty, keeping the forecast series
        evenly spaced exactly as a single-process session would.
        """
        reports: List[IntervalDetection] = []
        while self.pending:
            t = self._next_to_seal()
            if all(self._accounted(s, t) for s in self.sites.values()):
                reports.extend(self._seal(t))
                continue
            if self.deadline_seconds is None:
                break
            t_min = min(self.pending)
            age = self._clock() - self._first_seen[t_min]
            if (
                age >= self.deadline_seconds
                and len(self.pending[t_min]) >= self.quorum
            ):
                reports.extend(self._seal(t, forced=True))
                continue
            break
        return reports

    def check_deadlines(self) -> List[IntervalDetection]:
        """Periodic tick: seal anything whose straggler deadline expired."""
        if not self.pending:
            return []
        return self._drain()

    def _substitute(self, state: SiteState, summaries, key_arrays) -> None:
        if state.last_sketch is not None:
            summaries.append(state.last_sketch)
            if len(state.last_keys):
                key_arrays.append(state.last_keys)
        state.substituted += 1
        self.stats["substituted"] += 1
        if self.recorder.enabled:
            self.recorder.count("repro_dist_substituted_total")

    def _scratch_summaries(self):
        # Same reusable Se/Sf scratch pair as StreamingSession: the
        # report consumes the error within the seal, and the forecaster
        # retains only `merged`, which is freshly allocated every time.
        if self._seal_scratch is None:
            error_out = self.schema.empty()
            if hasattr(error_out, "combine_into"):
                self._seal_scratch = (error_out, self.schema.empty())
            else:
                self._seal_scratch = (None, None)
        return self._seal_scratch

    def _seal(self, t: int, forced: bool = False) -> List[IntervalDetection]:
        contribs = self.pending.pop(t, {})
        self._first_seen.pop(t, None)
        summaries = []
        key_arrays = []
        # Deterministic site order: float64 COMBINE of integral updates
        # is exact regardless, but determinism costs nothing and makes
        # runs reproducible even with non-integral value schemes.
        for name in sorted(self.sites):
            state = self.sites[name]
            entry = contribs.get(name)
            if entry is not None:
                kind, summary, keys = entry
                if kind == "sketch":
                    summaries.append(summary)
                    if len(keys):
                        key_arrays.append(keys)
                else:
                    self._substitute(state, summaries, key_arrays)
            elif state.departed:
                continue  # clean end of stream: zero contribution
            elif state.lost or (forced and state.active):
                self._substitute(state, summaries, key_arrays)
            # else: t predates the site's traffic -- zero contribution
        if forced:
            self.stats["deadline_seals"] += 1
            if self.recorder.enabled:
                self.recorder.count("repro_dist_deadline_seals_total")
                self.recorder.event(
                    "deadline_seal", interval=t,
                    contributions=len(contribs), sites=len(self.sites),
                )
        # merge() always allocates a fresh summary -- contributions and
        # site caches are never aliased into the forecaster's state.
        merged = merge(summaries) if summaries else self.schema.empty()
        keys = (
            np.unique(np.concatenate(key_arrays))
            if key_arrays
            else _EMPTY_KEYS
        )
        return self._step_and_report(t, merged, keys)

    def _step_and_report(self, t, merged, keys) -> List[IntervalDetection]:
        obs = self.recorder
        error_out, forecast_out = self._scratch_summaries()
        with obs.time("forecast_step"):
            step = self.forecaster.step_into(
                merged, error_out=error_out, forecast_out=forecast_out
            )
        self._sealed_through = t
        self.stats["intervals_sealed"] += 1
        obs.count("repro_dist_intervals_sealed_total")
        reports: List[IntervalDetection] = []
        if step.error is not None:
            candidates = resolve_key_source(
                self.key_source,
                step.error,
                t_fraction=self.t_fraction,
                collected=keys,
                recorder=obs if obs.enabled else None,
            )
            with obs.time("report_build"):
                report = build_interval_report(
                    step.error,
                    candidates,
                    interval=t,
                    t_fraction=self.t_fraction,
                    top_n=self.top_n,
                    schema=self.schema,
                    stats=self._detection_stats,
                    recorder=obs if obs.enabled else None,
                )
            self.reports.append(report)
            reports.append(report)
            if obs.enabled:
                obs.event(
                    "interval_sealed", interval=t,
                    alarms=report.alarm_count, error_l2=report.error_l2,
                )
        elif obs.enabled:
            obs.event("interval_sealed", interval=t, warmup=True)
        if (
            self.checkpoint_path is not None
            and self.checkpoint_every > 0
            and self.stats["intervals_sealed"] % self.checkpoint_every == 0
        ):
            self.save_checkpoint(self.checkpoint_path)
        return reports

    # -- durability (KCP1) ---------------------------------------------------

    def checkpoint_bytes(self) -> bytes:
        """Serialize coordinator state as one KCP1 container.

        Captures the forecaster recursion, the seal cursor and every
        site's cache/progress -- everything needed for a restarted
        coordinator to keep sealing *future* intervals consistently.
        Intervals pending (unsealed) at crash time are not captured;
        agents re-ship them on reconnect (their contributions for
        already-sealed intervals are dropped as late, so replays are
        harmless).
        """
        from repro.detection.checkpoint import _forecaster_spec

        meta = {
            "format": _CKPT_FORMAT,
            "schema": schema_identity(self.schema),
            "forecaster": _forecaster_spec(self.forecaster),
            "config": {
                "interval_seconds": self.interval_seconds,
                "t_fraction": self.t_fraction,
                "top_n": self.top_n,
                "key_source": self.key_source,
                "quorum": self.quorum,
                "deadline_seconds": self.deadline_seconds,
                "checkpoint_every": self.checkpoint_every,
            },
            "cursor": {
                "sealed_through": self._sealed_through,
                "intervals_sealed": self.stats["intervals_sealed"],
            },
        }
        body = {
            "forecaster": self.forecaster.get_state(),
            "sites": {
                name: {
                    "last_sketch": s.last_sketch,
                    "last_keys": np.asarray(s.last_keys, dtype=np.uint64),
                    "max_contributed": s.max_contributed,
                    "departed": s.departed,
                    "lost": s.lost,
                }
                for name, s in self.sites.items()
            },
        }
        return dumps_checkpoint(meta, body)

    def save_checkpoint(self, path) -> None:
        """Write :meth:`checkpoint_bytes` to ``path`` (atomic rename)."""
        data = self.checkpoint_bytes()
        tmp = f"{os.fspath(path)}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
        obs = self.recorder
        if obs.enabled:
            obs.count("repro_checkpoints_written_total")
            obs.event(
                "checkpoint_written", path=os.fspath(path), bytes=len(data),
                sealed_through=self._sealed_through,
            )


def restore_merger(
    data: bytes,
    schema=None,
    recorder=None,
    clock=time.monotonic,
) -> IntervalMerger:
    """Rebuild an :class:`IntervalMerger` from :meth:`checkpoint_bytes`.

    ``schema``, when given, is verified against the checkpointed identity
    and attached (skipping hash-table rebuilds).  Sites restore with
    their caches and progress cursors but flagged ``lost`` until they
    re-HELLO -- a restarted coordinator must not block its first seal on
    agents that died with it.
    """
    peek = checkpoint_meta(data)
    if peek.get("format") != _CKPT_FORMAT:
        raise ValueError(
            f"not a coordinator checkpoint (format={peek.get('format')!r})"
        )
    from repro.detection.checkpoint import FORECASTER_CLASSES

    schema = schema_from_identity(peek["schema"], schema=schema)
    meta, body = loads_checkpoint(data, schema=schema)
    fc_spec = meta["forecaster"]
    fc_cls = FORECASTER_CLASSES.get(fc_spec["class"])
    if fc_cls is None:
        raise ValueError(f"unknown forecaster class {fc_spec['class']!r}")
    forecaster = fc_cls(**fc_spec["config"])
    forecaster.set_state(body["forecaster"])
    config = meta["config"]
    merger = IntervalMerger(
        schema,
        forecaster,
        interval_seconds=config["interval_seconds"],
        t_fraction=config["t_fraction"],
        top_n=config["top_n"],
        key_source=config["key_source"],
        quorum=config["quorum"],
        deadline_seconds=config["deadline_seconds"],
        checkpoint_every=config["checkpoint_every"],
        recorder=recorder,
        clock=clock,
    )
    cursor = meta["cursor"]
    merger._sealed_through = (
        None
        if cursor["sealed_through"] is None
        else int(cursor["sealed_through"])
    )
    merger.stats["intervals_sealed"] = int(cursor["intervals_sealed"])
    for name, saved in body["sites"].items():
        state = SiteState(name)
        state.last_sketch = saved["last_sketch"]
        state.last_keys = np.asarray(saved["last_keys"], dtype=np.uint64)
        state.max_contributed = int(saved["max_contributed"])
        state.departed = bool(saved["departed"])
        state.lost = True if not state.departed else False
        merger.sites[name] = state
    return merger


def load_merger_checkpoint(path, schema=None, recorder=None) -> IntervalMerger:
    """Read a coordinator checkpoint file and restore the merger."""
    with open(path, "rb") as fh:
        return restore_merger(fh.read(), schema=schema, recorder=recorder)


class CoordinatorServer:
    """Asyncio TCP shell around an :class:`IntervalMerger`.

    One reader task per connection, one merge task for the whole server.
    Readers validate HELLO (schema identity, interval length) and then
    forward decoded frames into :attr:`_queue`; the bounded queue is the
    backpressure valve -- a full queue blocks the reader coroutine, which
    stops draining its socket, which stalls the agent via TCP flow
    control.  All merger access happens on the merge task, so the
    deterministic core stays single-threaded and lock-free.

    Parameters
    ----------
    merger:
        The :class:`IntervalMerger` holding all detection state.
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start` -- the loopback harness relies on this).
    read_timeout:
        Per-connection idle budget in seconds.  A connection that sends
        nothing (not even a heartbeat) for this long is declared lost:
        the socket closes and the merger substitutes the site's cached
        sketch rather than stalling every other site's seals forever.
    max_payload:
        Per-frame payload budget handed to :func:`read_frame`.
    queue_maxsize:
        Bound on the frame queue (the backpressure knob).
    deadline_tick:
        How often the merge loop wakes to run
        :meth:`IntervalMerger.check_deadlines` while the queue is idle.
    on_report:
        Optional callback invoked (on the merge task) with each new
        :class:`~repro.detection.threshold.IntervalDetection`.
    """

    def __init__(
        self,
        merger: IntervalMerger,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        read_timeout: float = 30.0,
        max_payload: Optional[int] = None,
        queue_maxsize: int = 64,
        deadline_tick: float = 0.25,
        on_report=None,
    ) -> None:
        if read_timeout <= 0:
            raise ValueError(f"read_timeout must be > 0, got {read_timeout}")
        if queue_maxsize < 1:
            raise ValueError(
                f"queue_maxsize must be >= 1, got {queue_maxsize}"
            )
        self.merger = merger
        self.host = host
        self.port = port
        self.read_timeout = float(read_timeout)
        self.max_payload = (
            DEFAULT_MAX_PAYLOAD if max_payload is None else int(max_payload)
        )
        self.deadline_tick = float(deadline_tick)
        self.on_report = on_report
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_maxsize)
        self._server: Optional[asyncio.base_events.Server] = None
        self._merge_task: Optional[asyncio.Task] = None
        self._stopping = False

    async def start(self) -> None:
        """Bind, start accepting connections, launch the merge loop."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._merge_task = asyncio.create_task(self._merge_loop())

    async def stop(self) -> None:
        """Stop accepting, drain the queue, and land the merge task."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopping = True
        if self._merge_task is not None:
            await self._merge_task
            self._merge_task = None

    async def wait_complete(
        self, timeout: float = 60.0, min_sites: int = 1
    ) -> bool:
        """Wait until every site ended and every interval sealed.

        Polls :attr:`IntervalMerger.complete` (plus an empty frame
        queue); returns False on timeout instead of raising so callers
        can dump diagnostics before failing.  ``min_sites`` guards
        against declaring a fleet done before it has even assembled --
        completion requires at least that many sites to have registered
        (ever), so an early-finishing first agent does not end a run
        whose remaining agents are still connecting.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if (
                len(self.merger.sites) >= min_sites
                and self._queue.empty()
                and self.merger.complete
            ):
                return True
            await asyncio.sleep(0.02)
        return False

    # -- connection handling -------------------------------------------------

    async def _read(self, reader):
        return await asyncio.wait_for(
            read_frame(reader, self.max_payload), self.read_timeout
        )

    async def _handle_connection(self, reader, writer) -> None:
        site: Optional[str] = None
        clean_exit = False
        reason = "connection closed without BYE"
        try:
            frame = await self._read(reader)
            if frame is None:
                clean_exit = True  # probed and left before HELLO
                return
            kind, payload = frame
            if kind != "hello":
                await write_frame(
                    writer,
                    "error",
                    {"reason": f"expected HELLO, got {kind.upper()}"},
                )
                clean_exit = True
                return
            refusal = self._vet_hello(payload)
            if refusal is not None:
                await write_frame(writer, "error", {"reason": refusal})
                clean_exit = True
                return
            site = str(payload["site"])
            await self._queue.put(("hello", site, payload, 0))
            await write_frame(writer, "ack", {"site": site})
            while True:
                frame = await self._read(reader)
                if frame is None:
                    return  # EOF without BYE -> lost (finally block)
                kind, payload = frame
                nbytes = FRAME_HEADER_SIZE + _payload_size(payload)
                await self._queue.put((kind, site, payload, nbytes))
                if kind == "bye":
                    clean_exit = True
                    return
        except asyncio.TimeoutError:
            reason = f"no frame for {self.read_timeout}s (read timeout)"
        except FrameError as exc:
            reason = f"corrupt frame: {exc}"
            self.merger.on_decode_error(site, reason)
        except (ConnectionError, OSError) as exc:
            reason = f"transport error: {exc}"
        finally:
            if site is not None and not clean_exit:
                await self._queue.put(("gone", site, {"reason": reason}, 0))
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _vet_hello(self, payload: dict) -> Optional[str]:
        """Validate a HELLO payload; returns a refusal reason or None."""
        site = payload.get("site")
        if not site or not isinstance(site, str):
            return "HELLO must carry a non-empty site name"
        try:
            schema_from_identity(payload["schema"], schema=self.merger.schema)
        except (KeyError, TypeError, ValueError) as exc:
            return f"schema mismatch: {exc}"
        interval = payload.get("interval_seconds")
        if (
            interval is not None
            and float(interval) != self.merger.interval_seconds
        ):
            return (
                f"interval mismatch: agent uses {interval}s, coordinator "
                f"uses {self.merger.interval_seconds}s"
            )
        return None

    # -- merge loop ----------------------------------------------------------

    async def _merge_loop(self) -> None:
        while True:
            try:
                item = await asyncio.wait_for(
                    self._queue.get(), timeout=self.deadline_tick
                )
            except asyncio.TimeoutError:
                if self._stopping:
                    return
                self._emit(self.merger.check_deadlines())
                continue
            try:
                self._emit(self._dispatch(*item))
            finally:
                self._queue.task_done()

    def _dispatch(self, kind, site, payload, nbytes=0):
        merger = self.merger
        if kind == "hello":
            merger.register(site)
            return []
        if kind == "sketch":
            try:
                summary = sketch_loads(
                    payload["sketch"], schema=merger.schema
                )
                interval = int(payload["interval"])
            except (SketchDecodeError, KeyError, TypeError, ValueError) as exc:
                merger.on_decode_error(site, str(exc))
                return []
            return merger.on_sketch(
                site,
                interval,
                summary,
                keys=payload.get("keys"),
                nbytes=nbytes,
            )
        if kind == "digest":
            try:
                interval = int(payload["interval"])
            except (KeyError, TypeError, ValueError) as exc:
                merger.on_decode_error(site, str(exc))
                return []
            return merger.on_digest(
                site,
                interval,
                drift=float(payload.get("drift", 0.0)),
                nbytes=nbytes,
            )
        if kind == "heartbeat":
            return merger.on_heartbeat(site, nbytes=nbytes)
        if kind == "bye":
            return merger.on_bye(site, nbytes=nbytes)
        if kind == "gone":
            return merger.on_lost(site, reason=payload.get("reason", ""))
        merger.on_decode_error(site, f"unexpected frame type {kind!r}")
        return []

    def _emit(self, reports) -> None:
        if self.on_report is not None:
            for report in reports:
                self.on_report(report)


def _payload_size(payload: dict) -> int:
    """Approximate a decoded payload's wire size for byte accounting."""
    total = 0
    for value in payload.values():
        if isinstance(value, (bytes, bytearray)):
            total += len(value)
        elif isinstance(value, np.ndarray):
            total += value.nbytes
        elif isinstance(value, str):
            total += len(value)
        else:
            total += 8
    return total
