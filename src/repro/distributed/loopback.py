"""End-to-end loopback harness: coordinator + N agents in one process.

The distributed tier's correctness claim is sharp -- with communication
filtering off, the coordinator's reports are **bit-identical** to a
single-process :class:`~repro.detection.session.StreamingSession` over
the concatenated traffic.  This module makes the claim executable: it
splits a trace across N simulated sites, runs a real
:class:`~repro.distributed.coordinator.CoordinatorServer` on a loopback
TCP port with one real :func:`~repro.distributed.agent.run_agent` task
per site (full wire path: frames, serialization, backpressure queue),
and hands back everything needed to compare against the serial
reference.  Tests and the CI job both drive it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.detection.session import StreamingSession
from repro.detection.threshold import IntervalDetection
from repro.distributed.agent import AgentStats, run_agent
from repro.distributed.coordinator import CoordinatorServer, IntervalMerger


def partition_records(
    records: np.ndarray, n_sites: int, prefix: str = "site"
) -> Dict[str, np.ndarray]:
    """Deal a time-sorted trace round-robin across ``n_sites`` sites.

    Slicing (``records[i::n]``) preserves record order, so each site's
    stream stays time-sorted -- the agent-side sessions never see
    out-of-order records.  Round-robin (rather than hash-of-key) spreads
    every key over every site, which is the interesting case for
    COMBINE: no single site sees the whole story of any key.
    """
    if n_sites < 1:
        raise ValueError(f"n_sites must be >= 1, got {n_sites}")
    width = len(str(n_sites - 1))
    return {
        f"{prefix}-{i:0{width}d}": records[i::n_sites]
        for i in range(n_sites)
    }


@dataclass
class LoopbackResult:
    """Everything a loopback run produced, for assertions and reporting."""

    reports: List[IntervalDetection]
    agent_stats: Dict[str, AgentStats]
    coordinator_stats: dict
    site_stats: dict
    sealed_through: Optional[int]
    complete: bool

    @property
    def sketch_bytes_sent(self) -> int:
        """Total bytes put on the wire by every agent."""
        return sum(s.bytes_sent for s in self.agent_stats.values())

    @property
    def suppressed(self) -> int:
        """Intervals the drift gates held back across all sites."""
        return sum(s.suppressed for s in self.agent_stats.values())


async def run_loopback_async(
    records: np.ndarray,
    schema,
    forecaster="ewma",
    *,
    n_sites: int = 3,
    interval_seconds: float = 300.0,
    key_scheme: str = "dst_ip",
    value_scheme: str = "bytes",
    key_source: str = "twopass",
    t_fraction: float = 0.05,
    top_n: int = 0,
    drift_fraction: float = 0.0,
    quorum: int = 1,
    deadline_seconds: Optional[float] = None,
    chunk_records: int = 4096,
    read_timeout: float = 30.0,
    queue_maxsize: int = 64,
    checkpoint_path=None,
    checkpoint_every: int = 0,
    recorder=None,
    complete_timeout: float = 60.0,
    **model_params,
) -> LoopbackResult:
    """Run coordinator + ``n_sites`` agents over loopback TCP; see module docs.

    ``recorder`` (when given) attaches to the coordinator's merger --
    agents keep Null recorders so their per-site counters don't collide
    in the shared registry.
    """
    merger = IntervalMerger(
        schema,
        forecaster,
        interval_seconds=interval_seconds,
        t_fraction=t_fraction,
        top_n=top_n,
        key_source=key_source,
        quorum=quorum,
        deadline_seconds=deadline_seconds,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        recorder=recorder,
        **model_params,
    )
    server = CoordinatorServer(
        merger,
        read_timeout=read_timeout,
        queue_maxsize=queue_maxsize,
    )
    await server.start()
    try:
        parts = partition_records(records, n_sites)
        stats_list = await asyncio.gather(
            *(
                run_agent(
                    part,
                    server.host,
                    server.port,
                    schema=schema,
                    site=name,
                    interval_seconds=interval_seconds,
                    key_scheme=key_scheme,
                    value_scheme=value_scheme,
                    key_source=key_source,
                    t_fraction=t_fraction,
                    drift_fraction=drift_fraction,
                    chunk_records=chunk_records,
                )
                for name, part in parts.items()
            )
        )
        complete = await server.wait_complete(
            timeout=complete_timeout, min_sites=n_sites
        )
    finally:
        await server.stop()
    return LoopbackResult(
        reports=list(merger.reports),
        agent_stats=dict(zip(parts.keys(), stats_list)),
        coordinator_stats=dict(merger.stats),
        site_stats=merger.site_stats(),
        sealed_through=merger.sealed_through,
        complete=complete,
    )


def run_loopback(records: np.ndarray, schema, forecaster="ewma", **kwargs):
    """Synchronous wrapper around :func:`run_loopback_async`."""
    return asyncio.run(run_loopback_async(records, schema, forecaster, **kwargs))


def run_serial_reference(
    records: np.ndarray,
    schema,
    forecaster="ewma",
    *,
    interval_seconds: float = 300.0,
    key_scheme: str = "dst_ip",
    value_scheme: str = "bytes",
    key_source: str = "twopass",
    t_fraction: float = 0.05,
    top_n: int = 0,
    **model_params,
) -> List[IntervalDetection]:
    """Single-process reference: one session over the whole trace.

    The configuration mirrors :func:`run_loopback_async` parameter for
    parameter, so a filtering-off loopback run must reproduce these
    reports bit for bit.
    """
    session = StreamingSession(
        schema,
        forecaster,
        interval_seconds=interval_seconds,
        key_scheme=key_scheme,
        value_scheme=value_scheme,
        key_source=key_source,
        t_fraction=t_fraction,
        top_n=top_n,
        **model_params,
    )
    reports = session.ingest(records)
    reports.extend(session.flush())
    return reports
