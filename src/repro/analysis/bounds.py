"""Theorems 1-5: probabilistic accuracy guarantees of the k-ary sketch.

Statements (from the paper's appendices):

* **Theorem 1** (per-row point estimate): ``E[v_a^h] = v_a`` and
  ``Var[v_a^h] <= F2 / (K - 1)``.
* **Theorem 2** (miss probability): if ``|v_a| >= alpha T sqrt(F2)`` with
  ``alpha >= 1``, then
  ``P(|v_a_est| <= T sqrt(F2)) <= [4 / ((K-1) (alpha-1)^2 T^2)]^(H/2)``.
* **Theorem 3** (false-alarm probability): if ``|v_a| <= beta T sqrt(F2)``
  with ``beta in [0, 1]``, then
  ``P(|v_a_est| >= T sqrt(F2)) <= [4 / ((K-1) (1-beta)^2 T^2)]^(H/2)``.
* **Theorem 4** (per-row F2 estimate): unbiased with
  ``Var[F2^h] <= 2 F2^2 / (K - 1)``.
* **Theorem 5** (F2 concentration):
  ``P(|F2_est - F2| > lambda F2) <= [8 / ((K-1) lambda^2)]^(H/2)``.

The median-of-H step converts the per-row Chebyshev bounds into
exponentially small tail bounds via the Chernoff argument -- which is why
small ``H`` (5 in most experiments) suffices.

These are *data-independent upper bounds*; Section 3.4.1 uses them as the
upper end of the (H, K) search range before the data-dependent grid search
takes over.
"""

from __future__ import annotations

from typing import Tuple


def _check_hk(h: int, k: int) -> None:
    if h < 1:
        raise ValueError(f"H must be >= 1, got {h}")
    if k < 2:
        raise ValueError(f"K must be >= 2, got {k}")


def estimate_variance_bound(k: int, f2: float = 1.0) -> float:
    """Theorem 1's variance bound ``F2 / (K - 1)`` for a per-row estimate."""
    _check_hk(1, k)
    if f2 < 0:
        raise ValueError(f"F2 must be >= 0, got {f2}")
    return f2 / (k - 1)


def f2_variance_bound(k: int, f2: float = 1.0) -> float:
    """Theorem 4's variance bound ``2 F2**2 / (K - 1)`` for a row F2 estimate."""
    _check_hk(1, k)
    if f2 < 0:
        raise ValueError(f"F2 must be >= 0, got {f2}")
    return 2.0 * f2 * f2 / (k - 1)


def _chernoff_median(per_row_bound: float, h: int) -> float:
    """Tail bound for the median of ``h`` rows given a per-row bound.

    ``P(median bad) <= (4 p)^(H/2)`` for per-row failure probability ``p``
    (the standard Chernoff step used in Theorems 2, 3 and 5).  Clamped to 1.
    """
    if per_row_bound <= 0:
        return 0.0
    return min(1.0, (4.0 * per_row_bound) ** (h / 2.0))


def miss_probability(h: int, k: int, t: float, alpha: float) -> float:
    """Theorem 2: probability of missing a key with ``|v_a| >= alpha T sqrt(F2)``.

    ``t`` is the detection threshold fraction ``T`` in (0, 1);
    ``alpha >= 1`` measures how far above threshold the key truly is.
    """
    _check_hk(h, k)
    if not 0.0 < t < 1.0:
        raise ValueError(f"T must be in (0, 1), got {t}")
    if alpha < 1.0:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    if alpha == 1.0:
        return 1.0  # the bound is vacuous at the threshold itself
    per_row = 1.0 / ((k - 1) * (alpha - 1.0) ** 2 * t * t)
    return _chernoff_median(per_row, h)


def false_alarm_probability(h: int, k: int, t: float, beta: float) -> float:
    """Theorem 3: probability a key with ``|v_a| <= beta T sqrt(F2)`` alarms.

    ``beta`` in [0, 1) measures how far below threshold the key truly is.
    """
    _check_hk(h, k)
    if not 0.0 < t < 1.0:
        raise ValueError(f"T must be in (0, 1), got {t}")
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    if beta == 1.0:
        return 1.0
    per_row = 1.0 / ((k - 1) * (1.0 - beta) ** 2 * t * t)
    return _chernoff_median(per_row, h)


def f2_relative_error_probability(h: int, k: int, lam: float) -> float:
    """Theorem 5: ``P(|F2_est - F2| > lambda F2)`` bound.

    Reproduces the paper's worked example: ``K = 2**16``, ``lambda = 0.05``,
    ``H = 20`` gives below ``7.7e-14``.
    """
    _check_hk(h, k)
    if lam <= 0:
        raise ValueError(f"lambda must be > 0, got {lam}")
    per_row = 2.0 / ((k - 1) * lam * lam)
    return _chernoff_median(per_row, h)


def recommend_dimensions(
    t: float,
    alpha: float = 2.0,
    beta: float = 0.5,
    failure_probability: float = 1e-9,
    max_h: int = 25,
) -> Tuple[int, int]:
    """Smallest ``(H, K)`` meeting a target failure probability analytically.

    Searches odd ``H`` (median-friendly) up to ``max_h`` and power-of-two
    ``K``, returning the combination minimizing table size ``H * K`` whose
    Theorem 2 *and* Theorem 3 bounds are both below
    ``failure_probability``.  This is the "data-independent upper bound"
    starting point of Section 3.4.1; real deployments then shrink K using
    training data.
    """
    if not 0.0 < failure_probability < 1.0:
        raise ValueError(
            f"failure_probability must be in (0, 1), got {failure_probability}"
        )
    best: Tuple[int, int] = (0, 0)
    best_cells = None
    for h in range(1, max_h + 1, 2):
        for log_k in range(1, 27):
            k = 1 << log_k
            miss = miss_probability(h, k, t, alpha)
            false = false_alarm_probability(h, k, t, beta)
            if max(miss, false) <= failure_probability:
                cells = h * k
                if best_cells is None or cells < best_cells:
                    best, best_cells = (h, k), cells
                break  # larger K only costs more for this H
    if best_cells is None:
        raise ValueError(
            "no (H, K) within the search range meets the failure probability; "
            "relax the target or increase max_h"
        )
    return best
