"""Analytical accuracy bounds for k-ary sketches (paper appendices A-B).

Closed forms for Theorems 1-5 plus the dimensioning helpers the paper's
Section 3.4.1 describes: "use analytical results to derive
data-independent choice of H and K and treat them as upper bounds".
"""

from repro.analysis.bounds import (
    estimate_variance_bound,
    f2_relative_error_probability,
    f2_variance_bound,
    false_alarm_probability,
    miss_probability,
    recommend_dimensions,
)
from repro.analysis.moments import exact_f2, exact_l2
from repro.analysis.space import (
    SpaceReport,
    compare as compare_space,
    crossover_keys,
    per_flow_state_bytes,
    pipeline_state_bytes,
)
from repro.analysis.timeseries import (
    LjungBoxResult,
    acf,
    difference,
    ljung_box,
    pacf,
    suggest_differencing,
)

__all__ = [
    "LjungBoxResult",
    "SpaceReport",
    "acf",
    "compare_space",
    "crossover_keys",
    "difference",
    "per_flow_state_bytes",
    "pipeline_state_bytes",
    "estimate_variance_bound",
    "exact_f2",
    "exact_l2",
    "f2_relative_error_probability",
    "f2_variance_bound",
    "false_alarm_probability",
    "ljung_box",
    "miss_probability",
    "pacf",
    "recommend_dimensions",
    "suggest_differencing",
]
