"""Exact moment computations over keyed value arrays."""

from __future__ import annotations

import math

import numpy as np


def exact_f2(keys, values) -> float:
    """The true second moment ``F2 = sum_a (sum of a's updates)**2``.

    Aggregates duplicate keys before squaring -- squaring per-record values
    would be wrong whenever a key receives multiple updates.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    values = np.asarray(values, dtype=np.float64)
    if keys.shape != values.shape:
        raise ValueError(
            f"keys and values must align, got {keys.shape} vs {values.shape}"
        )
    if not len(keys):
        return 0.0
    _, inverse = np.unique(keys, return_inverse=True)
    totals = np.bincount(inverse, weights=values)
    return float(totals @ totals)


def exact_l2(keys, values) -> float:
    """The true L2 norm ``sqrt(F2)``."""
    return math.sqrt(exact_f2(keys, values))
