"""Time-series diagnostics supporting Box-Jenkins model identification.

The paper leans on the Box-Jenkins ARIMA methodology [6, 7]; identifying
``(p, d, q)`` classically uses the autocorrelation function (ACF), the
partial autocorrelation function (PACF), and residual whiteness tests.
These are provided here over plain 1-D series (per-flow totals, per-key
signals, or total-energy series) so users can justify model orders rather
than guess them.

All functions are NumPy-only implementations of the standard estimators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


import numpy as np


def _as_series(x) -> np.ndarray:
    series = np.asarray(x, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {series.shape}")
    if len(series) < 2:
        raise ValueError(f"series must have >= 2 points, got {len(series)}")
    return series


def acf(x, max_lag: int = 20) -> np.ndarray:
    """Sample autocorrelation function at lags ``0..max_lag``.

    Uses the standard biased estimator (dividing by ``n`` rather than
    ``n - k``), which guarantees a positive semi-definite sequence.
    """
    series = _as_series(x)
    n = len(series)
    if max_lag < 0:
        raise ValueError(f"max_lag must be >= 0, got {max_lag}")
    max_lag = min(max_lag, n - 1)
    centered = series - series.mean()
    denominator = float(centered @ centered)
    if denominator == 0.0:
        # A constant series is perfectly correlated with itself at lag 0
        # and undefined beyond; return the convention [1, 0, 0, ...].
        out = np.zeros(max_lag + 1)
        out[0] = 1.0
        return out
    out = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        out[lag] = float(centered[: n - lag] @ centered[lag:]) / denominator
    return out


def pacf(x, max_lag: int = 20) -> np.ndarray:
    """Sample partial autocorrelation at lags ``0..max_lag``.

    Computed with the Durbin-Levinson recursion on the sample ACF.  Lag 0
    is 1 by convention.  The PACF cutting off after lag ``p`` is the
    classical signature of an AR(p) process (how one picks the paper's
    ``p <= 2``).
    """
    rho = acf(x, max_lag)
    max_lag = len(rho) - 1
    out = np.zeros(max_lag + 1)
    out[0] = 1.0
    if max_lag == 0:
        return out
    phi_prev = np.zeros(max_lag + 1)
    phi_prev[1] = rho[1]
    out[1] = rho[1]
    for k in range(2, max_lag + 1):
        numerator = rho[k] - float(phi_prev[1:k] @ rho[1:k][::-1])
        denominator = 1.0 - float(phi_prev[1:k] @ rho[1:k])
        phi_kk = numerator / denominator if denominator != 0 else 0.0
        phi = phi_prev.copy()
        phi[k] = phi_kk
        phi[1:k] = phi_prev[1:k] - phi_kk * phi_prev[1:k][::-1]
        out[k] = phi_kk
        phi_prev = phi
    return out


@dataclass(frozen=True)
class LjungBoxResult:
    """Outcome of the Ljung-Box whiteness test."""

    statistic: float
    lags: int
    p_value: float

    @property
    def is_white(self) -> bool:
        """True when the no-autocorrelation hypothesis survives at 5%."""
        return self.p_value > 0.05


def _chi2_sf(x: float, df: int) -> float:
    """Chi-square survival function via the regularized upper gamma.

    Series/continued-fraction implementation (Numerical Recipes style);
    avoids a SciPy dependency for one function.
    """
    if x < 0:
        raise ValueError(f"x must be >= 0, got {x}")
    if df < 1:
        raise ValueError(f"df must be >= 1, got {df}")
    a = df / 2.0
    half = x / 2.0
    if half == 0.0:
        return 1.0
    # P(a, x) by series for x < a+1; Q(a, x) by continued fraction otherwise.
    if half < a + 1.0:
        term = 1.0 / a
        total = term
        n = a
        for _ in range(500):
            n += 1.0
            term *= half / n
            total += term
            if abs(term) < abs(total) * 1e-14:
                break
        p = total * math.exp(-half + a * math.log(half) - math.lgamma(a))
        return max(0.0, min(1.0, 1.0 - p))
    b = half + 1.0 - a
    c = 1e308
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        d = 1.0 / d if abs(d) > 1e-300 else 1e300
        c = b + an / c if abs(c) > 1e-300 else 1e300
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    q = h * math.exp(-half + a * math.log(half) - math.lgamma(a))
    return max(0.0, min(1.0, q))


def ljung_box(residuals, lags: int = 10, fitted_params: int = 0) -> LjungBoxResult:
    """Ljung-Box portmanteau test for residual autocorrelation.

    ``fitted_params`` reduces the degrees of freedom by the number of
    model parameters (``p + q`` for an ARMA fit).  A small p-value means
    the residuals are not white -- the model missed structure.
    """
    series = _as_series(residuals)
    n = len(series)
    if lags < 1:
        raise ValueError(f"lags must be >= 1, got {lags}")
    if lags <= fitted_params:
        raise ValueError(
            f"lags ({lags}) must exceed fitted_params ({fitted_params})"
        )
    rho = acf(series, lags)[1:]
    statistic = n * (n + 2) * float(
        np.sum(rho**2 / (n - np.arange(1, lags + 1)))
    )
    df = lags - fitted_params
    return LjungBoxResult(
        statistic=statistic, lags=lags, p_value=_chi2_sf(statistic, df)
    )


def difference(x, d: int = 1) -> np.ndarray:
    """Apply ``d`` differencing passes (the "I" of ARIMA)."""
    series = _as_series(x)
    if d < 0:
        raise ValueError(f"d must be >= 0, got {d}")
    for _ in range(d):
        if len(series) < 2:
            raise ValueError("series too short to difference")
        series = np.diff(series)
    return series


def suggest_differencing(x, max_d: int = 2, threshold: float = 0.8) -> int:
    """Pick ``d`` by the classical rule: difference while the lag-1 ACF
    stays near 1 (a slowly decaying ACF indicates non-stationarity).

    Returns the smallest ``d <= max_d`` whose differenced series has
    lag-1 autocorrelation below ``threshold`` -- matching the paper's
    practical note that "the number of differences (d) is typically
    either 0 or 1".
    """
    if max_d < 0:
        raise ValueError(f"max_d must be >= 0, got {max_d}")
    series = _as_series(x)
    for d in range(max_d + 1):
        candidate = difference(series, d) if d else series
        if len(candidate) < 3:
            return d
        if acf(candidate, 1)[1] < threshold:
            return d
    return max_d
