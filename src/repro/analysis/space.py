"""Memory accounting: sketches vs per-flow state.

The paper's motivating claim is quantitative: "as link speeds and the
number of flows increase, keeping per-flow state is either too expensive
or too slow", while the k-ary sketch "uses a constant, small amount of
memory".  This module makes the comparison computable for a deployment's
actual parameters, including the full forecasting pipeline's working set
(a model holds several summaries: MA(W) needs W history sketches, EWMA
one, NSHW three, ARIMA d + p + q + 1-ish).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Bytes per per-flow table entry: 8B key + 8B counter + dict/overhead
#: estimate.  Real hash tables with chaining/robin-hood land in 32-64B per
#: live entry; we use a deliberately charitable figure.
PER_FLOW_ENTRY_BYTES = 32

#: Counter width used by the sketches in this package.
CELL_BYTES = 8

#: Summaries a forecast model must hold live (history windows + components
#: + the current observed/error pair the detector works on).
_MODEL_STATE_SUMMARIES: Dict[str, int] = {
    "ma": 12,      # window of up to 10-12 observed summaries + obs + err
    "sma": 12,
    "ewma": 3,     # running forecast + observed + error
    "nshw": 5,     # smooth + trend + forecast + observed + error
    "arima0": 7,   # z-lags(2) + innovation lags(2) + pending + obs + err
    "arima1": 8,   # + one raw lag for differencing
}


def sketch_table_bytes(depth: int, width: int) -> int:
    """Bytes for one ``H x K`` sketch table."""
    if depth < 1 or width < 1:
        raise ValueError(f"need depth, width >= 1, got {depth}, {width}")
    return depth * width * CELL_BYTES


def hash_state_bytes(depth: int, family: str = "tabulation") -> int:
    """Bytes for the schema's hash functions (shared by all sketches)."""
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    if family == "tabulation":
        # Two 2^16 tables + one 2^17 table of uint64 per row.
        return depth * (2**16 + 2**16 + 2**17) * 8
    if family in ("polynomial", "two-universal"):
        coeffs = 4 if family == "polynomial" else 2
        return depth * coeffs * 8
    raise ValueError(f"unknown family {family!r}")


def pipeline_state_bytes(
    depth: int,
    width: int,
    model: str = "ewma",
    family: str = "tabulation",
) -> int:
    """Total working set of one sketch-based detection pipeline."""
    try:
        summaries = _MODEL_STATE_SUMMARIES[model]
    except KeyError:
        known = ", ".join(sorted(_MODEL_STATE_SUMMARIES))
        raise ValueError(f"unknown model {model!r}; known: {known}") from None
    return summaries * sketch_table_bytes(depth, width) + hash_state_bytes(
        depth, family
    )


def per_flow_state_bytes(concurrent_keys: int, model: str = "ewma") -> int:
    """Working set of the equivalent per-flow pipeline.

    Per-flow forecasting needs the same number of *summaries* as the
    sketch pipeline, but each summary is a table over every live key.
    """
    if concurrent_keys < 0:
        raise ValueError(f"concurrent_keys must be >= 0, got {concurrent_keys}")
    try:
        summaries = _MODEL_STATE_SUMMARIES[model]
    except KeyError:
        known = ", ".join(sorted(_MODEL_STATE_SUMMARIES))
        raise ValueError(f"unknown model {model!r}; known: {known}") from None
    return summaries * concurrent_keys * PER_FLOW_ENTRY_BYTES


def crossover_keys(depth: int, width: int, model: str = "ewma") -> int:
    """Concurrent-key count above which sketches use less memory.

    Below this the per-flow table is actually smaller (sketching tiny key
    spaces is pointless); the paper's regime -- "tens of millions" of
    signals -- sits orders of magnitude above it.
    """
    sketch = pipeline_state_bytes(depth, width, model)
    per_key = _MODEL_STATE_SUMMARIES[model] * PER_FLOW_ENTRY_BYTES
    return -(-sketch // per_key)  # ceil division


@dataclass(frozen=True)
class SpaceReport:
    """Side-by-side memory comparison for one deployment point."""

    depth: int
    width: int
    model: str
    concurrent_keys: int
    sketch_bytes: int
    per_flow_bytes: int

    @property
    def ratio(self) -> float:
        """per-flow bytes / sketch bytes (how much the sketch saves)."""
        return self.per_flow_bytes / self.sketch_bytes if self.sketch_bytes else 0.0

    def render(self) -> str:
        """One-paragraph human-readable comparison."""
        return (
            f"H={self.depth}, K={self.width}, model={self.model}, "
            f"{self.concurrent_keys:,} concurrent keys:\n"
            f"  sketch pipeline: {self.sketch_bytes / 2**20:8.2f} MiB "
            "(constant in key count)\n"
            f"  per-flow state:  {self.per_flow_bytes / 2**20:8.2f} MiB\n"
            f"  advantage:       {self.ratio:8.1f}x"
        )


def compare(
    depth: int,
    width: int,
    concurrent_keys: int,
    model: str = "ewma",
    family: str = "tabulation",
) -> SpaceReport:
    """Build a :class:`SpaceReport` for one deployment point."""
    return SpaceReport(
        depth=depth,
        width=width,
        model=model,
        concurrent_keys=concurrent_keys,
        sketch_bytes=pipeline_state_bytes(depth, width, model, family),
        per_flow_bytes=per_flow_state_bytes(concurrent_keys, model),
    )
