"""Time-series forecasting models operating on linear stream summaries.

The paper's key architectural move (Section 3.2): because every forecast
model it considers computes a **linear combination of past observations**
(and past forecasts/errors, which are themselves linear in past
observations), the models can be run directly on sketches.  The forecast of
the sketches equals the sketch of the per-flow forecasts.

Implemented models -- the paper's six:

=============  =======================================  =================
Name           Class                                    Parameters
=============  =======================================  =================
``ma``         :class:`MovingAverageForecaster`         window ``W``
``sma``        :class:`SShapedMovingAverageForecaster`  window ``W``
``ewma``       :class:`EWMAForecaster`                  ``alpha``
``nshw``       :class:`HoltWintersForecaster`           ``alpha, beta``
``arima0``     :class:`ArimaForecaster` (d=0)           ``ar, ma, d=0``
``arima1``     :class:`ArimaForecaster` (d=1)           ``ar, ma, d=1``
=============  =======================================  =================

plus :class:`SeasonalHoltWintersForecaster` (additive seasonality), listed
by the paper as the natural extension for diurnal traffic.

Every forecaster is *state-agnostic*: observations may be
:class:`~repro.sketch.kary.KArySketch`, exact
:class:`~repro.sketch.exact.DictVector`, plain NumPy arrays, or floats --
anything supporting ``+``, ``-`` and scalar ``*``.
"""

from repro.forecast.arima import (
    ArimaForecaster,
    ArimaOrder,
    is_invertible,
    is_stationary,
)
from repro.forecast.base import Forecaster, ForecastStep
from repro.forecast.fitting import (
    ArmaFit,
    fit_ar,
    fit_arima,
    fit_arma,
    fit_ewma,
    fit_holt_winters,
)
from repro.forecast.holtwinters import (
    HoltWintersForecaster,
    SeasonalHoltWintersForecaster,
)
from repro.forecast.model_zoo import (
    MODEL_NAMES,
    default_parameters,
    make_forecaster,
)
from repro.forecast.smoothing import (
    EWMAForecaster,
    MovingAverageForecaster,
    SShapedMovingAverageForecaster,
    sma_weights,
)
from repro.forecast.vectorized import (
    VECTORIZABLE_MODELS,
    forecast_first_index,
    stack_errors,
    stack_forecasts,
)

__all__ = [
    "ArimaForecaster",
    "ArimaOrder",
    "ArmaFit",
    "fit_ar",
    "fit_arima",
    "fit_arma",
    "fit_ewma",
    "fit_holt_winters",
    "EWMAForecaster",
    "ForecastStep",
    "Forecaster",
    "HoltWintersForecaster",
    "MODEL_NAMES",
    "MovingAverageForecaster",
    "SShapedMovingAverageForecaster",
    "SeasonalHoltWintersForecaster",
    "VECTORIZABLE_MODELS",
    "default_parameters",
    "forecast_first_index",
    "stack_errors",
    "stack_forecasts",
    "is_invertible",
    "is_stationary",
    "make_forecaster",
    "sma_weights",
]
