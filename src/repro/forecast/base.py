"""Forecaster protocol shared by all six models.

Timing convention (matches the paper's Section 2.2): at the start of
interval ``t`` the forecaster produces ``Sf(t)`` from observations
``So(1..t-1)``; the observed summary ``So(t)`` then arrives and the error is
``Se(t) = So(t) - Sf(t)``.  The :meth:`Forecaster.step` helper packages this
hand-shake; during warm-up the forecast (and hence the error) is ``None``.

Forecasters are *state-agnostic*: every operation they perform on an
observation is a linear-space operation (``+``, ``-``, scalar ``*``), so
the same object works over sketches, exact vectors, NumPy arrays or plain
floats.  This is not an implementation convenience -- it is the paper's
central claim, and the test suite verifies it by checking that
``forecast(sketch(stream)) == sketch(forecast(stream))`` cell for cell.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Generic, Iterable, Iterator, List, Optional, TypeVar

State = TypeVar("State")


def combine_terms(terms: List[tuple]) -> Any:
    """``sum(c * s for c, s in terms)`` with one fused COMBINE when possible.

    Summaries implementing ``_linear_combination`` (sketches, exact/dense
    tables) evaluate the whole combination in a single pass with one
    result allocation; everything else (floats, plain arrays) falls back
    to the chained operator expression.  Both paths multiply each term
    once and add left-to-right, so the result is bit-identical either
    way -- model update rules can fuse without changing a single float.
    """
    head_coeff, head = terms[0]
    if hasattr(head, "_linear_combination"):
        return head._linear_combination([(float(c), s) for c, s in terms])
    acc = head * head_coeff
    for coeff, state in terms[1:]:
        acc = acc + state * coeff
    return acc


@dataclass
class ForecastStep(Generic[State]):
    """One interval's worth of pipeline output.

    Attributes
    ----------
    index:
        0-based interval index.
    observed:
        ``So(t)``, the summary observed during the interval.
    forecast:
        ``Sf(t)``, or ``None`` while the model is warming up.
    error:
        ``Se(t) = So(t) - Sf(t)``, or ``None`` during warm-up.
    """

    index: int
    observed: State
    forecast: Optional[State]
    error: Optional[State]

    @property
    def in_warmup(self) -> bool:
        """True when the model had not yet produced a forecast."""
        return self.forecast is None


class Forecaster(abc.ABC):
    """Streaming one-step-ahead forecaster over a linear state space."""

    def __init__(self) -> None:
        self._t = 0  # number of observations consumed

    @property
    def observations_seen(self) -> int:
        """How many observations have been consumed so far."""
        return self._t

    @abc.abstractmethod
    def forecast(self) -> Optional[Any]:
        """Return ``Sf`` for the upcoming interval, or ``None`` in warm-up.

        Must not mutate state: calling twice returns the same value.
        """

    @abc.abstractmethod
    def _consume(self, observed: Any) -> None:
        """Fold the newest observation into model state."""

    def observe(self, observed: Any) -> None:
        """Feed the observed summary for the interval just ended."""
        self._consume(observed)
        self._t += 1

    def step(self, observed: Any) -> ForecastStep:
        """Forecast, then observe: one full interval hand-shake."""
        index = self._t
        predicted = self.forecast()
        error = None if predicted is None else observed - predicted
        self.observe(observed)
        return ForecastStep(index=index, observed=observed, forecast=predicted, error=error)

    def forecast_into(self, out: Any) -> Optional[Any]:
        """:meth:`forecast`, materialized into ``out`` when possible.

        Models whose forecast is a fresh linear combination (MA, SMA,
        seasonal HW, differenced ARIMA) overwrite ``out`` via its
        ``combine_into`` and return it; models that store the forecast as
        state (EWMA, NSHW) return that state directly.  Either way the
        caller must treat the result as **read-only** -- it may be internal
        model state.  Returns ``None`` in warm-up.  The base implementation
        (and any model handed an ``out`` without ``combine_into``) falls
        back to the allocating :meth:`forecast`.
        """
        return self.forecast()

    def step_into(
        self,
        observed: Any,
        error_out: Optional[Any] = None,
        forecast_out: Optional[Any] = None,
    ) -> ForecastStep:
        """:meth:`step` with caller-provided scratch summaries.

        ``error_out`` / ``forecast_out`` are reusable summaries (same
        schema as ``observed``, exposing ``combine_into``) that receive
        ``Se(t)`` and ``Sf(t)`` in place, so the seal path of a long-running
        session allocates no fresh tables per interval.  They must be two
        distinct objects, reserved for this call: the returned step aliases
        them, so the caller must consume the step before the next
        ``step_into``.  Results are value-identical to :meth:`step`
        (same floats; only the sign of exact-zero cells may differ).
        ``observed`` is consumed exactly as :meth:`step` does -- models
        retain it in their state, so it must NOT be a reused scratch.
        """
        if error_out is not None and error_out is forecast_out:
            raise ValueError("error_out and forecast_out must be distinct")
        index = self._t
        if forecast_out is not None and hasattr(forecast_out, "combine_into"):
            predicted = self.forecast_into(forecast_out)
        else:
            predicted = self.forecast()
        if predicted is None:
            error = None
        elif (
            error_out is not None
            and hasattr(error_out, "combine_into")
            and error_out is not predicted
        ):
            error = error_out.combine_into([(1.0, observed), (-1.0, predicted)])
        else:
            error = observed - predicted
        self.observe(observed)
        return ForecastStep(
            index=index, observed=observed, forecast=predicted, error=error
        )

    def run(self, observations: Iterable[Any]) -> Iterator[ForecastStep]:
        """Stream :meth:`step` over an iterable of observed summaries."""
        for observed in observations:
            yield self.step(observed)

    def reset(self) -> None:
        """Restore the freshly constructed state."""
        self._t = 0
        self._reset_state()

    @abc.abstractmethod
    def _reset_state(self) -> None:
        """Clear model-specific state (history buffers, components)."""

    # -- state capture / restore (checkpointing) ---------------------------

    def get_config(self) -> dict:
        """Constructor keyword arguments that rebuild this forecaster.

        ``type(f)(**f.get_config())`` must return an equivalent (freshly
        reset) forecaster.  Together with :meth:`get_state` this is the
        model half of a session checkpoint.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement get_config()"
        )

    def get_state(self) -> dict:
        """Snapshot the full internal state as a flat dict.

        Values are restricted to what the checkpoint codec carries:
        scalars, ``None``, NumPy arrays, summaries, and lists/tuples of
        those.  The snapshot is deep enough that a restored forecaster
        continues **bit-identically**: every future :meth:`forecast` /
        :meth:`observe` matches the un-checkpointed object's.
        """
        state = self._state_dict()
        state["t"] = self._t
        return state

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot (replaces current state)."""
        state = dict(state)
        t = state.pop("t")
        self._reset_state()
        self._load_state_dict(state)
        self._t = int(t)

    def _state_dict(self) -> dict:
        """Model-specific state (everything except the shared ``t``)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement state capture"
        )

    def _load_state_dict(self, state: dict) -> None:
        """Restore model-specific state captured by :meth:`_state_dict`.

        Called on a freshly reset instance (``_reset_state`` has run).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement state restore"
        )


def collect_errors(forecaster: Forecaster, observations: Iterable[Any]) -> List[Any]:
    """Run a forecaster over a series and return the non-warm-up errors."""
    return [
        step.error for step in forecaster.run(observations) if step.error is not None
    ]
