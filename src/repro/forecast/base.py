"""Forecaster protocol shared by all six models.

Timing convention (matches the paper's Section 2.2): at the start of
interval ``t`` the forecaster produces ``Sf(t)`` from observations
``So(1..t-1)``; the observed summary ``So(t)`` then arrives and the error is
``Se(t) = So(t) - Sf(t)``.  The :meth:`Forecaster.step` helper packages this
hand-shake; during warm-up the forecast (and hence the error) is ``None``.

Forecasters are *state-agnostic*: every operation they perform on an
observation is a linear-space operation (``+``, ``-``, scalar ``*``), so
the same object works over sketches, exact vectors, NumPy arrays or plain
floats.  This is not an implementation convenience -- it is the paper's
central claim, and the test suite verifies it by checking that
``forecast(sketch(stream)) == sketch(forecast(stream))`` cell for cell.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Generic, Iterable, Iterator, List, Optional, TypeVar

State = TypeVar("State")


@dataclass
class ForecastStep(Generic[State]):
    """One interval's worth of pipeline output.

    Attributes
    ----------
    index:
        0-based interval index.
    observed:
        ``So(t)``, the summary observed during the interval.
    forecast:
        ``Sf(t)``, or ``None`` while the model is warming up.
    error:
        ``Se(t) = So(t) - Sf(t)``, or ``None`` during warm-up.
    """

    index: int
    observed: State
    forecast: Optional[State]
    error: Optional[State]

    @property
    def in_warmup(self) -> bool:
        """True when the model had not yet produced a forecast."""
        return self.forecast is None


class Forecaster(abc.ABC):
    """Streaming one-step-ahead forecaster over a linear state space."""

    def __init__(self) -> None:
        self._t = 0  # number of observations consumed

    @property
    def observations_seen(self) -> int:
        """How many observations have been consumed so far."""
        return self._t

    @abc.abstractmethod
    def forecast(self) -> Optional[Any]:
        """Return ``Sf`` for the upcoming interval, or ``None`` in warm-up.

        Must not mutate state: calling twice returns the same value.
        """

    @abc.abstractmethod
    def _consume(self, observed: Any) -> None:
        """Fold the newest observation into model state."""

    def observe(self, observed: Any) -> None:
        """Feed the observed summary for the interval just ended."""
        self._consume(observed)
        self._t += 1

    def step(self, observed: Any) -> ForecastStep:
        """Forecast, then observe: one full interval hand-shake."""
        index = self._t
        predicted = self.forecast()
        error = None if predicted is None else observed - predicted
        self.observe(observed)
        return ForecastStep(index=index, observed=observed, forecast=predicted, error=error)

    def run(self, observations: Iterable[Any]) -> Iterator[ForecastStep]:
        """Stream :meth:`step` over an iterable of observed summaries."""
        for observed in observations:
            yield self.step(observed)

    def reset(self) -> None:
        """Restore the freshly constructed state."""
        self._t = 0
        self._reset_state()

    @abc.abstractmethod
    def _reset_state(self) -> None:
        """Clear model-specific state (history buffers, components)."""

    # -- state capture / restore (checkpointing) ---------------------------

    def get_config(self) -> dict:
        """Constructor keyword arguments that rebuild this forecaster.

        ``type(f)(**f.get_config())`` must return an equivalent (freshly
        reset) forecaster.  Together with :meth:`get_state` this is the
        model half of a session checkpoint.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement get_config()"
        )

    def get_state(self) -> dict:
        """Snapshot the full internal state as a flat dict.

        Values are restricted to what the checkpoint codec carries:
        scalars, ``None``, NumPy arrays, summaries, and lists/tuples of
        those.  The snapshot is deep enough that a restored forecaster
        continues **bit-identically**: every future :meth:`forecast` /
        :meth:`observe` matches the un-checkpointed object's.
        """
        state = self._state_dict()
        state["t"] = self._t
        return state

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot (replaces current state)."""
        state = dict(state)
        t = state.pop("t")
        self._reset_state()
        self._load_state_dict(state)
        self._t = int(t)

    def _state_dict(self) -> dict:
        """Model-specific state (everything except the shared ``t``)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement state capture"
        )

    def _load_state_dict(self, state: dict) -> None:
        """Restore model-specific state captured by :meth:`_state_dict`.

        Called on a freshly reset instance (``_reset_state`` has run).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement state restore"
        )


def collect_errors(forecaster: Forecaster, observations: Iterable[Any]) -> List[Any]:
    """Run a forecaster over a series and return the non-warm-up errors."""
    return [
        step.error for step in forecaster.run(observations) if step.error is not None
    ]
