"""Registry mapping the paper's model names to forecaster factories.

The evaluation refers to models by the paper's shorthand: ``ma``, ``sma``,
``ewma``, ``nshw``, ``arima0`` and ``arima1``.  :func:`make_forecaster`
builds a configured forecaster from a name plus keyword parameters, and
:func:`default_parameters` supplies sane mid-range defaults used when grid
search is skipped.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.forecast.arima import ArimaForecaster
from repro.forecast.base import Forecaster
from repro.forecast.holtwinters import (
    HoltWintersForecaster,
    SeasonalHoltWintersForecaster,
)
from repro.forecast.smoothing import (
    EWMAForecaster,
    MovingAverageForecaster,
    SShapedMovingAverageForecaster,
)

#: The six models evaluated by the paper, in its order.
MODEL_NAMES = ("ma", "sma", "ewma", "nshw", "arima0", "arima1")

_FACTORIES: Dict[str, Callable[..., Forecaster]] = {
    "ma": lambda window=5, **kw: MovingAverageForecaster(window=int(window), **kw),
    "sma": lambda window=5, **kw: SShapedMovingAverageForecaster(window=int(window), **kw),
    "ewma": lambda alpha=0.5, **kw: EWMAForecaster(alpha=alpha, **kw),
    "nshw": lambda alpha=0.5, beta=0.2, **kw: HoltWintersForecaster(
        alpha=alpha, beta=beta, **kw
    ),
    "arima0": lambda ar=(0.5,), ma=(), **kw: ArimaForecaster(ar=ar, ma=ma, d=0, **kw),
    "arima1": lambda ar=(0.3,), ma=(0.3,), **kw: ArimaForecaster(ar=ar, ma=ma, d=1, **kw),
    "shw": lambda alpha=0.5, beta=0.2, gamma=0.3, period=12, **kw: (
        SeasonalHoltWintersForecaster(
            alpha=alpha, beta=beta, gamma=gamma, period=int(period), **kw
        )
    ),
}

_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "ma": {"window": 5},
    "sma": {"window": 5},
    "ewma": {"alpha": 0.5},
    "nshw": {"alpha": 0.5, "beta": 0.2},
    "arima0": {"ar": (0.5,), "ma": ()},
    "arima1": {"ar": (0.3,), "ma": (0.3,)},
    "shw": {"alpha": 0.5, "beta": 0.2, "gamma": 0.3, "period": 12},
}


def make_forecaster(name: str, **params: Any) -> Forecaster:
    """Construct a forecaster by paper model name.

    Parameters not supplied fall back to the factory defaults; unknown
    names raise ``ValueError`` listing the registry.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise ValueError(f"unknown model {name!r}; known models: {known}") from None
    return factory(**params)


def default_parameters(name: str) -> Dict[str, Any]:
    """Mid-range default parameters for a model (copy; safe to mutate)."""
    try:
        return dict(_DEFAULTS[name])
    except KeyError:
        known = ", ".join(sorted(_DEFAULTS))
        raise ValueError(f"unknown model {name!r}; known models: {known}") from None
