"""ARIMA forecasting over linear states (paper Section 3.2.2).

The paper restricts to the orders that matter in practice:

* ``ARIMA0``: ``(p <= 2, d = 0, q <= 2)``
* ``ARIMA1``: ``(p <= 2, d = 1, q <= 2)``

with MA/AR coefficients in ``[-2, 2]`` subject to the model being
*stationary* and *invertible*.  (The paper's displayed equation swaps the
conventional names of the AR and MA coefficient symbols; we use the
standard Box-Jenkins convention below.)

One-step-ahead forecasting of the differenced series
``Z_t = (1 - B)^d S_t``:

    ``Zhat_t = sum_{j=1..p} phi_j Z_{t-j} - sum_{i=1..q} theta_i e_{t-i}``

with innovations ``e_s = Z_s - Zhat_s`` (taken as the zero state before the
model has produced forecasts -- conditional least-squares style).  The
forecast is then undifferenced: for ``d = 1``,
``Sf(t) = S(t-1) + Zhat_t``.

Every operation is linear in past observations, so the recursion runs
unchanged on sketches, exact vectors, arrays or floats.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.forecast.base import Forecaster, combine_terms


def _char_roots(coeffs: Sequence[float]) -> np.ndarray:
    """Roots of ``1 - c1 z - c2 z**2 - ...`` (lag-polynomial convention)."""
    poly = [1.0] + [-float(c) for c in coeffs]
    # Strip trailing zero coefficients so np.roots sees the true degree.
    while len(poly) > 1 and poly[-1] == 0.0:
        poly.pop()
    if len(poly) == 1:
        return np.array([])
    # np.roots wants highest degree first.
    return np.roots(poly[::-1])


def is_stationary(ar: Sequence[float], tolerance: float = 1e-9) -> bool:
    """True when the AR lag polynomial has all roots outside the unit circle."""
    roots = _char_roots(ar)
    return bool(np.all(np.abs(roots) > 1.0 + tolerance)) if roots.size else True


def is_invertible(ma: Sequence[float], tolerance: float = 1e-9) -> bool:
    """True when the MA lag polynomial has all roots outside the unit circle."""
    roots = _char_roots(ma)
    return bool(np.all(np.abs(roots) > 1.0 + tolerance)) if roots.size else True


@dataclass(frozen=True)
class ArimaOrder:
    """An ``(p, d, q)`` order in Box-Jenkins notation."""

    p: int
    d: int
    q: int

    def __post_init__(self) -> None:
        if self.p < 0 or self.d < 0 or self.q < 0:
            raise ValueError(f"orders must be non-negative, got {self}")

    @property
    def min_history(self) -> int:
        """Observations required before the first forecast.

        ``d`` observations are consumed by differencing; ``p`` more provide
        AR lags.  Pure-MA models (``p = 0``) still need one differenced
        sample so the innovation recursion has something to chew on.
        """
        return self.d + max(self.p, 1)


class ArimaForecaster(Forecaster):
    """ARIMA(p, d, q) with fixed coefficients, over any linear state space.

    Parameters
    ----------
    ar:
        AR coefficients ``phi_1..phi_p`` (may be empty).
    ma:
        MA coefficients ``theta_1..theta_q`` (may be empty).
    d:
        Number of differencing passes (0 or 1 in the paper).
    check_admissible:
        When true (default), reject non-stationary or non-invertible
        coefficient choices -- the paper's "necessary but insufficient"
        range check ``[-2, 2]`` is also enforced implicitly by this.
    """

    def __init__(
        self,
        ar: Sequence[float] = (),
        ma: Sequence[float] = (),
        d: int = 0,
        check_admissible: bool = True,
    ) -> None:
        super().__init__()
        self.ar = tuple(float(c) for c in ar)
        self.ma = tuple(float(c) for c in ma)
        self.order = ArimaOrder(p=len(self.ar), d=int(d), q=len(self.ma))
        if check_admissible:
            if not is_stationary(self.ar):
                raise ValueError(f"AR coefficients {self.ar} are not stationary")
            if not is_invertible(self.ma):
                raise ValueError(f"MA coefficients {self.ma} are not invertible")
        # Raw observation lags needed for differencing (d of them).
        self._raw: deque = deque(maxlen=max(self.order.d, 1))
        # Differenced-series lags Z_{t-1}, ... (newest last).
        self._z: deque = deque(maxlen=max(self.order.p, 1))
        # Innovation lags e_{t-1}, ... (newest last).
        self._errors: deque = deque(maxlen=max(self.order.q, 1))
        self._pending_forecast_z: Optional[Any] = None
        self._zero: Optional[Any] = None  # the zero element of the state space

    # -- helpers -----------------------------------------------------------

    def _difference(self, observed: Any) -> Optional[Any]:
        """Return ``Z_t`` from the raw observation, or ``None`` early on."""
        if self.order.d == 0:
            return observed
        # d == 1 (the paper's maximum): Z_t = S_t - S_{t-1}.
        if not self._raw:
            return None
        return observed - self._raw[-1]

    def _forecast_z(self) -> Optional[Any]:
        """One-step forecast of the differenced series, or ``None``."""
        if len(self._z) < self.order.p or (self.order.p == 0 and not self._z):
            return None
        terms = [(1.0, self._zero)]
        z_list = list(self._z)
        for j, phi in enumerate(self.ar, start=1):
            terms.append((phi, z_list[-j]))
        err_list = list(self._errors)
        for i, theta in enumerate(self.ma, start=1):
            if i <= len(err_list):
                terms.append((-theta, err_list[-i]))
        return combine_terms(terms)

    # -- Forecaster interface ----------------------------------------------

    def forecast(self) -> Optional[Any]:
        if self._pending_forecast_z is None:
            return None
        if self.order.d == 0:
            return self._pending_forecast_z
        # Undifference: Sf(t) = S(t-1) + Zhat_t.
        return self._raw[-1] + self._pending_forecast_z

    def forecast_into(self, out: Any) -> Optional[Any]:
        if self._pending_forecast_z is None:
            return None
        if self.order.d == 0:
            # The forecast *is* stored state; no combination to materialize.
            return self._pending_forecast_z
        if not hasattr(out, "combine_into"):
            return self.forecast()
        return out.combine_into(
            [(1.0, self._raw[-1]), (1.0, self._pending_forecast_z)]
        )

    def _consume(self, observed: Any) -> None:
        if self._zero is None:
            self._zero = observed * 0.0
        z = self._difference(observed)
        if z is not None:
            # Record the innovation for the forecast we just scored.
            if self._pending_forecast_z is not None:
                self._errors.append(z - self._pending_forecast_z)
            else:
                self._errors.append(self._zero)
            self._z.append(z)
        if self.order.d:
            self._raw.append(observed)
        # Prepare the forecast for the *next* interval.
        self._pending_forecast_z = self._forecast_z()

    def _reset_state(self) -> None:
        self._raw.clear()
        self._z.clear()
        self._errors.clear()
        self._pending_forecast_z = None
        self._zero = None

    def get_config(self) -> dict:
        return {"ar": self.ar, "ma": self.ma, "d": self.order.d}

    def _state_dict(self) -> dict:
        return {
            "raw": list(self._raw),
            "z": list(self._z),
            "errors": list(self._errors),
            "pending_forecast_z": self._pending_forecast_z,
            "zero": self._zero,
        }

    def _load_state_dict(self, state: dict) -> None:
        self._raw.extend(state["raw"])
        self._z.extend(state["z"])
        self._errors.extend(state["errors"])
        self._pending_forecast_z = state["pending_forecast_z"]
        self._zero = state["zero"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArimaForecaster(ar={self.ar}, ma={self.ma}, d={self.order.d})"
        )
