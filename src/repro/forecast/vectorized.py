"""Whole-series forecast recursions over a sketch tensor.

The per-object :class:`~repro.forecast.base.Forecaster` protocol steps one
interval at a time, allocating fresh summaries for every linear
combination.  The smoothing-family models (MA, SMA, EWMA, NSHW) have
recursions simple enough to *lift onto the stack*: given a ``(T, H, K)``
tensor of observed tables (a :class:`~repro.sketch.stack.SketchStack` or a
raw ndarray of any ``(T, ...)`` state shape), the functions here produce
the full ``Sf``/``Se`` series with whole-tensor NumPy ops and no per-step
object churn.

Every recursion is an operation-for-operation transliteration of the
corresponding forecaster (same term order, same scalar factors), so the
output is **bit-identical** to running the per-object model over the same
states -- the property the equivalence tests assert and the batched grid
search objective relies on.

ARIMA is intentionally absent: its error-feedback recursion cannot be
expressed as a fixed whole-series stencil, so it keeps the per-object path
(optionally fanned out over processes by ``grid_search(n_jobs=...)``).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.forecast.smoothing import sma_weights

#: Models the stack engine can vectorize end-to-end.
VECTORIZABLE_MODELS = ("ma", "sma", "ewma", "nshw")


def forecast_first_index(model: str, **params) -> int:
    """Index ``t`` of the first non-warm-up forecast ``Sf(t)``."""
    if model in ("ma", "sma"):
        return int(params["window"])
    if model == "ewma":
        return 1
    if model == "nshw":
        return 2
    raise ValueError(
        f"model {model!r} is not vectorizable; expected one of "
        f"{VECTORIZABLE_MODELS}"
    )


def _as_state_stack(observed) -> np.ndarray:
    """Coerce a SketchStack / sequence-of-sketches / ndarray to ``(T, ...)``."""
    tables = getattr(observed, "tables", None)
    if tables is not None:
        return np.asarray(tables)
    if isinstance(observed, np.ndarray):
        return observed
    first = observed[0]
    if hasattr(first, "table"):
        return np.stack([np.asarray(s.table) for s in observed])
    return np.asarray(observed, dtype=np.float64)


def _ma_forecasts(tables: np.ndarray, window: int) -> np.ndarray:
    t_len = tables.shape[0]
    count = max(t_len - window, 0)
    if count == 0:
        return np.empty((0,) + tables.shape[1:], dtype=np.float64)
    # Reference: acc = h[0]*(1/W); acc = acc + h[i]*(1/W) oldest-to-newest.
    scaled = tables * (1.0 / window)
    out = scaled[0:count].copy()
    for i in range(1, window):
        out += scaled[i : count + i]
    return out


def _sma_forecasts(tables: np.ndarray, window: int) -> np.ndarray:
    t_len = tables.shape[0]
    count = max(t_len - window, 0)
    if count == 0:
        return np.empty((0,) + tables.shape[1:], dtype=np.float64)
    weights = sma_weights(window)
    norm = sum(weights)
    # Reference accumulates newest-first: lag 1 gets weights[0].
    out = tables[window - 1 : t_len - 1] * (weights[0] / norm)
    for lag in range(2, window + 1):
        out += tables[window - lag : t_len - lag] * (weights[lag - 1] / norm)
    return out


def _ewma_forecasts(tables: np.ndarray, alpha: float) -> np.ndarray:
    t_len = tables.shape[0]
    count = max(t_len - 1, 0)
    out = np.empty((count,) + tables.shape[1:], dtype=np.float64)
    if count == 0:
        return out
    one_minus = 1.0 - alpha
    out[0] = tables[0]  # Sf(2) = So(1)
    for t in range(1, count):
        # Sf = So*alpha + Sf_prev*(1-alpha), in exactly this term order.
        np.multiply(tables[t], alpha, out=out[t])
        out[t] += out[t - 1] * one_minus
    return out


def _nshw_forecasts(tables: np.ndarray, alpha: float, beta: float) -> np.ndarray:
    t_len = tables.shape[0]
    count = max(t_len - 2, 0)
    out = np.empty((count,) + tables.shape[1:], dtype=np.float64)
    if count == 0:
        return out
    one_minus_a = 1.0 - alpha
    one_minus_b = 1.0 - beta
    smooth = tables[0].copy()          # Ss(2) = So(1)
    trend = tables[1] - tables[0]      # St(2) = So(2) - So(1)
    np.add(smooth, trend, out=out[0])  # Sf(2) (recursion seed; scored at t=2)
    for t in range(2, t_len - 1):
        forecast = out[t - 2]
        # new_smooth = So*alpha + Sf*(1-alpha), same order as the forecaster.
        new_smooth = tables[t] * alpha
        new_smooth += forecast * one_minus_a
        # trend = (new_smooth - smooth)*beta + trend*(1-beta); the two terms
        # commute bitwise under IEEE addition.
        trend *= one_minus_b
        trend += (new_smooth - smooth) * beta
        smooth = new_smooth
        np.add(smooth, trend, out=out[t - 1])
    return out


def stack_forecasts(model: str, observed, **params) -> Tuple[int, np.ndarray]:
    """All non-warm-up forecasts of ``model`` over a state stack.

    Parameters
    ----------
    model:
        One of :data:`VECTORIZABLE_MODELS`.
    observed:
        ``SketchStack``, sequence of same-schema sketches, or ndarray whose
        leading axis is time.
    params:
        Model parameters (``window`` / ``alpha`` / ``beta``).

    Returns
    -------
    ``(first_index, forecasts)`` where ``forecasts[i]`` is ``Sf(t)`` for
    ``t = first_index + i``, bit-identical to the per-object forecaster.
    """
    tables = _as_state_stack(observed)
    # The in-place recursions need array (not scalar) time slices; lift a
    # plain scalar series to (T, 1) and squeeze back at the end.
    squeeze = tables.ndim == 1
    if squeeze:
        tables = tables[:, None]
    first = forecast_first_index(model, **params)
    if model == "ma":
        forecasts = _ma_forecasts(tables, int(params["window"]))
    elif model == "sma":
        forecasts = _sma_forecasts(tables, int(params["window"]))
    elif model == "ewma":
        forecasts = _ewma_forecasts(tables, float(params["alpha"]))
    else:
        forecasts = _nshw_forecasts(
            tables, float(params["alpha"]), float(params["beta"])
        )
    return first, forecasts[:, 0] if squeeze else forecasts


def stack_errors(model: str, observed, **params) -> Tuple[int, np.ndarray]:
    """All non-warm-up forecast errors ``Se(t) = So(t) - Sf(t)``.

    Same contract as :func:`stack_forecasts`; the subtraction happens in
    place on the forecast buffer, so this allocates nothing extra.
    """
    tables = _as_state_stack(observed)
    first, forecasts = stack_forecasts(model, tables, **params)
    np.subtract(tables[first : first + forecasts.shape[0]], forecasts,
                out=forecasts)
    return first, forecasts
