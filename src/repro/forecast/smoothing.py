"""Simple smoothing forecast models: MA, SMA, EWMA (paper Section 3.2.1)."""

from __future__ import annotations

from collections import deque
from typing import Any, List, Optional

from repro.forecast.base import Forecaster, combine_terms


class MovingAverageForecaster(Forecaster):
    """Moving average (MA): equal weight to the last ``W`` observations.

    ``Sf(t) = (1/W) * sum_{i=1..W} So(t-i)``.

    (The paper's displayed equation averages past *forecasts*; that is a
    well-known typo in the text -- equal weights "to all past samples" as
    the prose says -- so we average past observations, the standard MA.)

    The first forecast is produced once ``W`` observations are available.
    """

    def __init__(self, window: int) -> None:
        super().__init__()
        if window < 1:
            raise ValueError(f"window W must be >= 1, got {window}")
        self.window = int(window)
        self._history: deque = deque(maxlen=self.window)

    def forecast(self) -> Optional[Any]:
        if len(self._history) < self.window:
            return None
        acc = self._history[0] * (1.0 / self.window)
        for state in list(self._history)[1:]:
            acc = acc + state * (1.0 / self.window)
        return acc

    def forecast_into(self, out: Any) -> Optional[Any]:
        if len(self._history) < self.window:
            return None
        if not hasattr(out, "combine_into"):
            return self.forecast()
        weight = 1.0 / self.window
        return out.combine_into([(weight, state) for state in self._history])

    def _consume(self, observed: Any) -> None:
        self._history.append(observed)

    def _reset_state(self) -> None:
        self._history.clear()

    def get_config(self) -> dict:
        return {"window": self.window}

    def _state_dict(self) -> dict:
        return {"history": list(self._history)}

    def _load_state_dict(self, state: dict) -> None:
        self._history.extend(state["history"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MovingAverageForecaster(window={self.window})"


def sma_weights(window: int) -> List[float]:
    """S-shaped moving-average weights for lags ``1..window`` (1 = newest).

    The paper uses "a subclass that gives equal weights to the most recent
    half of the window, and linearly decayed weights for the earlier half",
    citing the TFRC loss-interval weighting of Floyd et al. [19].  For
    ``window = 8`` this yields ``[1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2]``.
    """
    if window < 1:
        raise ValueError(f"window W must be >= 1, got {window}")
    recent_half = (window + 1) // 2
    decay_steps = window - recent_half
    weights = [1.0] * recent_half
    for step in range(1, decay_steps + 1):
        weights.append(1.0 - step / (decay_steps + 1.0))
    return weights


class SShapedMovingAverageForecaster(Forecaster):
    """S-shaped moving average (SMA): TFRC-style decaying weights.

    ``Sf(t) = sum_i w_i So(t-i) / sum_i w_i`` with :func:`sma_weights`.
    """

    def __init__(self, window: int) -> None:
        super().__init__()
        if window < 1:
            raise ValueError(f"window W must be >= 1, got {window}")
        self.window = int(window)
        self.weights = sma_weights(self.window)
        self._norm = sum(self.weights)
        self._history: deque = deque(maxlen=self.window)

    def forecast(self) -> Optional[Any]:
        if len(self._history) < self.window:
            return None
        # history[-1] is the newest observation = lag 1.
        states = list(self._history)
        acc = None
        for lag, weight in enumerate(self.weights, start=1):
            term = states[-lag] * (weight / self._norm)
            acc = term if acc is None else acc + term
        return acc

    def forecast_into(self, out: Any) -> Optional[Any]:
        if len(self._history) < self.window:
            return None
        if not hasattr(out, "combine_into"):
            return self.forecast()
        states = list(self._history)
        return out.combine_into(
            [
                (weight / self._norm, states[-lag])
                for lag, weight in enumerate(self.weights, start=1)
            ]
        )

    def _consume(self, observed: Any) -> None:
        self._history.append(observed)

    def _reset_state(self) -> None:
        self._history.clear()

    def get_config(self) -> dict:
        return {"window": self.window}

    def _state_dict(self) -> dict:
        return {"history": list(self._history)}

    def _load_state_dict(self, state: dict) -> None:
        self._history.extend(state["history"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SShapedMovingAverageForecaster(window={self.window})"


class EWMAForecaster(Forecaster):
    """Exponentially weighted moving average (EWMA).

    ``Sf(t) = alpha * So(t-1) + (1 - alpha) * Sf(t-1)`` for ``t > 2``, and
    ``Sf(2) = So(1)`` (the paper's initialization).  ``alpha`` in ``[0, 1]``
    weighs new samples against history.
    """

    def __init__(self, alpha: float) -> None:
        super().__init__()
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._forecast: Optional[Any] = None

    def forecast(self) -> Optional[Any]:
        return self._forecast

    def _consume(self, observed: Any) -> None:
        if self._forecast is None:
            # Sf(2) = So(1)
            self._forecast = observed
        else:
            self._forecast = combine_terms(
                [(self.alpha, observed), (1.0 - self.alpha, self._forecast)]
            )

    def _reset_state(self) -> None:
        self._forecast = None

    def get_config(self) -> dict:
        return {"alpha": self.alpha}

    def _state_dict(self) -> dict:
        return {"forecast": self._forecast}

    def _load_state_dict(self, state: dict) -> None:
        self._forecast = state["forecast"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EWMAForecaster(alpha={self.alpha})"
