"""Classical coefficient estimation for the forecast models.

Grid search (Section 3.4.2) is the paper's parameter-selection mechanism
because it runs on *sketch energies* without per-flow state.  When a real
scalar series is available (a single key's history, SNMP counters, total
traffic), the Box-Jenkins estimators the paper cites are the right tool;
this module implements them with NumPy only:

* :func:`fit_ar` -- Yule-Walker equations for pure AR(p).
* :func:`fit_arma` -- Hannan-Rissanen two-stage regression for ARMA(p, q).
* :func:`fit_arima` -- differencing + :func:`fit_arma` (+ admissibility
  projection), returning a ready :class:`~repro.forecast.arima.ArimaForecaster`.
* :func:`fit_ewma` / :func:`fit_holt_winters` -- one-dimensional /
  two-dimensional least-squares sweeps for the smoothing constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.analysis.timeseries import acf, difference
from repro.forecast.arima import ArimaForecaster, is_invertible, is_stationary
from repro.forecast.holtwinters import HoltWintersForecaster
from repro.forecast.smoothing import EWMAForecaster


def _as_series(x) -> np.ndarray:
    series = np.asarray(x, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {series.shape}")
    return series


@dataclass(frozen=True)
class ArmaFit:
    """Estimated ARMA coefficients with fit diagnostics."""

    ar: Tuple[float, ...]
    ma: Tuple[float, ...]
    sigma2: float          # innovation variance estimate
    n_observations: int

    @property
    def admissible(self) -> bool:
        """Stationary AND invertible."""
        return is_stationary(self.ar) and is_invertible(self.ma)


def fit_ar(x, p: int) -> ArmaFit:
    """Yule-Walker estimation of AR(p) coefficients.

    Solves ``R phi = r`` where ``R`` is the Toeplitz matrix of sample
    autocorrelations.  Yule-Walker estimates are always stationary for a
    positive-definite sample ACF (guaranteed by the biased estimator).
    """
    series = _as_series(x)
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if len(series) <= p + 1:
        raise ValueError(f"series of length {len(series)} too short for AR({p})")
    rho = acf(series, p)
    r_matrix = np.array([[rho[abs(i - j)] for j in range(p)] for i in range(p)])
    phi = np.linalg.solve(r_matrix, rho[1 : p + 1])
    variance = float(np.var(series)) * (1.0 - float(phi @ rho[1 : p + 1]))
    return ArmaFit(
        ar=tuple(float(c) for c in phi),
        ma=(),
        sigma2=max(variance, 0.0),
        n_observations=len(series),
    )


def fit_arma(x, p: int, q: int, ar_order_long: Optional[int] = None) -> ArmaFit:
    """Hannan-Rissanen two-stage estimation of ARMA(p, q).

    Stage 1 fits a long autoregression (order ``ar_order_long``, default
    ``max(p, q) + 5``) and extracts its residuals as innovation proxies.
    Stage 2 regresses the series on its own lags and the lagged residuals,
    giving the AR and MA coefficients jointly by least squares.
    """
    series = _as_series(x)
    if p < 0 or q < 0 or p + q == 0:
        raise ValueError(f"need p, q >= 0 and p + q >= 1, got p={p}, q={q}")
    if q == 0:
        return fit_ar(series, p)
    long_order = ar_order_long or (max(p, q) + 5)
    if len(series) <= long_order + max(p, q) + 2:
        raise ValueError(
            f"series of length {len(series)} too short for ARMA({p},{q})"
        )
    centered = series - series.mean()

    # Stage 1: long AR for innovation estimates.
    long_fit = fit_ar(centered, long_order)
    phi_long = np.asarray(long_fit.ar)
    innovations = np.zeros_like(centered)
    for t in range(long_order, len(centered)):
        prediction = float(phi_long @ centered[t - long_order : t][::-1])
        innovations[t] = centered[t] - prediction

    # Stage 2: regression on p lags of the series and q lags of innovations.
    start = long_order + max(p, q)
    rows = []
    targets = []
    for t in range(start, len(centered)):
        row = [centered[t - j] for j in range(1, p + 1)]
        row += [innovations[t - i] for i in range(1, q + 1)]
        rows.append(row)
        targets.append(centered[t])
    design = np.asarray(rows)
    y = np.asarray(targets)
    coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
    ar = tuple(float(c) for c in coeffs[:p])
    # Regression coefficient on e_{t-i} is +c_i; Box-Jenkins writes the MA
    # part as -theta_i e_{t-i}, so theta_i = -c_i.
    ma = tuple(float(-c) for c in coeffs[p:])
    residuals = y - design @ coeffs
    sigma2 = float(residuals @ residuals) / max(len(y) - (p + q), 1)
    return ArmaFit(ar=ar, ma=ma, sigma2=sigma2, n_observations=len(series))


def _shrink_to_admissible(fit: ArmaFit, factor: float = 0.95) -> ArmaFit:
    """Shrink coefficients toward zero until stationary and invertible.

    Geometric shrinkage keeps the coefficient *direction* (relative lag
    weights) while pulling characteristic roots outside the unit circle;
    since the all-zero model is admissible, this always terminates.
    """
    ar = np.asarray(fit.ar)
    ma = np.asarray(fit.ma)
    for _ in range(200):
        if is_stationary(tuple(ar)) and is_invertible(tuple(ma)):
            return ArmaFit(
                ar=tuple(float(c) for c in ar),
                ma=tuple(float(c) for c in ma),
                sigma2=fit.sigma2,
                n_observations=fit.n_observations,
            )
        ar = ar * factor
        ma = ma * factor
    raise RuntimeError("could not project coefficients to admissibility")


def fit_arima(
    x, p: int, d: int, q: int, enforce_admissible: bool = True
) -> ArimaForecaster:
    """Fit an ARIMA(p, d, q) and return a configured forecaster.

    Differencing is applied first; coefficients come from
    :func:`fit_arma`; inadmissible estimates (possible with short, noisy
    series) are shrunk to the admissible region when
    ``enforce_admissible`` is set.
    """
    series = _as_series(x)
    z = difference(series, d) if d else series
    fit = fit_arma(z, p, q)
    if enforce_admissible and not fit.admissible:
        fit = _shrink_to_admissible(fit)
    return ArimaForecaster(ar=fit.ar, ma=fit.ma, d=d, check_admissible=enforce_admissible)


def _sse_over_series(forecaster, series: np.ndarray) -> float:
    forecaster.reset()
    total = 0.0
    for value in series:
        step = forecaster.step(float(value))
        if step.error is not None:
            total += step.error**2
    return total


def fit_ewma(x, grid: int = 50) -> EWMAForecaster:
    """Least-squares EWMA smoothing constant over a fine alpha grid."""
    series = _as_series(x)
    if len(series) < 3:
        raise ValueError("series too short to fit EWMA")
    if grid < 2:
        raise ValueError(f"grid must be >= 2, got {grid}")
    best_alpha, best_sse = 0.5, float("inf")
    for alpha in np.linspace(0.01, 1.0, grid):
        sse = _sse_over_series(EWMAForecaster(float(alpha)), series)
        if sse < best_sse:
            best_alpha, best_sse = float(alpha), sse
    return EWMAForecaster(best_alpha)


def fit_holt_winters(x, grid: int = 15) -> HoltWintersForecaster:
    """Least-squares (alpha, beta) for non-seasonal Holt-Winters."""
    series = _as_series(x)
    if len(series) < 4:
        raise ValueError("series too short to fit Holt-Winters")
    if grid < 2:
        raise ValueError(f"grid must be >= 2, got {grid}")
    best = (0.5, 0.2)
    best_sse = float("inf")
    axis = np.linspace(0.05, 1.0, grid)
    for alpha in axis:
        for beta in axis:
            sse = _sse_over_series(
                HoltWintersForecaster(float(alpha), float(beta)), series
            )
            if sse < best_sse:
                best, best_sse = (float(alpha), float(beta)), sse
    return HoltWintersForecaster(*best)
