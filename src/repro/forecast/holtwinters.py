"""Holt-Winters forecasters: non-seasonal (paper) and seasonal (extension)."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.forecast.base import Forecaster, combine_terms


class HoltWintersForecaster(Forecaster):
    """Non-seasonal Holt-Winters (NSHW), paper Section 3.2.1.

    Maintains a smoothed level ``Ss`` and a trend ``St``:

    * ``Ss(t) = alpha * So(t-1) + (1 - alpha) * Sf(t-1)``
    * ``St(t) = beta * (Ss(t) - Ss(t-1)) + (1 - beta) * St(t-1)``
    * ``Sf(t) = Ss(t) + St(t)``

    initialized per the paper with ``Ss(2) = So(1)`` and
    ``St(2) = So(2) - So(1)``.  Since the trend initialization consumes the
    second observation, the first forecast usable for change detection is at
    ``t = 3``.
    """

    def __init__(self, alpha: float, beta: float) -> None:
        super().__init__()
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self._first: Optional[Any] = None
        self._smooth: Optional[Any] = None
        self._trend: Optional[Any] = None
        self._forecast: Optional[Any] = None

    def forecast(self) -> Optional[Any]:
        return self._forecast

    def _consume(self, observed: Any) -> None:
        if self._first is None and self._smooth is None:
            # So(1): becomes the initial level.
            self._first = observed
            return
        if self._smooth is None:
            # So(2): initialize level, trend and the t=3 forecast.
            self._smooth = self._first
            self._trend = observed - self._first
            self._first = None
            # Paper's Sf(2) = Ss(2) + St(2) = So(2); used only as the
            # recursion seed for Ss(3).
            self._forecast = self._smooth + self._trend
            return
        new_smooth = combine_terms(
            [(self.alpha, observed), (1.0 - self.alpha, self._forecast)]
        )
        delta = new_smooth - self._smooth
        self._trend = combine_terms(
            [(self.beta, delta), (1.0 - self.beta, self._trend)]
        )
        self._smooth = new_smooth
        self._forecast = self._smooth + self._trend

    def _reset_state(self) -> None:
        self._first = None
        self._smooth = None
        self._trend = None
        self._forecast = None

    def get_config(self) -> dict:
        return {"alpha": self.alpha, "beta": self.beta}

    def _state_dict(self) -> dict:
        return {
            "first": self._first,
            "smooth": self._smooth,
            "trend": self._trend,
            "forecast": self._forecast,
        }

    def _load_state_dict(self, state: dict) -> None:
        self._first = state["first"]
        self._smooth = state["smooth"]
        self._trend = state["trend"]
        self._forecast = state["forecast"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HoltWintersForecaster(alpha={self.alpha}, beta={self.beta})"


class SeasonalHoltWintersForecaster(Forecaster):
    """Additive seasonal Holt-Winters over linear states (extension).

    The paper's models are all non-seasonal; diurnal traffic has a strong
    daily cycle, and the "ongoing work" section anticipates richer models.
    This extension adds an additive seasonal component with period ``m``:

    * level:    ``L(t) = alpha * (So(t) - C(t-m)) + (1-alpha) * (L(t-1) + B(t-1))``
    * trend:    ``B(t) = beta * (L(t) - L(t-1)) + (1-beta) * B(t-1)``
    * season:   ``C(t) = gamma * (So(t) - L(t)) + (1-gamma) * C(t-m)``
    * forecast: ``Sf(t+1) = L(t) + B(t) + C(t+1-m)``

    All updates are linear in observations, so it runs on sketches.
    Initialization uses the first full season: level = mean of season one,
    trend = zero state, seasonal components = deviations from that mean.
    """

    def __init__(self, alpha: float, beta: float, gamma: float, period: int) -> None:
        super().__init__()
        for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if period < 2:
            raise ValueError(f"period must be >= 2, got {period}")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.period = int(period)
        self._bootstrap: List[Any] = []
        self._level: Optional[Any] = None
        self._trend: Optional[Any] = None
        self._season: List[Any] = []

    def forecast(self) -> Optional[Any]:
        if self._level is None:
            return None
        season_index = self._t % self.period
        return self._level + self._trend + self._season[season_index]

    def forecast_into(self, out: Any) -> Optional[Any]:
        if self._level is None:
            return None
        if not hasattr(out, "combine_into"):
            return self.forecast()
        season_index = self._t % self.period
        return out.combine_into(
            [
                (1.0, self._level),
                (1.0, self._trend),
                (1.0, self._season[season_index]),
            ]
        )

    def _consume(self, observed: Any) -> None:
        if self._level is None:
            self._bootstrap.append(observed)
            if len(self._bootstrap) == self.period:
                mean = self._bootstrap[0] * (1.0 / self.period)
                for state in self._bootstrap[1:]:
                    mean = mean + state * (1.0 / self.period)
                self._level = mean
                self._trend = mean * 0.0
                self._season = [state - mean for state in self._bootstrap]
                self._bootstrap = []
            return
        season_index = self._t % self.period
        prev_level = self._level
        deseasoned = observed - self._season[season_index]
        carried = prev_level + self._trend
        self._level = combine_terms(
            [(self.alpha, deseasoned), (1.0 - self.alpha, carried)]
        )
        delta = self._level - prev_level
        self._trend = combine_terms(
            [(self.beta, delta), (1.0 - self.beta, self._trend)]
        )
        reseasoned = observed - self._level
        self._season[season_index] = combine_terms(
            [(self.gamma, reseasoned), (1.0 - self.gamma, self._season[season_index])]
        )

    def _reset_state(self) -> None:
        self._bootstrap = []
        self._level = None
        self._trend = None
        self._season = []

    def get_config(self) -> dict:
        return {
            "alpha": self.alpha,
            "beta": self.beta,
            "gamma": self.gamma,
            "period": self.period,
        }

    def _state_dict(self) -> dict:
        return {
            "bootstrap": list(self._bootstrap),
            "level": self._level,
            "trend": self._trend,
            "season": list(self._season),
        }

    def _load_state_dict(self, state: dict) -> None:
        self._bootstrap = list(state["bootstrap"])
        self._level = state["level"]
        self._trend = state["trend"]
        self._season = list(state["season"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SeasonalHoltWintersForecaster(alpha={self.alpha}, beta={self.beta}, "
            f"gamma={self.gamma}, period={self.period})"
        )
