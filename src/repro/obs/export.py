"""Exporters: Prometheus text exposition format and JSON snapshots.

Both exporters consume only the public
:meth:`~repro.obs.registry.MetricsRegistry.collect` /
``Metric.samples()`` surface and emit deterministically ordered output
(metrics by name, series by label values), so identical registries
produce byte-identical exports -- the property the golden-file tests
pin down.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["to_prometheus_text", "to_json_dict"]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(
    names: Tuple[str, ...], values: Tuple[str, ...], extra: str = ""
) -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format (0.0.4).

    Histograms export the conventional cumulative ``_bucket`` series
    (with the implicit ``+Inf`` bound) plus ``_sum`` and ``_count``.
    """
    lines = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for label_values, value in metric.samples():
                labels = _labels_text(metric.label_names, label_values)
                lines.append(f"{metric.name}{labels} {_format_value(value)}")
        elif isinstance(metric, Histogram):
            for label_values, series in metric.samples():
                cumulative = 0
                for bound, count in zip(metric.buckets, series.counts):
                    cumulative += count
                    labels = _labels_text(
                        metric.label_names, label_values,
                        extra=f'le="{_format_value(bound)}"',
                    )
                    lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                labels = _labels_text(
                    metric.label_names, label_values, extra='le="+Inf"'
                )
                lines.append(f"{metric.name}_bucket{labels} {series.count}")
                plain = _labels_text(metric.label_names, label_values)
                lines.append(
                    f"{metric.name}_sum{plain} {_format_value(series.sum)}"
                )
                lines.append(f"{metric.name}_count{plain} {series.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json_dict(registry: MetricsRegistry) -> dict:
    """JSON-safe snapshot: ``{"metrics": {name: {kind, help, series}}}``.

    Each series entry carries its labels as a dict plus either a scalar
    ``value`` (counter/gauge) or per-bucket counts with ``sum``/``count``
    (histogram, non-cumulative buckets with the bounds alongside).
    """
    metrics = {}
    for metric in registry.collect():
        series_out = []
        if isinstance(metric, Histogram):
            for label_values, series in metric.samples():
                series_out.append({
                    "labels": dict(zip(metric.label_names, label_values)),
                    "buckets": list(series.counts),
                    "bounds": list(metric.buckets),
                    "sum": series.sum,
                    "count": series.count,
                })
        else:
            for label_values, value in metric.samples():
                series_out.append({
                    "labels": dict(zip(metric.label_names, label_values)),
                    "value": value,
                })
        metrics[metric.name] = {
            "kind": metric.kind,
            "help": metric.help,
            "series": series_out,
        }
    return {"metrics": metrics}
