"""Pipeline recorders: the obs layer's single integration surface.

Every instrumented component (sessions, detectors, engines, the grid
search) takes one ``recorder`` argument and talks to it through five
verbs -- ``count``, ``gauge``, ``observe``, ``time`` and ``event``.  Two
implementations exist:

:class:`NullRecorder`
    The default.  Every verb is a no-op and :meth:`NullRecorder.time`
    returns a shared, reusable context manager, so the disabled path
    allocates nothing and costs one attribute call per instrumentation
    point.  Components guard anything more expensive than a bare verb
    call (building label dicts, reading cache stats) behind
    ``recorder.enabled``.

:class:`PipelineRecorder`
    The real thing: verbs land in a :class:`~repro.obs.registry.MetricsRegistry`
    (metrics are created lazily on first use, so components need no
    registration ceremony), stage timings go to the
    ``repro_stage_seconds`` histogram, and :meth:`PipelineRecorder.event`
    appends structured trace events to a bounded ring buffer
    (oldest-evicted) for after-the-fact debugging of exactly the
    "why did interval 412 seal late?" questions metrics alone can't
    answer.

Recorders are execution observers, never result state: a checkpoint
does not carry one, and attaching or detaching a recorder must not
change a single bit of any detection report (tests assert this across
the full model/topology matrix).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Optional

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
)

__all__ = ["NullRecorder", "PipelineRecorder", "NULL_RECORDER"]

#: Histogram receiving every stage timing, labelled by stage name.
STAGE_HISTOGRAM = "repro_stage_seconds"

#: Default trace ring-buffer capacity (events, oldest evicted first).
DEFAULT_TRACE_CAPACITY = 2048


class _NullTimer:
    """Reusable no-op context manager (one instance per process)."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_TIMER = _NullTimer()


class NullRecorder:
    """No-op recorder: observability disabled, zero allocation.

    All verbs accept and discard the real recorder's signatures, so
    instrumented code never branches on which recorder it holds; the
    one sanctioned branch is ``if recorder.enabled:`` around label-dict
    construction or stat reads that only exist to feed the recorder.
    """

    enabled = False

    def count(self, name, amount=1, **labels) -> None:
        pass

    def gauge(self, name, value, **labels) -> None:
        pass

    def sync_counter(self, name, value, **labels) -> None:
        pass

    def observe(self, name, value, **labels) -> None:
        pass

    def event(self, kind, **fields) -> None:
        pass

    def time(self, stage) -> _NullTimer:
        return _NULL_TIMER

    def preregister(self, *names) -> None:
        pass

    def preregister_labelled(self, name, label, values) -> None:
        pass

    def preregister_stage(self, *stages) -> None:
        pass


#: Shared default instance -- components normalize ``recorder=None`` to
#: this, so the disabled path never constructs anything.
NULL_RECORDER = NullRecorder()


class _StageTimer:
    """Times one ``with`` block into the stage histogram."""

    __slots__ = ("_recorder", "_stage", "_start")

    def __init__(self, recorder: "PipelineRecorder", stage: str) -> None:
        self._recorder = recorder
        self._stage = stage

    def __enter__(self) -> "_StageTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._recorder.observe(
            STAGE_HISTOGRAM, time.perf_counter() - self._start,
            stage=self._stage,
        )


class PipelineRecorder:
    """Registry-backed recorder with a structured trace-event ring buffer.

    Parameters
    ----------
    registry:
        An existing :class:`MetricsRegistry` to record into (several
        recorders may share one); a private registry is created when
        omitted.
    trace_capacity:
        Ring-buffer size in events; the oldest events are evicted once
        full.  ``0`` disables tracing while keeping metrics.
    clock:
        Wall-clock source for event timestamps (``time.time`` by
        default; injectable for deterministic tests and golden files).
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        clock=time.time,
    ) -> None:
        if trace_capacity < 0:
            raise ValueError(f"trace_capacity must be >= 0, got {trace_capacity}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self._events: deque = deque(maxlen=trace_capacity or None)
        self._trace_capacity = int(trace_capacity)
        self._seq = itertools.count()
        self._clock = clock
        # One recorder may be fed from several threads at once (the
        # pipelined session's seal worker overlaps the ingest thread),
        # so every mutating verb serializes on this lock.  The blocking
        # path takes it uncontended -- a few ns per verb.
        self._lock = threading.Lock()
        self.registry.histogram(
            STAGE_HISTOGRAM,
            help="Pipeline stage latency in seconds.",
            labels=("stage",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )

    # -- the five verbs ------------------------------------------------------

    def count(self, name: str, amount: float = 1, **labels) -> None:
        """Increment counter ``name`` (created on first use)."""
        with self._lock:
            self.registry.counter(name, labels=tuple(sorted(labels))).inc(
                amount, **labels
            )

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set gauge ``name`` (created on first use)."""
        with self._lock:
            self.registry.gauge(name, labels=tuple(sorted(labels))).set(
                value, **labels
            )

    def sync_counter(self, name: str, value: float, **labels) -> None:
        """Mirror an externally-maintained monotonic tally into a counter.

        Used to absorb pre-existing cumulative counts (index-cache hits,
        supervision tallies) without double-counting: the source stays
        authoritative, the registry converges to it at each sync point.
        """
        with self._lock:
            self.registry.counter(name, labels=tuple(sorted(labels))).set_to(
                value, **labels
            )

    def observe(self, name: str, value: float, **labels) -> None:
        """Record ``value`` into histogram ``name`` (created on first use)."""
        with self._lock:
            self.registry.histogram(name, labels=tuple(sorted(labels))).observe(
                value, **labels
            )

    def time(self, stage: str) -> _StageTimer:
        """Context manager timing its block into ``repro_stage_seconds``."""
        return _StageTimer(self, stage)

    def event(self, kind: str, **fields) -> None:
        """Append one structured trace event to the ring buffer."""
        if self._trace_capacity == 0:
            return
        record = {"seq": next(self._seq), "time": self._clock(), "kind": kind}
        record.update(fields)
        with self._lock:
            self._events.append(record)

    # -- inspection / export -------------------------------------------------

    @property
    def trace_capacity(self) -> int:
        return self._trace_capacity

    def preregister(self, *names: str) -> None:
        """Create unlabelled counter series at zero.

        Metrics are otherwise lazy (created on first increment), which
        makes "no events yet" indistinguishable from "not instrumented"
        in a scrape.  Components call this once when a recorder attaches
        so every export carries the full series set.
        """
        for name in names:
            self.count(name, 0)

    def preregister_labelled(
        self, name: str, label: str, values
    ) -> None:
        """Create one zero series per label value for counter ``name``."""
        for value in values:
            self.count(name, 0, **{label: value})

    def preregister_stage(self, *stages: str) -> None:
        """Create zero ``repro_stage_seconds{stage=...}`` series.

        The stage histogram is otherwise lazy, so a stage that never
        fires (e.g. ``recover`` when the key source is two-pass) would
        be missing from the export instead of reading zero.
        """
        histogram = self.registry.histogram(
            STAGE_HISTOGRAM, labels=("stage",)
        )
        for stage in stages:
            histogram.touch(stage=stage)

    def events(self, kind: Optional[str] = None) -> list:
        """Buffered trace events, oldest first (optionally one kind)."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e["kind"] == kind]

    def prometheus_text(self) -> str:
        """Render the registry in Prometheus text exposition format."""
        from repro.obs.export import to_prometheus_text

        return to_prometheus_text(self.registry)

    def json_dict(self, events: bool = True) -> dict:
        """JSON-safe snapshot of the registry (and optionally the trace)."""
        from repro.obs.export import to_json_dict

        out = to_json_dict(self.registry)
        if events:
            out["events"] = self.events()
        return out

    def write(self, path, events: bool = True) -> None:
        """Write metrics to ``path``; format chosen by extension.

        ``.json`` gets the JSON snapshot (with trace events unless
        ``events=False``); anything else gets Prometheus text.  The
        write is atomic (tmp file + rename) so a scraper never reads a
        torn flush.
        """
        path = os.fspath(path)
        if path.endswith(".json"):
            payload = json.dumps(self.json_dict(events=events), indent=2) + "\n"
        else:
            payload = self.prometheus_text()
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(payload)
        os.replace(tmp, path)
