"""Metrics primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` owns named metrics; each metric owns one time
series per distinct label-value tuple.  The design goals, in order:

* **dependency-free** -- plain dicts and floats, no client library;
* **cheap when used** -- incrementing a counter is one dict lookup plus
  a float add (the pipeline only touches metrics at interval-seal
  granularity, never per record);
* **exportable** -- :meth:`MetricsRegistry.collect` yields a stable,
  sorted view that the Prometheus/JSON exporters in
  :mod:`repro.obs.export` render without reaching into internals.

Naming scheme (see DESIGN.md §11): ``repro_<subsystem>_<what>[_unit]``,
with ``_total`` suffix for counters and ``_seconds`` for latency
histograms; variable dimensions (forecast model, stage, supervision
event kind) are labels, never baked into names.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram buckets for stage latencies, in seconds.  Spans
#: sub-millisecond seals (small sketches) to multi-second degraded
#: seals; the +Inf bucket is implicit.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_values(
    metric_name: str, label_names: Tuple[str, ...], labels: dict
) -> Tuple[str, ...]:
    """Validate and order one sample's label values against the metric."""
    if len(labels) != len(label_names) or any(
        name not in labels for name in label_names
    ):
        raise ValueError(
            f"metric {metric_name!r} takes labels {label_names}, "
            f"got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in label_names)


class _Metric:
    """Shared plumbing: name, help text, label schema, per-series store."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> None:
        if not name or not name.replace("_", "a").isalnum() or name[0].isdigit():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        if len(set(self.label_names)) != len(self.label_names):
            raise ValueError(f"duplicate label names in {self.label_names}")
        self._series: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: dict) -> Tuple[str, ...]:
        return _label_values(self.name, self.label_names, labels)

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Sorted ``(label_values, state)`` pairs for the exporters."""
        return sorted(self._series.items())


class Counter(_Metric):
    """A monotonically nondecreasing count."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        """Add ``amount`` (must be >= 0) to the series' count."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def set_to(self, value: float, **labels) -> None:
        """Synchronize with an external monotonic tally (e.g. a cache's
        ``hits`` attribute).  Values below the current count are ignored
        -- the series keeps its high-water mark -- so several sources
        syncing one series can never drive a counter backwards."""
        key = self._key(labels)
        if value > self._series.get(key, 0.0):
            self._series[key] = float(value)
        else:
            self._series.setdefault(key, 0.0)

    def value(self, **labels) -> float:
        """Current count for one label tuple (0 before any increment)."""
        return float(self._series.get(self._key(labels), 0.0))


class Gauge(_Metric):
    """A value that can go up and down (sizes, watermarks, rates)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series[self._key(labels)] = float(value)

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return float(self._series.get(self._key(labels), 0.0))


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # + the implicit +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket histogram (cumulative export, Prometheus-style).

    Buckets are upper bounds, strictly increasing; every observation also
    lands in the implicit ``+Inf`` bucket, so the exporter's cumulative
    counts and the ``_count`` series agree by construction.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        if any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise ValueError("finite bucket bounds only (+Inf is implicit)")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        series.counts[bisect_left(self.buckets, value)] += 1
        series.sum += value
        series.count += 1

    def touch(self, **labels) -> None:
        """Create an all-zero series for one label tuple (idempotent).

        Histogram series are otherwise lazy (created on first observe),
        which makes "never fired" indistinguishable from "not
        instrumented" in a scrape.  Preregistration calls this so e.g.
        ``repro_stage_seconds{stage="recover"}`` exports at zero even
        when the key source never runs a recovery walk.
        """
        key = self._key(labels)
        if key not in self._series:
            self._series[key] = _HistogramSeries(len(self.buckets))

    def snapshot(self, **labels) -> dict:
        """Per-bucket (non-cumulative) counts plus sum/count."""
        series = self._series.get(self._key(labels))
        if series is None:
            return {"buckets": [0] * (len(self.buckets) + 1), "sum": 0.0,
                    "count": 0}
        return {
            "buckets": list(series.counts),
            "sum": series.sum,
            "count": series.count,
        }


class MetricsRegistry:
    """A named collection of metrics with idempotent registration.

    Registering the same name again with the same kind and label schema
    returns the existing metric (so independent pipeline stages can
    declare what they use without coordinating); a kind or label-schema
    mismatch raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        extra = {} if buckets is None else {"buckets": buckets}
        metric = self._register(Histogram, name, help, labels, **extra)
        if buckets is not None and tuple(float(b) for b in buckets) != metric.buckets:
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{metric.buckets}"
            )
        return metric

    def _register(self, cls, name, help, labels, **extra):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.label_names}"
                )
            return existing
        metric = cls(name, help, labels, **extra)
        self._metrics[name] = metric
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        """The registered metric, or None."""
        return self._metrics.get(name)

    def collect(self) -> Iterator[_Metric]:
        """Metrics in name order (the exporters' iteration contract)."""
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics
