"""Observability: metrics, stage timers and trace events for the pipeline.

The paper's Section 6 deployment story -- near real-time change
detection on live traffic -- presumes an operator who can *see* the
monitor: interval lag, seal latency, alarm rates, cache effectiveness,
worker health.  This package is that layer, dependency-free:

* :mod:`repro.obs.registry` -- :class:`MetricsRegistry` holding
  counters, gauges and fixed-bucket histograms with labels;
* :mod:`repro.obs.recorder` -- the :class:`PipelineRecorder` every
  pipeline component reports through (stage timers, lazy metric
  creation, a bounded trace-event ring buffer), and the allocation-free
  :class:`NullRecorder` default that keeps the disabled path exactly as
  fast as before the obs layer existed;
* :mod:`repro.obs.export` -- Prometheus text and JSON exporters.

Usage::

    from repro.obs import PipelineRecorder
    from repro.detection import StreamingSession

    recorder = PipelineRecorder()
    session = StreamingSession(schema, "ewma", alpha=0.4, recorder=recorder)
    ...  # ingest / flush as usual -- reports are bit-identical
    recorder.write("metrics.prom")          # Prometheus text
    recorder.events("interval_sealed")      # structured trace

Recorders observe execution; they are never part of the detection
result.  Checkpoints do not carry them (a restored session starts with
fresh metrics), and every report is bit-identical with observability on
or off.
"""

from repro.obs.export import to_json_dict, to_prometheus_text
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    PipelineRecorder,
    STAGE_HISTOGRAM,
)
from repro.obs.registry import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "PipelineRecorder",
    "STAGE_HISTOGRAM",
    "to_json_dict",
    "to_prometheus_text",
]
