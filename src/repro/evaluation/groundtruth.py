"""Scoring detectors against injected anomaly ground truth.

The paper evaluates sketch-vs-per-flow fidelity; the natural next question
("did we catch the *attack*?") needs labeled data, which the synthetic
substrate provides via :class:`~repro.traffic.anomalies.AnomalyEvent`.
This module turns events into per-(interval, key) labels and sweeps the
detection threshold ``T`` into an ROC-style operating curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.traffic.anomalies import AnomalyEvent

Label = Tuple[int, int]  # (interval, key)


def ground_truth_labels(
    events: Iterable[AnomalyEvent],
    n_intervals: int,
    interval_seconds: float,
) -> Set[Label]:
    """All ``(interval, key)`` pairs where an injected anomaly is active."""
    if n_intervals < 0:
        raise ValueError(f"n_intervals must be >= 0, got {n_intervals}")
    if interval_seconds <= 0:
        raise ValueError(f"interval_seconds must be > 0, got {interval_seconds}")
    labels: Set[Label] = set()
    for event in events:
        for t in range(n_intervals):
            if event.overlaps_interval(
                t * interval_seconds, (t + 1) * interval_seconds
            ):
                labels.update((t, int(key)) for key in event.keys)
    return labels


@dataclass(frozen=True)
class OperatingPoint:
    """One threshold's detection performance."""

    t_fraction: float
    true_positives: int
    false_negatives: int
    alarms: int

    @property
    def recall(self) -> float:
        """Fraction of ground-truth (interval, key) labels alarmed."""
        positives = self.true_positives + self.false_negatives
        return self.true_positives / positives if positives else 1.0

    @property
    def precision(self) -> float:
        """Fraction of alarms that hit ground truth.

        Note: background traffic contains genuine statistical changes that
        are not injected anomalies, so precision against *injected* truth
        under-counts; it is still the right metric for comparing
        thresholds on the same trace.
        """
        return self.true_positives / self.alarms if self.alarms else 1.0

    @property
    def false_alarms_per_interval(self) -> float:
        """Raw alarm load attributable to non-injected keys (see caveat)."""
        return float(self.alarms - self.true_positives)


def operating_curve(
    alarm_sets: Dict[float, Set[Label]],
    truth: Set[Label],
    intervals_scored: int,
) -> List[OperatingPoint]:
    """Score per-threshold alarm sets against ground truth.

    Parameters
    ----------
    alarm_sets:
        ``{t_fraction: {(interval, key), ...}}`` from detector sweeps.
    truth:
        Labels from :func:`ground_truth_labels`, restricted by the caller
        to the scored (post-warm-up) intervals.
    intervals_scored:
        Used for the per-interval normalization in reports.
    """
    if intervals_scored <= 0:
        raise ValueError(f"intervals_scored must be > 0, got {intervals_scored}")
    points = []
    for t_fraction in sorted(alarm_sets):
        alarms = alarm_sets[t_fraction]
        tp = len(alarms & truth)
        points.append(
            OperatingPoint(
                t_fraction=t_fraction,
                true_positives=tp,
                false_negatives=len(truth) - tp,
                alarms=len(alarms),
            )
        )
    return points


def sweep_thresholds(
    batches: Sequence,
    schema,
    forecaster_name: str,
    thresholds: Sequence[float],
    skip: int = 0,
    **model_params,
) -> Tuple[Dict[float, Set[Label]], int]:
    """Run the sketch pipeline once, harvesting alarms at many thresholds.

    Returns ``(alarm_sets, intervals_scored)``.  One pipeline pass serves
    every threshold (alarms at ``T`` are a superset of alarms at ``T' >
    T``), which is what makes ROC sweeps cheap.
    """
    from repro.detection.pipeline import run_pipeline
    from repro.forecast.model_zoo import make_forecaster

    if not thresholds:
        raise ValueError("need at least one threshold")
    forecaster = make_forecaster(forecaster_name, **model_params)
    alarm_sets: Dict[float, Set[Label]] = {t: set() for t in thresholds}
    scored = 0
    for step in run_pipeline(batches, schema, forecaster):
        if step.error is None or step.index < skip:
            continue
        scored += 1
        keys = step.keys
        if not len(keys):
            continue
        indices = schema.bucket_indices(keys)
        estimates = np.abs(step.error.estimate_batch(keys, indices=indices))
        l2 = step.error.l2_norm()
        for t in thresholds:
            hits = keys[estimates >= t * l2]
            alarm_sets[t].update((step.index, int(k)) for k in hits.tolist())
    return alarm_sets, scored
