"""Evaluation metrics and reporting for sketch-vs-per-flow comparison.

Implements the paper's Section 5 measurement apparatus:

* **Relative Difference** (Section 5.1): the sketch total energy vs the
  per-flow total energy, as a percentage.
* **Similarity** (Section 5.2.1): ``N_AB / N`` overlap of top-N lists,
  including the top-N vs top-X*N variant.
* **Thresholding metrics** (Section 5.2.2): alarm counts, false-negative
  and false-positive ratios at a fraction of the error L2 norm.
* **Empirical CDFs** for the Figure 1-3 style plots.
* Plain-text report tables shaped like the paper's figures.
"""

from repro.evaluation.cdf import EmpiricalCDF
from repro.evaluation.groundtruth import (
    OperatingPoint,
    ground_truth_labels,
    operating_curve,
    sweep_thresholds,
)
from repro.evaluation.metrics import (
    ThresholdComparison,
    false_negative_ratio,
    false_positive_ratio,
    relative_difference,
    threshold_comparison,
    total_energy,
)
from repro.evaluation.report import format_series_table, format_table

__all__ = [
    "EmpiricalCDF",
    "OperatingPoint",
    "ThresholdComparison",
    "ground_truth_labels",
    "operating_curve",
    "sweep_thresholds",
    "false_negative_ratio",
    "false_positive_ratio",
    "format_series_table",
    "format_table",
    "relative_difference",
    "threshold_comparison",
    "total_energy",
]
