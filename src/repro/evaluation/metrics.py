"""The paper's comparison metrics.

Terminology note ("total energy"): the paper defines it as "square root of
the sum of second moments for each time interval", i.e.

    ``energy = sqrt( sum_t F2(Se(t)) )``

Relative Difference (Figures 1-3) is the sketch energy minus the per-flow
energy as a percentage of per-flow energy.  Thresholding metrics
(Figures 10-15) compare the key sets whose absolute forecast error reaches
``T * L2-norm`` in the sketch and per-flow pipelines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def total_energy(per_interval_f2: Iterable[float]) -> float:
    """``sqrt(sum_t F2(Se(t)))`` ignoring warm-up NaNs.

    Negative per-interval estimates (possible for the unbiased sketch
    estimator when the true energy is tiny) are clamped to zero, matching
    the L2-norm convention.
    """
    values = np.asarray(list(per_interval_f2), dtype=np.float64)
    values = values[~np.isnan(values)]
    return float(math.sqrt(np.clip(values, 0.0, None).sum()))


def relative_difference(sketch_energy: float, perflow_energy: float) -> float:
    """Relative Difference in percent: ``100 * (sketch - perflow) / perflow``."""
    if perflow_energy == 0:
        raise ValueError("per-flow energy is zero; relative difference undefined")
    return 100.0 * (sketch_energy - perflow_energy) / perflow_energy


def false_negative_ratio(perflow_keys: np.ndarray, sketch_keys: np.ndarray) -> float:
    """``(N_pf - N_AB) / N_pf``: per-flow detections the sketch missed.

    Defined as 0 when per-flow raised nothing (no positives to miss).
    """
    pf = np.unique(np.asarray(perflow_keys, dtype=np.uint64))
    sk = np.unique(np.asarray(sketch_keys, dtype=np.uint64))
    if not len(pf):
        return 0.0
    overlap = len(np.intersect1d(pf, sk, assume_unique=True))
    return (len(pf) - overlap) / len(pf)


def false_positive_ratio(perflow_keys: np.ndarray, sketch_keys: np.ndarray) -> float:
    """``(N_sk - N_AB) / N_sk``: sketch detections per-flow disowns.

    Defined as 0 when the sketch raised nothing.
    """
    pf = np.unique(np.asarray(perflow_keys, dtype=np.uint64))
    sk = np.unique(np.asarray(sketch_keys, dtype=np.uint64))
    if not len(sk):
        return 0.0
    overlap = len(np.intersect1d(pf, sk, assume_unique=True))
    return (len(sk) - overlap) / len(sk)


@dataclass
class ThresholdComparison:
    """Per-interval thresholding comparison, aggregated over a trace.

    Attributes hold the *means over intervals* the paper plots: the number
    of alarms for each method, and the false negative/positive ratios.
    """

    t_fraction: float
    mean_perflow_alarms: float
    mean_sketch_alarms: float
    mean_false_negative: float
    mean_false_positive: float
    intervals: int


def threshold_comparison(
    t_fraction: float,
    perflow_key_sets: Sequence[np.ndarray],
    sketch_key_sets: Sequence[np.ndarray],
) -> ThresholdComparison:
    """Aggregate thresholding metrics across intervals.

    Both sequences must align interval-for-interval (warm-up already
    removed).
    """
    if len(perflow_key_sets) != len(sketch_key_sets):
        raise ValueError(
            f"interval count mismatch: {len(perflow_key_sets)} per-flow vs "
            f"{len(sketch_key_sets)} sketch"
        )
    if not perflow_key_sets:
        raise ValueError("no intervals to compare")
    fn = [
        false_negative_ratio(pf, sk)
        for pf, sk in zip(perflow_key_sets, sketch_key_sets)
    ]
    fp = [
        false_positive_ratio(pf, sk)
        for pf, sk in zip(perflow_key_sets, sketch_key_sets)
    ]
    return ThresholdComparison(
        t_fraction=t_fraction,
        mean_perflow_alarms=float(np.mean([len(np.unique(k)) for k in perflow_key_sets])),
        mean_sketch_alarms=float(np.mean([len(np.unique(k)) for k in sketch_key_sets])),
        mean_false_negative=float(np.mean(fn)),
        mean_false_positive=float(np.mean(fp)),
        intervals=len(perflow_key_sets),
    )
