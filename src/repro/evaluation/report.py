"""Plain-text tables shaped like the paper's figures.

Every experiment function returns structured data; these helpers render it
for terminal consumption so the benchmark harness can print the same
rows/series the paper reports.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

Number = Union[int, float]


def _format_cell(value, width: int = 0) -> str:
    if isinstance(value, float):
        text = f"{value:.4g}"
    else:
        text = str(value)
    return text.rjust(width) if width else text


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Union[str, Number]]],
    title: str = "",
) -> str:
    """Render an aligned fixed-width table with a rule under the header."""
    str_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(
    x_name: str,
    x_values: Sequence[Number],
    series: Mapping[str, Sequence[Number]],
    title: str = "",
) -> str:
    """Render one column per named series against a shared x axis.

    This is the natural text form of the paper's line plots: e.g. x = K,
    one series per top-N value.
    """
    headers = [x_name] + list(series.keys())
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points but x has "
                f"{len(x_values)}"
            )
    rows = [
        [x] + [series[name][i] for name in series]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)
