"""Empirical cumulative distribution functions (Figures 1-3 material)."""

from __future__ import annotations

from typing import Tuple

import numpy as np


class EmpiricalCDF:
    """Empirical CDF of a sample, with evaluation and quantile queries."""

    def __init__(self, samples) -> None:
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 1:
            raise ValueError(f"samples must be 1-D, got shape {samples.shape}")
        if not len(samples):
            raise ValueError("cannot build a CDF from an empty sample")
        self._sorted = np.sort(samples)

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def samples(self) -> np.ndarray:
        """The sorted sample (read-only view)."""
        view = self._sorted.view()
        view.flags.writeable = False
        return view

    def __call__(self, x) -> np.ndarray:
        """``P(X <= x)`` evaluated at scalar or array ``x``."""
        positions = np.searchsorted(self._sorted, np.asarray(x, dtype=np.float64), side="right")
        return positions / len(self._sorted)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of the sample (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        return float(np.quantile(self._sorted, q))

    def steps(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(x, F(x))`` pairs for plotting the CDF as a step function."""
        n = len(self._sorted)
        return self._sorted.copy(), np.arange(1, n + 1) / n

    def mass_within(self, low: float, high: float) -> float:
        """Fraction of the sample lying in ``[low, high]``.

        Used to state paper claims like "most of the mass is concentrated
        in the neighborhood of the 0% point".
        """
        if high < low:
            raise ValueError(f"need low <= high, got [{low}, {high}]")
        lo = np.searchsorted(self._sorted, low, side="left")
        hi = np.searchsorted(self._sorted, high, side="right")
        return (hi - lo) / len(self._sorted)

    def worst_absolute(self) -> float:
        """Largest absolute sample value (the paper's 'worst case' quote)."""
        return float(np.max(np.abs(self._sorted)))
