"""Abstract interface for universal hash families.

A *k-universal* (a.k.a. *k-independent*) family maps any ``k`` distinct keys
to outputs that are uniform and mutually independent.  The k-ary sketch
needs 4-universality: 2-universality suffices for unbiased point estimates,
but the variance analysis of ``ESTIMATEF2`` (Theorem 4 of the paper) relies
on 4-wise independence.

Every family here maps 64-bit integer keys to buckets ``[0, num_buckets)``
and exposes both scalar and vectorized evaluation.  Concrete families:

* ``"tabulation"`` -- :class:`repro.hashing.tabulation.TabulationHash`
* ``"polynomial"`` -- :class:`repro.hashing.carter_wegman.PolynomialHash`
* ``"two-universal"`` -- :class:`repro.hashing.carter_wegman.TwoUniversalHash`
  (deliberately weaker; used in ablation experiments)
"""

from __future__ import annotations

import abc
from typing import Optional, Union

import numpy as np

ArrayLike = Union[int, np.ndarray]


class HashFamily(abc.ABC):
    """A single randomly drawn hash function from a universal family.

    Instances are immutable once constructed: the random coefficients or
    tables are drawn from the ``seed`` at construction time, so the same
    ``(seed, num_buckets)`` pair always yields the same function.  This is
    what makes sketches *mergeable across machines*: two k-ary sketches can
    only be COMBINEd when built from identical hash functions.
    """

    #: independence level guaranteed by the family (2 or 4 here)
    independence: int = 0

    def __init__(self, num_buckets: int, seed: Optional[int] = None) -> None:
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self._num_buckets = int(num_buckets)
        self._seed = seed

    @property
    def num_buckets(self) -> int:
        """Size of the output range ``[0, num_buckets)``."""
        return self._num_buckets

    @property
    def seed(self) -> Optional[int]:
        """Seed the function was drawn with (``None`` means OS entropy)."""
        return self._seed

    @abc.abstractmethod
    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Hash a NumPy array of uint64 keys to an array of bucket indices."""

    def __call__(self, keys: ArrayLike) -> ArrayLike:
        """Hash scalar or array keys.

        Scalars return a Python int; arrays return ``np.ndarray`` of
        ``int64`` bucket indices.
        """
        if np.isscalar(keys):
            out = self.hash_array(np.asarray([keys], dtype=np.uint64))
            return int(out[0])
        return self.hash_array(np.asarray(keys, dtype=np.uint64))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(num_buckets={self._num_buckets}, "
            f"seed={self._seed})"
        )


_FAMILIES = {}


def register_family(name: str):
    """Class decorator registering a family under ``name`` for lookup."""

    def _register(cls):
        _FAMILIES[name] = cls
        return cls

    return _register


def make_family(name: str, num_buckets: int, seed: Optional[int] = None) -> HashFamily:
    """Construct a hash function from the family registered under ``name``.

    Parameters
    ----------
    name:
        One of ``"tabulation"``, ``"polynomial"``, ``"two-universal"``.
    num_buckets:
        Output range size ``K``.
    seed:
        Seed for drawing the function.  Functions drawn with distinct seeds
        are independent, which is how the sketch obtains its ``H``
        independent rows.
    """
    try:
        cls = _FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(_FAMILIES))
        raise ValueError(f"unknown hash family {name!r}; known: {known}") from None
    return cls(num_buckets, seed=seed)
