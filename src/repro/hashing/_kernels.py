"""Runtime-compiled C kernels for the stacked tabulation hot paths.

The stacked tabulation evaluator (:mod:`repro.hashing.stacked`) reduces the
per-row hash tables to ``uint16`` bucket strips so that all ``H`` rows of a
sketch are served by three gathers and two XORs.  NumPy executes that as
several full passes over the key batch (gather, gather, gather, xor, xor,
scatter-add); the fused C kernels below do one pass, keeping the three
table strips and the counter table hot in cache.

The kernels are optional.  At import time nothing happens; on first use the
embedded C source is compiled with whatever C compiler the host provides
(``cc``/``gcc``/``clang``) into a shared object cached under the system
temp directory (keyed by a hash of the source, so stale caches are never
reused).  If no compiler is available, compilation fails, or the
environment variable ``REPRO_NO_KERNELS`` is set, every caller silently
falls back to the pure-NumPy stacked path -- results are bit-identical
either way, only throughput differs.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Optional

import numpy as np

_C_SOURCE = r"""
#include <stdint.h>
#include <stddef.h>

/* Reduced-table layouts: r0/r1 have 2^16 rows, r2 has 2^17 rows; each row
 * holds H contiguous uint16 pre-masked bucket values (one per sketch row).
 * Counter tables are C-contiguous (H, K) float64. */

/* The strip working set (a few MB, random access) misses L2 on most keys;
 * prefetching a handful of items ahead hides much of that latency. */
#if defined(__GNUC__) || defined(__clang__)
#define TAB_PREFETCH(p) __builtin_prefetch((p), 0, 1)
#else
#define TAB_PREFETCH(p)
#endif
#define TAB_PF_DIST 8

#define TAB_PF_AHEAD(H)                                                     \
    if (j + TAB_PF_DIST < n) {                                              \
        uint64_t pk = keys[j + TAB_PF_DIST];                                \
        size_t p0 = (size_t)(pk & 0xFFFFu);                                 \
        size_t p1 = (size_t)((pk >> 16) & 0xFFFFu);                         \
        TAB_PREFETCH(r0 + p0 * (size_t)(H));                                \
        TAB_PREFETCH(r1 + p1 * (size_t)(H));                                \
        TAB_PREFETCH(r2 + (p0 + p1) * (size_t)(H));                         \
    }

void tab_hash_u16(const uint64_t* keys, int64_t n, int64_t h_rows,
                  const uint16_t* r0, const uint16_t* r1, const uint16_t* r2,
                  int64_t* out) {
    for (int64_t j = 0; j < n; ++j) {
        uint64_t key = keys[j];
        size_t c0 = (size_t)(key & 0xFFFFu);
        size_t c1 = (size_t)((key >> 16) & 0xFFFFu);
        const uint16_t* a = r0 + c0 * (size_t)h_rows;
        const uint16_t* b = r1 + c1 * (size_t)h_rows;
        const uint16_t* c = r2 + (c0 + c1) * (size_t)h_rows;
        for (int64_t i = 0; i < h_rows; ++i)
            out[i * n + j] = (int64_t)(uint16_t)(a[i] ^ b[i] ^ c[i]);
    }
}

/* The row loop fully unrolls when H is a compile-time constant, which is
 * worth ~20% at the paper's H=5; dispatch the common depths to
 * specialized instantiations and everything else to the generic loop.
 * Accumulation order per table cell is stream order in every variant. */
#define TAB_UPDATE_BODY(H)                                                  \
    for (int64_t j = 0; j < n; ++j) {                                       \
        TAB_PF_AHEAD(H)                                                     \
        uint64_t key = keys[j];                                             \
        size_t c0 = (size_t)(key & 0xFFFFu);                                \
        size_t c1 = (size_t)((key >> 16) & 0xFFFFu);                        \
        double v = values[j];                                               \
        const uint16_t* a = r0 + c0 * (size_t)(H);                          \
        const uint16_t* b = r1 + c1 * (size_t)(H);                          \
        const uint16_t* c = r2 + (c0 + c1) * (size_t)(H);                   \
        for (int64_t i = 0; i < (H); ++i) {                                 \
            uint16_t bucket = (uint16_t)(a[i] ^ b[i] ^ c[i]);               \
            table[i * k_width + bucket] += v;                               \
        }                                                                   \
    }

#define TAB_UPDATE_SPEC(H)                                                  \
    static void tab_update_h##H(const uint64_t* keys, const double* values, \
                                int64_t n, int64_t k_width,                 \
                                const uint16_t* r0, const uint16_t* r1,     \
                                const uint16_t* r2, double* table) {        \
        TAB_UPDATE_BODY(H)                                                  \
    }

TAB_UPDATE_SPEC(1)
TAB_UPDATE_SPEC(3)
TAB_UPDATE_SPEC(5)
TAB_UPDATE_SPEC(7)

void tab_update_u16(const uint64_t* keys, const double* values, int64_t n,
                    int64_t h_rows, int64_t k_width,
                    const uint16_t* r0, const uint16_t* r1, const uint16_t* r2,
                    double* table) {
    switch (h_rows) {
    case 1: tab_update_h1(keys, values, n, k_width, r0, r1, r2, table); return;
    case 3: tab_update_h3(keys, values, n, k_width, r0, r1, r2, table); return;
    case 5: tab_update_h5(keys, values, n, k_width, r0, r1, r2, table); return;
    case 7: tab_update_h7(keys, values, n, k_width, r0, r1, r2, table); return;
    default: break;
    }
    TAB_UPDATE_BODY(h_rows)
}

/* Count-Sketch fused update: bucket tables give the cell, sign tables
 * (pre-masked to one bit) give the +/- orientation. */
void tab_update_signed_u16(const uint64_t* keys, const double* values,
                           int64_t n, int64_t h_rows, int64_t k_width,
                           const uint16_t* r0, const uint16_t* r1,
                           const uint16_t* r2, const uint16_t* s0,
                           const uint16_t* s1, const uint16_t* s2,
                           double* table) {
    for (int64_t j = 0; j < n; ++j) {
        uint64_t key = keys[j];
        size_t c0 = (size_t)(key & 0xFFFFu);
        size_t c1 = (size_t)((key >> 16) & 0xFFFFu);
        size_t c2 = c0 + c1;
        double v = values[j];
        const uint16_t* a = r0 + c0 * (size_t)h_rows;
        const uint16_t* b = r1 + c1 * (size_t)h_rows;
        const uint16_t* c = r2 + c2 * (size_t)h_rows;
        const uint16_t* sa = s0 + c0 * (size_t)h_rows;
        const uint16_t* sb = s1 + c1 * (size_t)h_rows;
        const uint16_t* sc = s2 + c2 * (size_t)h_rows;
        for (int64_t i = 0; i < h_rows; ++i) {
            uint16_t bucket = (uint16_t)(a[i] ^ b[i] ^ c[i]);
            uint16_t bit = (uint16_t)(sa[i] ^ sb[i] ^ sc[i]);
            table[i * k_width + bucket] += bit ? v : -v;
        }
    }
}

void tab_gather_u16(const uint64_t* keys, int64_t n, int64_t h_rows,
                    int64_t k_width, const uint16_t* r0, const uint16_t* r1,
                    const uint16_t* r2, const double* table, double* out) {
    for (int64_t j = 0; j < n; ++j) {
        uint64_t key = keys[j];
        size_t c0 = (size_t)(key & 0xFFFFu);
        size_t c1 = (size_t)((key >> 16) & 0xFFFFu);
        const uint16_t* a = r0 + c0 * (size_t)h_rows;
        const uint16_t* b = r1 + c1 * (size_t)h_rows;
        const uint16_t* c = r2 + (c0 + c1) * (size_t)h_rows;
        for (int64_t i = 0; i < h_rows; ++i) {
            uint16_t bucket = (uint16_t)(a[i] ^ b[i] ^ c[i]);
            out[i * n + j] = table[i * k_width + bucket];
        }
    }
}

/* Precomputed-index variants: serve UPDATE/gather when the (H, n) bucket
 * indices already exist (e.g. from the persistent bucket-index cache),
 * skipping the hash entirely.  Per-row stream order matches the per-row
 * np.add.at reference, so accumulation is bit-identical. */
void idx_update(const int64_t* idx, const double* values, int64_t n,
                int64_t h_rows, int64_t k_width, double* table) {
    for (int64_t i = 0; i < h_rows; ++i) {
        const int64_t* row = idx + i * n;
        double* trow = table + i * k_width;
        for (int64_t j = 0; j < n; ++j)
            trow[row[j]] += values[j];
    }
}

void idx_gather(const int64_t* idx, int64_t n, int64_t h_rows,
                int64_t k_width, const double* table, double* out) {
    for (int64_t i = 0; i < h_rows; ++i) {
        const int64_t* row = idx + i * n;
        const double* trow = table + i * k_width;
        double* orow = out + i * n;
        for (int64_t j = 0; j < n; ++j)
            orow[j] = trow[row[j]];
    }
}
"""

_COMPILERS = ("cc", "gcc", "clang")


def _ptr(arr: np.ndarray):
    return arr.ctypes.data_as(ctypes.c_void_p)


class TabulationKernels:
    """ctypes facade over the compiled shared object."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        p, i64 = ctypes.c_void_p, ctypes.c_int64
        lib.tab_hash_u16.restype = None
        lib.tab_hash_u16.argtypes = [p, i64, i64, p, p, p, p]
        lib.tab_update_u16.restype = None
        lib.tab_update_u16.argtypes = [p, p, i64, i64, i64, p, p, p, p]
        lib.tab_update_signed_u16.restype = None
        lib.tab_update_signed_u16.argtypes = [
            p, p, i64, i64, i64, p, p, p, p, p, p, p,
        ]
        lib.tab_gather_u16.restype = None
        lib.tab_gather_u16.argtypes = [p, i64, i64, i64, p, p, p, p, p]
        lib.idx_update.restype = None
        lib.idx_update.argtypes = [p, p, i64, i64, i64, p]
        lib.idx_gather.restype = None
        lib.idx_gather.argtypes = [p, i64, i64, i64, p, p]

    def hash_all(self, keys, r0, r1, r2, depth: int) -> np.ndarray:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        out = np.empty((depth, len(keys)), dtype=np.int64)
        self._lib.tab_hash_u16(
            _ptr(keys), len(keys), depth, _ptr(r0), _ptr(r1), _ptr(r2), _ptr(out)
        )
        return out

    def update(self, table, keys, values, r0, r1, r2) -> None:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        depth, width = table.shape
        self._lib.tab_update_u16(
            _ptr(keys), _ptr(values), len(keys), depth, width,
            _ptr(r0), _ptr(r1), _ptr(r2), _ptr(table),
        )

    def update_signed(self, table, keys, values, r0, r1, r2, s0, s1, s2) -> None:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        depth, width = table.shape
        self._lib.tab_update_signed_u16(
            _ptr(keys), _ptr(values), len(keys), depth, width,
            _ptr(r0), _ptr(r1), _ptr(r2), _ptr(s0), _ptr(s1), _ptr(s2),
            _ptr(table),
        )

    def gather(self, table, keys, r0, r1, r2) -> np.ndarray:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        depth, width = table.shape
        out = np.empty((depth, len(keys)), dtype=np.float64)
        self._lib.tab_gather_u16(
            _ptr(keys), len(keys), depth, width,
            _ptr(r0), _ptr(r1), _ptr(r2), _ptr(table), _ptr(out),
        )
        return out

    def update_indices(self, table, indices, values) -> None:
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        depth, width = table.shape
        self._lib.idx_update(
            _ptr(indices), _ptr(values), indices.shape[1], depth, width,
            _ptr(table),
        )

    def gather_indices(self, table, indices) -> np.ndarray:
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        depth, width = table.shape
        n = indices.shape[1]
        out = np.empty((depth, n), dtype=np.float64)
        self._lib.idx_gather(
            _ptr(indices), n, depth, width, _ptr(table), _ptr(out)
        )
        return out


#: Flag sets tried in order; host-tuned codegen first, portable fallback
#: second (``-march=native`` is unsupported by some compilers/arches).
_FLAG_SETS = (
    ["-O3", "-march=native", "-funroll-loops"],
    ["-O3"],
)


def _compile() -> Optional[TabulationKernels]:
    # The cache is machine-local, but key the flags in anyway so changing
    # them (like changing the source) can never pick up a stale object.
    digest = hashlib.sha256(
        (_C_SOURCE + repr(_FLAG_SETS)).encode()
    ).hexdigest()[:16]
    cache_dir = os.path.join(tempfile.gettempdir(), "repro-kernels")
    so_path = os.path.join(cache_dir, f"tabkern-{digest}.so")
    if not os.path.exists(so_path):
        try:
            os.makedirs(cache_dir, exist_ok=True)
            src_path = os.path.join(cache_dir, f"tabkern-{digest}.c")
            with open(src_path, "w") as fh:
                fh.write(_C_SOURCE)
            tmp_so = so_path + f".tmp{os.getpid()}"
            compiled = False
            for compiler in _COMPILERS:
                for flags in _FLAG_SETS:
                    try:
                        result = subprocess.run(
                            [compiler, *flags, "-fPIC", "-shared", src_path,
                             "-o", tmp_so],
                            capture_output=True,
                            timeout=120,
                        )
                    except (OSError, subprocess.TimeoutExpired):
                        continue
                    if result.returncode == 0:
                        compiled = True
                        break
                if compiled:
                    break
            if not compiled:
                return None
            os.replace(tmp_so, so_path)
        except OSError:
            return None
    try:
        return TabulationKernels(ctypes.CDLL(so_path))
    except (OSError, AttributeError):
        return None


_UNSET = object()
_KERNELS = _UNSET


def get_kernels() -> Optional[TabulationKernels]:
    """The compiled kernels, or ``None`` when unavailable (cached)."""
    global _KERNELS
    if _KERNELS is _UNSET:
        if os.environ.get("REPRO_NO_KERNELS"):
            _KERNELS = None
        else:
            _KERNELS = _compile()
    return _KERNELS
