"""Runtime-compiled C kernels for the sketch hot paths.

The stacked evaluators (:mod:`repro.hashing.stacked`) serve all ``H`` rows
of a sketch in one vectorized pass; the fused C kernels below go one step
further and merge the *whole* per-item pipeline into a single pass over
the key batch:

* **tabulation** (pre-reduced ``uint16`` bucket strips): fused
  hash+scatter UPDATE (plain and Count-Sketch signed), fused hash+gather,
  and a fused hash+gather+transform+median ESTIMATE;
* **Carter-Wegman polynomial / two-universal**: the same set, with the
  Horner recursion over ``P61 = 2**61 - 1`` evaluated per key in exact
  64-bit integer arithmetic that replicates the NumPy fold step for step;
* **precomputed-index** variants serving UPDATE/gather/ESTIMATE when the
  ``(H, n)`` bucket indices already exist (e.g. from the persistent
  bucket-index cache).

NumPy executes each of those pipelines as several full passes over the
batch (gather, gather, xor/mul, scatter or median); the kernels do one
pass, keeping the lookup strips (or coefficient rows) and the counter
table hot in cache.  Every kernel is **bit-identical** to the pure-NumPy
reference: scatter accumulation runs in per-row stream order (matching
per-row ``np.add.at``), the modular arithmetic replays NumPy's exact
32-bit-split fold, and the ESTIMATE median reproduces ``np.median``'s
order statistics (odd ``H``: the middle element; even ``H``: the mean of
the two middle elements).

The kernels are optional.  At import time nothing happens; on first use
the embedded C source is compiled with the host's C compiler (``$CC`` if
set, else ``cc``/``gcc``/``clang``) into a shared object cached under the
system temp directory (keyed by a hash of the source, so stale caches are
never reused).  If no compiler is available, compilation fails, ``CC`` is
set to an empty string, or the environment variable ``REPRO_NO_KERNELS``
is set, every caller silently falls back to the pure-NumPy stacked path
-- results are bit-identical either way, only throughput differs.

Each facade method tallies its invocations in :attr:`SketchKernels.calls`;
:func:`kernel_call_counts` exposes the process-wide totals so the
observability layer can export per-kernel counters.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import time
from typing import Dict, Optional

import numpy as np

#: Fused-ESTIMATE kernels keep the per-key row buffer on the stack; any
#: depth beyond this falls back to the NumPy median (the paper's deepest
#: configuration is H = 25).
MAX_ESTIMATE_DEPTH = 64

#: Every kernel entry point, as exported by :func:`kernel_call_counts`
#: (and pre-registered by the observability layer so "never called"
#: stays distinguishable from "not instrumented").
KERNEL_NAMES = (
    "tab_hash",
    "tab_update",
    "tab_update_signed",
    "tab_gather",
    "tab_estimate",
    "poly_hash",
    "poly_update",
    "poly_update_signed",
    "poly_gather",
    "poly_estimate",
    "idx_update",
    "idx_gather",
    "idx_estimate",
    "tab_update_mv",
    "idx_update_mv",
    "mv_merge",
    "mv_combine2",
    "mv_recover",
    "tab_update_mt",
    "tab_update_signed_mt",
    "poly_update_mt",
    "poly_update_signed_mt",
    "idx_update_mt",
    "tab_update_mv_mt",
    "idx_update_mv_mt",
    "tab_estimate_mt",
    "poly_estimate_mt",
    "idx_estimate_mt",
)

#: Hard ceiling on pool worker threads inside the compiled object (the
#: main thread always runs part 0, so the effective parallelism cap is
#: ``POOL_MAX + 1``).  Mirrors the C constant of the same name.
POOL_MAX = 32

#: Default cap applied to the detected core count when ``REPRO_NUM_THREADS``
#: is unset; row-sharded kernels cannot use more threads than sketch rows
#: anyway, and the paper's configurations stay single-digit ``H``.
DEFAULT_THREAD_CAP = 8

#: Batches smaller than this dispatch to the serial kernels even when the
#: pool is enabled -- waking the pool costs a few microseconds, which only
#: pays for itself once the per-thread slice is big enough.  Overridable
#: via ``REPRO_MIN_PARALLEL_KEYS`` (tests set it to 0 to force the pool).
DEFAULT_MIN_PARALLEL_KEYS = 8192

_C_SOURCE = r"""
#include <stdint.h>
#include <stddef.h>
#include <pthread.h>

/* --- Persistent fork-join thread pool ----------------------------------
 * One pool per process, spawned lazily on the first parallel dispatch and
 * kept alive for the life of the shared object (workers are detached and
 * die with the process).  Dispatch is generation-counted: pool_run stores
 * the task, bumps pool_gen, and broadcasts; every worker wakes, runs its
 * part (workers whose slot exceeds the part count just decrement the
 * join counter), and the main thread runs part 0 itself before joining.
 * A dispatch mutex serializes concurrent pool_run callers (ctypes drops
 * the GIL, so the pipelined session's seal thread and the ingest thread
 * can both be inside kernels at once).
 *
 * fork() safety: a child forked while workers hold pool_mu would inherit
 * a locked mutex and no threads, so an atfork child handler (registered
 * the first time repro_set_threads runs, i.e. before any dispatch) resets
 * the primitives and worker count; the child's first parallel call simply
 * respawns the pool.  The sharded process backend forks its workers, so
 * this path is exercised in production, not just in theory. */

typedef void (*pool_task_fn)(void* arg, int64_t part, int64_t nparts);

#define POOL_MAX 32

static pthread_mutex_t pool_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_mutex_t pool_dispatch_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_cond_t pool_go = PTHREAD_COND_INITIALIZER;
static pthread_cond_t pool_done = PTHREAD_COND_INITIALIZER;
static int pool_workers = 0;   /* spawned worker threads (main not counted) */
static int pool_target = 1;    /* configured total thread count */
static int pool_atfork_set = 0;
static uint64_t pool_gen = 0;
static pool_task_fn pool_fn;
static void* pool_arg;
static int64_t pool_nparts;
static int64_t pool_remaining;

static void* pool_worker(void* slotp) {
    int64_t slot = (int64_t)(size_t)slotp;
    uint64_t seen = 0;
    pthread_mutex_lock(&pool_mu);
    for (;;) {
        while (pool_gen == seen)
            pthread_cond_wait(&pool_go, &pool_mu);
        seen = pool_gen;
        pool_task_fn fn = pool_fn;
        void* arg = pool_arg;
        int64_t nparts = pool_nparts;
        pthread_mutex_unlock(&pool_mu);
        if (slot + 1 < nparts)
            fn(arg, slot + 1, nparts);
        pthread_mutex_lock(&pool_mu);
        if (--pool_remaining == 0)
            pthread_cond_signal(&pool_done);
    }
    return 0;
}

static void pool_child_reset(void) {
    pool_workers = 0;
    pool_gen = 0;
    pool_remaining = 0;
    pthread_mutex_init(&pool_mu, 0);
    pthread_mutex_init(&pool_dispatch_mu, 0);
    pthread_cond_init(&pool_go, 0);
    pthread_cond_init(&pool_done, 0);
}

void repro_set_threads(int64_t n) {
    if (!pool_atfork_set) {
        pool_atfork_set = 1;
        pthread_atfork(0, 0, pool_child_reset);
    }
    if (n < 1) n = 1;
    if (n > POOL_MAX + 1) n = POOL_MAX + 1;
    pool_target = (int)n;
}

int64_t repro_get_threads(void) { return (int64_t)pool_target; }

static void pool_run(pool_task_fn fn, void* arg, int64_t want) {
    if (want > pool_target) want = pool_target;
    if (want <= 1) { fn(arg, 0, 1); return; }
    pthread_mutex_lock(&pool_dispatch_mu);
    pthread_mutex_lock(&pool_mu);
    int need = (int)want - 1;
    if (need > POOL_MAX) need = POOL_MAX;
    while (pool_workers < need) {
        pthread_t t;
        pthread_attr_t at;
        pthread_attr_init(&at);
        pthread_attr_setdetachstate(&at, PTHREAD_CREATE_DETACHED);
        int rc = pthread_create(&t, &at, pool_worker,
                                (void*)(size_t)pool_workers);
        pthread_attr_destroy(&at);
        if (rc != 0) break;
        pool_workers++;
    }
    int64_t parts = (int64_t)pool_workers + 1;
    if (parts > want) parts = want;
    if (parts <= 1) {
        pthread_mutex_unlock(&pool_mu);
        pthread_mutex_unlock(&pool_dispatch_mu);
        fn(arg, 0, 1);
        return;
    }
    pool_fn = fn;
    pool_arg = arg;
    pool_nparts = parts;
    pool_remaining = pool_workers;  /* every worker wakes and checks in */
    pool_gen++;
    pthread_cond_broadcast(&pool_go);
    pthread_mutex_unlock(&pool_mu);
    fn(arg, 0, parts);
    pthread_mutex_lock(&pool_mu);
    while (pool_remaining != 0)
        pthread_cond_wait(&pool_done, &pool_mu);
    pthread_mutex_unlock(&pool_mu);
    pthread_mutex_unlock(&pool_dispatch_mu);
}

/* Contiguous [lo, hi) share of `total` for this part; remainders go to
 * the low parts so shares differ by at most one. */
static void part_range(int64_t total, int64_t part, int64_t nparts,
                       int64_t* lo, int64_t* hi) {
    int64_t base = total / nparts, rem = total % nparts;
    *lo = part * base + (part < rem ? part : rem);
    *hi = *lo + base + (part < rem ? 1 : 0);
}

/* Reduced-table layouts: r0/r1 have 2^16 rows, r2 has 2^17 rows; each row
 * holds H contiguous uint16 pre-masked bucket values (one per sketch row).
 * Counter tables are C-contiguous (H, K) float64.  Polynomial coefficient
 * matrices are C-contiguous (H, degree) uint64, constant term first. */

/* The strip working set (a few MB, random access) misses L2 on most keys;
 * prefetching a handful of items ahead hides much of that latency. */
#if defined(__GNUC__) || defined(__clang__)
#define TAB_PREFETCH(p) __builtin_prefetch((p), 0, 1)
#else
#define TAB_PREFETCH(p)
#endif
#define TAB_PF_DIST 8

#define TAB_PF_AHEAD(H)                                                     \
    if (j + TAB_PF_DIST < n) {                                              \
        uint64_t pk = keys[j + TAB_PF_DIST];                                \
        size_t p0 = (size_t)(pk & 0xFFFFu);                                 \
        size_t p1 = (size_t)((pk >> 16) & 0xFFFFu);                         \
        TAB_PREFETCH(r0 + p0 * (size_t)(H));                                \
        TAB_PREFETCH(r1 + p1 * (size_t)(H));                                \
        TAB_PREFETCH(r2 + (p0 + p1) * (size_t)(H));                         \
    }

void tab_hash_u16(const uint64_t* keys, int64_t n, int64_t h_rows,
                  const uint16_t* r0, const uint16_t* r1, const uint16_t* r2,
                  int64_t* out) {
    for (int64_t j = 0; j < n; ++j) {
        TAB_PF_AHEAD(h_rows)
        uint64_t key = keys[j];
        size_t c0 = (size_t)(key & 0xFFFFu);
        size_t c1 = (size_t)((key >> 16) & 0xFFFFu);
        const uint16_t* a = r0 + c0 * (size_t)h_rows;
        const uint16_t* b = r1 + c1 * (size_t)h_rows;
        const uint16_t* c = r2 + (c0 + c1) * (size_t)h_rows;
        for (int64_t i = 0; i < h_rows; ++i)
            out[i * n + j] = (int64_t)(uint16_t)(a[i] ^ b[i] ^ c[i]);
    }
}

/* Fused UPDATE runs in two phases over fixed-size blocks: phase one
 * resolves each key's H buckets (strip gathers, the memory-bound part,
 * with prefetch ahead), phase two scatters the block row by row so each
 * table row streams through cache once per block instead of being
 * interleaved with three strip gathers per key.  ~20% over the straight
 * per-key loop on the benchmark box.  Per table cell the accumulation is
 * still stream order -- blocks are processed in order and phase two
 * walks each row's block slice in key order -- so the result stays
 * bit-identical to per-row np.add.at.  The row loop fully unrolls when
 * H is a compile-time constant; dispatch the common depths to
 * specialized instantiations and everything else to the generic loop. */
#define TAB_UPDATE_BLOCK 256

#define TAB_UPDATE_BODY(H)                                                  \
    uint16_t bk[TAB_UPDATE_BLOCK * (H)];                                    \
    for (int64_t s = 0; s < n; s += TAB_UPDATE_BLOCK) {                     \
        int64_t e = s + TAB_UPDATE_BLOCK < n ? s + TAB_UPDATE_BLOCK : n;    \
        for (int64_t j = s; j < e; ++j) {                                   \
            TAB_PF_AHEAD(H)                                                 \
            uint64_t key = keys[j];                                         \
            size_t c0 = (size_t)(key & 0xFFFFu);                            \
            size_t c1 = (size_t)((key >> 16) & 0xFFFFu);                    \
            const uint16_t* a = r0 + c0 * (size_t)(H);                      \
            const uint16_t* b = r1 + c1 * (size_t)(H);                      \
            const uint16_t* c = r2 + (c0 + c1) * (size_t)(H);               \
            uint16_t* o = bk + (j - s) * (H);                               \
            for (int64_t i = 0; i < (H); ++i)                               \
                o[i] = (uint16_t)(a[i] ^ b[i] ^ c[i]);                      \
        }                                                                   \
        for (int64_t i = 0; i < (H); ++i) {                                 \
            double* trow = table + i * k_width;                             \
            for (int64_t j = s; j < e; ++j)                                 \
                trow[bk[(j - s) * (H) + i]] += values[j];                   \
        }                                                                   \
    }

#define TAB_UPDATE_SPEC(H)                                                  \
    static void tab_update_h##H(const uint64_t* keys, const double* values, \
                                int64_t n, int64_t k_width,                 \
                                const uint16_t* r0, const uint16_t* r1,     \
                                const uint16_t* r2, double* table) {        \
        TAB_UPDATE_BODY(H)                                                  \
    }

TAB_UPDATE_SPEC(1)
TAB_UPDATE_SPEC(3)
TAB_UPDATE_SPEC(5)
TAB_UPDATE_SPEC(7)

void tab_update_u16(const uint64_t* keys, const double* values, int64_t n,
                    int64_t h_rows, int64_t k_width,
                    const uint16_t* r0, const uint16_t* r1, const uint16_t* r2,
                    double* table) {
    switch (h_rows) {
    case 1: tab_update_h1(keys, values, n, k_width, r0, r1, r2, table); return;
    case 3: tab_update_h3(keys, values, n, k_width, r0, r1, r2, table); return;
    case 5: tab_update_h5(keys, values, n, k_width, r0, r1, r2, table); return;
    case 7: tab_update_h7(keys, values, n, k_width, r0, r1, r2, table); return;
    default: break;
    }
    TAB_UPDATE_BODY(h_rows)
}

/* Count-Sketch fused update: bucket tables give the cell, sign tables
 * (pre-masked to one bit) give the +/- orientation. */
void tab_update_signed_u16(const uint64_t* keys, const double* values,
                           int64_t n, int64_t h_rows, int64_t k_width,
                           const uint16_t* r0, const uint16_t* r1,
                           const uint16_t* r2, const uint16_t* s0,
                           const uint16_t* s1, const uint16_t* s2,
                           double* table) {
    for (int64_t j = 0; j < n; ++j) {
        uint64_t key = keys[j];
        size_t c0 = (size_t)(key & 0xFFFFu);
        size_t c1 = (size_t)((key >> 16) & 0xFFFFu);
        size_t c2 = c0 + c1;
        double v = values[j];
        const uint16_t* a = r0 + c0 * (size_t)h_rows;
        const uint16_t* b = r1 + c1 * (size_t)h_rows;
        const uint16_t* c = r2 + c2 * (size_t)h_rows;
        const uint16_t* sa = s0 + c0 * (size_t)h_rows;
        const uint16_t* sb = s1 + c1 * (size_t)h_rows;
        const uint16_t* sc = s2 + c2 * (size_t)h_rows;
        for (int64_t i = 0; i < h_rows; ++i) {
            uint16_t bucket = (uint16_t)(a[i] ^ b[i] ^ c[i]);
            uint16_t bit = (uint16_t)(sa[i] ^ sb[i] ^ sc[i]);
            table[i * k_width + bucket] += bit ? v : -v;
        }
    }
}

void tab_gather_u16(const uint64_t* keys, int64_t n, int64_t h_rows,
                    int64_t k_width, const uint16_t* r0, const uint16_t* r1,
                    const uint16_t* r2, const double* table, double* out) {
    for (int64_t j = 0; j < n; ++j) {
        TAB_PF_AHEAD(h_rows)
        uint64_t key = keys[j];
        size_t c0 = (size_t)(key & 0xFFFFu);
        size_t c1 = (size_t)((key >> 16) & 0xFFFFu);
        const uint16_t* a = r0 + c0 * (size_t)h_rows;
        const uint16_t* b = r1 + c1 * (size_t)h_rows;
        const uint16_t* c = r2 + (c0 + c1) * (size_t)h_rows;
        for (int64_t i = 0; i < h_rows; ++i) {
            uint16_t bucket = (uint16_t)(a[i] ^ b[i] ^ c[i]);
            out[i * n + j] = table[i * k_width + bucket];
        }
    }
}

/* np.median over axis 0 of an (H, n) array, one key at a time: sort the
 * H per-row values (insertion sort; H <= 64) and take the middle element
 * (odd H) or the mean of the two middle elements (even H).  np.partition
 * selects the same order statistics and np.mean of two doubles is
 * (lo + hi) / 2, so the result is bit-identical for finite inputs. */
static double row_median(double* m, int64_t h) {
    for (int64_t i = 1; i < h; ++i) {
        double v = m[i];
        int64_t p = i;
        while (p > 0 && m[p - 1] > v) { m[p] = m[p - 1]; --p; }
        m[p] = v;
    }
    return (h & 1) ? m[h / 2] : (m[h / 2 - 1] + m[h / 2]) / 2.0;
}

#define EST_MAX_H 64

/* Fused k-ary ESTIMATE: hash, gather, (cell - mean_share) / denom, and
 * the median across rows in one pass per key.  mean_share and denom are
 * computed by the caller exactly as the NumPy path does, so the
 * per-element transform is the same IEEE operation sequence. */
void tab_estimate_u16(const uint64_t* keys, int64_t n, int64_t h_rows,
                      int64_t k_width, const uint16_t* r0, const uint16_t* r1,
                      const uint16_t* r2, const double* table,
                      double mean_share, double denom, double* out) {
    double buf[EST_MAX_H];
    for (int64_t j = 0; j < n; ++j) {
        TAB_PF_AHEAD(h_rows)
        uint64_t key = keys[j];
        size_t c0 = (size_t)(key & 0xFFFFu);
        size_t c1 = (size_t)((key >> 16) & 0xFFFFu);
        const uint16_t* a = r0 + c0 * (size_t)h_rows;
        const uint16_t* b = r1 + c1 * (size_t)h_rows;
        const uint16_t* c = r2 + (c0 + c1) * (size_t)h_rows;
        for (int64_t i = 0; i < h_rows; ++i) {
            uint16_t bucket = (uint16_t)(a[i] ^ b[i] ^ c[i]);
            buf[i] = (table[i * k_width + bucket] - mean_share) / denom;
        }
        out[j] = row_median(buf, h_rows);
    }
}

/* --- Carter-Wegman polynomial hashing over P61 = 2^61 - 1 -------------
 * Replicates repro.hashing.carter_wegman._mulmod_p61's 32-bit-split fold
 * exactly: every operation is uint64 arithmetic mod 2^64 (C unsigned
 * semantics == NumPy uint64 semantics), so results are bit-identical to
 * the vectorized NumPy path. */

#define P61 2305843009213693951ULL
#define MASK29 ((1ULL << 29) - 1)
#define MASK32 0xFFFFFFFFULL

static inline uint64_t mulmod_p61(uint64_t a, uint64_t b) {
    uint64_t a_hi = a >> 32, a_lo = a & MASK32;
    uint64_t b_hi = b >> 32, b_lo = b & MASK32;
    uint64_t hh = a_hi * b_hi;                 /* < 2^58 */
    uint64_t mid = a_hi * b_lo + a_lo * b_hi;  /* < 2^62 */
    uint64_t ll = a_lo * b_lo;
    uint64_t acc = hh << 3;                    /* hh * 2^64 === hh * 8 */
    acc += mid >> 29;                          /* m_hi * 2^61 === m_hi */
    acc += (mid & MASK29) << 32;
    acc += (ll >> 61) + (ll & P61);
    acc = (acc >> 61) + (acc & P61);
    if (acc >= P61) acc -= P61;
    return acc;
}

static inline uint64_t key_to_field(uint64_t key) {
    uint64_t x = (key >> 61) + (key & P61);
    if (x >= P61) x -= P61;
    return x;
}

/* Horner: (((c[d-1] x + c[d-2]) x + ...) x + c[0]), coefficients < P61. */
static inline uint64_t poly_eval(const uint64_t* c, int64_t degree,
                                 uint64_t x) {
    uint64_t acc = c[degree - 1];
    for (int64_t j = degree - 2; j >= 0; --j) {
        acc = mulmod_p61(acc, x);
        acc += c[j];                           /* < 2^62, no overflow */
        if (acc >= P61) acc -= P61;
    }
    return acc;
}

void poly_hash(const uint64_t* keys, int64_t n, int64_t h_rows,
               int64_t degree, const uint64_t* coeffs, int64_t num_buckets,
               int64_t* out) {
    uint64_t k = (uint64_t)num_buckets;
    for (int64_t j = 0; j < n; ++j) {
        uint64_t x = key_to_field(keys[j]);
        for (int64_t i = 0; i < h_rows; ++i)
            out[i * n + j] =
                (int64_t)(poly_eval(coeffs + i * degree, degree, x) % k);
    }
}

void poly_update(const uint64_t* keys, const double* values, int64_t n,
                 int64_t h_rows, int64_t degree, const uint64_t* coeffs,
                 int64_t k_width, double* table) {
    uint64_t k = (uint64_t)k_width;
    for (int64_t j = 0; j < n; ++j) {
        uint64_t x = key_to_field(keys[j]);
        double v = values[j];
        for (int64_t i = 0; i < h_rows; ++i) {
            uint64_t bucket = poly_eval(coeffs + i * degree, degree, x) % k;
            table[i * k_width + (int64_t)bucket] += v;
        }
    }
}

void poly_update_signed(const uint64_t* keys, const double* values,
                        int64_t n, int64_t h_rows, int64_t degree,
                        const uint64_t* bcoeffs, int64_t k_width,
                        const uint64_t* scoeffs, double* table) {
    uint64_t k = (uint64_t)k_width;
    for (int64_t j = 0; j < n; ++j) {
        uint64_t x = key_to_field(keys[j]);
        double v = values[j];
        for (int64_t i = 0; i < h_rows; ++i) {
            uint64_t bucket = poly_eval(bcoeffs + i * degree, degree, x) % k;
            uint64_t bit = poly_eval(scoeffs + i * degree, degree, x) & 1u;
            table[i * k_width + (int64_t)bucket] += bit ? v : -v;
        }
    }
}

void poly_gather(const uint64_t* keys, int64_t n, int64_t h_rows,
                 int64_t degree, const uint64_t* coeffs, int64_t k_width,
                 const double* table, double* out) {
    uint64_t k = (uint64_t)k_width;
    for (int64_t j = 0; j < n; ++j) {
        uint64_t x = key_to_field(keys[j]);
        for (int64_t i = 0; i < h_rows; ++i) {
            uint64_t bucket = poly_eval(coeffs + i * degree, degree, x) % k;
            out[i * n + j] = table[i * k_width + (int64_t)bucket];
        }
    }
}

void poly_estimate(const uint64_t* keys, int64_t n, int64_t h_rows,
                   int64_t degree, const uint64_t* coeffs, int64_t k_width,
                   const double* table, double mean_share, double denom,
                   double* out) {
    uint64_t k = (uint64_t)k_width;
    double buf[EST_MAX_H];
    for (int64_t j = 0; j < n; ++j) {
        uint64_t x = key_to_field(keys[j]);
        for (int64_t i = 0; i < h_rows; ++i) {
            uint64_t bucket = poly_eval(coeffs + i * degree, degree, x) % k;
            buf[i] = (table[i * k_width + (int64_t)bucket] - mean_share)
                     / denom;
        }
        out[j] = row_median(buf, h_rows);
    }
}

/* Precomputed-index variants: serve UPDATE/gather/ESTIMATE when the
 * (H, n) bucket indices already exist (e.g. from the persistent
 * bucket-index cache), skipping the hash entirely.  Per-row stream order
 * matches the per-row np.add.at reference, so accumulation is
 * bit-identical. */
void idx_update(const int64_t* idx, const double* values, int64_t n,
                int64_t h_rows, int64_t k_width, double* table) {
    for (int64_t i = 0; i < h_rows; ++i) {
        const int64_t* row = idx + i * n;
        double* trow = table + i * k_width;
        for (int64_t j = 0; j < n; ++j)
            trow[row[j]] += values[j];
    }
}

void idx_gather(const int64_t* idx, int64_t n, int64_t h_rows,
                int64_t k_width, const double* table, double* out) {
    for (int64_t i = 0; i < h_rows; ++i) {
        const int64_t* row = idx + i * n;
        const double* trow = table + i * k_width;
        double* orow = out + i * n;
        for (int64_t j = 0; j < n; ++j)
            orow[j] = trow[row[j]];
    }
}

void idx_estimate(const int64_t* idx, int64_t n, int64_t h_rows,
                  int64_t k_width, const double* table, double mean_share,
                  double denom, double* out) {
    double buf[EST_MAX_H];
    for (int64_t j = 0; j < n; ++j) {
        for (int64_t i = 0; i < h_rows; ++i)
            buf[i] = (table[i * k_width + idx[i * n + j]] - mean_share)
                     / denom;
        out[j] = row_median(buf, h_rows);
    }
}

/* --- Invertible-sketch majority-vote candidate maintenance -------------
 * Each (row, bucket) of an invertible k-ary sketch carries a candidate
 * (key, vote) pair updated with the MV rule:
 *     candidate == key  ->  vote += w
 *     vote >= w         ->  vote -= w
 *     otherwise         ->  candidate = key, vote = w - vote
 * Callers aggregate the batch per unique key first (np.unique + bincount)
 * and pass the keys in ascending order, so every (row, bucket) cell sees
 * the same operation sequence here, in the item-major tabulation variant,
 * and in the vectorized NumPy fallback -- votes are bit-identical across
 * all three.  Candidate keys live in the uint64 bit-cast view of a
 * float64 plane; votes in a plain float64 plane. */
void tab_update_mv(const uint64_t* keys, const double* weights, int64_t n,
                   int64_t h_rows, int64_t k_width,
                   const uint16_t* r0, const uint16_t* r1, const uint16_t* r2,
                   uint64_t* cand, double* votes) {
    for (int64_t j = 0; j < n; ++j) {
        TAB_PF_AHEAD(h_rows)
        uint64_t key = keys[j];
        size_t c0 = (size_t)(key & 0xFFFFu);
        size_t c1 = (size_t)((key >> 16) & 0xFFFFu);
        const uint16_t* a = r0 + c0 * (size_t)h_rows;
        const uint16_t* b = r1 + c1 * (size_t)h_rows;
        const uint16_t* c = r2 + (c0 + c1) * (size_t)h_rows;
        double w = weights[j];
        for (int64_t i = 0; i < h_rows; ++i) {
            int64_t cell = i * k_width + (uint16_t)(a[i] ^ b[i] ^ c[i]);
            if (cand[cell] == key) votes[cell] += w;
            else if (votes[cell] >= w) votes[cell] -= w;
            else { cand[cell] = key; votes[cell] = w - votes[cell]; }
        }
    }
}

void idx_update_mv(const int64_t* idx, const uint64_t* keys,
                   const double* weights, int64_t n, int64_t h_rows,
                   int64_t k_width, uint64_t* cand, double* votes) {
    for (int64_t i = 0; i < h_rows; ++i) {
        const int64_t* row = idx + i * n;
        uint64_t* crow = cand + i * k_width;
        double* vrow = votes + i * k_width;
        for (int64_t j = 0; j < n; ++j) {
            int64_t b = row[j];
            double w = weights[j];
            uint64_t key = keys[j];
            if (crow[b] == key) vrow[b] += w;
            else if (vrow[b] >= w) vrow[b] -= w;
            else { crow[b] = key; vrow[b] = w - vrow[b]; }
        }
    }
}

/* COMBINE-side candidate merge: fold one term's candidate planes into the
 * accumulator's with the MV rule, the term's votes pre-scaled by |coeff|.
 * Cells are independent, so one fused streaming pass replaces the NumPy
 * fold's chain of full-plane temporaries -- this runs twice per forecast
 * step (error and level COMBINE) and dominates the invertible seal cost
 * at production widths without it.  The per-cell arithmetic matches the
 * vectorized fallback operation for operation, so planes stay
 * bit-identical either way. */
void mv_merge(uint64_t* cand_a, double* votes_a,
              const uint64_t* cand_b, const double* votes_b,
              double coeff, int64_t n) {
    for (int64_t j = 0; j < n; ++j) {
        double tv = votes_b[j] * coeff;
        if (cand_a[j] == cand_b[j]) votes_a[j] += tv;
        else if (votes_a[j] >= tv) votes_a[j] -= tv;
        else { cand_a[j] = cand_b[j]; votes_a[j] = tv - votes_a[j]; }
    }
}

/* Two-term COMBINE of candidate planes in one pass: the forecast hot
 * path (error = observed - predicted, EWMA level = a*obs + (1-a)*level)
 * always folds exactly two terms into a scratch, which the generic path
 * does as copy+scale then mv_merge -- two full-plane passes.  This
 * fuses them: per cell, scale both votes by their |coeff| and resolve
 * the MV rule directly into the output.  The arithmetic is
 * operation-for-operation the two-pass sequence's (same products, same
 * compare, same add/subtract), so planes stay bit-identical.  The
 * output planes must not alias either input. */
void mv_combine2(const uint64_t* ck_a, const double* cv_a, double coeff_a,
                 const uint64_t* ck_b, const double* cv_b, double coeff_b,
                 uint64_t* out_k, double* out_v, int64_t n) {
    for (int64_t j = 0; j < n; ++j) {
        double av = cv_a[j] * coeff_a;
        double bv = cv_b[j] * coeff_b;
        if (ck_a[j] == ck_b[j]) { out_k[j] = ck_a[j]; out_v[j] = av + bv; }
        else if (av >= bv)      { out_k[j] = ck_a[j]; out_v[j] = av - bv; }
        else                    { out_k[j] = ck_b[j]; out_v[j] = bv - av; }
    }
}

/* Recovery walk: mark buckets whose single-row unbiased estimate
 * magnitude clears the threshold (strictly exceeds zero when the
 * threshold is zero, matching the detection layer's alarm rule) and
 * that hold a live vote.  One fused pass over counters and votes
 * replaces the NumPy walk's full-plane temporaries (estimate, abs,
 * two masks); the arithmetic is operation-for-operation the fallback's,
 * so the mask is identical either way. */
void mv_recover_mask(const double* table, const double* votes,
                     double mean_share, double denom, double threshold,
                     int64_t n, uint8_t* mask) {
    for (int64_t j = 0; j < n; ++j) {
        double est = (table[j] - mean_share) / denom;
        double mag = est < 0.0 ? -est : est;
        int pass = threshold > 0.0 ? (mag >= threshold) : (mag > 0.0);
        mask[j] = (uint8_t)(pass && votes[j] > 0.0);
    }
}

/* --- Thread-parallel variants ------------------------------------------
 * UPDATE-family kernels shard by sketch ROW: each thread owns a
 * contiguous band of the H rows and scans the whole key batch, so no two
 * threads ever touch the same table cell -- no atomics, no locks, and
 * every cell still accumulates in key stream order, which is exactly the
 * per-row np.add.at reference order.  Bit-identity with the serial
 * kernels and the NumPy fallback therefore holds by construction, at any
 * thread count.  ESTIMATE-family kernels shard by KEY instead (out[j]
 * depends only on key j), which keeps parallelism available when H is
 * small; each out[j] is written by exactly one thread with the same
 * arithmetic as the serial kernel. */

static void tab_update_rows(const uint64_t* keys, const double* values,
                            int64_t n, int64_t h_rows, int64_t k_width,
                            const uint16_t* r0, const uint16_t* r1,
                            const uint16_t* r2, double* table,
                            int64_t lo, int64_t hi) {
    uint16_t bk[TAB_UPDATE_BLOCK * EST_MAX_H];
    for (int64_t rl = lo; rl < hi; rl += EST_MAX_H) {
        int64_t rh = rl + EST_MAX_H < hi ? rl + EST_MAX_H : hi;
        int64_t span = rh - rl;
        for (int64_t s = 0; s < n; s += TAB_UPDATE_BLOCK) {
            int64_t e = s + TAB_UPDATE_BLOCK < n ? s + TAB_UPDATE_BLOCK : n;
            for (int64_t j = s; j < e; ++j) {
                TAB_PF_AHEAD(h_rows)
                uint64_t key = keys[j];
                size_t c0 = (size_t)(key & 0xFFFFu);
                size_t c1 = (size_t)((key >> 16) & 0xFFFFu);
                const uint16_t* a = r0 + c0 * (size_t)h_rows + rl;
                const uint16_t* b = r1 + c1 * (size_t)h_rows + rl;
                const uint16_t* c = r2 + (c0 + c1) * (size_t)h_rows + rl;
                uint16_t* o = bk + (j - s) * span;
                for (int64_t i = 0; i < span; ++i)
                    o[i] = (uint16_t)(a[i] ^ b[i] ^ c[i]);
            }
            for (int64_t i = 0; i < span; ++i) {
                double* trow = table + (rl + i) * k_width;
                for (int64_t j = s; j < e; ++j)
                    trow[bk[(j - s) * span + i]] += values[j];
            }
        }
    }
}

static void tab_update_signed_rows(const uint64_t* keys, const double* values,
                                   int64_t n, int64_t h_rows, int64_t k_width,
                                   const uint16_t* r0, const uint16_t* r1,
                                   const uint16_t* r2, const uint16_t* s0,
                                   const uint16_t* s1, const uint16_t* s2,
                                   double* table, int64_t lo, int64_t hi) {
    for (int64_t j = 0; j < n; ++j) {
        uint64_t key = keys[j];
        size_t c0 = (size_t)(key & 0xFFFFu);
        size_t c1 = (size_t)((key >> 16) & 0xFFFFu);
        size_t c2 = c0 + c1;
        double v = values[j];
        const uint16_t* a = r0 + c0 * (size_t)h_rows;
        const uint16_t* b = r1 + c1 * (size_t)h_rows;
        const uint16_t* c = r2 + c2 * (size_t)h_rows;
        const uint16_t* sa = s0 + c0 * (size_t)h_rows;
        const uint16_t* sb = s1 + c1 * (size_t)h_rows;
        const uint16_t* sc = s2 + c2 * (size_t)h_rows;
        for (int64_t i = lo; i < hi; ++i) {
            uint16_t bucket = (uint16_t)(a[i] ^ b[i] ^ c[i]);
            uint16_t bit = (uint16_t)(sa[i] ^ sb[i] ^ sc[i]);
            table[i * k_width + bucket] += bit ? v : -v;
        }
    }
}

static void poly_update_rows(const uint64_t* keys, const double* values,
                             int64_t n, int64_t h_rows, int64_t degree,
                             const uint64_t* coeffs, int64_t k_width,
                             double* table, int64_t lo, int64_t hi) {
    uint64_t k = (uint64_t)k_width;
    for (int64_t j = 0; j < n; ++j) {
        uint64_t x = key_to_field(keys[j]);
        double v = values[j];
        for (int64_t i = lo; i < hi; ++i) {
            uint64_t bucket = poly_eval(coeffs + i * degree, degree, x) % k;
            table[i * k_width + (int64_t)bucket] += v;
        }
    }
}

static void poly_update_signed_rows(const uint64_t* keys,
                                    const double* values, int64_t n,
                                    int64_t h_rows, int64_t degree,
                                    const uint64_t* bcoeffs, int64_t k_width,
                                    const uint64_t* scoeffs, double* table,
                                    int64_t lo, int64_t hi) {
    uint64_t k = (uint64_t)k_width;
    for (int64_t j = 0; j < n; ++j) {
        uint64_t x = key_to_field(keys[j]);
        double v = values[j];
        for (int64_t i = lo; i < hi; ++i) {
            uint64_t bucket = poly_eval(bcoeffs + i * degree, degree, x) % k;
            uint64_t bit = poly_eval(scoeffs + i * degree, degree, x) & 1u;
            table[i * k_width + (int64_t)bucket] += bit ? v : -v;
        }
    }
}

static void tab_update_mv_rows(const uint64_t* keys, const double* weights,
                               int64_t n, int64_t h_rows, int64_t k_width,
                               const uint16_t* r0, const uint16_t* r1,
                               const uint16_t* r2, uint64_t* cand,
                               double* votes, int64_t lo, int64_t hi) {
    for (int64_t j = 0; j < n; ++j) {
        uint64_t key = keys[j];
        size_t c0 = (size_t)(key & 0xFFFFu);
        size_t c1 = (size_t)((key >> 16) & 0xFFFFu);
        const uint16_t* a = r0 + c0 * (size_t)h_rows;
        const uint16_t* b = r1 + c1 * (size_t)h_rows;
        const uint16_t* c = r2 + (c0 + c1) * (size_t)h_rows;
        double w = weights[j];
        for (int64_t i = lo; i < hi; ++i) {
            int64_t cell = i * k_width + (uint16_t)(a[i] ^ b[i] ^ c[i]);
            if (cand[cell] == key) votes[cell] += w;
            else if (votes[cell] >= w) votes[cell] -= w;
            else { cand[cell] = key; votes[cell] = w - votes[cell]; }
        }
    }
}

static void idx_estimate_range(const int64_t* idx, int64_t n, int64_t h_rows,
                               int64_t k_width, const double* table,
                               double mean_share, double denom, double* out,
                               int64_t jlo, int64_t jhi) {
    double buf[EST_MAX_H];
    for (int64_t j = jlo; j < jhi; ++j) {
        for (int64_t i = 0; i < h_rows; ++i)
            buf[i] = (table[i * k_width + idx[i * n + j]] - mean_share)
                     / denom;
        out[j] = row_median(buf, h_rows);
    }
}

typedef struct {
    const uint64_t* keys;
    const double* values;
    const int64_t* idx;
    int64_t n, h, k, degree;
    const uint16_t *r0, *r1, *r2, *s0, *s1, *s2;
    const uint64_t *bcoeffs, *scoeffs;
    const double* rtable;
    double* table;
    uint64_t* cand;
    double* votes;
    double mean_share, denom;
    double* out;
} mt_ctx;

static void mt_tab_update(void* argp, int64_t part, int64_t nparts) {
    mt_ctx* c = (mt_ctx*)argp;
    int64_t lo, hi;
    part_range(c->h, part, nparts, &lo, &hi);
    if (lo < hi)
        tab_update_rows(c->keys, c->values, c->n, c->h, c->k,
                        c->r0, c->r1, c->r2, c->table, lo, hi);
}

static void mt_tab_update_signed(void* argp, int64_t part, int64_t nparts) {
    mt_ctx* c = (mt_ctx*)argp;
    int64_t lo, hi;
    part_range(c->h, part, nparts, &lo, &hi);
    if (lo < hi)
        tab_update_signed_rows(c->keys, c->values, c->n, c->h, c->k,
                               c->r0, c->r1, c->r2, c->s0, c->s1, c->s2,
                               c->table, lo, hi);
}

static void mt_poly_update(void* argp, int64_t part, int64_t nparts) {
    mt_ctx* c = (mt_ctx*)argp;
    int64_t lo, hi;
    part_range(c->h, part, nparts, &lo, &hi);
    if (lo < hi)
        poly_update_rows(c->keys, c->values, c->n, c->h, c->degree,
                         c->bcoeffs, c->k, c->table, lo, hi);
}

static void mt_poly_update_signed(void* argp, int64_t part, int64_t nparts) {
    mt_ctx* c = (mt_ctx*)argp;
    int64_t lo, hi;
    part_range(c->h, part, nparts, &lo, &hi);
    if (lo < hi)
        poly_update_signed_rows(c->keys, c->values, c->n, c->h, c->degree,
                                c->bcoeffs, c->k, c->scoeffs, c->table,
                                lo, hi);
}

static void mt_idx_update(void* argp, int64_t part, int64_t nparts) {
    mt_ctx* c = (mt_ctx*)argp;
    int64_t lo, hi;
    part_range(c->h, part, nparts, &lo, &hi);
    if (lo < hi)
        idx_update(c->idx + lo * c->n, c->values, c->n, hi - lo, c->k,
                   c->table + lo * c->k);
}

static void mt_tab_update_mv(void* argp, int64_t part, int64_t nparts) {
    mt_ctx* c = (mt_ctx*)argp;
    int64_t lo, hi;
    part_range(c->h, part, nparts, &lo, &hi);
    if (lo < hi)
        tab_update_mv_rows(c->keys, c->values, c->n, c->h, c->k,
                           c->r0, c->r1, c->r2, c->cand, c->votes, lo, hi);
}

static void mt_idx_update_mv(void* argp, int64_t part, int64_t nparts) {
    mt_ctx* c = (mt_ctx*)argp;
    int64_t lo, hi;
    part_range(c->h, part, nparts, &lo, &hi);
    if (lo < hi)
        idx_update_mv(c->idx + lo * c->n, c->keys, c->values, c->n,
                      hi - lo, c->k, c->cand + lo * c->k,
                      c->votes + lo * c->k);
}

static void mt_tab_estimate(void* argp, int64_t part, int64_t nparts) {
    mt_ctx* c = (mt_ctx*)argp;
    int64_t lo, hi;
    part_range(c->n, part, nparts, &lo, &hi);
    if (lo < hi)
        tab_estimate_u16(c->keys + lo, hi - lo, c->h, c->k,
                         c->r0, c->r1, c->r2, c->rtable,
                         c->mean_share, c->denom, c->out + lo);
}

static void mt_poly_estimate(void* argp, int64_t part, int64_t nparts) {
    mt_ctx* c = (mt_ctx*)argp;
    int64_t lo, hi;
    part_range(c->n, part, nparts, &lo, &hi);
    if (lo < hi)
        poly_estimate(c->keys + lo, hi - lo, c->h, c->degree, c->bcoeffs,
                      c->k, c->rtable, c->mean_share, c->denom, c->out + lo);
}

static void mt_idx_estimate(void* argp, int64_t part, int64_t nparts) {
    mt_ctx* c = (mt_ctx*)argp;
    int64_t lo, hi;
    part_range(c->n, part, nparts, &lo, &hi);
    if (lo < hi)
        idx_estimate_range(c->idx, c->n, c->h, c->k, c->rtable,
                           c->mean_share, c->denom, c->out, lo, hi);
}

void tab_update_u16_mt(const uint64_t* keys, const double* values, int64_t n,
                       int64_t h_rows, int64_t k_width,
                       const uint16_t* r0, const uint16_t* r1,
                       const uint16_t* r2, double* table) {
    mt_ctx c = {0};
    c.keys = keys; c.values = values; c.n = n; c.h = h_rows; c.k = k_width;
    c.r0 = r0; c.r1 = r1; c.r2 = r2; c.table = table;
    pool_run(mt_tab_update, &c, h_rows);
}

void tab_update_signed_u16_mt(const uint64_t* keys, const double* values,
                              int64_t n, int64_t h_rows, int64_t k_width,
                              const uint16_t* r0, const uint16_t* r1,
                              const uint16_t* r2, const uint16_t* s0,
                              const uint16_t* s1, const uint16_t* s2,
                              double* table) {
    mt_ctx c = {0};
    c.keys = keys; c.values = values; c.n = n; c.h = h_rows; c.k = k_width;
    c.r0 = r0; c.r1 = r1; c.r2 = r2; c.s0 = s0; c.s1 = s1; c.s2 = s2;
    c.table = table;
    pool_run(mt_tab_update_signed, &c, h_rows);
}

void poly_update_mt(const uint64_t* keys, const double* values, int64_t n,
                    int64_t h_rows, int64_t degree, const uint64_t* coeffs,
                    int64_t k_width, double* table) {
    mt_ctx c = {0};
    c.keys = keys; c.values = values; c.n = n; c.h = h_rows;
    c.degree = degree; c.bcoeffs = coeffs; c.k = k_width; c.table = table;
    pool_run(mt_poly_update, &c, h_rows);
}

void poly_update_signed_mt(const uint64_t* keys, const double* values,
                           int64_t n, int64_t h_rows, int64_t degree,
                           const uint64_t* bcoeffs, int64_t k_width,
                           const uint64_t* scoeffs, double* table) {
    mt_ctx c = {0};
    c.keys = keys; c.values = values; c.n = n; c.h = h_rows;
    c.degree = degree; c.bcoeffs = bcoeffs; c.k = k_width;
    c.scoeffs = scoeffs; c.table = table;
    pool_run(mt_poly_update_signed, &c, h_rows);
}

void idx_update_mt(const int64_t* idx, const double* values, int64_t n,
                   int64_t h_rows, int64_t k_width, double* table) {
    mt_ctx c = {0};
    c.idx = idx; c.values = values; c.n = n; c.h = h_rows; c.k = k_width;
    c.table = table;
    pool_run(mt_idx_update, &c, h_rows);
}

void tab_update_mv_mt(const uint64_t* keys, const double* weights, int64_t n,
                      int64_t h_rows, int64_t k_width,
                      const uint16_t* r0, const uint16_t* r1,
                      const uint16_t* r2, uint64_t* cand, double* votes) {
    mt_ctx c = {0};
    c.keys = keys; c.values = weights; c.n = n; c.h = h_rows; c.k = k_width;
    c.r0 = r0; c.r1 = r1; c.r2 = r2; c.cand = cand; c.votes = votes;
    pool_run(mt_tab_update_mv, &c, h_rows);
}

void idx_update_mv_mt(const int64_t* idx, const uint64_t* keys,
                      const double* weights, int64_t n, int64_t h_rows,
                      int64_t k_width, uint64_t* cand, double* votes) {
    mt_ctx c = {0};
    c.idx = idx; c.keys = keys; c.values = weights; c.n = n; c.h = h_rows;
    c.k = k_width; c.cand = cand; c.votes = votes;
    pool_run(mt_idx_update_mv, &c, h_rows);
}

void tab_estimate_u16_mt(const uint64_t* keys, int64_t n, int64_t h_rows,
                         int64_t k_width, const uint16_t* r0,
                         const uint16_t* r1, const uint16_t* r2,
                         const double* table, double mean_share,
                         double denom, double* out) {
    mt_ctx c = {0};
    c.keys = keys; c.n = n; c.h = h_rows; c.k = k_width;
    c.r0 = r0; c.r1 = r1; c.r2 = r2; c.rtable = table;
    c.mean_share = mean_share; c.denom = denom; c.out = out;
    pool_run(mt_tab_estimate, &c, n);
}

void poly_estimate_mt(const uint64_t* keys, int64_t n, int64_t h_rows,
                      int64_t degree, const uint64_t* coeffs, int64_t k_width,
                      const double* table, double mean_share, double denom,
                      double* out) {
    mt_ctx c = {0};
    c.keys = keys; c.n = n; c.h = h_rows; c.degree = degree;
    c.bcoeffs = coeffs; c.k = k_width; c.rtable = table;
    c.mean_share = mean_share; c.denom = denom; c.out = out;
    pool_run(mt_poly_estimate, &c, n);
}

void idx_estimate_mt(const int64_t* idx, int64_t n, int64_t h_rows,
                     int64_t k_width, const double* table, double mean_share,
                     double denom, double* out) {
    mt_ctx c = {0};
    c.idx = idx; c.n = n; c.h = h_rows; c.k = k_width; c.rtable = table;
    c.mean_share = mean_share; c.denom = denom; c.out = out;
    pool_run(mt_idx_estimate, &c, n);
}
"""

_COMPILERS = ("cc", "gcc", "clang")


def _ptr(arr: np.ndarray):
    return arr.ctypes.data_as(ctypes.c_void_p)


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return default


class SketchKernels:
    """ctypes facade over the compiled shared object.

    Every method increments its entry in :attr:`calls` (the per-process
    invocation tally the observability layer exports as
    ``repro_kernel_calls_total{kernel=...}``) and accumulates its wall
    time in :attr:`seconds` (exported as ``repro_kernel_seconds``).

    UPDATE/ESTIMATE-family methods dispatch to the thread-parallel
    (``*_mt``) entry points when :attr:`threads` > 1 and the batch is at
    least :attr:`min_parallel_keys` keys; the parallel calls are tallied
    under their own ``*_mt`` names so serial and pooled work stay
    distinguishable in the metrics.
    """

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        self.calls: Dict[str, int] = {name: 0 for name in KERNEL_NAMES}
        self.seconds: Dict[str, float] = {name: 0.0 for name in KERNEL_NAMES}
        self.threads = 1
        self.min_parallel_keys = _env_int(
            "REPRO_MIN_PARALLEL_KEYS", DEFAULT_MIN_PARALLEL_KEYS
        )
        p, i64, f64 = ctypes.c_void_p, ctypes.c_int64, ctypes.c_double
        signatures = {
            "tab_hash_u16": [p, i64, i64, p, p, p, p],
            "tab_update_u16": [p, p, i64, i64, i64, p, p, p, p],
            "tab_update_signed_u16": [p, p, i64, i64, i64, p, p, p, p, p, p, p],
            "tab_gather_u16": [p, i64, i64, i64, p, p, p, p, p],
            "tab_estimate_u16": [p, i64, i64, i64, p, p, p, p, f64, f64, p],
            "poly_hash": [p, i64, i64, i64, p, i64, p],
            "poly_update": [p, p, i64, i64, i64, p, i64, p],
            "poly_update_signed": [p, p, i64, i64, i64, p, i64, p, p],
            "poly_gather": [p, i64, i64, i64, p, i64, p, p],
            "poly_estimate": [p, i64, i64, i64, p, i64, p, f64, f64, p],
            "idx_update": [p, p, i64, i64, i64, p],
            "idx_gather": [p, i64, i64, i64, p, p],
            "idx_estimate": [p, i64, i64, i64, p, f64, f64, p],
            "tab_update_mv": [p, p, i64, i64, i64, p, p, p, p, p],
            "idx_update_mv": [p, p, p, i64, i64, i64, p, p],
            "mv_merge": [p, p, p, p, f64, i64],
            "mv_combine2": [p, p, f64, p, p, f64, p, p, i64],
            "mv_recover_mask": [p, p, f64, f64, f64, i64, p],
            "tab_update_u16_mt": [p, p, i64, i64, i64, p, p, p, p],
            "tab_update_signed_u16_mt": [p, p, i64, i64, i64,
                                         p, p, p, p, p, p, p],
            "poly_update_mt": [p, p, i64, i64, i64, p, i64, p],
            "poly_update_signed_mt": [p, p, i64, i64, i64, p, i64, p, p],
            "idx_update_mt": [p, p, i64, i64, i64, p],
            "tab_update_mv_mt": [p, p, i64, i64, i64, p, p, p, p, p],
            "idx_update_mv_mt": [p, p, p, i64, i64, i64, p, p],
            "tab_estimate_u16_mt": [p, i64, i64, i64, p, p, p, p,
                                    f64, f64, p],
            "poly_estimate_mt": [p, i64, i64, i64, p, i64, p, f64, f64, p],
            "idx_estimate_mt": [p, i64, i64, i64, p, f64, f64, p],
            "repro_set_threads": [i64],
        }
        for name, argtypes in signatures.items():
            fn = getattr(lib, name)
            fn.restype = None
            fn.argtypes = argtypes
        lib.repro_get_threads.restype = ctypes.c_int64
        lib.repro_get_threads.argtypes = []

    def set_threads(self, n: int) -> None:
        """Configure the pthread pool inside the compiled object.

        ``n`` counts total threads including the dispatching one; it is
        clamped to ``[1, POOL_MAX + 1]`` by the C side.  Workers spawn
        lazily on the first parallel dispatch, so setting a count never
        costs anything by itself.
        """
        self._lib.repro_set_threads(max(1, int(n)))
        self.threads = int(self._lib.repro_get_threads())

    def _mt(self, n_keys: int) -> bool:
        return self.threads > 1 and n_keys >= self.min_parallel_keys

    def _tick(self, name: str) -> float:
        self.calls[name] += 1
        return time.perf_counter()

    def _tock(self, name: str, t0: float) -> None:
        self.seconds[name] += time.perf_counter() - t0

    # -- tabulation (pre-reduced uint16 strips) ------------------------------

    def hash_all(self, keys, r0, r1, r2, depth: int) -> np.ndarray:
        t0 = self._tick("tab_hash")
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        out = np.empty((depth, len(keys)), dtype=np.int64)
        self._lib.tab_hash_u16(
            _ptr(keys), len(keys), depth, _ptr(r0), _ptr(r1), _ptr(r2), _ptr(out)
        )
        self._tock("tab_hash", t0)
        return out

    def update(self, table, keys, values, r0, r1, r2) -> None:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        depth, width = table.shape
        if self._mt(len(keys)):
            name, fn = "tab_update_mt", self._lib.tab_update_u16_mt
        else:
            name, fn = "tab_update", self._lib.tab_update_u16
        t0 = self._tick(name)
        fn(
            _ptr(keys), _ptr(values), len(keys), depth, width,
            _ptr(r0), _ptr(r1), _ptr(r2), _ptr(table),
        )
        self._tock(name, t0)

    def update_signed(self, table, keys, values, r0, r1, r2, s0, s1, s2) -> None:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        depth, width = table.shape
        if self._mt(len(keys)):
            name, fn = "tab_update_signed_mt", self._lib.tab_update_signed_u16_mt
        else:
            name, fn = "tab_update_signed", self._lib.tab_update_signed_u16
        t0 = self._tick(name)
        fn(
            _ptr(keys), _ptr(values), len(keys), depth, width,
            _ptr(r0), _ptr(r1), _ptr(r2), _ptr(s0), _ptr(s1), _ptr(s2),
            _ptr(table),
        )
        self._tock(name, t0)

    def gather(self, table, keys, r0, r1, r2) -> np.ndarray:
        t0 = self._tick("tab_gather")
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        depth, width = table.shape
        out = np.empty((depth, len(keys)), dtype=np.float64)
        self._lib.tab_gather_u16(
            _ptr(keys), len(keys), depth, width,
            _ptr(r0), _ptr(r1), _ptr(r2), _ptr(table), _ptr(out),
        )
        self._tock("tab_gather", t0)
        return out

    def estimate(self, table, keys, r0, r1, r2,
                 mean_share: float, denom: float) -> np.ndarray:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        depth, width = table.shape
        out = np.empty(len(keys), dtype=np.float64)
        if self._mt(len(keys)):
            name, fn = "tab_estimate_mt", self._lib.tab_estimate_u16_mt
        else:
            name, fn = "tab_estimate", self._lib.tab_estimate_u16
        t0 = self._tick(name)
        fn(
            _ptr(keys), len(keys), depth, width,
            _ptr(r0), _ptr(r1), _ptr(r2), _ptr(table),
            mean_share, denom, _ptr(out),
        )
        self._tock(name, t0)
        return out

    # -- Carter-Wegman polynomial --------------------------------------------

    def poly_hash(self, keys, coeffs, num_buckets: int) -> np.ndarray:
        t0 = self._tick("poly_hash")
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        depth, degree = coeffs.shape
        out = np.empty((depth, len(keys)), dtype=np.int64)
        self._lib.poly_hash(
            _ptr(keys), len(keys), depth, degree, _ptr(coeffs),
            num_buckets, _ptr(out),
        )
        self._tock("poly_hash", t0)
        return out

    def poly_update(self, table, keys, values, coeffs) -> None:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        depth, width = table.shape
        if self._mt(len(keys)):
            name, fn = "poly_update_mt", self._lib.poly_update_mt
        else:
            name, fn = "poly_update", self._lib.poly_update
        t0 = self._tick(name)
        fn(
            _ptr(keys), _ptr(values), len(keys), depth, coeffs.shape[1],
            _ptr(coeffs), width, _ptr(table),
        )
        self._tock(name, t0)

    def poly_update_signed(self, table, keys, values, bcoeffs, scoeffs) -> None:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        depth, width = table.shape
        if self._mt(len(keys)):
            name, fn = "poly_update_signed_mt", self._lib.poly_update_signed_mt
        else:
            name, fn = "poly_update_signed", self._lib.poly_update_signed
        t0 = self._tick(name)
        fn(
            _ptr(keys), _ptr(values), len(keys), depth, bcoeffs.shape[1],
            _ptr(bcoeffs), width, _ptr(scoeffs), _ptr(table),
        )
        self._tock(name, t0)

    def poly_gather(self, table, keys, coeffs) -> np.ndarray:
        t0 = self._tick("poly_gather")
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        depth, width = table.shape
        out = np.empty((depth, len(keys)), dtype=np.float64)
        self._lib.poly_gather(
            _ptr(keys), len(keys), depth, coeffs.shape[1], _ptr(coeffs),
            width, _ptr(table), _ptr(out),
        )
        self._tock("poly_gather", t0)
        return out

    def poly_estimate(self, table, keys, coeffs,
                      mean_share: float, denom: float) -> np.ndarray:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        depth, width = table.shape
        out = np.empty(len(keys), dtype=np.float64)
        if self._mt(len(keys)):
            name, fn = "poly_estimate_mt", self._lib.poly_estimate_mt
        else:
            name, fn = "poly_estimate", self._lib.poly_estimate
        t0 = self._tick(name)
        fn(
            _ptr(keys), len(keys), depth, coeffs.shape[1], _ptr(coeffs),
            width, _ptr(table), mean_share, denom, _ptr(out),
        )
        self._tock(name, t0)
        return out

    # -- precomputed indices -------------------------------------------------

    def update_indices(self, table, indices, values) -> None:
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        depth, width = table.shape
        if self._mt(indices.shape[1]):
            name, fn = "idx_update_mt", self._lib.idx_update_mt
        else:
            name, fn = "idx_update", self._lib.idx_update
        t0 = self._tick(name)
        fn(
            _ptr(indices), _ptr(values), indices.shape[1], depth, width,
            _ptr(table),
        )
        self._tock(name, t0)

    def gather_indices(self, table, indices) -> np.ndarray:
        t0 = self._tick("idx_gather")
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        depth, width = table.shape
        n = indices.shape[1]
        out = np.empty((depth, n), dtype=np.float64)
        self._lib.idx_gather(
            _ptr(indices), n, depth, width, _ptr(table), _ptr(out)
        )
        self._tock("idx_gather", t0)
        return out

    def estimate_indices(self, table, indices,
                         mean_share: float, denom: float) -> np.ndarray:
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        depth, width = table.shape
        n = indices.shape[1]
        out = np.empty(n, dtype=np.float64)
        if self._mt(n):
            name, fn = "idx_estimate_mt", self._lib.idx_estimate_mt
        else:
            name, fn = "idx_estimate", self._lib.idx_estimate
        t0 = self._tick(name)
        fn(
            _ptr(indices), n, depth, width, _ptr(table),
            mean_share, denom, _ptr(out),
        )
        self._tock(name, t0)
        return out

    # -- invertible-sketch majority-vote candidates --------------------------

    def update_mv(self, cand, votes, keys, weights, r0, r1, r2) -> None:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        depth, width = votes.shape
        if self._mt(len(keys)):
            name, fn = "tab_update_mv_mt", self._lib.tab_update_mv_mt
        else:
            name, fn = "tab_update_mv", self._lib.tab_update_mv
        t0 = self._tick(name)
        fn(
            _ptr(keys), _ptr(weights), len(keys), depth, width,
            _ptr(r0), _ptr(r1), _ptr(r2), _ptr(cand), _ptr(votes),
        )
        self._tock(name, t0)

    def update_mv_indices(self, cand, votes, indices, keys, weights) -> None:
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        depth, width = votes.shape
        if self._mt(indices.shape[1]):
            name, fn = "idx_update_mv_mt", self._lib.idx_update_mv_mt
        else:
            name, fn = "idx_update_mv", self._lib.idx_update_mv
        t0 = self._tick(name)
        fn(
            _ptr(indices), _ptr(keys), _ptr(weights), indices.shape[1],
            depth, width, _ptr(cand), _ptr(votes),
        )
        self._tock(name, t0)

    def merge_mv(self, cand_a, votes_a, cand_b, votes_b,
                 coeff: float) -> None:
        t0 = self._tick("mv_merge")
        self._lib.mv_merge(
            _ptr(cand_a), _ptr(votes_a), _ptr(cand_b), _ptr(votes_b),
            coeff, cand_a.size,
        )
        self._tock("mv_merge", t0)

    def combine2_mv(self, cand_a, votes_a, coeff_a, cand_b, votes_b,
                    coeff_b, out_k, out_v) -> None:
        t0 = self._tick("mv_combine2")
        self._lib.mv_combine2(
            _ptr(cand_a), _ptr(votes_a), coeff_a,
            _ptr(cand_b), _ptr(votes_b), coeff_b,
            _ptr(out_k), _ptr(out_v), out_v.size,
        )
        self._tock("mv_combine2", t0)

    def recover_mask(self, table, votes, mean_share: float, denom: float,
                     threshold: float) -> np.ndarray:
        t0 = self._tick("mv_recover")
        mask = np.empty(table.shape, dtype=np.uint8)
        self._lib.mv_recover_mask(
            _ptr(table), _ptr(votes), mean_share, denom, threshold,
            table.size, _ptr(mask),
        )
        self._tock("mv_recover", t0)
        return mask.view(np.bool_)


#: Backwards-compatible alias from when the kernels covered tabulation only.
TabulationKernels = SketchKernels


#: Flag sets tried in order; host-tuned codegen first, portable fallback
#: second (``-march=native`` is unsupported by some compilers/arches).
#: ``-pthread`` covers both compile- and link-side needs of the pool.
_FLAG_SETS = (
    ["-O3", "-march=native", "-funroll-loops", "-pthread"],
    ["-O3", "-pthread"],
)


def _compiler_candidates() -> tuple:
    """``$CC`` first when set and non-empty, then the built-in list."""
    cc = os.environ.get("CC", "").strip()
    return (cc, *_COMPILERS) if cc else _COMPILERS


def _write_atomic(path: str, text: str) -> None:
    """Write via a pid-suffixed temp file + rename so concurrent writers
    (two processes compiling the same digest) can never interleave and a
    reader can never observe a half-written file."""
    tmp = path + f".tmp{os.getpid()}"
    with open(tmp, "w") as fh:
        fh.write(text)
    os.replace(tmp, path)


def _build_so(src_path: str, tmp_so: str) -> bool:
    for compiler in _compiler_candidates():
        for flags in _FLAG_SETS:
            try:
                result = subprocess.run(
                    [compiler, *flags, "-fPIC", "-shared", src_path,
                     "-o", tmp_so],
                    capture_output=True,
                    timeout=120,
                )
            except (OSError, subprocess.TimeoutExpired):
                continue
            if result.returncode == 0:
                return True
    return False


def _compile() -> Optional[SketchKernels]:
    # The cache is machine-local, but key the flags in anyway so changing
    # them (like changing the source) can never pick up a stale object.
    digest = hashlib.sha256(
        (_C_SOURCE + repr(_FLAG_SETS)).encode()
    ).hexdigest()[:16]
    cache_dir = os.path.join(tempfile.gettempdir(), "repro-kernels")
    so_path = os.path.join(cache_dir, f"sketchkern-{digest}.so")
    src_path = os.path.join(cache_dir, f"sketchkern-{digest}.c")
    # Two attempts: if a cached .so exists but fails to load (a stale
    # artifact from a crashed writer predating the atomic rename, or a
    # build for a different ABI), discard it and rebuild once before
    # giving up.  Every filesystem publish below is temp-file + rename,
    # so concurrent processes racing on the same digest each load a
    # complete object -- never a half-written one.
    for attempt in range(2):
        if attempt or not os.path.exists(so_path):
            try:
                os.makedirs(cache_dir, exist_ok=True)
                _write_atomic(src_path, _C_SOURCE)
                tmp_so = so_path + f".tmp{os.getpid()}"
                if not _build_so(src_path, tmp_so):
                    return None
                os.replace(tmp_so, so_path)
            except OSError:
                return None
        try:
            return SketchKernels(ctypes.CDLL(so_path))
        except (OSError, AttributeError):
            try:
                os.unlink(so_path)
            except OSError:
                pass
    return None


_UNSET = object()
_KERNELS = _UNSET
_NUM_THREADS: Optional[int] = None


def _detect_num_threads() -> int:
    raw = os.environ.get("REPRO_NUM_THREADS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cpus = os.cpu_count() or 1
    return max(1, min(cpus, DEFAULT_THREAD_CAP))


def get_num_threads() -> int:
    """The configured kernel thread count.

    Resolution order: :func:`set_num_threads` if it has been called, else
    ``REPRO_NUM_THREADS``, else the detected usable-core count capped at
    :data:`DEFAULT_THREAD_CAP`.  This is a *target*: it includes the
    dispatching thread, applies only to the compiled kernels (the NumPy
    fallback is always single-threaded), and only batches of at least
    ``min_parallel_keys`` keys actually fan out.
    """
    global _NUM_THREADS
    if _NUM_THREADS is None:
        _NUM_THREADS = _detect_num_threads()
    return _NUM_THREADS


def set_num_threads(n: int) -> int:
    """Set the kernel thread count; returns the clamped effective value.

    Takes effect immediately on already-compiled kernels and sticks for
    kernels compiled later in the process.
    """
    global _NUM_THREADS
    _NUM_THREADS = max(1, int(n))
    kernels = _KERNELS
    if kernels is not _UNSET and kernels is not None:
        kernels.set_threads(_NUM_THREADS)
        _NUM_THREADS = kernels.threads
    return _NUM_THREADS


def kernel_thread_count() -> int:
    """Threads the compiled kernels are configured to use (0 = kernels off).

    The observability layer exports this as the ``repro_kernel_threads``
    gauge; 0 keeps "no compiled kernels at all" distinguishable from
    "kernels on, single-threaded".
    """
    kernels = _KERNELS
    if kernels is _UNSET or kernels is None:
        return 0
    return kernels.threads


def get_kernels() -> Optional[SketchKernels]:
    """The compiled kernels, or ``None`` when unavailable (cached).

    Disabled (returning ``None`` without attempting compilation) when
    ``REPRO_NO_KERNELS`` is set or ``CC`` is set to an empty string --
    the latter is the conventional "no compiler on this host" spelling a
    CI job uses to prove the pure-NumPy fallback end to end.
    """
    global _KERNELS
    if _KERNELS is _UNSET:
        if os.environ.get("REPRO_NO_KERNELS") or (
            "CC" in os.environ and not os.environ["CC"].strip()
        ):
            _KERNELS = None
        else:
            _KERNELS = _compile()
            if _KERNELS is not None:
                _KERNELS.set_threads(get_num_threads())
    return _KERNELS


def kernel_call_counts() -> Dict[str, int]:
    """Per-kernel invocation totals for this process (empty when no kernels).

    Keys are :data:`KERNEL_NAMES` entries; values count facade calls, not
    per-row work.  The observability layer mirrors this into the
    ``repro_kernel_calls_total{kernel=...}`` counter at each interval
    seal.
    """
    kernels = _KERNELS
    if kernels is _UNSET or kernels is None:
        return {}
    return dict(kernels.calls)


def kernel_seconds() -> Dict[str, float]:
    """Per-kernel cumulative wall seconds (empty when no kernels).

    Facade-side ``time.perf_counter`` spans around each C call, keyed
    like :func:`kernel_call_counts`; exported by the observability layer
    as ``repro_kernel_seconds{kernel=...}``.
    """
    kernels = _KERNELS
    if kernels is _UNSET or kernels is None:
        return {}
    return dict(kernels.seconds)
