"""Tabulation-based 4-universal hashing (Thorup-Zhang).

This is the scheme the paper uses for its fast implementation ("we construct
them using the fast tabulation-based method developed in [33]" -- Thorup &
Zhang, *Tabulation based 4-universal hashing with applications to second
moment estimation*).

For a 32-bit key split into two 16-bit characters ``c0`` (low) and ``c1``
(high), the hash is

    ``h(x) = T0[c0]  XOR  T1[c1]  XOR  T2[c0 + c1]``

where ``T0``/``T1`` have ``2**16`` entries, the *derived-character* table
``T2`` has ``2**17`` entries (``c0 + c1 < 2**17``), and all entries are
independent uniform 64-bit values.  Thorup and Zhang prove this family is
4-universal: for any four distinct keys, the multiset of looked-up cells
contains at least one cell that appears an odd number of times, making the
XOR uniform and independent of the rest.

Evaluation is three NumPy fancy-indexing gathers plus two XORs -- far
cheaper than four 61-bit modular multiplications -- which is why this is the
default family for streaming UPDATE paths.

Domain note: this implementation supports keys up to 32 bits, matching the
paper's experiments (destination IP addresses).  Wider keys should use
:class:`repro.hashing.carter_wegman.PolynomialHash`; the sketch layer
selects automatically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hashing.universal import HashFamily, register_family

_CHAR_BITS = 16
_CHAR_MASK = (1 << _CHAR_BITS) - 1


def _draw_table(rng: np.random.Generator, size: int) -> np.ndarray:
    """Draw ``size`` independent uniform *full-width* uint64 entries.

    ``rng.integers(0, 1 << 63, ...)`` would leave the top bit always zero
    (only 63 random bits); ``endpoint=True`` with high ``2**64 - 1`` covers
    the entire uint64 range.
    """
    return rng.integers(
        0, (1 << 64) - 1, size=size, dtype=np.uint64, endpoint=True
    )


@register_family("tabulation")
class TabulationHash(HashFamily):
    """4-universal tabulation hash for 32-bit keys.

    Parameters
    ----------
    num_buckets:
        Output range ``K``.  Power-of-two values preserve exact
        4-universality (low bits of a 4-independent value are
        4-independent); other values introduce a negligible modulo bias.
    seed:
        Seed for filling the three lookup tables.

    Notes
    -----
    Memory cost is ``(2**16 + 2**16 + 2**17) * 8`` bytes = 2 MiB per
    function.  The paper's Table 1 measures exactly this scheme: "each hash
    computation produces 8 independent 16-bit hash values", i.e. the tables
    are wide enough that one evaluation serves several sketch rows; here we
    keep one function object per row for clarity and let NumPy amortize the
    gathers.
    """

    independence = 4

    def __init__(self, num_buckets: int, seed: Optional[int] = None) -> None:
        super().__init__(num_buckets, seed)
        rng = np.random.default_rng(seed)
        # Independent uniform full-width 64-bit entries (all 64 bits random);
        # the XOR of any odd subset is uniform.
        self._t0 = _draw_table(rng, 1 << _CHAR_BITS)
        self._t1 = _draw_table(rng, 1 << _CHAR_BITS)
        self._t2 = _draw_table(rng, 1 << (_CHAR_BITS + 1))

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        keys = keys.astype(np.uint64, copy=False)
        if keys.size and keys.max() > np.uint64(0xFFFFFFFF):
            raise ValueError(
                "TabulationHash supports keys up to 32 bits; use "
                "PolynomialHash for wider keys"
            )
        c0 = (keys & np.uint64(_CHAR_MASK)).astype(np.int64)
        c1 = (keys >> np.uint64(_CHAR_BITS)).astype(np.int64)
        h = self._t0[c0] ^ self._t1[c1] ^ self._t2[c0 + c1]
        return (h % np.uint64(self._num_buckets)).astype(np.int64)

    @property
    def table_bytes(self) -> int:
        """Total memory used by the lookup tables, in bytes."""
        return self._t0.nbytes + self._t1.nbytes + self._t2.nbytes
