"""Deterministic seed derivation for families of hash functions.

A k-ary sketch needs ``H`` *independent* hash functions.  The paper obtains
them by drawing each row's function with an independent seed ("Different
h_i are constructed using independent seeds, and are therefore
independent").  We derive per-row seeds from a single master seed with
:class:`numpy.random.SeedSequence`, which guarantees well-separated streams,
so an entire sketch (and hence an entire experiment) is reproducible from
one integer.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

#: Master seeds are confined to 63 bits so they survive every layer that
#: carries them: NumPy's ``SeedSequence`` (non-negative entropy), the wire
#: formats' int64 seed field, and checkpoint containers.
MAX_MASTER_SEED = 2**63 - 1


def validate_master_seed(seed: Optional[int]) -> Optional[int]:
    """Normalize and range-check a master seed (``None`` passes through).

    Seeds are validated where schemas are *constructed*, not where sketches
    are serialized: a seed that cannot ride the wire (negative, or >= 2**63)
    must fail early and loudly, instead of permitting a sketch that can be
    built but never saved.
    """
    if seed is None:
        return None
    if not isinstance(seed, (int, np.integer)):
        raise ValueError(
            f"master seed must be an int or None, got {type(seed).__name__}"
        )
    seed = int(seed)
    if not 0 <= seed <= MAX_MASTER_SEED:
        raise ValueError(
            f"master seed must be in [0, 2**63), got {seed}; seeds outside "
            "this range cannot be serialized (int64 wire field) or fed to "
            "numpy.random.SeedSequence"
        )
    return seed


def derive_seeds(master_seed: Optional[int], count: int) -> List[int]:
    """Derive ``count`` independent 63-bit seeds from ``master_seed``.

    ``None`` draws fresh OS entropy (non-reproducible), mirroring NumPy's
    convention.  The same ``(master_seed, count)`` always returns the same
    list, and prefixes are stable: ``derive_seeds(s, 5)[:3] ==
    derive_seeds(s, 3)``.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    ss = np.random.SeedSequence(validate_master_seed(master_seed))
    return [int(child.generate_state(1, dtype=np.uint64)[0] >> 1) for child in ss.spawn(count)]


class SeedSequenceFactory:
    """Hands out an unbounded stream of independent seeds on demand.

    Useful when the number of hash functions is not known upfront (e.g. the
    group-testing sketch builds its sub-sketches lazily).
    """

    def __init__(self, master_seed: Optional[int] = None) -> None:
        self._ss = np.random.SeedSequence(validate_master_seed(master_seed))
        self._count = 0

    def next_seed(self) -> int:
        """Return the next derived seed."""
        child = self._ss.spawn(1)[0]
        self._count += 1
        return int(child.generate_state(1, dtype=np.uint64)[0] >> 1)

    def next_seeds(self, count: int) -> List[int]:
        """Return the next ``count`` derived seeds."""
        return [self.next_seed() for _ in range(count)]

    @property
    def seeds_issued(self) -> int:
        """Number of seeds handed out so far."""
        return self._count
