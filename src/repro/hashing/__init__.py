"""Universal hash families used by sketch data structures.

The k-ary sketch of the paper requires 4-universal hash functions to obtain
provable accuracy guarantees for both per-key estimation (Theorems 1-3) and
second-moment estimation (Theorems 4-5).  This package provides:

* :class:`~repro.hashing.carter_wegman.PolynomialHash` -- Carter-Wegman
  polynomial hashing over the Mersenne prime ``2**61 - 1``.  A degree-``k-1``
  polynomial with random coefficients is exactly ``k``-universal.  This is
  the reference family: correct for any key width, moderately fast.

* :class:`~repro.hashing.tabulation.TabulationHash` -- tabulation-based
  4-universal hashing following Thorup and Zhang (the scheme the paper itself
  uses, citing [33]).  Keys are split into 16-bit characters; the hash is an
  XOR of per-character table lookups plus a derived-character lookup.  Table
  lookups vectorize extremely well with NumPy, making this the fast path for
  streaming updates.

* :class:`~repro.hashing.universal.HashFamily` -- the abstract interface both
  implement, plus :func:`~repro.hashing.universal.make_family` to construct a
  family by name.

All families map integer keys in ``[0, 2**64)`` to buckets ``[0, K)`` and
support vectorized evaluation over NumPy arrays of keys.
"""

from repro.hashing._kernels import (
    KERNEL_NAMES,
    get_num_threads,
    kernel_call_counts,
    kernel_seconds,
    kernel_thread_count,
    set_num_threads,
)
from repro.hashing.carter_wegman import PolynomialHash, TwoUniversalHash
from repro.hashing.index_cache import (
    DEFAULT_CAPACITY,
    BucketIndexCache,
    hashing_accelerated,
    shared_index_cache,
)
from repro.hashing.seeds import (
    MAX_MASTER_SEED,
    SeedSequenceFactory,
    derive_seeds,
    validate_master_seed,
)
from repro.hashing.stacked import (
    LoopStackedHash,
    StackedHash,
    StackedPolynomialHash,
    StackedTabulationHash,
    estimate_median_indices,
    fused_signed_update,
    gather_indices,
    make_stacked,
    mv_combine2_planes,
    mv_merge_planes,
    mv_recover_mask,
    mv_vote_indices,
    scatter_add_indices,
)
from repro.hashing.tabulation import TabulationHash
from repro.hashing.universal import HashFamily, make_family

__all__ = [
    "BucketIndexCache",
    "DEFAULT_CAPACITY",
    "HashFamily",
    "LoopStackedHash",
    "PolynomialHash",
    "SeedSequenceFactory",
    "StackedHash",
    "StackedPolynomialHash",
    "StackedTabulationHash",
    "TabulationHash",
    "TwoUniversalHash",
    "derive_seeds",
    "validate_master_seed",
    "KERNEL_NAMES",
    "MAX_MASTER_SEED",
    "estimate_median_indices",
    "fused_signed_update",
    "gather_indices",
    "get_num_threads",
    "hashing_accelerated",
    "kernel_call_counts",
    "kernel_seconds",
    "kernel_thread_count",
    "make_family",
    "set_num_threads",
    "make_stacked",
    "mv_combine2_planes",
    "mv_merge_planes",
    "mv_recover_mask",
    "mv_vote_indices",
    "scatter_add_indices",
    "shared_index_cache",
]
