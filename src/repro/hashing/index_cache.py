"""Persistent key -> bucket-index cache for the detection hot path.

Every sealed interval, the detection layer reconstructs forecast errors
for the interval's candidate keys, which starts by hashing each key with
all ``H`` row functions (``schema.bucket_indices``).  Real flow-key
populations are heavily recurrent across intervals -- the same hosts keep
talking -- so the same keys are re-hashed interval after interval even
though a key's ``(H,)`` bucket-index column is a pure function of the
schema and can never change.

:class:`BucketIndexCache` memoizes those columns in a vectorized
open-addressed hash table: a multiply-shift slot probe resolves a whole
candidate array in a handful of gather rounds, only the misses are hashed
(in one stacked pass), and the result is bit-identical to hashing every
key -- the cache stores the hash function's *output*, not an
approximation of it.  Slots are never unfilled, only overwritten, so
probe chains stay valid; past ``capacity`` cached keys, new keys
overwrite the least-recently-used slot in their probe window (approximate
LRU), which bounds memory at roughly ``2 * capacity * (H + 2) * 8``
bytes.

The cache is an execution detail, never part of the detection result:
sessions rebuild it from the schema after a checkpoint restore, and a
cleared or differently-sized cache yields the same reports.

Thread-safety: lookups take an internal lock, so one cache may be shared
by sessions on different threads (see :func:`shared_index_cache`).
"""

from __future__ import annotations

import threading
import weakref
from typing import Optional

import numpy as np

#: Default maximum number of cached keys.  At the paper's ``H = 5`` this
#: is ~28 MiB of table -- small next to the traces it serves.
DEFAULT_CAPACITY = 1 << 18

#: Fibonacci-hashing multiplier (odd, near 2**64 / phi): spreads the
#: slot index over the high bits for any key distribution.
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)

#: Maximum linear-probe window.  Inserts never place a key further than
#: this from its base slot, so a probe that sees this many non-matching
#: slots can declare a miss.
_PROBE_ROUNDS = 8


def hashing_accelerated(schema) -> bool:
    """True when ``schema.bucket_indices`` runs in the compiled C kernels.

    Kernel tabulation hashing reads small L2-resident lookup strips and is
    faster than any DRAM-sized memo table, so caching its output is a net
    loss; polynomial / two-universal hashing (and the no-compiler
    fallbacks) cost several times a cached gather.  The session layer uses
    this to decide whether ``index_cache=True`` should attach a cache.
    """
    stacked = getattr(schema, "_stacked", None) or getattr(
        schema, "_bucket_stacked", None
    )
    return bool(getattr(stacked, "kernel_accelerated", False))


class BucketIndexCache:
    """Cache of per-key ``(H,)`` bucket-index columns for one schema.

    Parameters
    ----------
    schema:
        Any schema exposing ``bucket_indices(keys) -> (H, n)`` and
        ``depth`` (:class:`~repro.sketch.kary.KArySchema`,
        :class:`~repro.sketch.countmin.CountMinSchema`,
        :class:`~repro.sketch.countsketch.CountSketchSchema`).
    capacity:
        Approximate maximum number of cached keys (the slot table holds
        twice this, keeping the load factor at or below one half).  Past
        it, a new key overwrites the least-recently-used slot in its
        probe window.  Must be >= 1.

    :meth:`lookup` takes a **deduplicated** key array and returns the
    same ``(H, n)`` int64 array ``schema.bucket_indices`` would -- cached
    columns for hits, one stacked hash pass for the misses.
    """

    def __init__(self, schema, capacity: int = DEFAULT_CAPACITY) -> None:
        bucket_indices = getattr(schema, "bucket_indices", None)
        if bucket_indices is None:
            raise TypeError(
                f"{type(schema).__name__} has no bucket_indices(); the index "
                "cache only serves hashed-summary schemas"
            )
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._schema = schema
        self._depth = int(schema.depth)
        # Bucket indices are < width, so they usually pack into int32 --
        # half the gather traffic of int64 on the hot lookup path.
        width = getattr(schema, "width", None)
        self._col_dtype = (
            np.int32
            if width is not None and int(width) <= np.iinfo(np.int32).max
            else np.int64
        )
        self.capacity = int(capacity)
        n_slots = 2
        while n_slots < 2 * self.capacity:
            n_slots <<= 1
        self._n_slots = n_slots
        self._shift = np.uint64(64 - n_slots.bit_length() + 1)
        self._rounds = min(_PROBE_ROUNDS, n_slots)
        self._lock = threading.Lock()
        self._alloc()
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.lookups = 0

    def _alloc(self) -> None:
        self._slot_keys = np.zeros(self._n_slots, dtype=np.uint64)
        self._filled = np.zeros(self._n_slots, dtype=bool)
        # Interleaved per key: a key's H indices share one cache line, so
        # resolving a lookup is a single row gather.
        self._columns = np.zeros(
            (self._n_slots, self._depth), dtype=self._col_dtype
        )
        self._stamp = np.zeros(self._n_slots, dtype=np.int64)
        self._size = 0

    @property
    def schema(self):
        """The schema whose hash functions this cache memoizes."""
        return self._schema

    def __len__(self) -> int:
        return self._size

    @property
    def stats(self) -> dict:
        """Counter snapshot: hits, misses, evictions, lookups, size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "lookups": self.lookups,
            "size": self._size,
            "capacity": self.capacity,
        }

    def clear(self) -> None:
        """Drop every cached column (counters are kept)."""
        with self._lock:
            self._alloc()

    # -- the hot path --------------------------------------------------------

    def _base_slots(self, keys: np.ndarray) -> np.ndarray:
        return ((keys * _HASH_MULT) >> self._shift).astype(np.intp)

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Bucket indices for deduplicated ``keys``: shape ``(H, n)`` int64.

        Bit-identical to ``schema.bucket_indices(keys)``; recurring keys
        cost a few vectorized probe gathers instead of ``H`` hash
        evaluations.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        n = len(keys)
        if n == 0:
            return np.empty((self._depth, 0), dtype=np.int64)
        with self._lock:
            self._clock += 1
            self.lookups += 1
            mask = self._n_slots - 1
            # Probe: every key walks its chain until it matches (hit) or
            # sees a vacant slot / exhausts the window (miss).  Inserts
            # respect the same window, so absence is conclusive.
            pos = np.empty(n, dtype=np.intp)
            slots = self._base_slots(keys)
            remaining = np.arange(n, dtype=np.intp)
            hit_mask = np.zeros(n, dtype=bool)
            for _ in range(self._rounds):
                loaded_filled = self._filled[slots]
                match = loaded_filled & (self._slot_keys[slots] == keys[remaining])
                matched = remaining[match]
                pos[matched] = slots[match]
                hit_mask[matched] = True
                vacant = ~loaded_filled
                pos[remaining[vacant]] = slots[vacant]  # insert target
                cont = ~match & ~vacant
                remaining = remaining[cont]
                if not len(remaining):
                    break
                slots = (slots[cont] + 1) & mask
            # Window exhausted without a vacancy: mark for victim search.
            pos[remaining] = -1
            n_hit = int(np.count_nonzero(hit_mask))
            self.hits += n_hit
            self.misses += n - n_hit
            # Hit stamps only matter for eviction quality, and evictions
            # can only happen once the table approaches capacity -- skip
            # the scatter until then.
            if 2 * self._size >= self.capacity:
                self._stamp[pos[hit_mask]] = self._clock
            # One row gather resolves every hit (misses gather garbage at
            # a clipped slot and are overwritten from the fresh hash
            # output below, so no post-insert verification is needed and
            # an insert can never corrupt this lookup's result).
            rows = self._columns[np.maximum(pos, 0)]
            if n_hit < n:
                miss_idx = np.flatnonzero(~hit_mask)
                miss_keys = keys[miss_idx]
                fresh = self._schema.bucket_indices(miss_keys)  # (H, m)
                rows[miss_idx] = fresh.T
                self._insert(miss_keys, fresh, pos[miss_idx])
        return rows.T.astype(np.int64, order="C")

    def _insert(
        self, miss_keys: np.ndarray, columns: np.ndarray, targets: np.ndarray
    ) -> None:
        """Place missed keys at their probed slots (one vectorized round).

        ``targets`` holds each key's first vacant probe slot, or -1 when
        its window had none.  Conflicts (two keys, one slot) are settled
        scatter-last-wins; losers are simply not cached this lookup.  A
        recurring loser converges on a later lookup: its next probe walks
        past the winner to a fresh vacancy *inside* its window, so cached
        keys are always reachable by the bounded probe.  Keys with no
        vacancy, or arriving while the table is at capacity, overwrite
        the least-recently-used occupied slot in their probe window --
        or stay uncached when even that is contended.  Correctness never
        depends on a key being cached.
        """
        mask = self._n_slots - 1
        targets = np.asarray(targets, dtype=np.intp).copy()
        if self._size >= self.capacity:
            # At capacity: never fill fresh slots (that would grow past
            # the limit); every placement goes through victim selection.
            targets[:] = -1
        # Victim search for windowless keys: oldest *occupied* slot in
        # the window not stamped by this lookup (vacant slots carry
        # stamp zero and would otherwise always win, growing the table
        # past capacity instead of recycling it).
        lost = np.flatnonzero(targets < 0)
        if len(lost):
            rows = np.arange(len(lost), dtype=np.intp)
            base = self._base_slots(miss_keys[lost])
            window = (base[:, None] + np.arange(self._rounds)) & mask
            stamps = self._stamp[window]
            stamps[stamps >= self._clock] = np.iinfo(np.int64).max
            stamps[~self._filled[window]] = np.iinfo(np.int64).max
            choice = np.argmin(stamps, axis=1)
            usable = stamps[rows, choice] < np.iinfo(np.int64).max
            victims = window[rows, choice]
            targets[lost[usable]] = victims[usable]
        placeable = np.flatnonzero(targets >= 0)
        if not len(placeable):
            return
        slots = targets[placeable]
        self._slot_keys[slots] = miss_keys[placeable]  # last wins
        won = self._slot_keys[slots] == miss_keys[placeable]
        winners = placeable[won]
        win_slots = targets[winners]
        newly_filled = ~self._filled[win_slots]
        self._size += int(np.count_nonzero(newly_filled))
        self.evictions += int(np.count_nonzero(~newly_filled))
        self._filled[win_slots] = True
        self._stamp[win_slots] = self._clock
        self._columns[win_slots] = columns.T[winners]


#: One shared cache per schema (schemas compare equal when rebuilt from
#: the same explicit seed, so equal schemas share columns safely).
_SHARED: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_SHARED_LOCK = threading.Lock()


def shared_index_cache(
    schema, capacity: Optional[int] = None
) -> BucketIndexCache:
    """Return the process-wide :class:`BucketIndexCache` for ``schema``.

    Sessions probing the same schema (or equal schemas rebuilt from the
    same seed) share one cache, so a key hashed by any of them is a hit
    for all.  ``capacity`` only applies when this call creates the cache;
    an existing shared cache keeps its original capacity.
    """
    with _SHARED_LOCK:
        cache = _SHARED.get(schema)
        if cache is None:
            cache = BucketIndexCache(
                schema, capacity=DEFAULT_CAPACITY if capacity is None else capacity
            )
            _SHARED[schema] = cache
        return cache
