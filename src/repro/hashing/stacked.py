"""Stacked multi-row hash evaluation: all ``H`` sketch rows per pass.

The paper's Table 1 observes that one Thorup-Zhang evaluation "produces 8
independent 16-bit hash values" -- a single pass over the key serves many
sketch rows.  The per-row :class:`~repro.hashing.universal.HashFamily`
objects keep that structure implicit: hashing a batch against an ``H``-row
schema costs ``H`` separate Python-level passes.  This module makes the
structure explicit: a :class:`StackedHash` evaluates *all* rows of a schema
in one vectorized pass, bit-identical to looping over the rows.

For tabulation with a power-of-two bucket count the stack pre-reduces the
row tables: since ``x mod 2**b`` keeps the low bits and the low bits of an
XOR are the XOR of the low bits, ``(T0[c0] ^ T1[c1] ^ T2[c0+c1]) mod K ==
R0[c0] ^ R1[c1] ^ R2[c0+c1]`` with ``R = T & (K-1)`` stored as ``uint16``.
The reduced tables for all rows interleave into three ``(2**16, H)`` /
``(2**17, H)`` strips (~``0.5 MiB x H`` total) so one character lookup
yields the bucket of every row -- three gathers and two XORs for the whole
stack, exactly the paper's trick.  A fused C kernel
(:mod:`repro.hashing._kernels`) additionally merges hashing with the
scatter-add/gather of the sketch tables; when no compiler is available the
NumPy path produces identical results.

Nothing in this module knows about threads: the kernel facade picks the
serial or row-sharded multi-threaded entry per call (batch size vs
``min_parallel_keys``, thread count from ``REPRO_NUM_THREADS`` /
:func:`repro.hashing.set_num_threads`), so every ``scatter_add`` /
``gather`` / estimate below is transparently parallel on multi-core
hosts -- and, because UPDATE work is sharded by sketch row (one writer
per row, per-row stream order preserved), still bit-identical to this
module's NumPy reference at any thread count.  Multi-threaded calls
tally under ``*_mt`` names in
:func:`~repro.hashing._kernels.kernel_call_counts`.

Carter-Wegman polynomial rows stack their coefficient vectors into an
``(H, degree)`` matrix and run one broadcast Horner recursion.  Any other
(or mixed) row composition falls back to :class:`LoopStackedHash`, which is
the literal per-row loop.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.hashing._kernels import (
    MAX_ESTIMATE_DEPTH,
    SketchKernels,
    get_kernels,
)
from repro.hashing.carter_wegman import P61, _mulmod_p61, _PolynomialBase
from repro.hashing.tabulation import _CHAR_BITS, _CHAR_MASK, TabulationHash
from repro.hashing.universal import HashFamily


class StackedHash(abc.ABC):
    """Evaluates every row function of a schema in one batched pass.

    All implementations are *bit-identical* to evaluating the wrapped
    per-row functions one by one; the equivalence tests assert this across
    families, widths and depths.
    """

    def __init__(self, rows: Sequence[HashFamily], num_buckets: int) -> None:
        if not rows:
            raise ValueError("need at least one row function")
        for row in rows:
            if row.num_buckets != num_buckets:
                raise ValueError(
                    f"row has {row.num_buckets} buckets, expected {num_buckets}"
                )
        self._rows = tuple(rows)
        self._depth = len(self._rows)
        self._num_buckets = int(num_buckets)

    @property
    def depth(self) -> int:
        """Number of stacked rows ``H``."""
        return self._depth

    @property
    def num_buckets(self) -> int:
        """Shared output range ``K``."""
        return self._num_buckets

    @property
    def rows(self) -> tuple:
        """The wrapped per-row hash functions."""
        return self._rows

    @property
    def kernel_accelerated(self) -> bool:
        """True when :meth:`hash_all` runs in the compiled C kernels.

        Kernel hashing is cheap enough (L2-resident lookup strips) that
        memoizing its output is a net loss; the bucket-index cache keys
        its auto-enable decision off this flag.
        """
        return False

    @abc.abstractmethod
    def hash_all(self, keys: np.ndarray) -> np.ndarray:
        """Bucket indices for every row: shape ``(H, n)`` int64."""

    def scatter_add(self, table: np.ndarray, keys: np.ndarray,
                    values: np.ndarray) -> None:
        """UPDATE all rows of an ``(H, K)`` table: ``table[i][h_i(a_j)] += u_j``."""
        indices = self.hash_all(keys)
        for i in range(self._depth):
            np.add.at(table[i], indices[i], values)

    def gather(self, table: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Raw cells ``table[i][h_i(a_j)]`` for every row: shape ``(H, n)``."""
        indices = self.hash_all(keys)
        return np.take_along_axis(table, indices, axis=1)

    def estimate_median(
        self,
        table: np.ndarray,
        keys: np.ndarray,
        mean_share: float,
        denom: float,
    ) -> Optional[np.ndarray]:
        """Fused k-ary ESTIMATE: ``median_i((table[i][h_i(a)] - mean_share) / denom)``.

        Returns the ``(n,)`` estimate vector when a fused kernel covers
        this stack, else ``None`` -- the caller then runs the reference
        gather + transform + ``np.median`` pipeline, which the kernel is
        bit-identical to.
        """
        return None

    def mv_vote(self, cand: np.ndarray, votes: np.ndarray,
                keys: np.ndarray, weights: np.ndarray) -> None:
        """Majority-vote candidate maintenance for an invertible sketch.

        Applies the MV rule (same key: vote += w; standing vote wins:
        vote -= w; else the key takes the slot with the vote difference)
        to the ``(H, K)`` candidate planes for every row's bucket of every
        key.  Callers pass *aggregated* keys -- unique, ascending, with
        per-key summed weights -- so the per-bucket operation sequence is
        canonical and the kernel and NumPy paths are bit-identical.
        """
        mv_vote_indices(cand, votes, self.hash_all(keys), keys, weights)


class LoopStackedHash(StackedHash):
    """Fallback: the literal per-row loop (reference semantics by definition)."""

    def hash_all(self, keys: np.ndarray) -> np.ndarray:
        return np.stack([h.hash_array(keys) for h in self._rows])


class StackedTabulationHash(StackedHash):
    """All-rows tabulation via interleaved (pre-reduced) lookup strips."""

    def __init__(self, rows: Sequence[TabulationHash], num_buckets: int) -> None:
        super().__init__(rows, num_buckets)
        k = self._num_buckets
        self._pow2 = k & (k - 1) == 0
        if self._pow2 and k <= (1 << _CHAR_BITS):
            # Pre-reduced uint16 strips: masking commutes with XOR.
            mask = np.uint64(k - 1)
            self._r0 = np.ascontiguousarray(
                np.stack([(h._t0 & mask).astype(np.uint16) for h in rows], axis=1)
            )
            self._r1 = np.ascontiguousarray(
                np.stack([(h._t1 & mask).astype(np.uint16) for h in rows], axis=1)
            )
            self._r2 = np.ascontiguousarray(
                np.stack([(h._t2 & mask).astype(np.uint16) for h in rows], axis=1)
            )
            self._u0 = self._u1 = self._u2 = None
            self._kernels: Optional[SketchKernels] = get_kernels()
        else:
            # Wide/non-pow2 K: full-width strips, reduce after the XOR.
            self._r0 = self._r1 = self._r2 = None
            self._u0 = np.ascontiguousarray(
                np.stack([h._t0 for h in rows], axis=1)
            )
            self._u1 = np.ascontiguousarray(
                np.stack([h._t1 for h in rows], axis=1)
            )
            self._u2 = np.ascontiguousarray(
                np.stack([h._t2 for h in rows], axis=1)
            )
            self._kernels = None

    def _characters(self, keys: np.ndarray):
        keys = self._check_keys(keys)
        c0 = (keys & np.uint64(_CHAR_MASK)).astype(np.int64)
        c1 = (keys >> np.uint64(_CHAR_BITS)).astype(np.int64)
        return c0, c1

    @staticmethod
    def _check_keys(keys: np.ndarray) -> np.ndarray:
        keys = keys.astype(np.uint64, copy=False)
        if keys.size and keys.max() > np.uint64(0xFFFFFFFF):
            raise ValueError(
                "TabulationHash supports keys up to 32 bits; use "
                "PolynomialHash for wider keys"
            )
        return keys

    @property
    def kernel_accelerated(self) -> bool:
        return self._kernels is not None

    def hash_all(self, keys: np.ndarray) -> np.ndarray:
        if self._r0 is not None:
            if self._kernels is not None:
                keys = self._check_keys(keys)
                return self._kernels.hash_all(
                    keys, self._r0, self._r1, self._r2, self._depth
                )
            return self._hash_all_numpy(keys)
        c0, c1 = self._characters(keys)
        h = self._u0[c0] ^ self._u1[c1] ^ self._u2[c0 + c1]  # (n, H)
        return (h % np.uint64(self._num_buckets)).astype(np.int64).T

    def _hash_all_numpy(self, keys: np.ndarray) -> np.ndarray:
        """Pure-NumPy reduced-strip path (also the no-compiler fallback)."""
        c0, c1 = self._characters(keys)
        buckets = self._r0[c0] ^ self._r1[c1] ^ self._r2[c0 + c1]  # (n, H)
        return buckets.T.astype(np.int64, order="C")

    def scatter_add(self, table, keys, values) -> None:
        if (
            self._kernels is not None
            and table.flags.c_contiguous
            and table.dtype == np.float64
        ):
            keys = self._check_keys(keys)
            self._kernels.update(table, keys, values, self._r0, self._r1, self._r2)
            return
        super().scatter_add(table, keys, values)

    def gather(self, table, keys) -> np.ndarray:
        if (
            self._kernels is not None
            and table.flags.c_contiguous
            and table.dtype == np.float64
        ):
            keys = self._check_keys(keys)
            return self._kernels.gather(table, keys, self._r0, self._r1, self._r2)
        return super().gather(table, keys)

    def estimate_median(self, table, keys, mean_share, denom):
        if (
            self._kernels is not None
            and self._depth <= MAX_ESTIMATE_DEPTH
            and table.flags.c_contiguous
            and table.dtype == np.float64
        ):
            keys = self._check_keys(keys)
            return self._kernels.estimate(
                table, keys, self._r0, self._r1, self._r2, mean_share, denom
            )
        return None

    def mv_vote(self, cand, votes, keys, weights) -> None:
        if (
            self._kernels is not None
            and cand.flags.c_contiguous
            and votes.flags.c_contiguous
            and votes.dtype == np.float64
        ):
            keys = self._check_keys(keys)
            self._kernels.update_mv(
                cand, votes, keys, weights, self._r0, self._r1, self._r2
            )
            return
        super().mv_vote(cand, votes, keys, weights)


class StackedPolynomialHash(StackedHash):
    """All-rows Carter-Wegman via one broadcast Horner recursion.

    When the compiled kernels are available the whole stack evaluates in
    C -- one pass per key batch with the exact same ``P61`` fold the
    NumPy path runs -- and scatter/gather/ESTIMATE fuse the hash with the
    table access, so no ``(H, n)`` index array ever materializes.
    """

    def __init__(self, rows: Sequence[_PolynomialBase], num_buckets: int) -> None:
        super().__init__(rows, num_buckets)
        degrees = {h.degree for h in rows}
        if len(degrees) != 1:
            raise ValueError(f"mixed polynomial degrees: {sorted(degrees)}")
        self._degree = degrees.pop()
        # (H, degree) coefficient matrix; column j is coefficient c_j.
        self._coeffs = np.ascontiguousarray(
            np.stack([h._coeffs for h in rows]), dtype=np.uint64
        )
        self._kernels: Optional[SketchKernels] = get_kernels()

    @property
    def kernel_accelerated(self) -> bool:
        return self._kernels is not None

    def hash_all(self, keys: np.ndarray) -> np.ndarray:
        if self._kernels is not None:
            keys = keys.astype(np.uint64, copy=False)
            return self._kernels.poly_hash(keys, self._coeffs, self._num_buckets)
        return self._hash_all_numpy(keys)

    def scatter_add(self, table, keys, values) -> None:
        if (
            self._kernels is not None
            and table.flags.c_contiguous
            and table.dtype == np.float64
            and table.shape[1] == self._num_buckets
        ):
            keys = keys.astype(np.uint64, copy=False)
            self._kernels.poly_update(table, keys, values, self._coeffs)
            return
        super().scatter_add(table, keys, values)

    def gather(self, table, keys) -> np.ndarray:
        if (
            self._kernels is not None
            and table.flags.c_contiguous
            and table.dtype == np.float64
            and table.shape[1] == self._num_buckets
        ):
            keys = keys.astype(np.uint64, copy=False)
            return self._kernels.poly_gather(table, keys, self._coeffs)
        return super().gather(table, keys)

    def estimate_median(self, table, keys, mean_share, denom):
        if (
            self._kernels is not None
            and self._depth <= MAX_ESTIMATE_DEPTH
            and table.flags.c_contiguous
            and table.dtype == np.float64
            and table.shape[1] == self._num_buckets
        ):
            keys = keys.astype(np.uint64, copy=False)
            return self._kernels.poly_estimate(
                table, keys, self._coeffs, mean_share, denom
            )
        return None

    def _hash_all_numpy(self, keys: np.ndarray) -> np.ndarray:
        """Pure-NumPy broadcast Horner (also the no-compiler fallback)."""
        keys = keys.astype(np.uint64, copy=False)
        x = (keys >> np.uint64(61)) + (keys & np.uint64(P61))
        x = np.where(x >= np.uint64(P61), x - np.uint64(P61), x)
        x = x[np.newaxis, :]  # (1, n) broadcast against (H, 1) coefficients
        acc = np.empty((self._depth, keys.shape[0]), dtype=np.uint64)
        acc[...] = self._coeffs[:, -1:]
        for j in range(self._degree - 2, -1, -1):
            acc = _mulmod_p61(acc, x)
            acc = acc + self._coeffs[:, j : j + 1]
            acc = np.where(acc >= np.uint64(P61), acc - np.uint64(P61), acc)
        return (acc % np.uint64(self._num_buckets)).astype(np.int64)


def make_stacked(rows: Sequence[HashFamily], num_buckets: int) -> StackedHash:
    """Build the fastest stacked evaluator the row composition allows."""
    rows = tuple(rows)
    if all(isinstance(h, TabulationHash) for h in rows):
        return StackedTabulationHash(rows, num_buckets)
    if (
        all(isinstance(h, _PolynomialBase) for h in rows)
        and len({h.degree for h in rows}) == 1
    ):
        return StackedPolynomialHash(rows, num_buckets)
    return LoopStackedHash(rows, num_buckets)


def scatter_add_indices(table: np.ndarray, indices: np.ndarray,
                        values: np.ndarray) -> None:
    """UPDATE from precomputed bucket indices: ``table[i][idx[i,j]] += u_j``.

    The hash-free half of the stacked scatter: when the ``(H, n)`` indices
    already exist (from :meth:`StackedHash.hash_all` or the persistent
    bucket-index cache) the C kernel scatters them directly; the fallback
    is one flat-index ``np.add.at`` over the raveled table.  Both process
    rows in stream order, bit-identical to per-row ``np.add.at``.
    """
    indices = np.asarray(indices, dtype=np.int64)
    kernels = get_kernels()
    if (
        kernels is not None
        and table.flags.c_contiguous
        and table.dtype == np.float64
    ):
        kernels.update_indices(table, indices, values)
        return
    depth, width = table.shape
    offsets = np.arange(depth, dtype=np.int64) * width
    np.add.at(table.reshape(-1), indices + offsets[:, None], values)


def gather_indices(table: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Raw cells ``table[i][idx[i,j]]`` from precomputed bucket indices."""
    indices = np.asarray(indices, dtype=np.int64)
    kernels = get_kernels()
    if (
        kernels is not None
        and table.flags.c_contiguous
        and table.dtype == np.float64
    ):
        return kernels.gather_indices(table, indices)
    return np.take_along_axis(table, indices, axis=1)


def estimate_median_indices(
    table: np.ndarray,
    indices: np.ndarray,
    mean_share: float,
    denom: float,
) -> Optional[np.ndarray]:
    """Fused ESTIMATE from precomputed ``(H, n)`` bucket indices.

    Returns ``median_i((table[i][idx[i,j]] - mean_share) / denom)`` as an
    ``(n,)`` vector when the kernel covers the request, else ``None``
    (caller falls back to gather + transform + ``np.median``).
    """
    kernels = get_kernels()
    if (
        kernels is not None
        and table.shape[0] <= MAX_ESTIMATE_DEPTH
        and table.flags.c_contiguous
        and table.dtype == np.float64
    ):
        indices = np.asarray(indices, dtype=np.int64)
        return kernels.estimate_indices(table, indices, mean_share, denom)
    return None


def mv_vote_indices(
    cand: np.ndarray,
    votes: np.ndarray,
    indices: np.ndarray,
    keys: np.ndarray,
    weights: np.ndarray,
) -> None:
    """Majority-vote maintenance from precomputed ``(H, n)`` bucket indices.

    The hash-free half of :meth:`StackedHash.mv_vote`: applies the MV rule
    to the candidate-key (``uint64`` view) and vote (``float64``) planes.
    The C kernel and the vectorized NumPy fallback replay the identical
    per-bucket operation sequence (ascending item order within each
    bucket), so the planes are bit-identical either way.
    """
    indices = np.asarray(indices, dtype=np.int64)
    kernels = get_kernels()
    if (
        kernels is not None
        and cand.flags.c_contiguous
        and votes.flags.c_contiguous
        and votes.dtype == np.float64
    ):
        kernels.update_mv_indices(cand, votes, indices, keys, weights)
        return
    _mv_vote_numpy(cand, votes, indices, keys, weights)


def mv_merge_planes(
    cand_a: np.ndarray,
    votes_a: np.ndarray,
    cand_b: np.ndarray,
    votes_b: np.ndarray,
    coeff: float,
) -> None:
    """Fold one term's candidate planes into the accumulator, MV-style.

    The COMBINE-side counterpart of :func:`mv_vote_indices`: treats the
    term ``(cand_b, votes_b)`` as one aggregate vote per bucket with
    weight ``votes_b * |coeff|`` and applies the MV rule cell by cell into
    ``(cand_a, votes_a)``.  Cells are independent, so the fused C kernel
    and the vectorized NumPy fallback perform the identical IEEE
    operations per cell -- the planes are bit-identical either way.
    """
    acoeff = abs(float(coeff))
    kernels = get_kernels()
    if (
        kernels is not None
        and cand_a.flags.c_contiguous
        and votes_a.flags.c_contiguous
        and cand_b.flags.c_contiguous
        and votes_b.flags.c_contiguous
    ):
        kernels.merge_mv(cand_a, votes_a, cand_b, votes_b, acoeff)
        return
    tv = votes_b * acoeff
    same = cand_a == cand_b
    ge = votes_a >= tv
    new_v = np.where(same, votes_a + tv, np.where(ge, votes_a - tv, tv - votes_a))
    np.copyto(cand_a, cand_b, where=~same & ~ge)
    np.copyto(votes_a, new_v)


def mv_combine2_planes(
    out_k: np.ndarray,
    out_v: np.ndarray,
    cand_a: np.ndarray,
    votes_a: np.ndarray,
    coeff_a: float,
    cand_b: np.ndarray,
    votes_b: np.ndarray,
    coeff_b: float,
) -> None:
    """Two-term candidate COMBINE into ``(out_k, out_v)`` in one pass.

    Fuses the generic fold's copy+scale-then-merge sequence for the
    two-term case that dominates the forecast hot path.  The fallback
    replays exactly that sequence through :func:`mv_merge_planes`, and
    the fused kernel performs the identical IEEE operations per cell,
    so planes are bit-identical either way.  ``out_k`` / ``out_v`` must
    not alias either input.
    """
    kernels = get_kernels()
    if (
        kernels is not None
        and out_k.flags.c_contiguous
        and out_v.flags.c_contiguous
        and cand_a.flags.c_contiguous
        and votes_a.flags.c_contiguous
        and cand_b.flags.c_contiguous
        and votes_b.flags.c_contiguous
    ):
        kernels.combine2_mv(
            cand_a, votes_a, abs(float(coeff_a)),
            cand_b, votes_b, abs(float(coeff_b)),
            out_k, out_v,
        )
        return
    np.copyto(out_k, cand_a)
    np.multiply(votes_a, abs(float(coeff_a)), out=out_v)
    mv_merge_planes(out_k, out_v, cand_b, votes_b, coeff_b)


def mv_recover_mask(
    table: np.ndarray,
    votes: np.ndarray,
    mean_share: float,
    denom: float,
    threshold: float,
) -> np.ndarray:
    """Boolean bucket mask for the invertible recovery walk.

    Marks cells where ``|(table - mean_share) / denom|`` clears
    ``threshold`` (strictly exceeds zero when ``threshold == 0``) and the
    vote is live.  The fused C pass and the NumPy fallback perform the
    identical IEEE operations per cell, so the mask is bit-identical.
    """
    kernels = get_kernels()
    if (
        kernels is not None
        and table.flags.c_contiguous
        and votes.flags.c_contiguous
    ):
        return kernels.recover_mask(table, votes, mean_share, denom, threshold)
    est = table - mean_share
    est /= denom
    np.abs(est, out=est)
    mask = est >= threshold if threshold > 0.0 else est > 0.0
    mask &= votes > 0.0
    return mask


def _mv_vote_numpy(cand, votes, indices, keys, weights) -> None:
    """Pure-NumPy MV vote pass (also the no-compiler fallback).

    Per row: group the items by bucket (stable sort keeps the original
    item order within a bucket), then iterate over *occupancy position* --
    round ``p`` applies every bucket's ``p``-th item at once.  Each bucket
    therefore sees its items in the same ascending order as the C kernel's
    scalar loop, and each vectorized branch (``cv + ww``, ``cv - ww``,
    ``ww - cv``) is the same IEEE operation the kernel performs, so the
    resulting planes are bit-identical.
    """
    n = indices.shape[1]
    if n == 0:
        return
    keys = keys.astype(np.uint64, copy=False)
    weights = np.asarray(weights, dtype=np.float64)
    for i in range(indices.shape[0]):
        idx = indices[i]
        order = np.argsort(idx, kind="stable")
        sidx = idx[order]
        sk = keys[order]
        sw = weights[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sidx[1:] != sidx[:-1]))
        )
        buckets = sidx[starts]
        counts = np.diff(np.append(starts, n))
        cur_k = cand[i, buckets].copy()
        cur_v = votes[i, buckets].copy()
        for p in range(int(counts.max())):
            sel = counts > p
            j = starts[sel] + p
            kk = sk[j]
            ww = sw[j]
            ck = cur_k[sel]
            cv = cur_v[sel]
            same = ck == kk
            ge = cv >= ww
            cur_v[sel] = np.where(same, cv + ww, np.where(ge, cv - ww, ww - cv))
            cur_k[sel] = np.where(same | ge, ck, kk)
        cand[i, buckets] = cur_k
        votes[i, buckets] = cur_v


def fused_signed_update(
    bucket_stack: StackedHash,
    sign_stack: StackedHash,
    table: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
) -> bool:
    """Count-Sketch fused UPDATE (``table[i][h_i(a)] += s_i(a) * u``).

    Returns ``True`` when a C kernel handled the update; ``False`` means
    the caller must run the reference (hash + signed scatter) path.
    Covers tabulation stacks (reduced-strip layout) and polynomial stacks
    of a shared degree; mixed or exotic compositions decline.
    """
    if not (table.flags.c_contiguous and table.dtype == np.float64):
        return False
    if (
        isinstance(bucket_stack, StackedTabulationHash)
        and isinstance(sign_stack, StackedTabulationHash)
        and bucket_stack._r0 is not None
        and sign_stack._r0 is not None
        and bucket_stack._kernels is not None
    ):
        keys = bucket_stack._check_keys(keys)
        bucket_stack._kernels.update_signed(
            table, keys, values,
            bucket_stack._r0, bucket_stack._r1, bucket_stack._r2,
            sign_stack._r0, sign_stack._r1, sign_stack._r2,
        )
        return True
    if (
        isinstance(bucket_stack, StackedPolynomialHash)
        and isinstance(sign_stack, StackedPolynomialHash)
        and bucket_stack._kernels is not None
        and bucket_stack._degree == sign_stack._degree
        and table.shape[1] == bucket_stack._num_buckets
    ):
        keys = keys.astype(np.uint64, copy=False)
        bucket_stack._kernels.poly_update_signed(
            table, keys, values, bucket_stack._coeffs, sign_stack._coeffs
        )
        return True
    return False
