"""Carter-Wegman polynomial hashing over the Mersenne prime ``2**61 - 1``.

A degree-``k-1`` polynomial with uniformly random coefficients evaluated
over a prime field is exactly ``k``-wise independent: for any ``k`` distinct
keys the Vandermonde system has a unique coefficient solution, so the ``k``
hash values are uniform and independent.  With ``k = 4`` this gives the
4-universal family the k-ary sketch requires (paper Section 3.1, citing
Carter & Wegman [10, 39]).

Working modulo the Mersenne prime ``P61 = 2**61 - 1`` lets us reduce
products without division: ``x mod P61 == (x >> 61) + (x & P61)`` (up to one
final conditional subtraction), because ``2**61 === 1 (mod P61)``.  The
vectorized implementation below splits 61-bit operands into 32-bit halves so
every intermediate product fits in ``uint64``.

Domain note: keys are taken modulo ``P61``, so the effective key universe is
``[0, 2**61 - 1)``.  Distinct 64-bit keys alias only when they differ by a
multiple of ``P61`` -- probability ``~2**-61`` for random keys, which is
negligible for any realistic key population (network keys used in the paper
are 32- or 64-bit header fields).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hashing.universal import HashFamily, register_family

#: The Mersenne prime 2**61 - 1 used as the field modulus.
P61 = (1 << 61) - 1

_MASK32 = (1 << 32) - 1
_MASK29 = (1 << 29) - 1


def _mulmod_p61(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized ``(a * b) mod P61`` for uint64 operands ``< P61``.

    Splits each operand into 32-bit halves so that all partial products fit
    in ``uint64``, then folds the powers of two using ``2**61 === 1``:

    * ``2**64 === 8 (mod P61)``
    * ``mid * 2**32`` is folded by splitting ``mid`` at bit 29, since
      ``2**29 * 2**32 = 2**61 === 1``.
    """
    a = a.astype(np.uint64, copy=False)
    b = b.astype(np.uint64, copy=False)
    a_hi = a >> np.uint64(32)
    a_lo = a & np.uint64(_MASK32)
    b_hi = b >> np.uint64(32)
    b_lo = b & np.uint64(_MASK32)

    # a*b = hh*2^64 + (hl + lh)*2^32 + ll
    hh = a_hi * b_hi                      # < 2^58
    mid = a_hi * b_lo + a_lo * b_hi       # < 2^62
    ll = a_lo * b_lo                      # < 2^64

    # hh * 2^64 === hh * 8
    acc = hh << np.uint64(3)              # < 2^61
    # mid * 2^32: split mid at bit 29
    acc = acc + (mid >> np.uint64(29))    # m_hi * 2^61 === m_hi
    acc = acc + ((mid & np.uint64(_MASK29)) << np.uint64(32))  # < 2^61
    # ll: fold once
    acc = acc + (ll >> np.uint64(61)) + (ll & np.uint64(P61))
    # acc < ~2^63; fold and conditionally subtract
    acc = (acc >> np.uint64(61)) + (acc & np.uint64(P61))
    acc = np.where(acc >= np.uint64(P61), acc - np.uint64(P61), acc)
    return acc


def _mulmod_scalar(a: int, b: int) -> int:
    """Scalar ``(a * b) mod P61`` using arbitrary-precision ints."""
    return (a * b) % P61


class _PolynomialBase(HashFamily):
    """Shared machinery for degree-``k-1`` Carter-Wegman families."""

    degree: int = 0  # number of coefficients = independence level

    def __init__(self, num_buckets: int, seed: Optional[int] = None) -> None:
        super().__init__(num_buckets, seed)
        rng = np.random.default_rng(seed)
        coeffs = rng.integers(0, P61, size=self.degree, dtype=np.uint64)
        #: polynomial coefficients, c[0] is the constant term
        self._coeffs = coeffs

    @property
    def coefficients(self) -> np.ndarray:
        """Polynomial coefficients ``c[0] + c[1] x + ...`` (read-only view)."""
        view = self._coeffs.view()
        view.flags.writeable = False
        return view

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        keys = keys.astype(np.uint64, copy=False)
        # Reduce keys into the field first (see module docstring).
        x = (keys >> np.uint64(61)) + (keys & np.uint64(P61))
        x = np.where(x >= np.uint64(P61), x - np.uint64(P61), x)
        # Horner evaluation: (((c3 x + c2) x + c1) x + c0)
        acc = np.full(x.shape, self._coeffs[-1], dtype=np.uint64)
        for c in self._coeffs[-2::-1]:
            acc = _mulmod_p61(acc, x)
            acc = acc + c
            acc = np.where(acc >= np.uint64(P61), acc - np.uint64(P61), acc)
        return (acc % np.uint64(self._num_buckets)).astype(np.int64)


@register_family("polynomial")
class PolynomialHash(_PolynomialBase):
    """Degree-3 Carter-Wegman polynomial: exactly 4-universal.

    This is the reference 4-universal family.  It is slower than tabulation
    (four modular multiplications per key) but works for any key width up to
    the field size and is easy to reason about, so tests validate tabulation
    against it.
    """

    independence = 4
    degree = 4


@register_family("two-universal")
class TwoUniversalHash(_PolynomialBase):
    """Degree-1 Carter-Wegman polynomial ``(a x + b) mod P61``: 2-universal.

    Deliberately weaker than the sketch requires.  Point estimates remain
    unbiased under 2-universality, but the ESTIMATEF2 variance bound
    (Theorem 4) needs 4-wise independence; the ablation benchmark
    demonstrates the degradation empirically.
    """

    independence = 2
    degree = 2
