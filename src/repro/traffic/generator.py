"""Synthetic flow-trace generator.

Produces a four-hour (configurable) trace for a router profile:

1. Draw a key population of random IPv4 addresses and Zipf popularity
   weights over it.
2. For each base interval, draw the record count from the profile rate
   modulated by a diurnal factor and AR(1) level noise.
3. Sample each record's destination from the Zipf weights, its source/port
   fields from background distributions, its bytes from a Pareto tail, and
   its timestamp uniformly within the interval.

The result is a time-sorted record array compatible with
:mod:`repro.streams`.  All randomness flows from one seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.streams.records import empty_records, sort_by_time
from repro.traffic.distributions import (
    ar1_level_noise,
    diurnal_factor,
    pareto_bytes,
    zipf_probabilities,
)
from repro.traffic.routers import RouterProfile

#: Private (RFC1918-ish) blocks avoided so anomaly injectors can pick
#: attacker/victim addresses that never collide with background keys.
_RESERVED_PREFIX = 0x0A000000  # 10.0.0.0/8


class TrafficGenerator:
    """Generates background traffic for one router profile.

    Parameters
    ----------
    profile:
        The router's statistical profile.
    duration:
        Trace length in seconds (paper: four hours = 14400 s).
    base_interval:
        Granularity of rate modulation, in seconds.  Finer than the
        analysis interval so 60 s experiments still see rate structure.
    seed:
        Overrides the profile's default seed when given.
    """

    def __init__(
        self,
        profile: RouterProfile,
        duration: float = 4 * 3600.0,
        base_interval: float = 60.0,
        seed: Optional[int] = None,
    ) -> None:
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        if base_interval <= 0:
            raise ValueError(f"base_interval must be > 0, got {base_interval}")
        self.profile = profile
        self.duration = float(duration)
        self.base_interval = float(base_interval)
        self.seed = profile.seed if seed is None else seed
        self._rng = np.random.default_rng(self.seed)
        self._population = self._draw_population()
        self._popularity = zipf_probabilities(
            profile.key_population, profile.zipf_exponent
        )

    def _draw_population(self) -> np.ndarray:
        """Distinct public-looking IPv4 addresses for the key population."""
        rng = np.random.default_rng(self.seed + 7)
        needed = self.profile.key_population
        seen = np.array([], dtype=np.uint32)
        while len(seen) < needed:
            batch = rng.integers(0, 1 << 32, size=2 * needed, dtype=np.uint32)
            # Avoid the reserved 10/8 block (kept free for injected actors).
            batch = batch[(batch >> np.uint32(24)) != np.uint32(10)]
            seen = np.unique(np.concatenate([seen, batch]))
        return seen[:needed]

    @property
    def population(self) -> np.ndarray:
        """The destination-IP population (read-only view)."""
        view = self._population.view()
        view.flags.writeable = False
        return view

    def generate(self) -> np.ndarray:
        """Generate the full background trace, sorted by timestamp."""
        rng = self._rng
        n_slots = int(np.ceil(self.duration / self.base_interval))
        slot_starts = self.base_interval * np.arange(n_slots)
        rate_scale = self.profile.records_per_interval * (
            self.base_interval / 300.0
        )
        factors = diurnal_factor(slot_starts, phase=rng.uniform(0, 2 * np.pi))
        levels = ar1_level_noise(rng, n_slots)
        counts = rng.poisson(rate_scale * factors * levels)

        total = int(counts.sum())
        records = empty_records(total)

        # Timestamps: uniform within each slot.
        offsets = rng.uniform(0.0, self.base_interval, size=total)
        slot_of = np.repeat(np.arange(n_slots), counts)
        records["timestamp"] = slot_starts[slot_of] + offsets

        # Destinations: Zipf-weighted draws from the population.
        dst_index = rng.choice(
            self.profile.key_population, size=total, p=self._popularity
        )
        records["dst_ip"] = self._population[dst_index]

        # Sources: a smaller client population with mild skew.
        src_pop = max(self.profile.key_population // 4, 1)
        records["src_ip"] = (
            rng.integers(0, src_pop, size=total).astype(np.uint32)
            + np.uint32(0xC0000000)  # park sources in 192/2 space
        )

        records["src_port"] = rng.integers(1024, 65536, size=total, dtype=np.uint16)
        # Destination ports: 80% to a handful of well-known services.
        well_known = np.array([80, 443, 25, 53, 22, 110, 143, 8080], dtype=np.uint16)
        service = rng.random(total) < 0.8
        ports = rng.integers(1024, 65536, size=total).astype(np.uint16)
        ports[service] = rng.choice(well_known, size=int(service.sum()))
        records["dst_port"] = ports
        records["protocol"] = np.where(rng.random(total) < 0.9, 6, 17).astype(np.uint8)

        byte_counts = pareto_bytes(rng, total, shape=self.profile.pareto_shape)
        records["bytes"] = byte_counts.astype(np.uint64)
        records["packets"] = np.maximum(
            (byte_counts / 1000.0).astype(np.uint32), 1
        )

        return sort_by_time(records)
