"""Anomaly injectors: ground-truth traffic changes for detection tests.

Each injector returns extra flow records plus an :class:`AnomalyEvent`
describing what was planted, so examples and tests can score detections
against truth.  The anomaly taxonomy follows the paper's motivation
section: DoS attacks, flash crowds (benign surges), scans, and worms.

All injected actors live in the reserved ``10.0.0.0/8`` block that the
background generator never emits, guaranteeing that the planted keys'
pre-anomaly history is exactly zero unless the caller chooses an existing
victim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.streams.records import empty_records, sort_by_time

_RESERVED_BASE = 0x0A000000  # 10.0.0.0/8


@dataclass(frozen=True)
class AnomalyEvent:
    """Ground truth for one injected anomaly.

    Attributes
    ----------
    kind:
        ``"dos"``, ``"flash_crowd"``, ``"port_scan"`` or ``"worm"``.
    start / end:
        Active window in trace seconds.
    keys:
        The destination keys whose signal the anomaly perturbs (the keys a
        ``dst_ip`` detector should flag).
    total_bytes:
        Volume added over the window.
    """

    kind: str
    start: float
    end: float
    keys: Tuple[int, ...]
    total_bytes: float

    def overlaps_interval(self, t0: float, t1: float) -> bool:
        """True when the anomaly is active anywhere in ``[t0, t1)``."""
        return self.start < t1 and self.end > t0


def _timestamps(rng, count: int, start: float, end: float) -> np.ndarray:
    return rng.uniform(start, end, size=count)


def inject_dos(
    rng: np.random.Generator,
    start: float,
    end: float,
    victim_ip: Optional[int] = None,
    records_per_second: float = 50.0,
    bytes_per_record: float = 1500.0,
    attacker_count: int = 64,
) -> Tuple[np.ndarray, AnomalyEvent]:
    """A volumetric DoS: sudden constant-rate flood at one destination.

    Sharp onset and sharp stop -- the canonical "significant change" a
    forecast-error detector must catch at both edges.
    """
    if end <= start:
        raise ValueError(f"end must exceed start, got [{start}, {end}]")
    victim = int(victim_ip) if victim_ip is not None else _RESERVED_BASE + 1
    count = max(1, int(records_per_second * (end - start)))
    records = empty_records(count)
    records["timestamp"] = _timestamps(rng, count, start, end)
    records["dst_ip"] = victim
    records["src_ip"] = (
        _RESERVED_BASE + 0x10000 + rng.integers(0, attacker_count, size=count)
    ).astype(np.uint32)
    records["src_port"] = rng.integers(1024, 65536, size=count, dtype=np.uint16)
    records["dst_port"] = 80
    records["protocol"] = 6
    records["bytes"] = np.uint64(bytes_per_record)
    records["packets"] = 1
    event = AnomalyEvent(
        kind="dos",
        start=start,
        end=end,
        keys=(victim,),
        total_bytes=float(count * bytes_per_record),
    )
    return sort_by_time(records), event


def inject_flash_crowd(
    rng: np.random.Generator,
    start: float,
    end: float,
    target_ip: Optional[int] = None,
    peak_records_per_second: float = 30.0,
    mean_bytes: float = 8000.0,
) -> Tuple[np.ndarray, AnomalyEvent]:
    """A flash crowd: triangular ramp up then down at one destination.

    Benign but statistically a change; the paper stresses that change
    detection flags both ("an anomaly can be a benign surge in traffic
    (like a flash crowd) or an attack").
    """
    if end <= start:
        raise ValueError(f"end must exceed start, got [{start}, {end}]")
    target = int(target_ip) if target_ip is not None else _RESERVED_BASE + 2
    duration = end - start
    count = max(1, int(0.5 * peak_records_per_second * duration))
    # Triangular arrival density peaking mid-window.
    u = rng.random(count)
    peak_at = 0.5
    tri = np.where(
        u < peak_at,
        np.sqrt(u * peak_at),
        1.0 - np.sqrt((1.0 - u) * (1.0 - peak_at)),
    )
    records = empty_records(count)
    records["timestamp"] = start + tri * duration
    records["dst_ip"] = target
    records["src_ip"] = rng.integers(0, 1 << 32, size=count, dtype=np.uint32)
    records["src_port"] = rng.integers(1024, 65536, size=count, dtype=np.uint16)
    records["dst_port"] = 443
    records["protocol"] = 6
    byte_counts = rng.exponential(mean_bytes, size=count) + 200.0
    records["bytes"] = byte_counts.astype(np.uint64)
    records["packets"] = np.maximum((byte_counts / 1000.0).astype(np.uint32), 1)
    event = AnomalyEvent(
        kind="flash_crowd",
        start=start,
        end=end,
        keys=(target,),
        total_bytes=float(byte_counts.sum()),
    )
    return sort_by_time(records), event


def inject_port_scan(
    rng: np.random.Generator,
    start: float,
    end: float,
    target_count: int = 512,
    probe_bytes: float = 60.0,
    probes_per_target: int = 2,
) -> Tuple[np.ndarray, AnomalyEvent]:
    """A horizontal port scan: one source probing many destinations.

    Individually tiny signals; under a ``dst_ip`` keying this is a change
    spread across many small keys (hard for volume thresholds, visible to
    ``count``-valued or ``src_ip``-keyed detectors) -- a useful negative
    control for examples.
    """
    if end <= start:
        raise ValueError(f"end must exceed start, got [{start}, {end}]")
    targets = (_RESERVED_BASE + 0x20000 + np.arange(target_count)).astype(np.uint32)
    count = target_count * probes_per_target
    records = empty_records(count)
    records["timestamp"] = _timestamps(rng, count, start, end)
    records["dst_ip"] = np.repeat(targets, probes_per_target)
    records["src_ip"] = _RESERVED_BASE + 3
    records["src_port"] = rng.integers(1024, 65536, size=count, dtype=np.uint16)
    records["dst_port"] = rng.integers(1, 1024, size=count, dtype=np.uint16)
    records["protocol"] = 6
    records["bytes"] = np.uint64(probe_bytes)
    records["packets"] = 1
    event = AnomalyEvent(
        kind="port_scan",
        start=start,
        end=end,
        keys=tuple(int(t) for t in targets),
        total_bytes=float(count * probe_bytes),
    )
    return sort_by_time(records), event


def inject_worm(
    rng: np.random.Generator,
    start: float,
    end: float,
    initial_infected: int = 4,
    doubling_time: float = 300.0,
    max_infected: int = 4096,
    scan_rate_per_host: float = 0.4,
    probe_bytes: float = 404.0,
    target_port: int = 1434,
) -> Tuple[np.ndarray, AnomalyEvent]:
    """Worm propagation: exponentially growing scan volume (Slammer-style).

    Infected hosts double every ``doubling_time`` until saturation; each
    scans random destinations at a fixed rate.  Under ``dst_ip`` keying the
    aggregate appears as exponential growth spread over random keys; under
    ``dst_port`` keying it is a single exploding signal at ``target_port``.
    """
    if end <= start:
        raise ValueError(f"end must exceed start, got [{start}, {end}]")
    chunks: List[np.ndarray] = []
    step = 30.0
    t = start
    total_bytes = 0.0
    while t < end:
        elapsed = t - start
        infected = min(
            max_infected, int(initial_infected * 2.0 ** (elapsed / doubling_time))
        )
        lam = infected * scan_rate_per_host * min(step, end - t)
        count = int(rng.poisson(lam))
        if count:
            chunk = empty_records(count)
            chunk["timestamp"] = _timestamps(rng, count, t, min(t + step, end))
            chunk["dst_ip"] = rng.integers(0, 1 << 32, size=count, dtype=np.uint32)
            chunk["src_ip"] = (
                _RESERVED_BASE + 0x30000 + rng.integers(0, infected, size=count)
            ).astype(np.uint32)
            chunk["src_port"] = rng.integers(1024, 65536, size=count, dtype=np.uint16)
            chunk["dst_port"] = target_port
            chunk["protocol"] = 17
            chunk["bytes"] = np.uint64(probe_bytes)
            chunk["packets"] = 1
            chunks.append(chunk)
            total_bytes += count * probe_bytes
        t += step
    records = (
        sort_by_time(np.concatenate(chunks)) if chunks else empty_records(0)
    )
    event = AnomalyEvent(
        kind="worm",
        start=start,
        end=end,
        keys=(int(target_port),),  # meaningful under dst_port keying
        total_bytes=total_bytes,
    )
    return records, event
