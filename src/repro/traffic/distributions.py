"""Distribution samplers for synthetic traffic.

Internet measurement literature consistently reports Zipf-like destination
popularity and heavy-tailed (Pareto-ish) transfer sizes; these are the two
marginals that determine how hard a stream is for a sketch (how many keys
collide, and how concentrated F2 is).
"""

from __future__ import annotations

import numpy as np


def zipf_probabilities(population: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf probabilities ``p_r ~ r**-exponent`` over ranks 1..N.

    ``exponent`` near 1.0 matches destination-popularity measurements;
    larger exponents concentrate traffic on fewer keys.
    """
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    ranks = np.arange(1, population + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def pareto_bytes(
    rng: np.random.Generator,
    count: int,
    shape: float = 1.2,
    minimum: float = 40.0,
    cap: float = 1e8,
) -> np.ndarray:
    """Pareto-distributed record byte counts.

    ``shape`` in (1, 2) gives infinite variance -- the classic heavy tail of
    flow volumes.  ``minimum`` is the smallest record (a bare ACK-sized
    flow); ``cap`` bounds the tail so one astronomically large sample
    cannot dominate an entire synthetic trace.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if shape <= 0:
        raise ValueError(f"shape must be > 0, got {shape}")
    samples = minimum * (1.0 + rng.pareto(shape, size=count))
    return np.minimum(samples, cap)


def lognormal_bytes(
    rng: np.random.Generator,
    count: int,
    mean_log: float = 7.0,
    sigma_log: float = 1.5,
    cap: float = 1e8,
) -> np.ndarray:
    """Lognormal record byte counts (body-heavy alternative to Pareto).

    ``mean_log = 7`` puts the median near ``e**7 ~ 1100`` bytes, a typical
    small-transfer size.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if sigma_log < 0:
        raise ValueError(f"sigma_log must be >= 0, got {sigma_log}")
    samples = rng.lognormal(mean_log, sigma_log, size=count)
    return np.minimum(np.maximum(samples, 40.0), cap)


def diurnal_factor(
    times: np.ndarray,
    period: float = 86400.0,
    peak_fraction: float = 0.6,
    phase: float = 0.0,
) -> np.ndarray:
    """Smooth diurnal rate modulation in ``[1 - peak_fraction/2, 1 + ...]``.

    A sinusoid with daily period; over a four-hour trace this appears as a
    slow trend, which is exactly what gives trend-aware models (NSHW,
    ARIMA1) something to earn their keep on.
    """
    times = np.asarray(times, dtype=np.float64)
    return 1.0 + 0.5 * peak_fraction * np.sin(2.0 * np.pi * (times / period) + phase)


def ar1_level_noise(
    rng: np.random.Generator,
    count: int,
    rho: float = 0.7,
    sigma: float = 0.08,
) -> np.ndarray:
    """Multiplicative AR(1) level noise across intervals.

    Returns ``count`` positive factors with lag-1 autocorrelation ``rho``;
    applied to per-interval rates, it creates the short-range dependence
    that distinguishes forecastable traffic from white noise.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    innovations = rng.normal(0.0, sigma, size=count)
    levels = np.empty(count)
    state = 0.0
    stationary_scale = np.sqrt(1.0 - rho * rho)
    for i in range(count):
        state = rho * state + stationary_scale * innovations[i]
        levels[i] = state
    return np.exp(levels)
