"""Synthetic traffic substrate.

The paper evaluates on four hours of NetFlow from ten routers of a tier-1
ISP backbone -- data we cannot ship.  This package synthesizes traces with
the statistical properties the evaluation actually exercises:

* **Heavy-tailed key popularity** (Zipf): a few destinations receive most
  records, a long tail receives few -- this is what stresses sketch
  collision behaviour.
* **Heavy-tailed per-record volumes** (Pareto / lognormal bytes): dominant
  contributions to F2 come from few keys, as in real traffic.
* **Temporal structure**: diurnal modulation plus autocorrelated
  interval-to-interval level noise, so forecast models have signal to
  track.
* **Flow churn**: tail keys appear and disappear across intervals.
* **Injected anomalies**: DoS spikes, flash-crowd ramps, port scans and
  worm-style spreading events, so change detection has ground truth.

Router profiles mirror the paper's relative scales (large : medium :
small record volumes of roughly 11 : 2.4 : 1).
"""

from repro.traffic.anomalies import (
    AnomalyEvent,
    inject_dos,
    inject_flash_crowd,
    inject_port_scan,
    inject_worm,
)
from repro.traffic.distributions import (
    lognormal_bytes,
    pareto_bytes,
    zipf_probabilities,
)
from repro.traffic.generator import TrafficGenerator
from repro.traffic.routers import ROUTER_PROFILES, RouterProfile, get_profile

__all__ = [
    "ROUTER_PROFILES",
    "AnomalyEvent",
    "RouterProfile",
    "TrafficGenerator",
    "get_profile",
    "inject_dos",
    "inject_flash_crowd",
    "inject_port_scan",
    "inject_worm",
    "lognormal_bytes",
    "pareto_bytes",
    "zipf_probabilities",
]
