"""Router profiles: the synthetic fleet standing in for the paper's ten routers.

The paper's dataset: "ten different routers in the backbone of a tier-1
ISP.  Nearly 190 million records are processed with the smallest router
having 861K records and the busiest one having over 60 million records in a
contiguous four hour stretch"; accuracy experiments single out a large
(>60 M), medium (12.7 M) and small (5.3 M) router.

Profiles below preserve the **relative** scales at laptop-friendly absolute
sizes (see DESIGN.md Section 6); ``scale`` multiplies record counts and the
key population together so collision pressure per sketch bucket is
preserved when scaling up.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class RouterProfile:
    """Statistical profile of one router's traffic.

    Attributes
    ----------
    name:
        Profile identifier (``"large"``, ``"medium"``, ...).
    records_per_interval:
        Mean flow records per 300-second interval.
    key_population:
        Number of distinct destination IPs in the router's working set.
    zipf_exponent:
        Popularity skew across that population.
    pareto_shape:
        Tail index of per-record byte volumes.
    seed:
        Default generation seed (distinct per router so traces differ).
    """

    name: str
    records_per_interval: int
    key_population: int
    zipf_exponent: float = 1.0
    pareto_shape: float = 1.2
    seed: int = 0

    def scaled(self, scale: float) -> "RouterProfile":
        """Scale record volume and key population together."""
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        return replace(
            self,
            records_per_interval=max(1, int(self.records_per_interval * scale)),
            key_population=max(1, int(self.key_population * scale)),
        )


#: The synthetic fleet.  Ratios follow the paper's large:medium:small
#: record volumes (~11 : 2.4 : 1); the extra routers fill out fleet-wide
#: CDFs (Figures 1-3) the way the paper's ten routers do.
ROUTER_PROFILES: Dict[str, RouterProfile] = {
    "large": RouterProfile(
        name="large",
        records_per_interval=40_000,
        key_population=60_000,
        zipf_exponent=0.95,
        seed=101,
    ),
    "medium": RouterProfile(
        name="medium",
        records_per_interval=8_500,
        key_population=18_000,
        zipf_exponent=1.0,
        seed=102,
    ),
    "small": RouterProfile(
        name="small",
        records_per_interval=3_500,
        key_population=9_000,
        zipf_exponent=1.05,
        seed=103,
    ),
    "edge-1": RouterProfile(
        name="edge-1",
        records_per_interval=6_000,
        key_population=14_000,
        zipf_exponent=1.1,
        seed=104,
    ),
    "edge-2": RouterProfile(
        name="edge-2",
        records_per_interval=4_500,
        key_population=10_000,
        zipf_exponent=0.9,
        seed=105,
    ),
    "peering": RouterProfile(
        name="peering",
        records_per_interval=12_000,
        key_population=25_000,
        zipf_exponent=1.0,
        pareto_shape=1.1,
        seed=106,
    ),
}


def get_profile(name: str, scale: float = 1.0) -> RouterProfile:
    """Look up a router profile by name, optionally scaled."""
    try:
        profile = ROUTER_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(ROUTER_PROFILES))
        raise ValueError(f"unknown router {name!r}; known: {known}") from None
    return profile.scaled(scale) if scale != 1.0 else profile
