"""Command-line interface: ``repro`` (or ``python -m repro``).

Subcommands
-----------
``repro list``
    List reproducible experiment ids.
``repro run fig05 [fig07 ...]``
    Regenerate one or more paper exhibits and print their tables.
``repro generate --router large --out trace.bin``
    Write a synthetic router trace to a binary file.
``repro detect trace.bin --model ewma --alpha 0.4 --top-n 20``
    Run sketch-based change detection over a trace file.
``repro gridsearch --router medium --model nshw``
    Show the grid-searched parameters for a model on a router dataset.
``repro sketch trace.bin --out-dir sketches/``
    Summarize a trace into per-interval serialized k-ary sketches.
``repro combine sketches/a_*.bin --out merged.bin``
    COMBINE (sum) serialized sketches, e.g. from several routers.
``repro drilldown trace.bin --levels 8,16,24,32``
    Hierarchical prefix attribution of detected changes.
``repro checkpoint trace.bin --until 5400 --out session.kcp``
    Stream a trace prefix through a live session, then snapshot the full
    pipeline state (forecaster + open interval) to a checkpoint file.
``repro resume session.kcp trace.bin``
    Restore a checkpointed session and continue over the remaining
    records -- reports are bit-identical to an uninterrupted run.
``repro bench --quick [throughput detection recovery]``
    Run the performance benchmarks (fused-kernel UPDATE/ESTIMATE
    throughput, amortized detection seal, replay-free key recovery) and
    print the speedup tables.  Reports go to a scratch directory unless
    ``--output-dir`` is given.
``repro monitor trace.bin --chunk-seconds 60 --metrics-out metrics.prom``
    Stream a trace through a live session in arrival-time chunks,
    periodically flushing pipeline metrics (Prometheus text or JSON)
    for scraping.
``repro serve --port 5585 --model ewma``
    Run the distributed-detection coordinator: accept per-site interval
    sketches over TCP, COMBINE them per interval, and detect changes
    network-wide.  ``--checkpoint``/``--checkpoint-every`` persist the
    coordinator state; ``--resume`` restarts from such a checkpoint.
``repro archive trace.bin --out archive.kcp --budget-mb 8``
    Stream a trace through a live session with a temporal-archive sink:
    sealed interval sketches are retained multi-resolution under the
    byte budget and written as a queryable archive file.
``repro query archive.kcp --diff 46:48 40:46``
    Retrospective queries over an archive: ``--estimate`` a key's
    volume over a time range, ``--diff``/``--drilldown`` two interval
    ranges through the detection threshold machinery, or ``--replay``
    live detection over the full-resolution tail.  With no query flag,
    print the archive's span layout.
``repro agent trace.bin --site pop-west --connect host:5585``
    Stream one site's trace to a coordinator: sketch locally per
    interval, ship sealed sketches (or suppress low-drift intervals
    when ``--drift-fraction`` > 0 -- error-bounded communication
    filtering).

``detect``, ``checkpoint``, ``resume`` and ``monitor`` accept
``--metrics-out PATH``: attach a
:class:`~repro.obs.recorder.PipelineRecorder` to the run and write its
metrics snapshot to ``PATH`` on completion (``.json`` extension selects
the JSON exporter, anything else Prometheus text).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import list_experiments

    for experiment_id in list_experiments():
        print(experiment_id)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import run_experiment

    for experiment_id in args.experiments:
        result = run_experiment(experiment_id)
        print(result.render())
        print()
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.streams import write_trace
    from repro.traffic import TrafficGenerator, get_profile

    profile = get_profile(args.router, scale=args.scale)
    generator = TrafficGenerator(
        profile, duration=args.duration, seed=args.seed
    )
    records = generator.generate()
    write_trace(args.out, records)
    print(f"wrote {len(records)} records to {args.out}")
    return 0


def _format_stats_lines(stats: dict) -> List[str]:
    """Render session/detector counters as ``stats: ...`` summary lines.

    One line per counter group so downstream tooling can grep a single
    prefix; interval report lines keep their ``interval`` prefix, which
    existing consumers filter on.
    """
    lines = []
    detection = stats.get("detection")
    if detection is not None:
        candidates = detection.get("candidates", 0)
        evaluated = detection.get("median_evaluated", 0)
        fraction = evaluated / candidates if candidates else 0.0
        lines.append(
            f"stats: prescreen candidates={candidates} "
            f"median_evaluated={evaluated} ({fraction:.1%})"
        )
    cache = stats.get("index_cache")
    if cache is not None:
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        rate = cache.get("hits", 0) / lookups if lookups else 0.0
        lines.append(
            f"stats: index-cache hits={cache.get('hits', 0)} "
            f"misses={cache.get('misses', 0)} "
            f"evictions={cache.get('evictions', 0)} "
            f"size={cache.get('size', 0)} ({rate:.1%} hit rate)"
        )
    supervision = stats.get("supervision")
    if supervision is not None:
        lines.append(
            "stats: supervision "
            + " ".join(f"{k}={v}" for k, v in sorted(supervision.items()))
        )
    return lines


def _make_recorder(args):
    """Build a PipelineRecorder when ``--metrics-out`` was given."""
    if getattr(args, "metrics_out", None) is None:
        return None
    from repro.obs import PipelineRecorder

    return PipelineRecorder()


def _write_metrics(recorder, args) -> None:
    if recorder is not None:
        recorder.write(args.metrics_out)
        print(f"metrics -> {args.metrics_out}")


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.detection import (
        GroupTestingSchema,
        OfflineTwoPassDetector,
        OnlineDetector,
    )
    from repro.sketch import InvertibleKArySchema, KArySchema
    from repro.streams import IntervalStream, read_trace

    _apply_threads(args)
    records = read_trace(args.trace)
    stream = IntervalStream(
        records,
        interval_seconds=args.interval,
        key_scheme=args.key,
        value_scheme=args.value,
    )
    model_params = {}
    if args.alpha is not None:
        model_params["alpha"] = args.alpha
    if args.beta is not None:
        model_params["beta"] = args.beta
    if args.window is not None:
        model_params["window"] = args.window
    recorder = _make_recorder(args)
    # The key source dictates the summary type: invertible recovery needs
    # the candidate/vote planes, group testing needs per-bit subcounters;
    # replay and online work on the plain k-ary sketch.
    if args.key_source == "invertible":
        schema = InvertibleKArySchema(
            depth=args.depth, width=args.width, seed=args.seed
        )
    elif args.key_source == "grouptesting":
        schema = GroupTestingSchema(
            depth=args.depth, width=args.width, seed=args.seed
        )
    else:
        schema = KArySchema(depth=args.depth, width=args.width, seed=args.seed)
    if args.key_source == "online":
        detector = OnlineDetector(
            schema,
            args.model,
            t_fraction=args.threshold,
            recorder=recorder,
            **model_params,
        )
    else:
        detector = OfflineTwoPassDetector(
            schema,
            args.model,
            t_fraction=args.threshold,
            top_n=args.top_n,
            key_source=args.key_source,
            recorder=recorder,
            **model_params,
        )
    for report in detector.run(stream):
        line = (
            f"interval {report.index:4d}  "
            f"L2={report.error_l2:12.4g}  alarms={report.alarm_count:5d}"
        )
        if args.top_n:
            top = ", ".join(
                f"{key}:{err:.3g}"
                for key, err in zip(
                    report.top_keys[: args.top_n].tolist(),
                    report.top_errors[: args.top_n].tolist(),
                )
            )
            line += f"  top=[{top}]"
        print(line)
    if args.stats:
        stats = {}
        if getattr(detector, "stats", None) is not None:
            stats["detection"] = detector.stats
        cache = getattr(detector, "index_cache", None)
        if cache is not None:
            stats["index_cache"] = cache.stats
        for line in _format_stats_lines(stats):
            print(line)
    _write_metrics(recorder, args)
    return 0


def _print_session_report(report, top_n: int) -> None:
    line = (
        f"interval {report.index:4d}  "
        f"L2={report.error_l2:12.4g}  alarms={report.alarm_count:5d}"
    )
    if top_n:
        top = ", ".join(
            f"{key}:{err:.3g}"
            for key, err in zip(
                report.top_keys[:top_n].tolist(),
                report.top_errors[:top_n].tolist(),
            )
        )
        line += f"  top=[{top}]"
    print(line)


def _apply_threads(args) -> None:
    """Apply ``--threads`` to the kernel layer before any session work."""
    threads = getattr(args, "threads", None)
    if threads is not None:
        from repro.hashing import set_num_threads

        set_num_threads(threads)


def _build_session(args, schema, recorder=None):
    from repro.detection import ShardedStreamingSession, StreamingSession

    _apply_threads(args)
    model_params = {}
    if args.alpha is not None:
        model_params["alpha"] = args.alpha
    if args.beta is not None:
        model_params["beta"] = args.beta
    if args.window is not None:
        model_params["window"] = args.window
    common = dict(
        interval_seconds=args.interval,
        key_scheme=args.key,
        value_scheme=args.value,
        t_fraction=args.threshold,
        top_n=args.top_n,
        pipeline=getattr(args, "pipeline", False),
        pipeline_depth=getattr(args, "pipeline_depth", 2),
        recorder=recorder,
        **model_params,
    )
    if args.workers > 1:
        return ShardedStreamingSession(
            schema, args.model, n_workers=args.workers, backend=args.backend,
            **common,
        )
    return StreamingSession(schema, args.model, **common)


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.detection import save_checkpoint
    from repro.sketch import KArySchema
    from repro.streams import read_trace

    records = read_trace(args.trace)
    schema = KArySchema(depth=args.depth, width=args.width, seed=args.seed)
    recorder = _make_recorder(args)
    session = _build_session(args, schema, recorder=recorder)
    prefix = records[records["timestamp"] <= args.until]
    reports = session.ingest(prefix) if len(prefix) else []
    for report in reports:
        _print_session_report(report, args.top_n)
    save_checkpoint(session, args.out)
    for line in _format_stats_lines(session.stats):
        print(line)
    if hasattr(session, "close"):
        for report in session.close() or []:
            _print_session_report(report, args.top_n)
    _write_metrics(recorder, args)
    print(
        f"checkpointed {session.records_ingested} records "
        f"({session.intervals_sealed} intervals sealed, "
        f"watermark={session.watermark:.3f}s) -> {args.out}"
    )
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.detection import load_checkpoint
    from repro.streams import read_trace

    _apply_threads(args)
    session = load_checkpoint(
        args.checkpoint,
        backend=args.backend,
        pipeline=getattr(args, "pipeline", False),
        pipeline_depth=getattr(args, "pipeline_depth", 2),
    )
    recorder = _make_recorder(args)
    if recorder is not None:
        session.attach_recorder(recorder)
    records = read_trace(args.trace)
    rest = records[records["timestamp"] > session.watermark]
    print(
        f"resuming at watermark={session.watermark:.3f}s "
        f"({len(rest)} records remain)"
    )
    reports = session.ingest(rest) if len(rest) else []
    if args.out is not None:
        from repro.detection import save_checkpoint

        save_checkpoint(session, args.out)
        print(f"re-checkpointed -> {args.out}")
    else:
        reports.extend(session.flush())
    for report in reports:
        _print_session_report(report, session.top_n)
    for line in _format_stats_lines(session.stats):
        print(line)
    if hasattr(session, "close"):
        for report in session.close() or []:
            _print_session_report(report, session.top_n)
    _write_metrics(recorder, args)
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    """Stream a trace through a live session in arrival-time chunks.

    Emulates a live deployment: records are fed in ``--chunk-seconds``
    slices of trace time, reports print as intervals seal, and (with
    ``--metrics-out``) the metrics snapshot is re-written every
    ``--metrics-every`` chunks -- the file is always a complete,
    scrape-able snapshot, updated in place atomically.
    """
    import numpy as np

    from repro.sketch import KArySchema
    from repro.streams import read_trace

    records = read_trace(args.trace)
    schema = KArySchema(depth=args.depth, width=args.width, seed=args.seed)
    recorder = _make_recorder(args)
    session = _build_session(args, schema, recorder=recorder)
    if len(records):
        start = float(records["timestamp"][0])
        edges = np.arange(
            start, float(records["timestamp"][-1]) + args.chunk_seconds,
            args.chunk_seconds,
        )
        chunk_ids = np.searchsorted(edges, records["timestamp"], side="right")
        boundaries = np.flatnonzero(np.diff(chunk_ids)) + 1
        chunks = np.split(records, boundaries)
    else:
        chunks = []
    for i, chunk in enumerate(chunks):
        for report in session.ingest(chunk):
            _print_session_report(report, args.top_n)
        if recorder is not None and (i + 1) % args.metrics_every == 0:
            recorder.write(args.metrics_out)
    for report in session.flush():
        _print_session_report(report, args.top_n)
    for line in _format_stats_lines(session.stats):
        print(line)
    if hasattr(session, "close"):
        for report in session.close() or []:
            _print_session_report(report, args.top_n)
    _write_metrics(recorder, args)
    print(
        f"monitored {session.records_ingested} records in {len(chunks)} "
        f"chunks ({session.intervals_sealed} intervals sealed)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the distributed-detection coordinator until the fleet finishes."""
    import asyncio

    from repro.distributed import CoordinatorServer, IntervalMerger
    from repro.distributed.coordinator import load_merger_checkpoint
    from repro.sketch import KArySchema

    recorder = _make_recorder(args)
    model_params = {}
    if args.alpha is not None:
        model_params["alpha"] = args.alpha
    if args.beta is not None:
        model_params["beta"] = args.beta
    if args.window is not None:
        model_params["window"] = args.window
    if args.resume is not None:
        merger = load_merger_checkpoint(args.resume, recorder=recorder)
        merger.checkpoint_path = args.checkpoint
        merger.checkpoint_every = args.checkpoint_every
        print(
            f"resumed coordinator at sealed_through="
            f"{merger.sealed_through} ({len(merger.sites)} known sites)"
        )
    else:
        schema = KArySchema(depth=args.depth, width=args.width, seed=args.seed)
        merger = IntervalMerger(
            schema,
            args.model,
            interval_seconds=args.interval,
            t_fraction=args.threshold,
            top_n=args.top_n,
            key_source=args.key_source,
            quorum=args.quorum,
            deadline_seconds=args.deadline,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            recorder=recorder,
            **model_params,
        )

    async def _serve() -> None:
        server = CoordinatorServer(
            merger,
            host=args.host,
            port=args.port,
            read_timeout=args.read_timeout,
            on_report=lambda report: _print_session_report(
                report, args.top_n if args.resume is None else merger.top_n
            ),
        )
        await server.start()
        print(f"coordinator listening on {server.host}:{server.port}")
        try:
            if args.exit_when_complete:
                while not await server.wait_complete(
                    timeout=60.0, min_sites=args.expect_sites
                ):
                    pass
            else:  # pragma: no cover - interactive mode
                await asyncio.Event().wait()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - operator stop
        pass
    if args.checkpoint is not None:
        merger.save_checkpoint(args.checkpoint)
        print(f"checkpointed coordinator -> {args.checkpoint}")
    print(
        "coordinator: "
        + " ".join(f"{k}={v}" for k, v in sorted(merger.stats.items()))
    )
    for name, site in merger.site_stats().items():
        print(
            f"site {name}: sketches={site['sketches']} "
            f"digests={site['digests']} bytes={site['bytes']} "
            f"late={site['late']} substituted={site['substituted']}"
        )
    _write_metrics(recorder, args)
    return 0


def _cmd_agent(args: argparse.Namespace) -> int:
    """Stream one site's trace to a coordinator (see repro.distributed)."""
    from repro.distributed import stream_trace
    from repro.sketch import KArySchema
    from repro.streams import read_trace

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(
            f"error: --connect must be HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 1
    records = read_trace(args.trace)
    schema = KArySchema(depth=args.depth, width=args.width, seed=args.seed)
    try:
        stats = stream_trace(
            records,
            host,
            int(port),
            schema=schema,
            site=args.site,
            interval_seconds=args.interval,
            key_scheme=args.key,
            value_scheme=args.value,
            key_source=args.key_source,
            t_fraction=args.threshold,
            drift_fraction=args.drift_fraction,
            chunk_records=args.chunk_records,
            heartbeat_interval=args.heartbeat,
        )
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"agent {args.site}: "
        + " ".join(f"{k}={v}" for k, v in sorted(stats.as_dict().items()))
    )
    return 0


def _cmd_sketch(args: argparse.Namespace) -> int:
    import os

    from repro.sketch import KArySchema
    from repro.sketch.serialization import dump
    from repro.streams import IntervalStream, read_trace

    records = read_trace(args.trace)
    schema = KArySchema(depth=args.depth, width=args.width, seed=args.seed)
    os.makedirs(args.out_dir, exist_ok=True)
    stream = IntervalStream(
        records,
        interval_seconds=args.interval,
        key_scheme=args.key,
        value_scheme=args.value,
    )
    count = 0
    for batch in stream:
        sketch = schema.from_items(batch.keys, batch.values)
        path = os.path.join(args.out_dir, f"interval_{batch.index:05d}.ksk")
        dump(sketch, path)
        count += 1
    print(
        f"wrote {count} sketches (H={args.depth}, K={args.width}, "
        f"seed={args.seed}) to {args.out_dir}"
    )
    return 0


def _cmd_combine(args: argparse.Namespace) -> int:
    from repro.sketch import combine
    from repro.sketch.serialization import dump, load

    first = load(args.sketches[0])
    # Attach the rest to the first sketch's schema: avoids rebuilding hash
    # tables per file and rejects incompatible sketches up front.
    sketches = [first] + [
        load(path, schema=first.schema) for path in args.sketches[1:]
    ]
    merged = combine([args.coefficient] * len(sketches), sketches)
    dump(merged, args.out)
    print(
        f"combined {len(sketches)} sketches (coefficient "
        f"{args.coefficient}) -> {args.out}; total={merged.total():.6g}"
    )
    return 0


def _cmd_drilldown(args: argparse.Namespace) -> int:
    from repro.detection import PrefixDrilldown
    from repro.streams import read_trace

    records = read_trace(args.trace)
    levels = tuple(int(level) for level in args.levels.split(","))
    model_params = {}
    if args.alpha is not None:
        model_params["alpha"] = args.alpha
    drilldown = PrefixDrilldown(
        levels=levels,
        model=args.model,
        t_fraction=args.threshold,
        seed=args.seed,
        **model_params,
    )
    for report in drilldown.run(records, interval_seconds=args.interval):
        if report.roots or args.verbose:
            print(report.render())
    return 0


def _cmd_archive(args: argparse.Namespace) -> int:
    from repro.archive import TemporalArchive
    from repro.detection import StreamingSession
    from repro.sketch import KArySchema
    from repro.streams import read_trace

    _apply_threads(args)
    records = read_trace(args.trace)
    schema = KArySchema(depth=args.depth, width=args.width, seed=args.seed)
    recorder = _make_recorder(args)
    budget = (
        None if args.budget_mb is None else int(args.budget_mb * 1024 * 1024)
    )
    archive = TemporalArchive(
        schema,
        args.interval,
        byte_budget=budget,
        max_folds=args.max_folds,
        tail_intervals=args.tail,
        recorder=recorder,
    )
    model_params = {}
    if args.alpha is not None:
        model_params["alpha"] = args.alpha
    if args.window is not None:
        model_params["window"] = args.window
    session = StreamingSession(
        schema,
        args.model,
        interval_seconds=args.interval,
        key_scheme=args.key,
        value_scheme=args.value,
        t_fraction=args.threshold,
        top_n=args.top_n,
        pipeline=args.pipeline,
        sink=archive.ingest,
        recorder=recorder,
        **model_params,
    )
    with session:
        for report in session.ingest(records):
            _print_session_report(report, args.top_n)
        for report in session.flush():
            _print_session_report(report, args.top_n)
    archive.save(args.out)
    stats = archive.stats
    print(
        f"archived {stats['intervals_ingested']} intervals in "
        f"{stats['spans']} spans ({stats['bytes']} bytes, "
        f"{stats['time_compactions']} time / "
        f"{stats['item_compactions']} item compactions) -> {args.out}"
    )
    _write_metrics(recorder, args)
    return 0


def _parse_range(text: str) -> tuple:
    lo, _, hi = text.partition(":")
    return int(lo), int(hi)


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.archive import load_archive

    archive = load_archive(args.archive)
    coverage = archive.coverage
    if args.estimate is not None:
        t1 = args.t1
        if t1 == float("inf") and coverage is not None:
            t1 = coverage[1] * archive.interval_seconds
        volume = archive.estimate(args.estimate, args.t0, t1)
        lo, hi = archive.snap(args.t0, t1)
        print(
            f"key {args.estimate}: estimated volume {volume:.6g} over "
            f"intervals [{lo}, {hi})"
        )
        return 0
    if args.diff is not None or args.drilldown is not None:
        range_a, range_b = map(_parse_range, args.diff or args.drilldown)
        if args.drilldown is not None:
            levels = tuple(int(level) for level in args.levels.split(","))
            result, report = archive.drilldown(
                range_a, range_b, t_fraction=args.threshold, levels=levels
            )
            print(
                f"diff [{result.range_a[0]}, {result.range_a[1]}) vs "
                f"[{result.range_b[0]}, {result.range_b[1]}): "
                f"{result.report.alarm_count} alarms, "
                f"threshold={result.report.threshold:.6g}"
            )
            print(report.render())
            return 0
        result = archive.diff(
            range_a, range_b, t_fraction=args.threshold, top_n=args.top_n
        )
        report = result.report
        print(
            f"diff [{result.range_a[0]}, {result.range_a[1]}) vs "
            f"[{result.range_b[0]}, {result.range_b[1]}) "
            f"(baseline scale {result.scale:.4g})"
        )
        _print_session_report(report, args.top_n)
        for alarm in report.alarms[: args.top_n or 20]:
            print(
                f"  alarm key={alarm.key} error={alarm.estimated_error:.6g} "
                f"({alarm.magnitude:.2f}x threshold)"
            )
        return 0
    if args.replay:
        model_params = {}
        if args.window is not None:
            model_params["window"] = args.window
        for report in archive.replay(
            args.model,
            t_fraction=args.threshold,
            top_n=args.top_n,
            **model_params,
        ):
            _print_session_report(report, args.top_n)
        return 0
    stats = archive.stats
    print(f"coverage: intervals {coverage}")
    print(
        f"spans: {stats['spans']} ({stats['bytes']} bytes); "
        f"compactions: {stats['time_compactions']} time / "
        f"{stats['item_compactions']} item; "
        f"keys dropped: {stats['keys_dropped']}"
    )
    for span in archive.spans:
        keys = "-" if span.keys is None else str(len(span.keys))
        print(
            f"  span [{span.start:5d}, {span.end:5d})  "
            f"length={span.length:4d}  folds={span.folds}  "
            f"width={span.summary.schema.width:6d}  keys={keys}"
        )
    return 0


def _cmd_gridsearch(args: argparse.Namespace) -> int:
    from repro.experiments.params import best_parameters_dict

    params = best_parameters_dict(args.router, args.model, args.interval)
    print(f"router={args.router} model={args.model} interval={args.interval}s")
    for name, value in sorted(params.items()):
        print(f"  {name} = {value}")
    return 0


_BENCH_SUITES = ("throughput", "detection", "recovery")


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the performance benchmark suite(s) and print speedup tables.

    The benchmark scripts live in the repository's ``benchmarks/``
    directory (they are development tools, not part of the installed
    package), so this subcommand locates them relative to the source
    tree and loads them by file path.  Outputs go to a scratch directory
    by default so the committed ``BENCH_*.json`` baselines are never
    clobbered by an ad-hoc run.
    """
    import importlib.util
    import tempfile
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    if not bench_dir.is_dir():
        print(
            "error: benchmarks/ not found next to the source tree "
            f"(looked in {bench_dir}); 'repro bench' needs a repository "
            "checkout, not an installed package",
            file=sys.stderr,
        )
        return 1

    suites = args.suites or list(_BENCH_SUITES)
    out_dir = Path(args.output_dir) if args.output_dir else Path(
        tempfile.mkdtemp(prefix="repro-bench-")
    )
    out_dir.mkdir(parents=True, exist_ok=True)

    argv = []
    if args.quick:
        argv.append("--quick")
    if args.repeats is not None:
        argv += ["--repeats", str(args.repeats)]

    for suite in suites:
        script = bench_dir / f"bench_{suite}.py"
        spec = importlib.util.spec_from_file_location(
            f"repro_bench_{suite}", script
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        print(f"== bench_{suite} ==")
        module.main(argv + ["--output", str(out_dir / f"BENCH_{suite}.json")])
        print()
    print(f"reports under {out_dir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sketch-based change detection (IMC 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="regenerate paper exhibits")
    p_run.add_argument("experiments", nargs="+", help="experiment ids (see 'list')")
    p_run.set_defaults(func=_cmd_run)

    p_gen = sub.add_parser("generate", help="write a synthetic trace")
    p_gen.add_argument("--router", default="medium", help="router profile name")
    p_gen.add_argument("--duration", type=float, default=4 * 3600.0,
                       help="trace length in seconds")
    p_gen.add_argument("--scale", type=float, default=1.0,
                       help="volume/population scale factor")
    p_gen.add_argument("--seed", type=int, default=None, help="generation seed")
    p_gen.add_argument("--out", required=True, help="output trace path")
    p_gen.set_defaults(func=_cmd_generate)

    p_det = sub.add_parser("detect", help="detect changes in a trace file")
    p_det.add_argument("trace", help="binary trace path")
    p_det.add_argument("--model", default="ewma", help="forecast model name")
    p_det.add_argument("--interval", type=float, default=300.0)
    p_det.add_argument("--key", default="dst_ip", help="key scheme")
    p_det.add_argument("--value", default="bytes", help="value scheme")
    p_det.add_argument("--depth", type=int, default=5, help="sketch rows H")
    p_det.add_argument("--width", type=int, default=32768, help="sketch width K")
    p_det.add_argument("--seed", type=int, default=0, help="sketch hash seed")
    p_det.add_argument("--threshold", type=float, default=0.05,
                       help="alarm threshold fraction T")
    p_det.add_argument("--top-n", type=int, default=0,
                       help="also report top-N keys by |error|")
    p_det.add_argument("--key-source", default="twopass",
                       choices=("twopass", "online", "invertible",
                                "grouptesting"),
                       help="candidate-key strategy: replay the interval "
                       "(twopass), use next-interval keys (online), walk "
                       "invertible-sketch candidate slots (invertible), or "
                       "decode group-testing subcounters (grouptesting)")
    p_det.add_argument("--alpha", type=float, default=None)
    p_det.add_argument("--beta", type=float, default=None)
    p_det.add_argument("--window", type=int, default=None)
    p_det.add_argument("--threads", type=int, default=None,
                       help="kernel threads (default: REPRO_NUM_THREADS or "
                            "detected cores, capped)")
    p_det.add_argument("--stats", action="store_true",
                       help="print cache/prescreen counters after the reports")
    p_det.add_argument("--metrics-out", default=None,
                       help="write pipeline metrics here on completion "
                       "(.json -> JSON, else Prometheus text)")
    p_det.set_defaults(func=_cmd_detect)

    p_mon = sub.add_parser(
        "monitor", help="stream a trace in chunks with periodic metrics"
    )
    p_mon.add_argument("trace", help="binary trace path")
    p_mon.add_argument("--chunk-seconds", type=float, default=60.0,
                       help="trace-time slice fed per ingestion step")
    p_mon.add_argument("--model", default="ewma", help="forecast model name")
    p_mon.add_argument("--interval", type=float, default=300.0)
    p_mon.add_argument("--key", default="dst_ip", help="key scheme")
    p_mon.add_argument("--value", default="bytes", help="value scheme")
    p_mon.add_argument("--depth", type=int, default=5, help="sketch rows H")
    p_mon.add_argument("--width", type=int, default=32768, help="sketch width K")
    p_mon.add_argument("--seed", type=int, default=0, help="sketch hash seed")
    p_mon.add_argument("--threshold", type=float, default=0.05,
                       help="alarm threshold fraction T")
    p_mon.add_argument("--top-n", type=int, default=0)
    p_mon.add_argument("--alpha", type=float, default=None)
    p_mon.add_argument("--beta", type=float, default=None)
    p_mon.add_argument("--window", type=int, default=None)
    p_mon.add_argument("--workers", type=int, default=1,
                       help="ingestion shards (>1 uses the sharded session)")
    p_mon.add_argument("--pipeline", action="store_true",
                       help="overlap seal+detect with the next interval's "
                            "ingest (bit-identical reports)")
    p_mon.add_argument("--pipeline-depth", type=int, default=2,
                       help="max sealed intervals in flight (with --pipeline)")
    p_mon.add_argument("--threads", type=int, default=None,
                       help="kernel threads (default: REPRO_NUM_THREADS or "
                            "detected cores, capped)")
    p_mon.add_argument("--backend", default="thread",
                       choices=("serial", "thread", "process"),
                       help="sharded seal backend (with --workers > 1)")
    p_mon.add_argument("--metrics-out", default=None,
                       help="metrics snapshot path, re-written periodically")
    p_mon.add_argument("--metrics-every", type=int, default=10,
                       help="flush metrics every N chunks")
    p_mon.set_defaults(func=_cmd_monitor)

    p_srv = sub.add_parser(
        "serve", help="run the distributed-detection coordinator"
    )
    p_srv.add_argument("--host", default="127.0.0.1", help="bind address")
    p_srv.add_argument("--port", type=int, default=5585,
                       help="bind port (0 picks a free port)")
    p_srv.add_argument("--model", default="ewma", help="forecast model name")
    p_srv.add_argument("--interval", type=float, default=300.0)
    p_srv.add_argument("--depth", type=int, default=5, help="sketch rows H")
    p_srv.add_argument("--width", type=int, default=32768, help="sketch width K")
    p_srv.add_argument("--seed", type=int, default=0, help="sketch hash seed")
    p_srv.add_argument("--threshold", type=float, default=0.05,
                       help="alarm threshold fraction T")
    p_srv.add_argument("--top-n", type=int, default=0)
    p_srv.add_argument("--key-source", default="twopass",
                       choices=("twopass", "invertible", "grouptesting"),
                       help="candidate-key strategy for network-wide reports")
    p_srv.add_argument("--quorum", type=int, default=1,
                       help="sites required before a deadline seal")
    p_srv.add_argument("--deadline", type=float, default=None,
                       help="seconds to wait for stragglers before sealing "
                       "without them (default: wait forever, lossless)")
    p_srv.add_argument("--read-timeout", type=float, default=30.0,
                       help="per-connection idle budget in seconds")
    p_srv.add_argument("--alpha", type=float, default=None)
    p_srv.add_argument("--beta", type=float, default=None)
    p_srv.add_argument("--window", type=int, default=None)
    p_srv.add_argument("--checkpoint", default=None,
                       help="coordinator checkpoint path (written on exit "
                       "and every --checkpoint-every seals)")
    p_srv.add_argument("--checkpoint-every", type=int, default=0,
                       help="auto-checkpoint period in sealed intervals")
    p_srv.add_argument("--resume", default=None,
                       help="restore coordinator state from this checkpoint")
    p_srv.add_argument("--exit-when-complete", action="store_true",
                       help="exit once every site said BYE and all intervals "
                       "sealed (batch/CI mode; default: serve forever)")
    p_srv.add_argument("--expect-sites", type=int, default=1,
                       help="with --exit-when-complete: wait for at least "
                       "this many sites to register before the fleet can "
                       "count as complete")
    p_srv.add_argument("--metrics-out", default=None,
                       help="write pipeline metrics here on completion")
    p_srv.set_defaults(func=_cmd_serve)

    p_ag = sub.add_parser(
        "agent", help="stream one site's trace to a coordinator"
    )
    p_ag.add_argument("trace", help="binary trace path")
    p_ag.add_argument("--site", required=True, help="site name (unique)")
    p_ag.add_argument("--connect", default="127.0.0.1:5585",
                      help="coordinator address as HOST:PORT")
    p_ag.add_argument("--interval", type=float, default=300.0)
    p_ag.add_argument("--key", default="dst_ip", help="key scheme")
    p_ag.add_argument("--value", default="bytes", help="value scheme")
    p_ag.add_argument("--depth", type=int, default=5, help="sketch rows H")
    p_ag.add_argument("--width", type=int, default=32768, help="sketch width K")
    p_ag.add_argument("--seed", type=int, default=0, help="sketch hash seed")
    p_ag.add_argument("--threshold", type=float, default=0.05,
                      help="detection threshold fraction T (sets the "
                      "communication-filtering budget)")
    p_ag.add_argument("--key-source", default="twopass",
                      choices=("twopass", "invertible", "grouptesting"),
                      help="twopass collects per-interval keys locally; "
                      "recovering sources skip collection")
    p_ag.add_argument("--drift-fraction", type=float, default=0.0,
                      help="suppress intervals whose local L2 drift since "
                      "the last transmission is below this fraction of the "
                      "detection threshold (0 disables filtering)")
    p_ag.add_argument("--chunk-records", type=int, default=4096,
                      help="records ingested per event-loop step")
    p_ag.add_argument("--heartbeat", type=float, default=None,
                      help="send a liveness heartbeat every N seconds")
    p_ag.set_defaults(func=_cmd_agent)

    p_sk = sub.add_parser("sketch", help="serialize per-interval sketches")
    p_sk.add_argument("trace", help="binary trace path")
    p_sk.add_argument("--out-dir", required=True)
    p_sk.add_argument("--interval", type=float, default=300.0)
    p_sk.add_argument("--key", default="dst_ip")
    p_sk.add_argument("--value", default="bytes")
    p_sk.add_argument("--depth", type=int, default=5)
    p_sk.add_argument("--width", type=int, default=32768)
    p_sk.add_argument("--seed", type=int, default=0)
    p_sk.set_defaults(func=_cmd_sketch)

    p_cb = sub.add_parser("combine", help="linearly combine serialized sketches")
    p_cb.add_argument("sketches", nargs="+", help="serialized sketch paths")
    p_cb.add_argument("--out", required=True)
    p_cb.add_argument("--coefficient", type=float, default=1.0,
                      help="coefficient applied to every sketch")
    p_cb.set_defaults(func=_cmd_combine)

    p_dd = sub.add_parser("drilldown", help="hierarchical prefix attribution")
    p_dd.add_argument("trace", help="binary trace path")
    p_dd.add_argument("--levels", default="8,16,24,32",
                      help="comma-separated prefix lengths, coarse to fine")
    p_dd.add_argument("--interval", type=float, default=300.0)
    p_dd.add_argument("--model", default="ewma")
    p_dd.add_argument("--alpha", type=float, default=0.5)
    p_dd.add_argument("--threshold", type=float, default=0.2)
    p_dd.add_argument("--seed", type=int, default=0)
    p_dd.add_argument("--verbose", action="store_true",
                      help="also print change-free intervals")
    p_dd.set_defaults(func=_cmd_drilldown)

    p_ck = sub.add_parser(
        "checkpoint", help="stream a trace prefix and snapshot the session"
    )
    p_ck.add_argument("trace", help="binary trace path")
    p_ck.add_argument("--until", type=float, required=True,
                      help="ingest records with timestamp <= this (seconds)")
    p_ck.add_argument("--out", required=True, help="checkpoint output path")
    p_ck.add_argument("--model", default="ewma", help="forecast model name")
    p_ck.add_argument("--interval", type=float, default=300.0)
    p_ck.add_argument("--key", default="dst_ip", help="key scheme")
    p_ck.add_argument("--value", default="bytes", help="value scheme")
    p_ck.add_argument("--depth", type=int, default=5, help="sketch rows H")
    p_ck.add_argument("--width", type=int, default=32768, help="sketch width K")
    p_ck.add_argument("--seed", type=int, default=0, help="sketch hash seed")
    p_ck.add_argument("--threshold", type=float, default=0.05,
                      help="alarm threshold fraction T")
    p_ck.add_argument("--top-n", type=int, default=0)
    p_ck.add_argument("--alpha", type=float, default=None)
    p_ck.add_argument("--beta", type=float, default=None)
    p_ck.add_argument("--window", type=int, default=None)
    p_ck.add_argument("--workers", type=int, default=1,
                      help="ingestion shards (>1 uses the sharded session)")
    p_ck.add_argument("--pipeline", action="store_true",
                      help="overlap seal+detect with the next interval's "
                           "ingest (bit-identical reports)")
    p_ck.add_argument("--pipeline-depth", type=int, default=2,
                      help="max sealed intervals in flight (with --pipeline)")
    p_ck.add_argument("--threads", type=int, default=None,
                      help="kernel threads (default: REPRO_NUM_THREADS or "
                           "detected cores, capped)")
    p_ck.add_argument("--backend", default="thread",
                      choices=("serial", "thread", "process"),
                      help="sharded seal backend (with --workers > 1)")
    p_ck.add_argument("--metrics-out", default=None,
                      help="write pipeline metrics here on completion")
    p_ck.set_defaults(func=_cmd_checkpoint)

    p_rs = sub.add_parser(
        "resume", help="restore a checkpointed session and continue"
    )
    p_rs.add_argument("checkpoint", help="checkpoint file from 'checkpoint'")
    p_rs.add_argument("trace", help="binary trace path (full trace; records "
                      "past the watermark are ingested)")
    p_rs.add_argument("--backend", default=None,
                      choices=("serial", "thread", "process"),
                      help="override the sharded seal backend")
    p_rs.add_argument("--pipeline", action="store_true",
                      help="resume with pipelined sealing (execution choice; "
                           "reports stay bit-identical)")
    p_rs.add_argument("--pipeline-depth", type=int, default=2,
                      help="max sealed intervals in flight (with --pipeline)")
    p_rs.add_argument("--threads", type=int, default=None,
                      help="kernel threads (default: REPRO_NUM_THREADS or "
                           "detected cores, capped)")
    p_rs.add_argument("--out", default=None,
                      help="re-checkpoint here instead of flushing")
    p_rs.add_argument("--metrics-out", default=None,
                      help="write pipeline metrics here on completion")
    p_rs.set_defaults(func=_cmd_resume)

    p_bench = sub.add_parser(
        "bench", help="run the perf benchmarks and print speedup tables"
    )
    p_bench.add_argument("suites", nargs="*", choices=_BENCH_SUITES,
                         help="which suites (default: all)")
    p_bench.add_argument("--quick", action="store_true",
                         help="small sizes / few repeats (CI smoke)")
    p_bench.add_argument("--repeats", type=int, default=None,
                         help="override timing repeats per path")
    p_bench.add_argument("--output-dir", default=None,
                         help="write BENCH_*.json here (default: temp dir, "
                         "never the committed baselines)")
    p_bench.set_defaults(func=_cmd_bench)

    p_ar = sub.add_parser(
        "archive", help="stream a trace into a multi-resolution archive"
    )
    p_ar.add_argument("trace", help="binary trace path")
    p_ar.add_argument("--out", required=True, help="archive output path")
    p_ar.add_argument("--model", default="ma", help="forecast model name")
    p_ar.add_argument("--interval", type=float, default=300.0)
    p_ar.add_argument("--key", default="dst_ip", help="key scheme")
    p_ar.add_argument("--value", default="bytes", help="value scheme")
    p_ar.add_argument("--depth", type=int, default=5, help="sketch rows H")
    p_ar.add_argument("--width", type=int, default=32768, help="sketch width K")
    p_ar.add_argument("--seed", type=int, default=0, help="sketch hash seed")
    p_ar.add_argument("--threshold", type=float, default=0.05,
                      help="alarm threshold fraction T")
    p_ar.add_argument("--top-n", type=int, default=0)
    p_ar.add_argument("--alpha", type=float, default=None)
    p_ar.add_argument("--window", type=int, default=None)
    p_ar.add_argument("--budget-mb", type=float, default=None,
                      help="archive byte budget in MiB (default: unlimited, "
                      "no compaction)")
    p_ar.add_argument("--max-folds", type=int, default=3,
                      help="width-halving ceiling for aged spans")
    p_ar.add_argument("--tail", type=int, default=8,
                      help="newest intervals kept at full resolution")
    p_ar.add_argument("--pipeline", action="store_true",
                      help="overlap seal+detect with the next interval's "
                           "ingest (bit-identical reports and archive)")
    p_ar.add_argument("--threads", type=int, default=None,
                      help="kernel threads (default: REPRO_NUM_THREADS or "
                           "detected cores, capped)")
    p_ar.add_argument("--metrics-out", default=None,
                      help="write pipeline metrics here on completion")
    p_ar.set_defaults(func=_cmd_archive)

    p_q = sub.add_parser(
        "query", help="retrospective queries over an archive file"
    )
    p_q.add_argument("archive", help="archive file from 'repro archive'")
    p_q.add_argument("--estimate", type=int, default=None, metavar="KEY",
                     help="estimate KEY's volume over [--from, --to) seconds")
    p_q.add_argument("--from", dest="t0", type=float, default=0.0,
                     help="range start in trace seconds (with --estimate)")
    p_q.add_argument("--to", dest="t1", type=float, default=float("inf"),
                     help="range end in trace seconds (with --estimate)")
    p_q.add_argument("--diff", nargs=2, default=None,
                     metavar=("A_LO:A_HI", "B_LO:B_HI"),
                     help="change report for interval range A against "
                     "baseline range B (half-open interval indices)")
    p_q.add_argument("--drilldown", nargs=2, default=None,
                     metavar=("A_LO:A_HI", "B_LO:B_HI"),
                     help="like --diff, plus hierarchical prefix attribution")
    p_q.add_argument("--replay", action="store_true",
                     help="re-run live detection over the full-resolution "
                     "tail")
    p_q.add_argument("--model", default="ma",
                     help="forecast model for --replay")
    p_q.add_argument("--window", type=int, default=None)
    p_q.add_argument("--threshold", type=float, default=0.05,
                     help="alarm threshold fraction T")
    p_q.add_argument("--top-n", type=int, default=0)
    p_q.add_argument("--levels", default="8,16,24,32",
                     help="prefix lengths for --drilldown, coarse to fine")
    p_q.set_defaults(func=_cmd_query)

    p_gs = sub.add_parser("gridsearch", help="grid-search model parameters")
    p_gs.add_argument("--router", default="medium")
    p_gs.add_argument("--model", default="ewma")
    p_gs.add_argument("--interval", type=float, default=300.0)
    p_gs.set_defaults(func=_cmd_gridsearch)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into e.g. `head`; exiting quietly is the Unix way.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
