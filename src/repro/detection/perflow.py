"""Exact per-flow detection: the accuracy oracle.

Enumerates the trace's key universe, then runs the identical
forecast/detect pipeline over dense exact vectors.  Every accuracy figure
in the paper (Sections 5.1-5.2) is a comparison between this and the
sketch path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.detection.pipeline import (
    forecast_error_stream,
    interval_key_sets,
    summarize_stream,
)
from repro.forecast.base import Forecaster
from repro.forecast.model_zoo import make_forecaster
from repro.sketch.dense import DenseSchema, DenseVector, KeyIndex
from repro.streams.model import KeyedUpdates


@dataclass
class PerFlowResult:
    """Exact per-flow pipeline output over a whole trace.

    Attributes
    ----------
    index:
        The key universe the dense vectors are defined over.
    interval_keys:
        Distinct keys seen in each interval (the candidate sets).
    errors:
        One exact error vector per interval; ``None`` during warm-up.
    energies:
        Exact total energy ``F2(Se(t))`` per interval (``nan`` in warm-up).
    """

    index: KeyIndex
    interval_keys: List[np.ndarray]
    errors: List[Optional[DenseVector]]
    energies: np.ndarray

    def top_n(self, interval: int, n: int) -> np.ndarray:
        """Exact top-N keys by absolute error among that interval's keys."""
        error = self.errors[interval]
        if error is None:
            raise ValueError(f"interval {interval} is in warm-up")
        keys = self.interval_keys[interval]
        estimates = error.estimate_batch(keys)
        order = np.lexsort((keys, -np.abs(estimates)))
        return keys[order[:n]]

    def threshold_keys(self, interval: int, t_fraction: float) -> np.ndarray:
        """Exact keys whose |error| >= T * L2 norm, for that interval."""
        error = self.errors[interval]
        if error is None:
            raise ValueError(f"interval {interval} is in warm-up")
        keys = self.interval_keys[interval]
        estimates = error.estimate_batch(keys)
        threshold = t_fraction * error.l2_norm()
        return keys[np.abs(estimates) >= threshold]

    @property
    def total_energy(self) -> float:
        """Sum of exact per-interval error energies (grid-search objective)."""
        return float(np.nansum(self.energies))


def run_per_flow(
    batches: List[KeyedUpdates],
    forecaster: Union[Forecaster, str],
    key_index: Optional[KeyIndex] = None,
    **model_params,
) -> PerFlowResult:
    """Run exact per-flow forecasting over materialized interval batches.

    Parameters
    ----------
    batches:
        Materialized interval stream (list, so it can be traversed twice:
        once to build the key universe, once to summarize).
    forecaster:
        Forecaster instance or registry name (plus ``model_params``).
    key_index:
        Pre-built key universe; built from the batches when omitted.
    """
    if isinstance(forecaster, str):
        forecaster = make_forecaster(forecaster, **model_params)
    elif model_params:
        raise ValueError("model_params only apply when forecaster is given by name")

    if key_index is None:
        key_index = KeyIndex.from_streams([batch.keys for batch in batches])
    schema = DenseSchema(key_index)

    observed = summarize_stream(batches, schema)
    keys_per_interval = interval_key_sets(batches)

    errors: List[Optional[DenseVector]] = []
    energies = np.full(len(batches), np.nan)
    for step in forecast_error_stream(observed, forecaster):
        errors.append(step.error)
        if step.error is not None:
            energies[step.index] = step.error.estimate_f2()

    return PerFlowResult(
        index=key_index,
        interval_keys=keys_per_interval,
        errors=errors,
        energies=energies,
    )
