"""Sharded parallel ingestion built on sketch linearity (COMBINE).

The paper makes COMBINE a first-class sketch operation precisely so that
summaries built independently can be merged without touching the stream
twice.  This module turns that into an ingestion architecture:

:class:`ShardedIngestEngine`
    Accumulates one analysis interval across ``n_workers`` shards.  Record
    chunks are routed to shards as they arrive (cheap view bookkeeping);
    the expensive work is deferred to interval *seal*: each shard folds
    its buffered records into a private sketch in one batched pass, and
    the interval's key set is deduplicated in one pass over all shards'
    keys.  The shard sketches are then merged with COMBINE.  Because the sketch is linear and the paper's
    update values are integral (bytes/packets/counts are exact in
    float64), the merged table is **bit-identical** to single-shard
    ingestion, for every partitioning scheme.

    Backends: ``"serial"`` runs shard seals inline (still faster than
    chunk-at-a-time ingestion: one batched update per shard instead of
    one per chunk); ``"thread"`` seals shards on a thread pool (the
    stacked-hash C kernels release the GIL); ``"process"`` seals shards
    on a forked process pool writing counter tables into
    :class:`~repro.sketch.mergeable.SharedTableBlock` slots, which the
    parent merges zero-copy -- only keys/values cross the process
    boundary, never tables.

:class:`ShardedStreamingSession`
    Drop-in :class:`~repro.detection.session.StreamingSession` with an
    ``n_workers`` knob -- same reports, alarm for alarm.

:func:`parallel_trace_detect`
    Multi-trace mode for the offline detector: sketch R router traces
    concurrently and COMBINE them into the paper's network-wide summary
    before forecasting/detection.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.detection.keysource import collect_replay_keys, resolve_key_source
from repro.detection.pipeline import summarize_stream
from repro.detection.session import StreamingSession
from repro.detection.threshold import IntervalDetection, build_interval_report
from repro.obs.recorder import NULL_RECORDER

#: Supervision trace-event kinds, pre-registered at zero on the
#: ``repro_supervision_events_total`` counter when a recorder attaches
#: so a healthy run still exports the full failure-mode series.
_SUPERVISION_EVENTS = (
    "degraded_seal",
    "worker_timeout",
    "worker_retry",
    "pool_rebuild",
)
from repro.sketch.mergeable import SchemaHandle, SharedTableBlock, merge
from repro.streams.model import ColumnarBlock
from repro.streams.sharding import (
    SHARD_METHODS,
    partition_columns,
    partition_records,
)

BACKENDS = ("serial", "thread", "process")

_EMPTY_KEYS = np.array([], dtype=np.uint64)

#: Default ceiling on the exponential retry backoff (seconds).  Without a
#: cap, ``retry_backoff * 2**attempt`` grows without bound as soon as an
#: operator raises ``max_retries`` -- a handful of failed attempts and the
#: supervision layer itself becomes the availability problem.
DEFAULT_RETRY_BACKOFF_MAX = 5.0


def _resolve_futures(futures, timeout, clock=time.monotonic):
    """Resolve every future under ONE shared monotonic deadline.

    ``f.result(timeout=t)`` applied per future in a loop accumulates: each
    straggler restarts the clock, so a batch of N hung tasks blocks for
    ``N * t`` wall-clock seconds.  Here the deadline is fixed once, from
    ``clock()`` (monotonic -- immune to wall-clock steps), and every
    future is given only the time *remaining*; total wait is bounded by
    ``timeout`` no matter how many shards hang.  ``timeout=None`` waits
    forever, as before.  Raises ``concurrent.futures.TimeoutError`` once
    per batch when the deadline expires.
    """
    if timeout is None:
        return [f.result() for f in futures]
    deadline = clock() + timeout
    return [f.result(timeout=max(0.0, deadline - clock())) for f in futures]

# Worker-process state: one attached SharedTableBlock per process, set up
# once by the pool initializer (hash tables rebuilt from the SchemaHandle
# and cached, so the per-task payload is just keys/values).
_WORKER_BLOCK: Optional[SharedTableBlock] = None


def _process_worker_init(name: str, handle: SchemaHandle, n_slots: int) -> None:
    global _WORKER_BLOCK
    _WORKER_BLOCK = SharedTableBlock.attach(name, handle, n_slots)


def _process_worker_seal(
    slot: int, keys: np.ndarray, values: np.ndarray, collect_keys: bool = True
):
    # Each slot is sealed by exactly one task per interval, so zeroing
    # here (instead of a parent-side sweep) keeps empty gap intervals free.
    _WORKER_BLOCK.slot(slot)[:] = 0.0
    _WORKER_BLOCK.summary(slot).update_batch(keys, values)
    # Sessions with a recovering key source never read the key set; the
    # per-shard dedup (and its pickle back) is skipped entirely.
    return np.unique(keys) if collect_keys else None


def _sketch_shard(schema, keys: np.ndarray, values: np.ndarray):
    """Fold one shard's buffered items into a fresh sketch."""
    sketch = schema.empty()
    sketch.update_batch(keys, values)
    return sketch


class ShardedIngestEngine:
    """Accumulate one interval across N shards; seal with COMBINE.

    Parameters
    ----------
    schema:
        Summary schema shared by all shards (any mergeable kind).
    n_workers:
        Number of shards (= pool size for thread/process backends).
    backend:
        ``"serial"``, ``"thread"`` or ``"process"`` (see module docs).
    key_scheme / value_scheme:
        Record-to-item extraction, as in :class:`StreamingSession`.
    partition:
        How records are routed to shards: ``"chunk"`` (default) deals
        whole chunks round-robin -- zero per-record routing cost;
        ``"hash"``/``"round_robin"``/``"block"`` split inside each chunk
        via :func:`~repro.streams.sharding.partition_records`.  All
        partitionings yield the same merged sketch (linearity).
    task_timeout:
        Seconds a seal task may run before the interval is considered
        stuck (``None``, the default, waits forever).  On the process
        backend a timeout triggers the retry path below; on the thread
        backend it falls straight back to serial sealing.
    max_retries:
        Process-backend retry budget per interval.  Worker failures
        (a killed process, a broken pool, a timeout) rebuild the pool and
        re-seal; after ``max_retries`` failed retries the engine enters
        **degraded mode**: the interval is sealed serially in the parent,
        so a dying worker can delay a report but never lose one.
    retry_backoff:
        Base sleep (seconds) between retries, doubled each attempt.
    retry_backoff_max:
        Ceiling on the doubled backoff (seconds, default
        :data:`DEFAULT_RETRY_BACKOFF_MAX`); keeps a long retry budget
        from turning into unbounded sleeps.
    collect_keys:
        Whether :meth:`collect` also returns the interval's deduplicated
        key set (default ``True``).  Sessions using a recovering key
        source (invertible/group-testing) never read it, so disabling
        skips the per-interval ``np.unique`` over every ingested key --
        the sharded half of retiring the second pass.  :meth:`collect`
        then returns an empty key array.

    The lifecycle per interval is ``open_interval()``, ``accumulate()``
    for each single-interval chunk, then ``collect()`` returning
    ``(merged_summary, unique_keys)``.  ``close()`` releases the pool and
    any shared memory; the engine is also a context manager.  Supervision
    outcomes are tallied in :attr:`stats` (``retries``, ``timeouts``,
    ``pool_rebuilds``, ``degraded_intervals``).
    """

    def __init__(
        self,
        schema,
        n_workers: int = 1,
        backend: str = "serial",
        key_scheme=None,
        value_scheme=None,
        partition: str = "chunk",
        task_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        retry_backoff_max: float = DEFAULT_RETRY_BACKOFF_MAX,
        collect_keys: bool = True,
        recorder=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r} (expected {BACKENDS})")
        if partition != "chunk" and partition not in SHARD_METHODS:
            raise ValueError(
                f"unknown partition {partition!r} "
                f"(expected 'chunk' or one of {SHARD_METHODS})"
            )
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        if retry_backoff_max < 0:
            raise ValueError(
                f"retry_backoff_max must be >= 0, got {retry_backoff_max}"
            )
        from repro.streams.keys import make_key_scheme, make_value_scheme

        self.schema = schema
        self.n_workers = int(n_workers)
        self.backend = backend
        self.partition = partition
        self.task_timeout = task_timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.retry_backoff_max = float(retry_backoff_max)
        self.collect_keys = bool(collect_keys)
        # Injectable monotonic clock: the shared-deadline future collection
        # and the retry backoff read elapsed time through this, so tests
        # can prove the timing contracts against a fake clock.
        self._clock = time.monotonic
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self.recorder.preregister_labelled(
            "repro_supervision_events_total", "event", _SUPERVISION_EVENTS
        )
        self.stats = {
            "retries": 0,
            "timeouts": 0,
            "pool_rebuilds": 0,
            "degraded_intervals": 0,
        }
        self.key_scheme = (
            make_key_scheme(key_scheme or "dst_ip")
            if key_scheme is None or isinstance(key_scheme, str)
            else key_scheme
        )
        self.value_scheme = (
            make_value_scheme(value_scheme or "bytes")
            if value_scheme is None or isinstance(value_scheme, str)
            else value_scheme
        )

        # Per-shard buffered (keys, values) arrays for the open interval.
        self._buffers: List[List[Tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in range(self.n_workers)
        ]
        self._rr = 0  # chunk-mode round-robin cursor
        self._pool = None
        self._handle: Optional[SchemaHandle] = None
        self._block: Optional[SharedTableBlock] = None
        if backend == "thread":
            self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
        elif backend == "process":
            self._handle = SchemaHandle.from_schema(schema)
            self._block = SharedTableBlock.create(schema, self.n_workers)
            self._pool = self._make_process_pool()

    def _make_process_pool(self) -> ProcessPoolExecutor:
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = mp.get_context()
        return ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=ctx,
            initializer=_process_worker_init,
            initargs=(self._block.name, self._handle, self.n_workers),
        )

    def _supervise(self, stat_key: str, event_kind: str, **fields) -> None:
        """Tally one supervision outcome: the ad-hoc ``stats`` dict stays
        the canonical storage (the ``.stats`` / ``supervision_stats``
        views read it), and the recorder mirrors it as a
        ``repro_supervision_events_total{event=...}`` counter plus a
        structured trace event.  All call sites are failure paths, so no
        ``enabled`` guard is needed."""
        self.stats[stat_key] += 1
        self.recorder.count(
            "repro_supervision_events_total", event=event_kind
        )
        self.recorder.event(event_kind, backend=self.backend, **fields)

    # -- interval lifecycle --------------------------------------------------

    def open_interval(self) -> None:
        """Start a fresh interval (drops any uncollected buffers)."""
        for buf in self._buffers:
            buf.clear()
        self._rr = 0

    def accumulate(self, chunk: np.ndarray) -> None:
        """Buffer one single-interval record chunk into its shard(s).

        Deliberately cheap: extract the key/value columns and append the
        views.  No hashing, no dedup -- that is seal-time work.
        """
        if not len(chunk):
            return
        if self.partition == "chunk" or self.n_workers == 1:
            keys = self.key_scheme.extract(chunk)
            values = self.value_scheme.extract(chunk)
            self._buffers[self._rr].append((keys, values))
            self._rr = (self._rr + 1) % self.n_workers
        else:
            parts = partition_records(
                chunk, self.n_workers,
                method=self.partition, key_scheme=self.key_scheme,
            )
            for shard, part in enumerate(parts):
                if len(part):
                    self._buffers[shard].append(
                        (self.key_scheme.extract(part), self.value_scheme.extract(part))
                    )

    def accumulate_columns(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Buffer one single-interval columnar batch into its shard(s).

        The zero-copy twin of :meth:`accumulate`: ``keys``/``values`` are
        already extracted columns (typically views from
        :func:`~repro.streams.sharding.iter_interval_columns`) and are
        buffered as-is -- in chunk mode (or with one worker) no copy
        happens anywhere between the feeder and the sketch UPDATE.
        Other partitionings go through
        :func:`~repro.streams.sharding.partition_columns` (``"block"``
        stays zero-copy; ``"hash"``/``"round_robin"`` group by fancy
        indexing, which copies).
        """
        if not len(keys):
            return
        if self.partition == "chunk" or self.n_workers == 1:
            self._buffers[self._rr].append((keys, values))
            self._rr = (self._rr + 1) % self.n_workers
        else:
            parts = partition_columns(
                ColumnarBlock(index=0, keys=keys, values=values),
                self.n_workers,
                method=self.partition,
            )
            for shard, part in enumerate(parts):
                if len(part):
                    self._buffers[shard].append((part.keys, part.values))

    @staticmethod
    def _items_of(buf) -> Tuple[np.ndarray, np.ndarray]:
        if len(buf) == 1:
            return buf[0]
        keys = np.concatenate([k for k, _ in buf])
        values = np.concatenate([v for _, v in buf])
        return keys, values

    def _shard_items(self, shard: int) -> Tuple[np.ndarray, np.ndarray]:
        return self._items_of(self._buffers[shard])

    def _dedup_parent(self, shard_items) -> np.ndarray:
        # The parent already holds every shard's raw keys, so the
        # interval's key set is one dedup over their concatenation --
        # the same work as single-shard ingestion, independent of
        # n_workers (per-shard dedup would make seals *more* expensive
        # as workers are added).
        if not self.collect_keys:
            return _EMPTY_KEYS
        return np.unique(
            shard_items[0][0]
            if len(shard_items) == 1
            else np.concatenate([k for k, _ in shard_items])
        )

    def _seal_degraded(self, loaded, shard_items):
        """Degraded mode: seal the interval serially in the parent.

        The last line of supervision -- when workers keep failing, the
        interval's records are still in the parent's buffers, so the seal
        runs inline (exactly the serial backend's code path) and the
        report is emitted late rather than lost.  Any partially-written
        shared slots from dead workers are zeroed and ignored.
        """
        self._supervise(
            "degraded_intervals", "degraded_seal", shards=len(shard_items)
        )
        if self._block is not None:
            for i in loaded:
                self._block.slot(i)[:] = 0.0
        summaries = [_sketch_shard(self.schema, *items) for items in shard_items]
        return summaries, self._dedup_parent(shard_items)

    def _seal_process(self, loaded, shard_items):
        # Workers dedup their own keys (smaller result pickles back);
        # the parent unions the per-shard sorted sets.
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            futures = []
            try:
                futures = [
                    self._pool.submit(
                        _process_worker_seal, i, *items, self.collect_keys
                    )
                    for i, items in zip(loaded, shard_items)
                ]
                key_sets = _resolve_futures(
                    futures, self.task_timeout, clock=self._clock
                )
                summaries = [self._block.summary(i) for i in loaded]
                if not self.collect_keys:
                    keys = _EMPTY_KEYS
                elif len(key_sets) == 1:
                    keys = key_sets[0]
                else:
                    keys = np.unique(np.concatenate(key_sets))
                return summaries, keys
            except Exception as exc:
                for future in futures:
                    future.cancel()
                if isinstance(exc, _FuturesTimeout):
                    self._supervise(
                        "timeouts", "worker_timeout", attempt=attempt
                    )
                # Whatever failed -- a killed worker (BrokenProcessPool), a
                # timeout, a transient task error -- the pool may now hold
                # stragglers still writing their slots.  Rebuild it so every
                # retry starts from quiesced workers and freshly-zeroed
                # slots (each seal task zeroes its slot first), instead of
                # racing a stale task on the same slot.
                self._rebuild_pool()
                if attempt + 1 < attempts:
                    self._supervise(
                        "retries", "worker_retry",
                        attempt=attempt, error=type(exc).__name__,
                    )
                    if self.retry_backoff:
                        time.sleep(self._backoff_delay(attempt))
        return self._seal_degraded(loaded, shard_items)

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential retry delay, capped at ``retry_backoff_max``."""
        return min(self.retry_backoff * (2.0**attempt), self.retry_backoff_max)

    def _seal_thread(self, loaded, shard_items):
        futures = [
            self._pool.submit(_sketch_shard, self.schema, *items)
            for items in shard_items
        ]
        try:
            summaries = _resolve_futures(
                futures, self.task_timeout, clock=self._clock
            )
        except _FuturesTimeout:
            # Threads cannot be killed or respawned, so there is no retry
            # tier: a stuck seal degrades straight to the serial path.
            # (Non-timeout task exceptions propagate -- thread tasks run
            # our own deterministic code, so retrying cannot help.)
            for future in futures:
                future.cancel()
            self._supervise("timeouts", "worker_timeout", attempt=0)
            return self._seal_degraded(loaded, shard_items)
        return summaries, self._dedup_parent(shard_items)

    def _rebuild_pool(self) -> None:
        """Terminate the process pool's workers and start a fresh pool."""
        pool, self._pool = self._pool, None
        if pool is not None:
            for proc in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    proc.terminate()
                except Exception:  # pragma: no cover - already dead
                    pass
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - broken-pool teardown
                pass
        self._supervise("pool_rebuilds", "pool_rebuild")
        self._pool = self._make_process_pool()

    def snapshot_interval(self):
        """Detach the open interval's buffers (cheap, caller's thread).

        Returns an opaque snapshot -- the ``(shard, buffer)`` pairs for
        every loaded shard -- and leaves the engine with fresh empty
        buffers so the next interval can accumulate immediately.  Pass
        the snapshot to :meth:`seal_snapshot` (possibly from a pipeline
        worker) to produce the merged summary.  No concatenation or
        hashing happens here: the expensive half of collection is
        deferred with the snapshot.
        """
        snapshot = []
        for i in range(self.n_workers):
            if self._buffers[i]:
                snapshot.append((i, self._buffers[i]))
                self._buffers[i] = []
        self._rr = 0
        return snapshot

    def seal_snapshot(self, snapshot):
        """Seal a detached interval snapshot: sketch per shard, COMBINE.

        Safe to run on a background thread as long as seals execute one
        at a time (the pipeline's single worker guarantees this): the
        worker pool and shared-memory slots are only touched here, and
        the snapshot owns its buffers outright.
        """
        if not snapshot:
            return self.schema.empty(), _EMPTY_KEYS
        loaded = [i for i, _ in snapshot]
        shard_items = [self._items_of(buf) for _, buf in snapshot]
        if self.backend == "process":
            summaries, keys = self._seal_process(loaded, shard_items)
        elif self.backend == "thread":
            summaries, keys = self._seal_thread(loaded, shard_items)
        else:
            summaries = [
                _sketch_shard(self.schema, *items) for items in shard_items
            ]
            keys = self._dedup_parent(shard_items)

        # merge() allocates a fresh summary, so process-backend slot views
        # are safe to reuse next interval.
        summary = summaries[0] if len(summaries) == 1 else merge(summaries)
        if self.backend == "process" and len(summaries) == 1:
            summary = merge(summaries)  # detach from the shared slot
        return summary, keys

    def collect(self):
        """Seal the interval: one batched update per shard, then COMBINE.

        Returns ``(merged_summary, unique_keys)`` where ``unique_keys``
        equals ``np.unique`` over every key ingested this interval --
        byte-for-byte what single-stream ingestion computes.  Worker
        failures on the pool backends are supervised (retry with backoff,
        then degraded serial sealing), so an interval with buffered
        records always produces its summary.
        """
        return self.seal_snapshot(self.snapshot_interval())

    # -- checkpoint support --------------------------------------------------

    def capture_buffers(self) -> dict:
        """Open-interval buffer state, in checkpoint-codec values.

        The per-shard ``(keys, values)`` pairs are captured in arrival
        order, so a restored engine seals the interval with the exact
        same per-shard batched updates -- the merged table is
        bit-identical to the uninterrupted run's.
        """
        return {
            "rr": self._rr,
            "buffers": [list(buf) for buf in self._buffers],
        }

    def restore_buffers(self, state: dict) -> None:
        """Install buffer state captured by :meth:`capture_buffers`."""
        buffers = state["buffers"]
        if len(buffers) != self.n_workers:
            raise ValueError(
                f"checkpoint holds {len(buffers)} shard buffers, engine has "
                f"{self.n_workers} shards"
            )
        self.open_interval()
        self._rr = int(state["rr"]) % self.n_workers
        for buf, saved in zip(self._buffers, buffers):
            buf.extend(
                (
                    np.asarray(keys, dtype=np.uint64),
                    np.asarray(values, dtype=np.float64),
                )
                for keys, values in saved
            )

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool and release shared memory."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._block is not None:
            self._block.close()
            self._block = None

    def __enter__(self) -> "ShardedIngestEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardedStreamingSession(StreamingSession):
    """A :class:`StreamingSession` whose ingestion is sharded.

    Drop-in replacement: same constructor arguments plus ``n_workers``,
    ``backend``, ``partition`` and the supervision knobs ``task_timeout``,
    ``max_retries``, ``retry_backoff``, ``retry_backoff_max`` (all
    forwarded to :class:`ShardedIngestEngine`).  Reports are identical to the serial
    session's -- same alarms, thresholds and top-N -- because the merged
    per-interval sketch and candidate key set are identical (COMBINE
    linearity; integral update values are exact in float64).

    Call :meth:`close` (or use as a context manager) to release worker
    pools and shared memory when done.
    """

    def __init__(
        self,
        schema,
        forecaster,
        n_workers: int = 2,
        backend: str = "thread",
        partition: str = "chunk",
        task_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        retry_backoff_max: float = DEFAULT_RETRY_BACKOFF_MAX,
        **kwargs,
    ) -> None:
        super().__init__(schema, forecaster, **kwargs)
        self._engine = ShardedIngestEngine(
            schema,
            n_workers=n_workers,
            backend=backend,
            key_scheme=self.key_scheme,
            value_scheme=self.value_scheme,
            partition=partition,
            task_timeout=task_timeout,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            retry_backoff_max=retry_backoff_max,
            collect_keys=self.key_source == "twopass",
            recorder=self.recorder,
        )

    def attach_recorder(self, recorder) -> None:
        """Attach a recorder to both the session and its ingest engine."""
        super().attach_recorder(recorder)
        self._engine.recorder = self.recorder
        self._engine.recorder.preregister_labelled(
            "repro_supervision_events_total", "event", _SUPERVISION_EVENTS
        )

    @property
    def n_workers(self) -> int:
        """Number of ingestion shards."""
        return self._engine.n_workers

    @property
    def backend(self) -> str:
        """The engine's seal backend (``serial``/``thread``/``process``)."""
        return self._engine.backend

    @property
    def partition(self) -> str:
        """How records are routed to shards."""
        return self._engine.partition

    @property
    def supervision_stats(self) -> dict:
        """Snapshot of the engine's supervision counters."""
        return dict(self._engine.stats)

    @property
    def stats(self) -> dict:
        """Detection-path counters plus the engine's supervision counters."""
        combined = super().stats
        combined["supervision"] = self.supervision_stats
        return combined

    def _open_interval(self) -> None:
        self._current_sketch = None  # state lives in the engine
        self._engine.open_interval()

    def _accumulate(self, chunk: np.ndarray) -> None:
        self._engine.accumulate(chunk)

    def _accumulate_columns(self, keys: np.ndarray, values: np.ndarray) -> None:
        self._engine.accumulate_columns(keys, values)

    def _collect_current(self):
        return self._engine.collect()

    def _detach_current(self):
        # Pipelined snapshot: grab the per-shard buffers on the calling
        # thread (list swaps, no concatenation) and defer the whole
        # sketch-per-shard + COMBINE to the pipeline worker.  The single
        # seal worker means the engine's pool and shared-memory slots
        # never see concurrent seals.
        snapshot = self._engine.snapshot_interval()
        index = self._current_index

        def work():
            with self.recorder.time("collect"):
                observed, keys = self._engine.seal_snapshot(snapshot)
            return self._seal_interval(observed, keys, index)

        return work

    def _accumulation_state(self) -> dict:
        # The raw per-shard buffers (not a dedup or a half-built sketch):
        # a restored engine replays the exact per-shard batched updates,
        # preserving summation order and hence bit-identity.
        return {"engine": self._engine.capture_buffers()}

    def _restore_accumulation(self, state: dict) -> None:
        self._engine.restore_buffers(state["engine"])

    def close(self):
        """Drain the pipeline, then release worker pools and shared memory.

        Returns any reports completed by the drain (``[]`` when not
        pipelined, matching :meth:`StreamingSession.close`).
        """
        reports = super().close()
        self._engine.close()
        return reports

    def __enter__(self) -> "ShardedStreamingSession":
        return self


# -- parallel multi-trace offline detection ----------------------------------


def sketch_traces_parallel(
    schema,
    streams: Sequence[Iterable],
    n_workers: Optional[int] = None,
) -> List[Tuple[int, object, np.ndarray]]:
    """Summarize R interval streams concurrently; COMBINE per interval.

    Each stream (e.g. one router's :class:`~repro.streams.model.IntervalStream`)
    is summarized on its own thread -- sketch UPDATE dominates and releases
    the GIL in the stacked C kernels.  Streams are aligned positionally and
    must agree on interval indices; the combined entry ``t`` is
    ``(index, COMBINE of all routers' So(t), union of their key sets)`` --
    the paper's network-wide summary.
    """
    stream_lists = [list(s) for s in streams]
    if not stream_lists:
        return []

    def _summarize(batches):
        return (
            [b.index for b in batches],
            summarize_stream(batches, schema),
            [np.unique(b.keys) for b in batches],
        )

    if n_workers is None:
        n_workers = len(stream_lists)
    if n_workers > 1 and len(stream_lists) > 1:
        with ThreadPoolExecutor(max_workers=min(n_workers, len(stream_lists))) as pool:
            per_stream = list(pool.map(_summarize, stream_lists))
    else:
        per_stream = [_summarize(batches) for batches in stream_lists]

    n_intervals = min(len(idx) for idx, _, _ in per_stream)
    combined = []
    for t in range(n_intervals):
        indices = {idx[t] for idx, _, _ in per_stream}
        if len(indices) != 1:
            raise ValueError(
                f"streams disagree on interval index at position {t}: {sorted(indices)}"
            )
        observed = merge([obs[t] for _, obs, _ in per_stream])
        keys = np.unique(np.concatenate([keys[t] for _, _, keys in per_stream]))
        combined.append((indices.pop(), observed, keys))
    return combined


def parallel_trace_detect(
    detector,
    streams: Sequence[Iterable],
    n_workers: Optional[int] = None,
) -> List[IntervalDetection]:
    """Run an :class:`OfflineTwoPassDetector` over R traces network-wide.

    Sketches every stream concurrently (:func:`sketch_traces_parallel`),
    COMBINEs per interval, then forecasts and detects over the combined
    summaries.  The reports are identical to running ``detector`` on the
    merged raw trace -- distribution introduces no approximation.
    """
    combined = sketch_traces_parallel(detector.schema, streams, n_workers=n_workers)
    detector.forecaster.reset()
    error_out = detector.schema.empty()
    forecast_out = None
    if hasattr(error_out, "combine_into"):
        forecast_out = detector.schema.empty()
    else:
        error_out = None
    recent_keys: deque = deque(maxlen=detector.replay_lookback + 1)
    reports: List[IntervalDetection] = []
    key_source = getattr(detector, "key_source", "twopass")
    replaying = key_source == "twopass"
    for index, observed, keys in combined:
        if replaying:
            recent_keys.append(keys)
        step = detector.forecaster.step_into(
            observed, error_out=error_out, forecast_out=forecast_out
        )
        if step.error is None:
            continue
        recorder = getattr(detector, "recorder", None)
        candidates = resolve_key_source(
            key_source,
            step.error,
            t_fraction=detector.t_fraction,
            collected=collect_replay_keys(recent_keys) if replaying else None,
            recorder=recorder if recorder is not None and recorder.enabled
            else None,
        )
        reports.append(
            build_interval_report(
                step.error,
                candidates,
                interval=index,
                t_fraction=detector.t_fraction,
                top_n=detector.top_n,
                schema=detector.schema,
                index_cache=getattr(detector, "index_cache", None),
                prescreen=getattr(detector, "prescreen", True),
                stats=getattr(detector, "stats", None),
                recorder=recorder if recorder is not None and recorder.enabled
                else None,
            )
        )
    return reports
