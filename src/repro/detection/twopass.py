"""The offline two-pass detector (what the paper uses in all experiments).

Pass one streams the interval's records into the observed sketch and steps
the forecast model; pass two replays the same interval's keys against the
freshly built error sketch ("Since the input stream itself will provide
the keys, there is no need for keeping per-flow state").

Because :class:`~repro.streams.model.KeyedUpdates` batches are columnar and
re-iterable, the "second pass" here is a replay of the per-interval key
arrays -- exactly the access pattern a two-pass file reader would have.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Union

import numpy as np

from repro.detection.keysource import (
    CANDIDATES_COUNTER,
    KEY_SOURCES,
    collect_replay_keys,
    resolve_key_source,
)
from repro.detection.pipeline import run_pipeline
from repro.detection.threshold import (
    Alarm,  # noqa: F401  (re-exported for backwards compatibility)
    IntervalDetection,
    build_interval_report,
)
from repro.forecast.base import Forecaster
from repro.forecast.model_zoo import make_forecaster
from repro.obs.recorder import NULL_RECORDER
from repro.streams.model import KeyedUpdates


class OfflineTwoPassDetector:
    """End-to-end offline sketch-based change detection.

    Parameters
    ----------
    schema:
        Summary schema -- a :class:`~repro.sketch.kary.KArySchema` for the
        paper's detector, or a dense/exact schema for the oracle.
    forecaster:
        A :class:`~repro.forecast.base.Forecaster` instance, or a model
        name from the registry.
    t_fraction:
        Alarm threshold parameter ``T``; ``None`` disables thresholding.
    top_n:
        Also report the top-N keys by absolute error each interval
        (0 disables).
    replay_lookback:
        How many *previous* intervals' key sets to replay in addition to
        the current interval's.  The paper's key-collection window is "the
        keys that appeared in recent intervals (e.g., the same interval t)";
        a lookback of 1 lets the detector flag keys that *disappeared*
        (e.g. a DoS flood that just stopped), whose forecast error is large
        and negative even though they send no traffic in interval ``t``.
    index_cache:
        Bucket-index cache knob (``True``/``False``/instance; see
        :func:`~repro.detection.session.resolve_index_cache`).  Replay
        keys recur heavily across intervals, so the default (``True``)
        hashes each recurring key once per run instead of once per
        interval.  Reports are identical either way.
    prescreen:
        Exact median prescreen (default on); see
        :func:`~repro.detection.threshold.build_interval_report`.
    key_source:
        Where each interval's candidate keys come from (see
        :mod:`~repro.detection.keysource`).  ``"twopass"`` (default)
        replays the collected interval keys -- the paper's strategy,
        reports unchanged.  ``"invertible"`` / ``"grouptesting"``
        recover candidates from the sealed error summary itself (the
        schema must produce the matching summary type), retiring the
        O(stream) replay pass.  ``"online"`` is not valid here -- use
        :class:`~repro.detection.online.OnlineDetector`.
    recorder:
        Optional :class:`~repro.obs.recorder.PipelineRecorder` for stage
        timings, candidate/alarm counters, index-cache gauges and
        ``interval_sealed`` trace events; the no-op default adds nothing
        to the hot path.
    model_params:
        Parameters forwarded to the registry when ``forecaster`` is a name.
    """

    def __init__(
        self,
        schema,
        forecaster: Union[Forecaster, str],
        t_fraction: Optional[float] = 0.05,
        top_n: int = 0,
        replay_lookback: int = 0,
        index_cache=True,
        prescreen: bool = True,
        key_source: str = "twopass",
        recorder=None,
        **model_params,
    ) -> None:
        from repro.detection.session import resolve_index_cache

        self.schema = schema
        if isinstance(forecaster, str):
            forecaster = make_forecaster(forecaster, **model_params)
        elif model_params:
            raise ValueError(
                "model_params only apply when forecaster is given by name"
            )
        self.forecaster = forecaster
        if t_fraction is not None and t_fraction < 0:
            raise ValueError(f"t_fraction must be >= 0, got {t_fraction}")
        self.t_fraction = t_fraction
        if top_n < 0:
            raise ValueError(f"top_n must be >= 0, got {top_n}")
        self.top_n = int(top_n)
        if replay_lookback < 0:
            raise ValueError(f"replay_lookback must be >= 0, got {replay_lookback}")
        self.replay_lookback = int(replay_lookback)
        self.prescreen = bool(prescreen)
        if key_source == "online":
            raise ValueError(
                "key_source='online' needs the next interval's keys; "
                "use repro.detection.online.OnlineDetector"
            )
        self.key_source = key_source
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self.recorder.preregister(
            "repro_intervals_sealed_total", "repro_detect_candidates_total",
            "repro_detect_median_evaluated_total", "repro_alarms_total",
            "repro_index_cache_hits_total", "repro_index_cache_misses_total",
            "repro_index_cache_evictions_total",
        )
        self.recorder.preregister_labelled(
            CANDIDATES_COUNTER, "source", KEY_SOURCES
        )
        self.recorder.preregister_stage("recover")
        self.index_cache = resolve_index_cache(schema, index_cache)
        self._index_cache_auto = index_cache is True
        self.stats = {"candidates": 0, "median_evaluated": 0}

    def run(self, batches: Iterable[KeyedUpdates]) -> Iterator[IntervalDetection]:
        """Detect over an interval stream, yielding per-interval reports.

        Warm-up intervals (no forecast yet) are skipped; the caller sees
        only intervals with a defined error summary.

        ``batches`` may be :class:`~repro.streams.model.KeyedUpdates` or
        zero-copy :class:`~repro.streams.model.ColumnarBlock` items (from
        :func:`~repro.streams.sharding.iter_interval_columns`) -- only
        ``index``/``keys``/``values`` are read, and the key/value arrays
        feed the fused UPDATE kernels without copying.

        The loop mirrors :func:`~repro.detection.pipeline.run_pipeline`
        but seals through the amortized path: reusable ``Sf``/``Se``
        scratch summaries (``step_into``), the bucket-index cache (with
        the low-recurrence runtime drop, matching the streaming
        session's), and the median prescreen.  Output is identical
        interval for interval.
        """
        from collections import deque

        self.forecaster.reset()
        error_out = self.schema.empty()
        forecast_out = None
        if hasattr(error_out, "combine_into"):
            forecast_out = self.schema.empty()
        else:
            error_out = None
        recent_keys: deque = deque(maxlen=self.replay_lookback + 1)
        obs = self.recorder
        # Recovery sources pull candidates out of the error summary, so
        # the per-interval key collection (and its np.unique) is skipped
        # entirely -- that *is* the retired second pass.
        replaying = self.key_source == "twopass"
        for batch in batches:
            observed = self.schema.from_items(batch.keys, batch.values)
            with obs.time("forecast_step"):
                step = self.forecaster.step_into(
                    observed, error_out=error_out, forecast_out=forecast_out
                )
            if replaying:
                recent_keys.append(np.unique(batch.keys))
            if step.error is None:
                continue
            keys = resolve_key_source(
                self.key_source,
                step.error,
                t_fraction=self.t_fraction,
                collected=collect_replay_keys(recent_keys) if replaying else None,
                recorder=obs if obs.enabled else None,
            )
            with obs.time("report_build"):
                report = build_interval_report(
                    step.error,
                    keys,
                    interval=batch.index,
                    t_fraction=self.t_fraction,
                    top_n=self.top_n,
                    schema=self.schema,
                    index_cache=self.index_cache,
                    prescreen=self.prescreen,
                    stats=self.stats,
                    recorder=obs if obs.enabled else None,
                )
            self._maybe_drop_index_cache()
            if obs.enabled:
                self._record_report(report, len(keys))
            yield report

    def _maybe_drop_index_cache(self) -> None:
        """Drop an auto-enabled cache when measured recurrence is too low.

        Same probation rule as the streaming session: past
        ``_CACHE_PROBATION_LOOKUPS`` lookups with a hit rate under
        ``_CACHE_MIN_HIT_RATE``, caching keys that never come back is
        pure overhead, so fall back to cache-off (never to forced
        cache-on).  Reports are unaffected -- the cache is an execution
        detail.
        """
        from repro.detection.session import (
            _CACHE_MIN_HIT_RATE,
            _CACHE_PROBATION_LOOKUPS,
        )

        cache = self.index_cache
        if cache is None or not self._index_cache_auto:
            return
        if cache.lookups < _CACHE_PROBATION_LOOKUPS:
            return
        served = cache.hits + cache.misses
        if served and cache.hits / served < _CACHE_MIN_HIT_RATE:
            self.index_cache = None
            if self.recorder.enabled:
                self.recorder.event(
                    "index_cache_dropped",
                    lookups=cache.lookups,
                    hit_rate=cache.hits / served,
                )

    def _record_report(self, report: IntervalDetection, n_candidates: int) -> None:
        obs = self.recorder
        obs.count("repro_intervals_sealed_total")
        obs.count("repro_detect_candidates_total", n_candidates)
        obs.sync_counter(
            "repro_detect_median_evaluated_total",
            self.stats["median_evaluated"],
        )
        if report.alarm_count:
            obs.count("repro_alarms_total", report.alarm_count)
        cache = self.index_cache
        if cache is not None:
            cache_stats = cache.stats
            obs.sync_counter("repro_index_cache_hits_total", cache_stats["hits"])
            obs.sync_counter(
                "repro_index_cache_misses_total", cache_stats["misses"]
            )
            obs.sync_counter(
                "repro_index_cache_evictions_total", cache_stats["evictions"]
            )
            obs.gauge("repro_index_cache_size", cache_stats["size"])
        obs.event(
            "interval_sealed", interval=report.index,
            alarms=report.alarm_count, candidates=n_candidates,
            error_l2=report.error_l2, threshold=report.threshold,
        )

    def detect(self, batches: Iterable[KeyedUpdates]) -> List[IntervalDetection]:
        """Convenience: materialize :meth:`run` into a list."""
        return list(self.run(batches))

    def detect_many(
        self,
        streams,
        n_workers: Optional[int] = None,
    ) -> List[IntervalDetection]:
        """Network-wide detection over R interval streams (one per router).

        Sketches every stream concurrently, COMBINEs each interval's
        summaries into the network-wide summary, then detects -- reports
        are identical to :meth:`detect` over the merged raw trace (sketch
        linearity; see :mod:`repro.detection.sharded`).
        """
        from repro.detection.sharded import parallel_trace_detect

        return parallel_trace_detect(self, streams, n_workers=n_workers)
