"""The alarm rule (paper Section 3.3).

After constructing the forecast error summary ``Se(t)``, the alarm
threshold is

    ``T_A = T * sqrt(ESTIMATEF2(Se(t)))``

where ``T`` is an application-chosen fraction of the L2 norm of the
forecast errors (the paper sweeps ``T`` over {0.01, 0.02, 0.05, 0.07,
0.1}).  A key raises an alarm when the absolute reconstructed error meets
the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class Alarm:
    """One raised alarm: a key whose forecast error was significant."""

    interval: int
    key: int
    estimated_error: float
    threshold: float

    @property
    def magnitude(self) -> float:
        """How far past the threshold the error landed (>= 1.0)."""
        return abs(self.estimated_error) / self.threshold if self.threshold else float("inf")


def alarm_threshold(error_summary, t_fraction: float) -> float:
    """Compute ``T_A = T * sqrt(ESTIMATEF2(Se))``.

    The F2 estimate of an error summary can be marginally negative (it is
    unbiased, so small true energies straddle zero); it is clamped at zero,
    making the threshold well defined and conservative.
    """
    if t_fraction < 0:
        raise ValueError(f"t_fraction must be >= 0, got {t_fraction}")
    return t_fraction * error_summary.l2_norm()


def alarms_for_interval(
    error_summary,
    candidate_keys: np.ndarray,
    t_fraction: float,
    interval: int = 0,
    indices: Optional[np.ndarray] = None,
) -> List[Alarm]:
    """Raise alarms over candidate keys against one interval's error summary.

    Parameters
    ----------
    error_summary:
        ``Se(t)`` -- sketch or exact.
    candidate_keys:
        Keys to test (the replay stream in the offline detector; future
        keys in the online one).  Deduplicated internally.
    t_fraction:
        The threshold parameter ``T``.
    interval:
        Interval index recorded in the alarms.
    indices:
        Optional precomputed bucket indices for the candidate keys.
    """
    keys = np.unique(np.asarray(candidate_keys, dtype=np.uint64))
    if not len(keys):
        return []
    threshold = alarm_threshold(error_summary, t_fraction)
    estimates = error_summary.estimate_batch(keys, indices=indices)
    hits = np.abs(estimates) >= threshold
    return [
        Alarm(
            interval=interval,
            key=int(key),
            estimated_error=float(err),
            threshold=threshold,
        )
        for key, err in zip(keys[hits].tolist(), estimates[hits].tolist())
    ]
