"""The alarm rule (paper Section 3.3) and the per-interval report builder.

After constructing the forecast error summary ``Se(t)``, the alarm
threshold is

    ``T_A = T * sqrt(ESTIMATEF2(Se(t)))``

where ``T`` is an application-chosen fraction of the L2 norm of the
forecast errors (the paper sweeps ``T`` over {0.01, 0.02, 0.05, 0.07,
0.1}).  A key raises an alarm when the absolute reconstructed error meets
the threshold.

Every detector in this package (offline two-pass, online future-keys,
streaming session, sharded session) finishes an interval the same way:
reconstruct candidate-key errors from ``Se(t)``, threshold them into
alarms, optionally rank the top-N.  :func:`build_interval_report` is that
one shared implementation; :class:`IntervalDetection` is its output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.obs.recorder import NULL_RECORDER, STAGE_HISTOGRAM

from time import perf_counter as _perf_counter

_EMPTY_KEYS = np.array([], dtype=np.uint64)
_EMPTY_ERRORS = np.array([], dtype=np.float64)


@dataclass(frozen=True)
class Alarm:
    """One raised alarm: a key whose forecast error was significant."""

    interval: int
    key: int
    estimated_error: float
    threshold: float

    @property
    def magnitude(self) -> float:
        """How far past the threshold the error landed (>= 1.0).

        With a zero threshold, any nonzero error is infinitely far past
        it; a zero error sits exactly at it (magnitude 1.0), not past it.
        """
        if self.threshold:
            return abs(self.estimated_error) / self.threshold
        return float("inf") if self.estimated_error else 1.0


@dataclass
class IntervalDetection:
    """Detection output for one interval."""

    index: int
    threshold: float
    alarms: List[Alarm]
    top_keys: np.ndarray          # top-N keys by |error| (empty if n=0)
    top_errors: np.ndarray        # their signed estimated errors
    error_l2: float               # sqrt(ESTIMATEF2(Se(t)))

    @property
    def alarm_count(self) -> int:
        """Number of alarms raised in the interval."""
        return len(self.alarms)


def _evaluate_medians(rows, estimates, evaluated, idx) -> None:
    """Fill ``estimates[idx]`` with the per-column medians of ``rows[:, idx]``.

    ``np.median`` over a column subset computes each column independently,
    so the filled values are bit-identical to the corresponding entries of
    ``np.median(rows, axis=0)`` over the full matrix.
    """
    todo = idx[~evaluated[idx]]
    if len(todo):
        estimates[todo] = np.median(rows[:, todo], axis=0)
        evaluated[todo] = True


#: Minimum keys evaluated per top-N refinement round; amortizes the
#: per-round bookkeeping without over-evaluating small candidate sets.
_PRESCREEN_CHUNK = 256


def build_interval_report(
    error_summary,
    candidate_keys: np.ndarray,
    *,
    interval: int,
    t_fraction: Optional[float],
    top_n: int = 0,
    indices: Optional[np.ndarray] = None,
    schema=None,
    index_cache=None,
    prescreen: bool = True,
    stats: Optional[dict] = None,
    recorder=None,
) -> IntervalDetection:
    """Finish one interval: threshold candidate errors and rank the top-N.

    Parameters
    ----------
    error_summary:
        ``Se(t)`` -- any summary with ``estimate_batch`` / ``l2_norm``.
    candidate_keys:
        **Deduplicated, sorted** candidate keys (``np.unique`` output).
        Every caller already holds them in that form; re-deduplicating
        here would tax the hot path.
    interval:
        Interval index recorded in the report and its alarms.
    t_fraction:
        Threshold parameter ``T``; ``None`` disables alarming (the report
        then carries ``threshold=0.0`` and no alarms).
    top_n:
        Also rank the ``top_n`` keys by absolute error (0 disables).
    indices:
        Optional precomputed bucket indices for ``candidate_keys``.
    schema:
        When given (and ``indices`` is not), the keys are hashed once via
        ``schema.bucket_indices`` so thresholding and top-N share the
        work; schemas without ``bucket_indices`` (exact/dense) pass
        through untouched.
    index_cache:
        Optional :class:`~repro.hashing.index_cache.BucketIndexCache`;
        when given (and ``indices`` is not) the candidate keys' bucket
        indices come from the cache -- recurring keys skip hashing
        entirely.  Takes precedence over ``schema``.
    prescreen:
        Exact median prescreen (default on).  The median over rows is
        bounded by the per-key max absolute row estimate, which one
        vectorized pass over the gathered rows yields for free; the
        per-key ``np.median`` then runs only on keys whose bound reaches
        the alarm threshold (plus the keys needed to settle the top-N).
        Provably identical output; set ``False`` to force the reference
        full-median path.  Requires ``error_summary.estimate_rows`` (k-ary
        and Count Sketch); summaries without it fall back silently.
    stats:
        Optional mutable dict; ``candidates`` and ``median_evaluated``
        counters are accumulated into it (prescreen effectiveness =
        evaluated / candidates).
    recorder:
        Optional :class:`~repro.obs.recorder.PipelineRecorder`; stage
        timings for the F2/threshold computation, the candidate-key
        hash/index-cache resolution, and the estimate/median scan are
        observed into ``repro_stage_seconds``.  The default
        :data:`~repro.obs.recorder.NULL_RECORDER` path costs one no-op
        call per stage.

    The estimates are computed once and reused by both the alarm scan and
    the top-N ranking -- output is identical to running
    :func:`alarms_for_interval` and :func:`~repro.detection.topn.top_n_keys`
    separately, at roughly half the reconstruction cost.
    """
    obs = NULL_RECORDER if recorder is None else recorder
    keys = np.asarray(candidate_keys, dtype=np.uint64)
    with obs.time("f2_threshold"):
        l2 = error_summary.l2_norm()
        threshold = 0.0 if t_fraction is None else t_fraction * l2
    n = len(keys)
    if n == 0:
        # Empty-candidate fast path: an interval can legitimately close
        # with no keys to test (the online detector's final unchecked
        # interval, an all-gap seal), for *every* schema kind -- exact
        # and dense included, which never reach the hashed-index code
        # below.  The report still carries the interval's L2/threshold
        # so callers can tell "nothing alarmed" from "nothing checked".
        if stats is not None:
            stats["candidates"] = stats.get("candidates", 0)
            stats["median_evaluated"] = stats.get("median_evaluated", 0)
        return IntervalDetection(
            index=interval,
            threshold=threshold,
            alarms=[],
            top_keys=_EMPTY_KEYS,
            top_errors=_EMPTY_ERRORS,
            error_l2=l2,
        )
    alarms: List[Alarm] = []
    top_keys = _EMPTY_KEYS
    top_errors = _EMPTY_ERRORS
    evaluated_count = 0
    if t_fraction is not None or top_n:
        if indices is None:
            with obs.time("hash_index"):
                if index_cache is not None:
                    indices = index_cache.lookup(keys)
                elif schema is not None:
                    bucket_indices = getattr(schema, "bucket_indices", None)
                    if bucket_indices is not None:
                        indices = bucket_indices(keys)
        _t0 = _perf_counter() if obs.enabled else 0.0
        estimate_rows = (
            getattr(error_summary, "estimate_rows", None) if prescreen else None
        )
        if estimate_rows is not None:
            rows = estimate_rows(keys, indices=indices)
            # |median over rows| <= max over rows |row estimate|: an exact
            # bound for any select-from-rows estimator, computed here
            # without materializing np.abs(rows).
            upper = np.maximum(rows.max(axis=0), -rows.min(axis=0))
            estimates = np.empty(n, dtype=np.float64)
            evaluated = np.zeros(n, dtype=bool)
            if t_fraction is not None:
                # Keys whose bound is below the threshold cannot alarm;
                # the median runs only on the survivors.  Same zero-
                # threshold rule as the reference path: exact-zero errors
                # never alarm.
                survivors = np.flatnonzero(
                    upper >= threshold if threshold > 0.0 else upper > 0.0
                )
                _evaluate_medians(rows, estimates, evaluated, survivors)
                mags = np.abs(estimates[survivors])
                keep = mags >= threshold if threshold > 0.0 else mags > 0.0
                hit_idx = survivors[keep]
                alarms = [
                    Alarm(
                        interval=interval,
                        key=int(k),
                        estimated_error=float(e),
                        threshold=threshold,
                    )
                    for k, e in zip(
                        keys[hit_idx].tolist(), estimates[hit_idx].tolist()
                    )
                ]
            if top_n:
                # Evaluate the keys with the largest bounds until the
                # top_n-th largest evaluated magnitude provably dominates
                # every unevaluated bound.  argpartition (O(n)) replaces a
                # full sort: after partitioning at m, every unselected key
                # has a bound <= upper[part[m]], so that single pivot is
                # the stop test.  Strictness matters: a bound *equal* to
                # the kth magnitude could still tie and win on the key
                # tie-break, so stopping requires pivot < kth.  Which
                # tied-bound keys land in the selection is arbitrary and
                # irrelevant: any unevaluated key's |median| <= bound < kth
                # strictly, and the final restricted lexsort ranks whatever
                # got evaluated.
                m = max(int(top_n), _PRESCREEN_CHUNK)
                while True:
                    if m >= n:
                        _evaluate_medians(
                            rows, estimates, evaluated,
                            np.arange(n, dtype=np.intp),
                        )
                        break
                    part = np.argpartition(-upper, m)
                    _evaluate_medians(rows, estimates, evaluated, part[:m])
                    eval_idx = np.flatnonzero(evaluated)
                    if len(eval_idx) >= top_n:
                        mags = np.abs(estimates[eval_idx])
                        kth = np.partition(mags, len(mags) - top_n)[
                            len(mags) - top_n
                        ]
                        if upper[part[m]] < kth:
                            break
                    m = min(n, 2 * m)
                eval_idx = np.flatnonzero(evaluated)
                order = np.lexsort(
                    (keys[eval_idx], -np.abs(estimates[eval_idx]))
                )
                chosen = eval_idx[order[:top_n]]
                top_keys = keys[chosen]
                top_errors = estimates[chosen]
            evaluated_count = int(np.count_nonzero(evaluated))
        else:
            estimates = error_summary.estimate_batch(keys, indices=indices)
            evaluated_count = n
            magnitudes = np.abs(estimates)
            if t_fraction is not None:
                # A zero threshold (T = 0, or an all-zero error summary)
                # must not alarm on keys whose reconstructed error is
                # exactly zero -- they carry no change signal at all.
                hits = (
                    magnitudes >= threshold if threshold > 0.0 else magnitudes > 0.0
                )
                alarms = [
                    Alarm(
                        interval=interval,
                        key=int(k),
                        estimated_error=float(e),
                        threshold=threshold,
                    )
                    for k, e in zip(keys[hits].tolist(), estimates[hits].tolist())
                ]
            if top_n:
                order = np.lexsort((keys, -magnitudes))
                chosen = order[:top_n]
                top_keys = keys[chosen]
                top_errors = estimates[chosen]
        if obs.enabled:
            obs.observe(
                STAGE_HISTOGRAM, _perf_counter() - _t0,
                stage="estimate_threshold",
            )
    if stats is not None:
        stats["candidates"] = stats.get("candidates", 0) + n
        stats["median_evaluated"] = (
            stats.get("median_evaluated", 0) + evaluated_count
        )
    return IntervalDetection(
        index=interval,
        threshold=threshold,
        alarms=alarms,
        top_keys=top_keys,
        top_errors=top_errors,
        error_l2=l2,
    )


def alarm_threshold(error_summary, t_fraction: float) -> float:
    """Compute ``T_A = T * sqrt(ESTIMATEF2(Se))``.

    The F2 estimate of an error summary can be marginally negative (it is
    unbiased, so small true energies straddle zero); it is clamped at zero,
    making the threshold well defined and conservative.
    """
    if t_fraction < 0:
        raise ValueError(f"t_fraction must be >= 0, got {t_fraction}")
    return t_fraction * error_summary.l2_norm()


def alarms_for_interval(
    error_summary,
    candidate_keys: np.ndarray,
    t_fraction: float,
    interval: int = 0,
    indices: Optional[np.ndarray] = None,
) -> List[Alarm]:
    """Raise alarms over candidate keys against one interval's error summary.

    Parameters
    ----------
    error_summary:
        ``Se(t)`` -- sketch or exact.
    candidate_keys:
        Keys to test (the replay stream in the offline detector; future
        keys in the online one).  Deduplicated internally.
    t_fraction:
        The threshold parameter ``T``.
    interval:
        Interval index recorded in the alarms.
    indices:
        Optional precomputed bucket indices for the candidate keys.
    """
    keys = np.unique(np.asarray(candidate_keys, dtype=np.uint64))
    if not len(keys):
        return []
    threshold = alarm_threshold(error_summary, t_fraction)
    estimates = error_summary.estimate_batch(keys, indices=indices)
    magnitudes = np.abs(estimates)
    # Same zero-threshold rule as build_interval_report: exact-zero
    # errors never alarm.
    hits = magnitudes >= threshold if threshold > 0.0 else magnitudes > 0.0
    return [
        Alarm(
            interval=interval,
            key=int(key),
            estimated_error=float(err),
            threshold=threshold,
        )
        for key, err in zip(keys[hits].tolist(), estimates[hits].tolist())
    ]
