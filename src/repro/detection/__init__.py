"""Change detection: the paper's third module, plus key-recovery variants.

Built from small pieces:

* :mod:`~repro.detection.pipeline` -- the summarize/forecast/error engine
  shared by sketch and per-flow paths (only the schema differs).
* :mod:`~repro.detection.threshold` -- the alarm rule
  ``|error(a)| >= T * sqrt(ESTIMATEF2(Se(t)))``.
* :mod:`~repro.detection.topn` -- top-N ranking of keys by absolute
  forecast error.
* :mod:`~repro.detection.twopass` -- the offline two-pass detector used in
  all the paper's experiments (pass 1 builds sketches, pass 2 replays the
  interval's keys against the error sketch).
* :mod:`~repro.detection.online` -- the online variant that detects using
  keys arriving *after* the error sketch is built, optionally sampled; it
  trades a bounded miss-rate for single-pass operation.
* :mod:`~repro.detection.perflow` -- exact per-flow detection over a dense
  key index (the accuracy oracle).
* :mod:`~repro.detection.grouptesting` -- combinatorial group testing
  sketch that recovers changed keys directly from (modified) sketch state,
  with no key stream at all (the paper's Section 3.3 fourth alternative).
* :mod:`~repro.detection.keysource` -- the registry that names those
  candidate-key strategies (``twopass``, ``online``, ``invertible``,
  ``grouptesting``) and resolves one per sealed interval, so detectors and
  sessions share a single code path for "where do the keys come from".
* :mod:`~repro.detection.checkpoint` -- session checkpoint/restore: the
  full pipeline state (forecaster internals, open-interval accumulation,
  cursors) round-trips through one ``KCP1`` container and resumes
  bit-identically.
* :mod:`~repro.detection.sharded` -- sharded parallel ingestion built on
  COMBINE: :class:`~repro.detection.sharded.ShardedStreamingSession`
  (drop-in streaming session with an ``n_workers`` knob) and the parallel
  multi-trace mode behind
  :meth:`~repro.detection.twopass.OfflineTwoPassDetector.detect_many`.
"""

from repro.detection.adaptive import AdaptiveDetector
from repro.detection.checkpoint import (
    checkpoint_session,
    load_checkpoint,
    restore_session,
    save_checkpoint,
)
from repro.detection.drilldown import (
    DrilldownNode,
    DrilldownReport,
    PrefixDrilldown,
    attribute_key_errors,
    build_attribution_forest,
    format_prefix,
)
from repro.detection.explain import AlarmExplanation, explain_alarm
from repro.detection.grouptesting import GroupTestingSchema, GroupTestingSketch
from repro.detection.heavyhitters import HeavyHitterTracker, heavy_hitters
from repro.detection.keysource import (
    KEY_SOURCES,
    collect_replay_keys,
    register_key_source,
    resolve_key_source,
)
from repro.detection.online import OnlineDetector
from repro.detection.perflow import PerFlowResult, run_per_flow
from repro.detection.session import StreamingSession, resolve_index_cache
from repro.detection.sharded import (
    ShardedIngestEngine,
    ShardedStreamingSession,
    parallel_trace_detect,
    sketch_traces_parallel,
)
from repro.detection.pipeline import (
    PipelineStep,
    forecast_error_stream,
    interval_key_sets,
    summarize_stream,
)
from repro.detection.threshold import (
    Alarm,
    alarm_threshold,
    alarms_for_interval,
    build_interval_report,
)
from repro.detection.topn import top_n_keys
from repro.detection.twopass import IntervalDetection, OfflineTwoPassDetector

__all__ = [
    "AdaptiveDetector",
    "Alarm",
    "AlarmExplanation",
    "DrilldownNode",
    "explain_alarm",
    "DrilldownReport",
    "GroupTestingSchema",
    "PrefixDrilldown",
    "attribute_key_errors",
    "build_attribution_forest",
    "format_prefix",
    "HeavyHitterTracker",
    "heavy_hitters",
    "GroupTestingSketch",
    "IntervalDetection",
    "KEY_SOURCES",
    "OfflineTwoPassDetector",
    "OnlineDetector",
    "PerFlowResult",
    "PipelineStep",
    "ShardedIngestEngine",
    "ShardedStreamingSession",
    "StreamingSession",
    "alarm_threshold",
    "alarms_for_interval",
    "build_interval_report",
    "checkpoint_session",
    "collect_replay_keys",
    "load_checkpoint",
    "restore_session",
    "save_checkpoint",
    "forecast_error_stream",
    "interval_key_sets",
    "parallel_trace_detect",
    "register_key_source",
    "resolve_index_cache",
    "resolve_key_source",
    "run_per_flow",
    "sketch_traces_parallel",
    "summarize_stream",
    "top_n_keys",
]
