"""Key-source registry: where an interval's candidate keys come from.

Every detector ends at the same place -- :func:`build_interval_report`
probing an error summary with a set of candidate keys -- but the package
now has four distinct ways of *producing* those candidates:

``"twopass"``
    Replay the interval's (and optionally recent intervals') observed
    keys against the sealed error sketch.  Exact but O(stream): the
    paper's offline strategy.
``"online"``
    Use the *next* interval's arriving keys (optionally subsampled).
    Single-pass, one interval of latency, misses keys that never return.
``"invertible"``
    Walk the invertible sketch's candidate buckets
    (:meth:`~repro.sketch.invertible.InvertibleKArySketch.recover_candidates`)
    -- O(H*K), no second pass and no key retention at all.
``"grouptesting"``
    Bit-decode the group-testing sketch's hot buckets
    (:meth:`~repro.detection.grouptesting.GroupTestingSketch.recover_keys`).

Historically the first two were open-coded in ``detection/twopass.py``
and ``detection/online.py``; this module centralizes selection so a new
source is a :func:`register_key_source` call, not another copy of the
collection logic.  Every resolution of a recovering source is timed into
``repro_stage_seconds{stage="recover"}`` and tallied per source in
``repro_key_source_candidates_total{source=...}``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.detection.threshold import alarm_threshold
from repro.obs.recorder import NULL_RECORDER

__all__ = [
    "KEY_SOURCES",
    "collect_replay_keys",
    "register_key_source",
    "resolve_key_source",
]

#: Counter tallying candidates produced, labelled by key source.
CANDIDATES_COUNTER = "repro_key_source_candidates_total"

#: Resolver signature: ``(error_summary, threshold, collected) -> keys``.
#: ``threshold`` is the interval's alarm threshold (``None`` when
#: thresholding is disabled); ``collected`` is whatever key material the
#: detector gathered from the stream (replay keys, future keys), or
#: ``None`` for sources that recover keys from the summary itself.
Resolver = Callable[[object, Optional[float], Optional[np.ndarray]], np.ndarray]


def _collected_source(name: str):
    def resolver(error_summary, threshold, collected):
        if collected is None:
            raise ValueError(
                f"key source {name!r} needs stream-collected keys, got None"
            )
        return collected

    return resolver


def _invertible_source(error_summary, threshold, collected):
    recover = getattr(error_summary, "recover_candidates", None)
    if recover is None:
        raise TypeError(
            "key_source='invertible' needs an error summary with "
            "recover_candidates (an InvertibleKArySketch); got "
            f"{type(error_summary).__name__}"
        )
    return recover(0.0 if threshold is None else threshold)


def _grouptesting_source(error_summary, threshold, collected):
    recover = getattr(error_summary, "recover_keys", None)
    if recover is None:
        raise TypeError(
            "key_source='grouptesting' needs an error summary with "
            "recover_keys (a GroupTestingSketch); got "
            f"{type(error_summary).__name__}"
        )
    if threshold is None or threshold <= 0.0:
        raise ValueError(
            "key_source='grouptesting' requires a positive alarm "
            f"threshold (bucket decoding needs a cutoff), got {threshold}"
        )
    recovered = recover(threshold)
    return np.array(sorted(recovered), dtype=np.uint64)


_REGISTRY: Dict[str, Tuple[Resolver, bool]] = {}


def register_key_source(
    name: str, resolver: Resolver, *, recovers: bool = True
) -> None:
    """Register a candidate-key source under ``name``.

    ``recovers=True`` marks sources that extract keys from the summary
    itself; their resolution is timed into the ``recover`` stage.
    Collected sources (two-pass, online) pass keys through untimed --
    their collection cost lives in the detector's ingest loop.
    """
    if not name:
        raise ValueError("key source name must be non-empty")
    _REGISTRY[name] = (resolver, bool(recovers))


register_key_source("twopass", _collected_source("twopass"), recovers=False)
register_key_source("online", _collected_source("online"), recovers=False)
register_key_source("invertible", _invertible_source)
register_key_source("grouptesting", _grouptesting_source)

#: The built-in sources, in CLI/documentation order.
KEY_SOURCES = ("twopass", "online", "invertible", "grouptesting")


def collect_replay_keys(recent_keys) -> np.ndarray:
    """Merge per-interval replay key sets into one sorted unique array.

    ``recent_keys`` is a sequence of per-interval ``np.unique``'d key
    arrays, most recent last (the two-pass detector's lookback window).
    With a single interval the array passes through unchanged -- bit for
    bit the pre-registry behavior of both ``OfflineTwoPassDetector.run``
    and ``parallel_trace_detect``.
    """
    recent = list(recent_keys)
    if not recent:
        return np.empty(0, dtype=np.uint64)
    if len(recent) == 1:
        return recent[-1]
    return np.unique(np.concatenate(recent))


def resolve_key_source(
    source: str,
    error_summary,
    *,
    t_fraction: Optional[float] = None,
    collected: Optional[np.ndarray] = None,
    recorder=None,
) -> np.ndarray:
    """Produce the candidate keys for one interval's report.

    Parameters
    ----------
    source:
        A registered key-source name (see :data:`KEY_SOURCES`).
    error_summary:
        The interval's sealed error summary (recovery sources walk it).
    t_fraction:
        Alarm threshold parameter ``T``; recovery sources derive their
        bucket cutoff from :func:`alarm_threshold` over the error
        summary, matching the report's own threshold exactly.
    collected:
        Stream-collected keys for the pass-through sources.
    recorder:
        Optional recorder; recovery walks are timed into
        ``repro_stage_seconds{stage="recover"}`` and every resolution
        tallies ``repro_key_source_candidates_total{source=...}``.
    """
    entry = _REGISTRY.get(source)
    if entry is None:
        raise ValueError(
            f"unknown key source {source!r}; registered: "
            f"{tuple(sorted(_REGISTRY))}"
        )
    resolver, recovers = entry
    obs = NULL_RECORDER if recorder is None else recorder
    if recovers:
        # Recovery sources derive the bucket cutoff from the same rule
        # the report will apply; pass-through sources skip the F2 pass.
        threshold = None
        if t_fraction is not None:
            threshold = alarm_threshold(error_summary, t_fraction)
        with obs.time("recover"):
            keys = resolver(error_summary, threshold, collected)
    else:
        keys = resolver(error_summary, None, collected)
    if obs.enabled:
        obs.count(CANDIDATES_COUNTER, len(keys), source=source)
    return keys
