"""Alarm triage: explain a detected change from the underlying records.

A change detector hands the operator a key and an error magnitude; the
next question is always *what is this traffic?*  Given the alarmed key,
the interval, and access to that interval's records (which the offline
two-pass detector has by construction), this module summarizes the
flows behind the alarm: top talkers, port/protocol mix, and how the
volume compares to the key's recent history -- enough to tell a flash
crowd (many sources, service port) from a DoS flood (few sources or
spoofed range, one port) at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.streams.keys import KeyScheme, make_key_scheme
from repro.streams.records import validate_records


def _format_ip(address: int) -> str:
    return ".".join(str((address >> s) & 0xFF) for s in (24, 16, 8, 0))


@dataclass
class AlarmExplanation:
    """Operator-facing summary of the traffic behind one alarm."""

    key: int
    interval: int
    record_count: int
    total_bytes: float
    distinct_sources: int
    top_sources: List[Tuple[str, float]]      # (ip, bytes) descending
    port_mix: List[Tuple[int, float]]         # (dst port, byte share)
    protocol_mix: Dict[int, float]            # proto -> byte share
    history_ratio: float                      # interval bytes / trailing mean

    @property
    def source_concentration(self) -> float:
        """Byte share of the single largest source (1.0 = one talker)."""
        if not self.top_sources or self.total_bytes == 0:
            return 0.0
        return self.top_sources[0][1] / self.total_bytes

    def classify(self) -> str:
        """Heuristic label for triage (not a verdict).

        * many sources + service port + gradual-ish -> "flash-crowd-like"
        * few sources or extreme concentration -> "dos-like"
        * otherwise -> "shift" (routing change, new deployment, ...)
        """
        if self.record_count == 0:
            return "disappearance"
        if self.source_concentration > 0.5 or self.distinct_sources <= 4:
            return "dos-like"
        if self.distinct_sources >= 32 and self.history_ratio >= 3.0:
            return "flash-crowd-like"
        return "shift"

    def render(self) -> str:
        """Multi-line report for terminals/tickets."""
        lines = [
            f"key {self.key} ({_format_ip(self.key)}), interval {self.interval}: "
            f"{self.record_count} records, {self.total_bytes:,.0f} bytes "
            f"({self.history_ratio:.1f}x trailing mean)",
            f"  assessment: {self.classify()}",
            f"  sources: {self.distinct_sources} distinct; top: "
            + ", ".join(f"{ip} ({b:,.0f}B)" for ip, b in self.top_sources[:3]),
            "  ports: "
            + ", ".join(f"{port} ({share:.0%})" for port, share in self.port_mix[:3]),
        ]
        return "\n".join(lines)


def explain_alarm(
    records: np.ndarray,
    key: int,
    interval: int,
    interval_seconds: float = 300.0,
    key_scheme="dst_ip",
    history_intervals: int = 6,
    top_sources: int = 5,
) -> AlarmExplanation:
    """Summarize the traffic behind an alarmed key.

    Parameters
    ----------
    records:
        The (time-sorted) trace the detector ran over.
    key / interval:
        From the :class:`~repro.detection.threshold.Alarm`.
    interval_seconds:
        Must match the detector's configuration.
    key_scheme:
        Scheme name or object that produced the alarmed key.
    history_intervals:
        Trailing window for the history-ratio baseline.
    top_sources:
        How many top talkers to include.
    """
    validate_records(records)
    if interval < 0:
        raise ValueError(f"interval must be >= 0, got {interval}")
    if interval_seconds <= 0:
        raise ValueError(f"interval_seconds must be > 0, got {interval_seconds}")
    scheme: KeyScheme = (
        make_key_scheme(key_scheme) if isinstance(key_scheme, str) else key_scheme
    )
    keys = scheme.extract(records)
    mask_key = keys == np.uint64(key)
    timestamps = records["timestamp"]
    start = interval * interval_seconds
    end = start + interval_seconds
    in_interval = mask_key & (timestamps >= start) & (timestamps < end)
    subset = records[in_interval]

    total_bytes = float(subset["bytes"].sum())

    # Top talkers.
    talkers: List[Tuple[str, float]] = []
    distinct_sources = 0
    if len(subset):
        sources, inverse = np.unique(subset["src_ip"], return_inverse=True)
        per_source = np.bincount(inverse, weights=subset["bytes"].astype(np.float64))
        distinct_sources = len(sources)
        order = np.argsort(-per_source)[:top_sources]
        talkers = [
            (_format_ip(int(sources[i])), float(per_source[i])) for i in order
        ]

    # Port and protocol mixes by byte share.
    port_mix: List[Tuple[int, float]] = []
    protocol_mix: Dict[int, float] = {}
    if total_bytes > 0:
        ports, inverse = np.unique(subset["dst_port"], return_inverse=True)
        per_port = np.bincount(inverse, weights=subset["bytes"].astype(np.float64))
        order = np.argsort(-per_port)
        port_mix = [
            (int(ports[i]), float(per_port[i]) / total_bytes) for i in order[:5]
        ]
        protos, inverse = np.unique(subset["protocol"], return_inverse=True)
        per_proto = np.bincount(inverse, weights=subset["bytes"].astype(np.float64))
        protocol_mix = {
            int(p): float(v) / total_bytes for p, v in zip(protos, per_proto)
        }

    # Trailing history baseline for this key.
    history_start = max(0.0, start - history_intervals * interval_seconds)
    in_history = mask_key & (timestamps >= history_start) & (timestamps < start)
    spanned = max(1, int(round((start - history_start) / interval_seconds)))
    history_mean = float(records[in_history]["bytes"].sum()) / spanned
    history_ratio = (
        total_bytes / history_mean if history_mean > 0 else float("inf")
    )

    return AlarmExplanation(
        key=int(key),
        interval=interval,
        record_count=int(len(subset)),
        total_bytes=total_bytes,
        distinct_sources=distinct_sources,
        top_sources=talkers,
        port_mix=port_mix,
        protocol_mix=protocol_mix,
        history_ratio=history_ratio,
    )
