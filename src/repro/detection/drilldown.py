"""Hierarchical drill-down: locate changes from coarse to fine aggregation.

The paper notes keys can be "entities like network prefixes or AS numbers
to achieve higher levels of aggregation" (Section 2.1).  Operators use
that hierarchy in the obvious way: watch a few coarse signals cheaply,
and when a /8 moves, drill into its /16s, then /24s, then hosts.

:class:`PrefixDrilldown` runs one sketch pipeline per prefix level over
the same record stream (each level is just a different key scheme -- the
linearity of sketches means per-level summaries are exact aggregations of
each other in expectation), then reports, for each alarmed coarse prefix,
the alarmed finer prefixes underneath it.  The result is an attribution
tree: ``/8 10.0.0.0 -> /16 10.2.0.0 -> /24 10.2.3.0 -> host 10.2.3.4``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.detection.pipeline import run_pipeline
from repro.forecast.model_zoo import make_forecaster
from repro.sketch import KArySchema
from repro.streams.keys import DstIPKey, DstPrefixKey
from repro.streams.records import validate_records
from repro.streams.intervals import slice_by_interval
from repro.streams.model import KeyedUpdates


def _mask(prefix_len: int) -> int:
    return ((1 << prefix_len) - 1) << (32 - prefix_len) if prefix_len else 0


def format_prefix(prefix: int, prefix_len: int) -> str:
    """Dotted-quad ``a.b.c.d/len`` rendering of a prefix key."""
    octets = [(prefix >> shift) & 0xFF for shift in (24, 16, 8, 0)]
    return ".".join(str(o) for o in octets) + f"/{prefix_len}"


@dataclass
class DrilldownNode:
    """One alarmed prefix and its alarmed children at the next level.

    ``orphan`` marks an alarmed node whose coarser parent stayed under
    threshold -- it is surfaced as its own root instead of being silently
    dropped (a /24 spike diluted inside a quiet /8 must still appear).
    """

    prefix: int
    prefix_len: int
    estimated_error: float
    children: List["DrilldownNode"] = field(default_factory=list)
    orphan: bool = False

    def render(self, indent: int = 0) -> str:
        """Human-readable attribution tree."""
        line = (
            " " * indent
            + f"{format_prefix(self.prefix, self.prefix_len)}  "
            f"error={self.estimated_error:+.4g}"
            + ("  [orphan]" if self.orphan else "")
        )
        parts = [line]
        parts.extend(child.render(indent + 2) for child in self.children)
        return "\n".join(parts)

    def leaves(self) -> List["DrilldownNode"]:
        """Finest-level alarmed nodes under (and including) this one."""
        if not self.children:
            return [self]
        out: List[DrilldownNode] = []
        for child in self.children:
            out.extend(child.leaves())
        return out


@dataclass
class DrilldownReport:
    """All alarmed attribution trees for one interval."""

    interval: int
    roots: List[DrilldownNode]

    def render(self) -> str:
        """The full forest as text."""
        if not self.roots:
            return f"interval {self.interval}: no significant changes"
        body = "\n".join(root.render() for root in self.roots)
        return f"interval {self.interval}:\n{body}"


def build_attribution_forest(
    levels: Sequence[int], per_level: Sequence[Dict[int, float]]
) -> List[DrilldownNode]:
    """Attach alarmed prefixes coarse-to-fine; orphans become roots.

    ``per_level[i]`` maps each alarmed prefix at level ``levels[i]`` to
    its estimated error.  Every alarmed node appears in the returned
    forest exactly once: under its alarmed parent when the parent also
    cleared threshold, otherwise as an *orphan root* (flagged on the
    node).  Alarmed-parent roots come first, sorted by error magnitude;
    orphan roots follow, coarse levels first, each level sorted the same
    way -- so a diluted fine-level spike whose coarse aggregate stayed
    quiet is still reported instead of vanishing.
    """
    if len(per_level) != len(levels):
        raise ValueError(
            f"per_level has {len(per_level)} entries for {len(levels)} levels"
        )
    attached: List[set] = [set() for _ in levels]

    def build(
        level: int, prefix: int, error: float, orphan: bool = False
    ) -> DrilldownNode:
        node = DrilldownNode(
            prefix=prefix, prefix_len=levels[level],
            estimated_error=error, orphan=orphan,
        )
        if level + 1 < len(levels):
            parent_mask = _mask(levels[level])
            for child_prefix, child_error in per_level[level + 1].items():
                if (child_prefix & parent_mask) == prefix:
                    attached[level + 1].add(child_prefix)
                    node.children.append(
                        build(level + 1, child_prefix, child_error)
                    )
            node.children.sort(key=lambda c: -abs(c.estimated_error))
        return node

    roots = [
        build(0, prefix, error)
        for prefix, error in sorted(
            per_level[0].items(), key=lambda kv: -abs(kv[1])
        )
    ]
    # Coarse-first orphan sweep: building a level-j orphan attaches its
    # alarmed descendants, so they are excluded from later sweeps.
    for level in range(1, len(levels)):
        orphans = sorted(
            (
                (prefix, error)
                for prefix, error in per_level[level].items()
                if prefix not in attached[level]
            ),
            key=lambda kv: -abs(kv[1]),
        )
        for prefix, error in orphans:
            attached[level].add(prefix)
            roots.append(build(level, prefix, error, orphan=True))
    return roots


class PrefixDrilldown:
    """Multi-level change detection over destination-prefix hierarchies.

    Parameters
    ----------
    levels:
        Prefix lengths from coarse to fine; 32 means host level.  Must be
        strictly increasing.
    schema_factory:
        Called with a level index to build that level's k-ary schema.
        Coarse levels have tiny key spaces; the default shrinks K
        accordingly.
    model / t_fraction / model_params:
        Forecast model (per level, independently warmed) and threshold.
    """

    def __init__(
        self,
        levels: Sequence[int] = (8, 16, 24, 32),
        model: str = "ewma",
        t_fraction: float = 0.1,
        schema_factory=None,
        seed: int = 0,
        **model_params,
    ) -> None:
        levels = tuple(int(l) for l in levels)
        if not levels or any(b <= a for a, b in zip(levels, levels[1:])):
            raise ValueError(f"levels must be strictly increasing, got {levels}")
        if any(not 1 <= l <= 32 for l in levels):
            raise ValueError(f"levels must be in [1, 32], got {levels}")
        self.levels = levels
        self.model = model
        self.t_fraction = float(t_fraction)
        self.model_params = model_params
        if schema_factory is None:
            def schema_factory(index):
                width = min(1 << max(self.levels[index] - 4, 6), 32768)
                return KArySchema(depth=5, width=width, seed=seed + index)
        self._schemas = [schema_factory(i) for i in range(len(levels))]
        self._key_schemes = [
            DstIPKey() if level == 32 else DstPrefixKey(prefix_len=level)
            for level in levels
        ]

    def run(self, records: np.ndarray, interval_seconds: float = 300.0):
        """Yield a :class:`DrilldownReport` per (post-warm-up) interval."""
        validate_records(records)
        # One pass per level over the shared time slicing.
        level_steps: List[List] = []
        for scheme, schema in zip(self._key_schemes, self._schemas):
            forecaster = make_forecaster(self.model, **self.model_params)
            batches = (
                KeyedUpdates(
                    index=index,
                    keys=scheme.extract(chunk),
                    values=chunk["bytes"].astype(np.float64),
                    duration=interval_seconds,
                )
                for index, chunk in slice_by_interval(records, interval_seconds)
            )
            level_steps.append(list(run_pipeline(batches, schema, forecaster)))

        n_intervals = min(len(steps) for steps in level_steps)
        for t in range(n_intervals):
            steps = [level_steps[level][t] for level in range(len(self.levels))]
            if any(step.error is None for step in steps):
                continue
            yield self._attribute(t, steps)

    def _alarmed(self, step, schema) -> Dict[int, float]:
        error = step.error
        keys = step.keys
        if not len(keys):
            return {}
        threshold = self.t_fraction * error.l2_norm()
        estimates = error.estimate_batch(keys, indices=schema.bucket_indices(keys))
        hits = np.abs(estimates) >= threshold
        return {
            int(k): float(e)
            for k, e in zip(keys[hits].tolist(), estimates[hits].tolist())
        }

    def _attribute(self, interval: int, steps) -> DrilldownReport:
        per_level = [
            self._alarmed(step, schema)
            for step, schema in zip(steps, self._schemas)
        ]
        roots = build_attribution_forest(self.levels, per_level)
        return DrilldownReport(interval=interval, roots=roots)


def attribute_key_errors(
    keys: np.ndarray,
    errors: np.ndarray,
    *,
    threshold: float,
    levels: Sequence[int] = (8, 16, 24, 32),
    interval: int = 0,
) -> DrilldownReport:
    """Forensic drill-down over per-key error estimates (no re-detection).

    The retrospective path: the temporal archive's ``diff`` hands back
    per-host error estimates reconstructed from an archived error sketch;
    this aggregates them up the destination-prefix hierarchy (estimated
    errors are linear, so summing host estimates *is* the prefix
    estimate), alarms every level against the same ``threshold`` used by
    the interval report, and builds the attribution forest -- orphan
    surfacing included -- with the exact machinery the live
    :class:`PrefixDrilldown` uses.

    ``keys`` must be 32-bit host keys (the ``dst_ip`` scheme).
    """
    levels = tuple(int(l) for l in levels)
    if not levels or any(b <= a for a, b in zip(levels, levels[1:])):
        raise ValueError(f"levels must be strictly increasing, got {levels}")
    if any(not 1 <= l <= 32 for l in levels):
        raise ValueError(f"levels must be in [1, 32], got {levels}")
    keys = np.asarray(keys, dtype=np.uint64)
    errors = np.asarray(errors, dtype=np.float64)
    if keys.shape != errors.shape:
        raise ValueError(
            f"keys/errors must match, got {keys.shape} and {errors.shape}"
        )
    per_level: List[Dict[int, float]] = []
    for level in levels:
        mask = _mask(level)
        totals: Dict[int, float] = {}
        for key, err in zip(keys.tolist(), errors.tolist()):
            prefix = key & mask
            totals[prefix] = totals.get(prefix, 0.0) + err
        # Zero-threshold rule matches the detection layer: exact-zero
        # aggregates never alarm even when threshold == 0.
        per_level.append(
            {
                p: e
                for p, e in totals.items()
                if abs(e) >= threshold and e != 0.0
            }
        )
    roots = build_attribution_forest(levels, per_level)
    return DrilldownReport(interval=interval, roots=roots)
