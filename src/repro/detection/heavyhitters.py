"""Heavy-hitter detection: the contrast class to change detection.

The paper's introduction distinguishes its problem from scalable
heavy-hitter detection (Estan & Varghese): "heavy-hitters do not
necessarily correspond to flows experiencing significant changes and thus
it is not clear how their techniques can be adapted to support change
detection".

This module implements heavy-hitter queries over the same k-ary sketches
so the two problems can be compared on identical streams: a stable
elephant flow is a heavy hitter but never a change; a mouse that doubles
is a change but never a heavy hitter.  (See the ``tests`` for exactly that
demonstration.)
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


def heavy_hitters(
    summary,
    candidate_keys: np.ndarray,
    phi: float,
    indices: Optional[np.ndarray] = None,
) -> Dict[int, float]:
    """Keys whose estimated total is at least ``phi`` of the stream total.

    Parameters
    ----------
    summary:
        Any linear summary of a (non-negative) interval's traffic.
    candidate_keys:
        Keys to test (deduplicated internally).
    phi:
        Heaviness fraction in (0, 1); the classical guarantee regime is
        ``phi > 1/K`` for a width-``K`` sketch.
    indices:
        Optional precomputed bucket indices.

    Returns
    -------
    ``{key: estimated_total}`` for keys meeting the threshold.
    """
    if not 0.0 < phi < 1.0:
        raise ValueError(f"phi must be in (0, 1), got {phi}")
    keys = np.unique(np.asarray(candidate_keys, dtype=np.uint64))
    if not len(keys):
        return {}
    threshold = phi * summary.total()
    estimates = summary.estimate_batch(keys, indices=indices)
    hits = estimates >= threshold
    return {
        int(k): float(v)
        for k, v in zip(keys[hits].tolist(), estimates[hits].tolist())
    }


class HeavyHitterTracker:
    """Tracks per-interval heavy hitters and their persistence.

    Feeding one ``(summary, keys)`` pair per interval, the tracker
    maintains how many consecutive intervals each key has been heavy --
    the quantity that separates a stable elephant (heavy hitter, not a
    change) from a freshly arrived one (both).
    """

    def __init__(self, phi: float) -> None:
        if not 0.0 < phi < 1.0:
            raise ValueError(f"phi must be in (0, 1), got {phi}")
        self.phi = float(phi)
        self._streak: Dict[int, int] = {}
        self._intervals = 0

    @property
    def intervals_seen(self) -> int:
        """Number of intervals processed."""
        return self._intervals

    def update(self, summary, candidate_keys: np.ndarray) -> Dict[int, float]:
        """Process one interval; returns its heavy hitters."""
        hitters = heavy_hitters(summary, candidate_keys, self.phi)
        self._streak = {
            key: self._streak.get(key, 0) + 1 for key in hitters
        }
        self._intervals += 1
        return hitters

    def persistent(self, min_streak: int) -> List[int]:
        """Keys heavy for at least ``min_streak`` consecutive intervals."""
        if min_streak < 1:
            raise ValueError(f"min_streak must be >= 1, got {min_streak}")
        return sorted(k for k, s in self._streak.items() if s >= min_streak)

    def new_this_interval(self) -> List[int]:
        """Keys that just became heavy (streak == 1) -- the overlap zone
        between heavy-hitter and change detection."""
        return sorted(k for k, s in self._streak.items() if s == 1)
