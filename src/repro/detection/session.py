"""Streaming ingestion session: live change detection over record chunks.

The batch pipelines in this package consume whole traces.  A deployed
monitor instead receives flow records continuously, in arbitrary chunks
whose boundaries have nothing to do with analysis intervals.
:class:`StreamingSession` bridges that gap:

* records are ingested in any chunk sizes (within a chunk they may be
  unsorted; chunks themselves must not go backwards in time past an
  already-closed interval -- the tolerance is configurable);
* whenever ingestion crosses an interval boundary, the finished
  interval's sketch is sealed, stepped through the forecast model, and a
  detection report is emitted;
* candidate keys come from the sealed interval itself (the data is in
  hand by the time the interval closes, so unlike the strict one-pass
  :class:`~repro.detection.online.OnlineDetector` there is no missed-key
  risk and no one-interval latency).

This is the "near real-time change detection" operating mode the paper's
Section 6 argues the technique is capable of.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Union

import numpy as np

from repro.detection.keysource import (
    CANDIDATES_COUNTER,
    KEY_SOURCES,
    resolve_key_source,
)
from repro.detection.threshold import IntervalDetection, build_interval_report
from repro.forecast.base import Forecaster
from repro.forecast.model_zoo import make_forecaster
from repro.hashing._kernels import (
    KERNEL_NAMES,
    kernel_call_counts,
    kernel_seconds,
    kernel_thread_count,
)
from repro.hashing.index_cache import BucketIndexCache, hashing_accelerated
from repro.obs.recorder import NULL_RECORDER

#: Adaptive index-cache probation: an *auto-enabled* cache that has seen
#: this many lookups with a hit rate below the floor is dropped -- on
#: low-recurrence key populations (every interval brings fresh keys) the
#: memo table only adds probe/insert overhead, so cache-off is the right
#: fallback.  Explicitly-passed caches are never dropped.
_CACHE_PROBATION_LOOKUPS = 8
_CACHE_MIN_HIT_RATE = 0.1

#: Counter series created at zero whenever a real recorder attaches, so
#: a metrics export always carries the full detection set -- "no cache
#: hits yet" (or "hashing is kernel-accelerated, no cache at all") stays
#: distinguishable from "not instrumented".
_SESSION_COUNTERS = (
    "repro_records_ingested_total",
    "repro_intervals_sealed_total",
    "repro_detect_candidates_total",
    "repro_detect_median_evaluated_total",
    "repro_alarms_total",
    "repro_index_cache_hits_total",
    "repro_index_cache_misses_total",
    "repro_index_cache_evictions_total",
)
from repro.streams.keys import KeyScheme, ValueScheme, make_key_scheme, make_value_scheme
from repro.streams.records import validate_records


def resolve_index_cache(schema, index_cache) -> Optional[BucketIndexCache]:
    """Normalize an ``index_cache`` knob into a cache instance (or None).

    ``True`` means *cache when profitable*: a private
    :class:`BucketIndexCache` is built over ``schema`` unless the schema
    has nothing to cache (exact/dense) or its hashing already runs in the
    compiled C kernels (:func:`~repro.hashing.index_cache.hashing_accelerated`)
    -- a fused kernel (tabulation *or* polynomial / two-universal) beats
    any memo-table gather, so with kernels compiled no schema attaches a
    cache; only the no-compiler NumPy fallbacks still profit.  Sessions
    additionally drop an auto-enabled cache at runtime when measured
    recurrence is too low to pay for the probes (see
    ``_CACHE_PROBATION_LOOKUPS``).
    ``False``/``None`` disables; an existing cache is validated against
    the schema and used as-is regardless of profitability (pass
    :func:`~repro.hashing.index_cache.shared_index_cache` output to share
    one cache across sessions on the same schema, or a private instance
    to force caching).
    """
    if index_cache is None or index_cache is False:
        return None
    if index_cache is True:
        if getattr(schema, "bucket_indices", None) is None:
            return None
        if hashing_accelerated(schema):
            return None
        return BucketIndexCache(schema)
    if not isinstance(index_cache, BucketIndexCache):
        raise TypeError(
            f"index_cache must be a bool or BucketIndexCache, "
            f"got {type(index_cache).__name__}"
        )
    if index_cache.schema != schema:
        raise ValueError("index_cache was built for a different schema")
    return index_cache


class StreamingSession:
    """Incremental sketch-based change detection over live record chunks.

    Parameters
    ----------
    schema:
        k-ary schema for the per-interval sketches.
    forecaster:
        Forecaster instance or registry name (+ ``model_params``).
    interval_seconds:
        Analysis interval length.
    key_scheme / value_scheme:
        How records become Turnstile items (defaults: the paper's
        ``dst_ip`` / ``bytes``).
    t_fraction:
        Alarm threshold parameter ``T``.
    top_n:
        Report the top-N changed keys per interval (0 disables).
    lateness_tolerance:
        Records older than the current open interval by more than this
        many seconds are rejected (default 0: anything belonging to an
        already-sealed interval is an error -- sealing is irrevocable).
    index_cache:
        Bucket-index cache knob (see :func:`resolve_index_cache`): ``True``
        (default) amortizes candidate-key hashing across intervals when
        the schema's hashing is not already kernel-accelerated, ``False``
        disables, or pass a
        :class:`~repro.hashing.index_cache.BucketIndexCache` to share or
        force one.  An execution choice, not result state: reports are
        identical either way, and checkpoints never carry the cache.
    prescreen:
        Exact median prescreen in the per-interval report (default on);
        see :func:`~repro.detection.threshold.build_interval_report`.
    key_source:
        Where each sealed interval's candidate keys come from (see
        :mod:`~repro.detection.keysource`).  ``"twopass"`` (default)
        collects the interval's own keys during ingestion -- reports
        unchanged.  ``"invertible"`` / ``"grouptesting"`` recover
        candidates from the sealed error summary, skipping per-chunk key
        collection entirely (the schema must produce the matching
        summary type).  Checkpointed with the session config.
    pipeline:
        Pipelined sealing (default off).  When on, each interval
        boundary snapshots the finished interval on the calling thread
        (cheap) and hands the seal -- forecast step, threshold, report
        build, recovery -- to a single background worker, so interval
        ``t``'s detection work overlaps interval ``t+1``'s UPDATEs.
        One worker executing FIFO means reports are still emitted in
        interval order and the forecast recursion still consumes sealed
        summaries in sequence -- reports are **bit-identical** to the
        blocking path.  An execution choice, not result state:
        checkpoints never record it (but see
        :func:`~repro.detection.checkpoint.restore_session`'s
        ``pipeline`` override), and :func:`checkpoint_session` drains
        in-flight seals first so captured state is always quiescent.
        Call :meth:`close` (or :meth:`drain`) at end of life to collect
        the last in-flight reports.
    pipeline_depth:
        Max sealed-but-unfinished intervals in flight (default 2).
        Ingestion blocks (in order) once the queue is full, bounding
        memory at ``pipeline_depth`` detached interval summaries.
    sink:
        Optional callable ``sink(observed, keys, index)`` invoked for
        every sealed interval *before* the forecast step consumes the
        observed summary -- the attachment point for the temporal
        archive (pass ``archive.ingest``).  The sink receives the live
        summary object and collected key array by reference and must
        not mutate them (copy what it keeps; the forecaster retains
        ``observed`` in its model state).  Runs on whatever thread
        executes the seal: inline for a blocking session, the single
        FIFO pipeline worker when ``pipeline=True`` -- either way,
        strictly in interval order, one seal at a time.  ``keys`` is
        the interval's deduplicated key set under ``key_source=
        "twopass"`` and empty for recovery key sources.  An execution
        attachment, not result state: reports are identical with or
        without one, and checkpoints never carry it.
    recorder:
        Optional :class:`~repro.obs.recorder.PipelineRecorder`.  When
        attached, the session reports stage timings (ingest, seal,
        forecast step, report build, hash/index-cache, F2/threshold),
        counters (records, sealed intervals, candidates,
        median-evaluated, alarms), index-cache gauges, and
        ``interval_sealed`` / ``alarm_raised`` trace events.  The
        default is the shared allocation-free
        :class:`~repro.obs.recorder.NullRecorder` -- an execution
        observer, never result state: reports are bit-identical with or
        without a recorder, and checkpoints never carry one.
    """

    def __init__(
        self,
        schema,
        forecaster: Union[Forecaster, str],
        interval_seconds: float = 300.0,
        key_scheme: Union[KeyScheme, str] = "dst_ip",
        value_scheme: Union[ValueScheme, str] = "bytes",
        t_fraction: float = 0.05,
        top_n: int = 0,
        lateness_tolerance: float = 0.0,
        index_cache: Union[bool, BucketIndexCache] = True,
        prescreen: bool = True,
        key_source: str = "twopass",
        pipeline: bool = False,
        pipeline_depth: int = 2,
        sink=None,
        recorder=None,
        **model_params,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(f"interval_seconds must be > 0, got {interval_seconds}")
        if t_fraction < 0:
            raise ValueError(f"t_fraction must be >= 0, got {t_fraction}")
        if top_n < 0:
            raise ValueError(f"top_n must be >= 0, got {top_n}")
        if lateness_tolerance < 0:
            raise ValueError(
                f"lateness_tolerance must be >= 0, got {lateness_tolerance}"
            )
        if pipeline_depth < 1:
            raise ValueError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
        self.schema = schema
        if isinstance(forecaster, str):
            forecaster = make_forecaster(forecaster, **model_params)
        elif model_params:
            raise ValueError("model_params only apply when forecaster is given by name")
        self.forecaster = forecaster
        self.interval_seconds = float(interval_seconds)
        self.key_scheme = (
            make_key_scheme(key_scheme) if isinstance(key_scheme, str) else key_scheme
        )
        self.value_scheme = (
            make_value_scheme(value_scheme)
            if isinstance(value_scheme, str)
            else value_scheme
        )
        self.t_fraction = float(t_fraction)
        self.top_n = int(top_n)
        self.lateness_tolerance = float(lateness_tolerance)
        self.prescreen = bool(prescreen)
        if key_source == "online":
            raise ValueError(
                "key_source='online' needs the next interval's keys; "
                "use repro.detection.online.OnlineDetector"
            )
        self.key_source = key_source
        if sink is not None and not callable(sink):
            raise TypeError(
                f"sink must be callable, got {type(sink).__name__}"
            )
        self.sink = sink
        self.pipeline = bool(pipeline)
        self.pipeline_depth = int(pipeline_depth)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pending: deque = deque()
        self._stashed_reports: List[IntervalDetection] = []
        self._pipe_seal_seconds = 0.0
        self._pipe_wait_seconds = 0.0
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self._preregister_obs()
        self._index_cache = resolve_index_cache(schema, index_cache)
        # Only auto-enabled caches are subject to the runtime recurrence
        # probation; a cache the caller passed in explicitly is theirs.
        self._index_cache_auto = index_cache is True
        self._dropped_index_cache: Optional[BucketIndexCache] = None
        self._detection_stats = {"candidates": 0, "median_evaluated": 0}
        # Reusable Sf/Se scratch summaries for step_into (lazily built;
        # None when the summary type has no combine_into).
        self._seal_scratch = None

        self._current_index: Optional[int] = None
        self._current_sketch = None
        self._current_keys: List[np.ndarray] = []
        self._records_ingested = 0
        self._intervals_sealed = 0
        self._watermark = float("-inf")

    def _preregister_obs(self) -> None:
        """Create every session-owned series at zero on the recorder."""
        obs = self.recorder
        obs.preregister(*_SESSION_COUNTERS)
        obs.preregister_labelled(
            "repro_kernel_calls_total", "kernel", KERNEL_NAMES
        )
        obs.preregister_labelled(
            "repro_kernel_seconds", "kernel", KERNEL_NAMES
        )
        obs.preregister_labelled(CANDIDATES_COUNTER, "source", KEY_SOURCES)
        obs.preregister_stage("recover", "collect", "pipeline_wait")
        if self.sink is not None:
            obs.preregister_stage("archive_sink")
        if obs.enabled:
            obs.gauge("repro_kernel_threads", kernel_thread_count())
            obs.gauge("repro_pipeline_queue_depth", 0)

    def attach_recorder(self, recorder) -> None:
        """Attach (or replace) the observability recorder on a live session.

        Recorders are execution state, not result state -- checkpoints
        never carry them -- so a restored session starts with the no-op
        default.  This re-attaches one; pass ``None`` to detach.
        """
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self._preregister_obs()

    # -- introspection -------------------------------------------------------

    @property
    def current_interval(self) -> Optional[int]:
        """Index of the interval currently accumulating (None before data)."""
        return self._current_index

    @property
    def records_ingested(self) -> int:
        """Total records accepted so far."""
        return self._records_ingested

    @property
    def intervals_sealed(self) -> int:
        """Intervals completed and stepped through the model."""
        return self._intervals_sealed

    @property
    def index_cache(self) -> Optional[BucketIndexCache]:
        """The session's bucket-index cache (None when disabled)."""
        return self._index_cache

    @property
    def stats(self) -> dict:
        """Amortization counters for the detection hot path.

        ``detection`` carries ``candidates`` (keys handed to the report
        builder) and ``median_evaluated`` (keys that actually paid the
        H-way median; the gap is what the prescreen excluded exactly).
        ``index_cache`` carries the cache's hit/miss/eviction counters
        when a cache is attached.
        """
        stats = {"detection": dict(self._detection_stats)}
        if self._index_cache is not None:
            stats["index_cache"] = self._index_cache.stats
        elif self._dropped_index_cache is not None:
            # Final counters of a cache retired by the recurrence
            # probation, flagged so dashboards can tell "dropped" from
            # "never attached".
            stats["index_cache"] = {
                **self._dropped_index_cache.stats,
                "dropped": True,
            }
        return stats

    @property
    def watermark(self) -> float:
        """Latest record timestamp accepted (``-inf`` before any data).

        The recovery cursor: after restoring a checkpoint, re-feed only
        records with ``timestamp > watermark`` to continue exactly where
        the checkpointed session left off.
        """
        return self._watermark

    # -- ingestion -----------------------------------------------------------

    def ingest(self, records: np.ndarray) -> List[IntervalDetection]:
        """Feed a chunk of records; returns reports for intervals sealed.

        A chunk may span several intervals; every interval strictly before
        the chunk's latest timestamp gets sealed in order (including empty
        gap intervals, so the forecast series stays evenly spaced).
        """
        validate_records(records)
        if not len(records):
            return []
        with self.recorder.time("ingest"):
            reports = self._ingest_sorted(records)
        # Reports stashed by a checkpoint barrier surface on the next
        # public call, still ahead of anything sealed after them.
        if self._stashed_reports:
            reports = self._take_stash() + reports
        obs = self.recorder
        if obs.enabled:
            obs.count("repro_records_ingested_total", len(records))
            obs.gauge("repro_watermark_seconds", self._watermark)
        return reports

    def _ingest_sorted(self, records: np.ndarray) -> List[IntervalDetection]:
        timestamps = records["timestamp"]
        # Chunks from real collectors are usually already time-sorted; a
        # single monotonicity scan is far cheaper than the stable argsort.
        if len(records) > 1 and not np.all(np.diff(timestamps) >= 0):
            order = np.argsort(timestamps, kind="stable")
            records = records[order]
        floor = (
            None
            if self._current_index is None
            else self._current_index * self.interval_seconds
            - self.lateness_tolerance
        )
        if floor is not None and records["timestamp"][0] < floor:
            raise ValueError(
                f"record at t={records['timestamp'][0]:.3f}s predates the "
                f"open interval (starting {floor + self.lateness_tolerance:.3f}s) "
                "by more than the lateness tolerance"
            )

        reports: List[IntervalDetection] = []
        indices = (records["timestamp"] // self.interval_seconds).astype(np.int64)
        # Late-but-tolerated records are clamped into the open interval.
        if self._current_index is not None:
            indices = np.maximum(indices, self._current_index)
        # Records are time-sorted, so indices are nondecreasing: each
        # interval is one contiguous slice, delimited by the first
        # occurrence of each index, instead of a boolean rescan of the
        # whole chunk per interval.
        uniq, starts = np.unique(indices, return_index=True)
        bounds = np.append(starts, len(records))
        for ui, interval_index in enumerate(uniq):
            chunk = records[bounds[ui] : bounds[ui + 1]]
            reports.extend(self._advance_to(int(interval_index)))
            self._accumulate(chunk)
        self._records_ingested += len(records)
        self._watermark = max(self._watermark, float(records["timestamp"][-1]))
        return reports

    def ingest_columns(self, block) -> List[IntervalDetection]:
        """Feed one columnar block; returns reports for intervals sealed.

        The zero-copy twin of :meth:`ingest`: ``block`` is a
        :class:`~repro.streams.model.ColumnarBlock` (or anything exposing
        ``index``, ``keys``, ``values``) whose key/value arrays were
        extracted upstream -- typically views produced by
        :func:`~repro.streams.sharding.iter_interval_columns` -- and they
        flow into the fused UPDATE kernels without copying or re-sorting.
        Blocks must arrive in nondecreasing interval order (each block
        already belongs to exactly one interval, so there is no lateness
        window to tolerate); results are bit-identical to record-chunk
        ingestion of the same data.
        """
        index = int(block.index)
        if self._current_index is not None and index < self._current_index:
            raise ValueError(
                f"columnar block for interval {index} predates the open "
                f"interval {self._current_index}; blocks must arrive in "
                "nondecreasing interval order"
            )
        keys = np.asarray(block.keys, dtype=np.uint64)
        values = np.asarray(block.values, dtype=np.float64)
        if keys.shape != values.shape or keys.ndim != 1:
            raise ValueError(
                f"keys/values must be matching 1-D arrays, got "
                f"{keys.shape} and {values.shape}"
            )
        with self.recorder.time("ingest"):
            reports = self._advance_to(index)
            if len(keys):
                self._accumulate_columns(keys, values)
        if self._stashed_reports:
            reports = self._take_stash() + reports
        self._records_ingested += len(keys)
        # Columnar blocks carry no per-record timestamps; the recovery
        # cursor advances to the open interval's start, so a columnar
        # replay resumes at block granularity (feed blocks with
        # ``block.index >= current_interval`` after a restore).
        self._watermark = max(self._watermark, index * self.interval_seconds)
        obs = self.recorder
        if obs.enabled:
            obs.count("repro_records_ingested_total", len(keys))
            obs.gauge("repro_watermark_seconds", self._watermark)
        return reports

    def _advance_to(self, interval_index: int) -> List[IntervalDetection]:
        """Seal every interval before ``interval_index``."""
        reports: List[IntervalDetection] = []
        if self._current_index is None:
            self._current_index = interval_index
            self._open_interval()
            return reports
        while self._current_index < interval_index:
            if self.pipeline:
                reports.extend(self._seal_current_async())
            else:
                reports.extend(self._seal_current())
            self._current_index += 1
            self._open_interval()
        return reports

    # -- accumulation hooks (overridden by ShardedStreamingSession) ----------

    def _open_interval(self) -> None:
        """Start accumulating a fresh interval."""
        self._current_sketch = self.schema.empty()

    def _accumulate(self, chunk: np.ndarray) -> None:
        """Fold one single-interval record chunk into the open interval."""
        keys = self.key_scheme.extract(chunk)
        values = self.value_scheme.extract(chunk)
        self._current_sketch.update_batch(keys, values)
        # Recovery key sources reconstruct candidates from the sealed
        # summary; skipping the per-chunk np.unique is part of the win.
        if len(keys) and self.key_source == "twopass":
            self._current_keys.append(np.unique(keys))

    def _accumulate_columns(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Fold one single-interval columnar batch into the open interval.

        ``keys``/``values`` are already extracted and dtype-correct; they
        pass straight into the sketch's fused UPDATE (no copies).
        """
        self._current_sketch.update_batch(keys, values)
        if self.key_source == "twopass":
            self._current_keys.append(np.unique(keys))

    def _collect_current(self):
        """Finish accumulation: return ``(observed_summary, unique_keys)``."""
        observed = self._current_sketch
        keys = (
            np.unique(np.concatenate(self._current_keys))
            if self._current_keys
            else np.array([], dtype=np.uint64)
        )
        self._current_keys = []
        return observed, keys

    # -- checkpoint hooks (overridden by ShardedStreamingSession) ------------

    def _accumulation_state(self) -> dict:
        """Open-interval accumulation state, in checkpoint-codec values.

        Deduplicating the accumulated key chunks here is safe:
        ``np.unique`` over the concatenation is idempotent and
        order-insensitive, so sealing after a restore yields the same key
        set (and the same sketch table -- its float64 counters round-trip
        exactly) as the uninterrupted run.
        """
        keys = (
            np.unique(np.concatenate(self._current_keys))
            if self._current_keys
            else np.array([], dtype=np.uint64)
        )
        return {"sketch": self._current_sketch, "keys": keys}

    def _restore_accumulation(self, state: dict) -> None:
        """Install accumulation state captured by :meth:`_accumulation_state`."""
        self._current_sketch = state["sketch"]
        keys = state["keys"]
        self._current_keys = [keys] if len(keys) else []

    # -- sealing -------------------------------------------------------------

    def _scratch_summaries(self):
        """Lazily built ``(error_out, forecast_out)`` scratch pair.

        Two distinct reusable summaries that receive ``Se(t)`` / ``Sf(t)``
        in place each seal (``(None, None)`` for summary types without
        ``combine_into``).  Safe to reuse across intervals: the report
        builder consumes the error within the seal, and nothing retains
        the scratch objects -- the forecaster only retains ``observed``,
        which is always freshly allocated.
        """
        if self._seal_scratch is None:
            error_out = self.schema.empty()
            if hasattr(error_out, "combine_into"):
                self._seal_scratch = (error_out, self.schema.empty())
            else:
                self._seal_scratch = (None, None)
        return self._seal_scratch

    def _seal_current(self) -> List[IntervalDetection]:
        """Blocking seal of the open interval (collect + seal inline)."""
        with self.recorder.time("collect"):
            observed, keys = self._collect_current()
        return self._seal_interval(observed, keys, self._current_index)

    def _seal_interval(
        self, observed, keys: np.ndarray, index: int
    ) -> List[IntervalDetection]:
        """Forecast-step, threshold and report one detached interval.

        Takes everything it needs by value (``observed`` summary,
        collected ``keys``, interval ``index``) so it can run on the
        pipeline's background worker as well as inline.  Single-writer
        state -- the forecaster, the scratch summaries, the detection
        stats, the index cache -- is only ever touched here, and the
        pipeline runs at most one seal at a time, so no locking is
        needed in either mode.
        """
        obs = self.recorder
        with obs.time("seal"):
            if self.sink is not None:
                # Archive hook: before the forecast step so the sink sees
                # the observed summary exactly as sealed (the forecaster
                # retains but never mutates it; the sink must copy).
                with obs.time("archive_sink"):
                    self.sink(observed, keys, index)
            error_out, forecast_out = self._scratch_summaries()
            with obs.time("forecast_step"):
                step = self.forecaster.step_into(
                    observed, error_out=error_out, forecast_out=forecast_out
                )
            self._intervals_sealed += 1
            obs.count("repro_intervals_sealed_total")
            if step.error is None:
                if obs.enabled:
                    obs.event(
                        "interval_sealed", interval=index,
                        warmup=True, candidates=int(len(keys)),
                    )
                return []
            keys = resolve_key_source(
                self.key_source,
                step.error,
                t_fraction=self.t_fraction,
                collected=keys,
                recorder=obs if obs.enabled else None,
            )
            evaluated_before = self._detection_stats["median_evaluated"]
            with obs.time("report_build"):
                report = build_interval_report(
                    step.error,
                    keys,
                    interval=index,
                    t_fraction=self.t_fraction,
                    top_n=self.top_n,
                    schema=self.schema,
                    index_cache=self._index_cache,
                    prescreen=self.prescreen,
                    stats=self._detection_stats,
                    recorder=obs if obs.enabled else None,
                )
        self._maybe_drop_index_cache()
        if obs.enabled:
            self._record_seal(report, len(keys), evaluated_before)
        return [report]

    # -- pipelined sealing ---------------------------------------------------

    def _detach_current(self) -> Callable[[], List[IntervalDetection]]:
        """Snapshot the open interval into a seal thunk (caller's thread).

        Everything the background seal needs is captured by value; once
        this returns, the accumulation buffers are free for the next
        interval.  Subclasses override to keep the expensive half of
        collection (e.g. the sharded COMBINE) on the worker.
        """
        with self.recorder.time("collect"):
            observed, keys = self._collect_current()
        index = self._current_index

        def work() -> List[IntervalDetection]:
            return self._seal_interval(observed, keys, index)

        return work

    def _ensure_executor(self) -> ThreadPoolExecutor:
        # Exactly one worker: seals execute FIFO, so the forecast
        # recursion sees sealed summaries in interval order and report
        # emission order matches the blocking path.
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-seal"
            )
        return self._executor

    def _timed_seal(self, work) -> List[IntervalDetection]:
        t0 = time.perf_counter()
        try:
            return work()
        finally:
            self._pipe_seal_seconds += time.perf_counter() - t0

    def _await_head(self) -> List[IntervalDetection]:
        """Block on the oldest in-flight seal; returns its reports."""
        t0 = time.perf_counter()
        with self.recorder.time("pipeline_wait"):
            result = self._pending.popleft().result()
        self._pipe_wait_seconds += time.perf_counter() - t0
        return result

    def _seal_current_async(self) -> List[IntervalDetection]:
        """Detach the open interval and queue its seal on the worker.

        Returns reports from previously queued seals that have finished
        (in interval order) -- plus, when the in-flight queue is full,
        whatever it had to wait for (backpressure).
        """
        reports: List[IntervalDetection] = []
        if self._stashed_reports:
            reports.extend(self._take_stash())
        work = self._detach_current()
        while len(self._pending) >= self.pipeline_depth:
            reports.extend(self._await_head())
        self._pending.append(self._ensure_executor().submit(self._timed_seal, work))
        while self._pending and self._pending[0].done():
            reports.extend(self._pending.popleft().result())
        obs = self.recorder
        if obs.enabled:
            obs.gauge("repro_pipeline_queue_depth", len(self._pending))
        return reports

    def _take_stash(self) -> List[IntervalDetection]:
        out, self._stashed_reports = self._stashed_reports, []
        return out

    def _barrier(self) -> None:
        """Wait for every in-flight seal; stash (never drop) the reports.

        The checkpoint layer calls this before capturing state so the
        forecaster and detection stats are quiescent; the stashed
        reports surface on the next public call, still in order.
        """
        while self._pending:
            self._stashed_reports.extend(self._await_head())
        obs = self.recorder
        if obs.enabled:
            obs.gauge("repro_pipeline_queue_depth", 0)
            if self._pipe_seal_seconds > 0.0:
                overlap = 1.0 - self._pipe_wait_seconds / self._pipe_seal_seconds
                obs.gauge(
                    "repro_pipeline_overlap_ratio",
                    min(1.0, max(0.0, overlap)),
                )

    def drain(self) -> List[IntervalDetection]:
        """Complete all in-flight seals and return their reports.

        A no-op returning ``[]`` on a blocking session (nothing is ever
        in flight).  The open interval stays open -- this is a barrier,
        not a flush.
        """
        self._barrier()
        return self._take_stash()

    def close(self) -> List[IntervalDetection]:
        """Drain the pipeline and release the background worker.

        Returns any reports completed by the drain.  The session remains
        usable; a later interval boundary simply restarts the worker.
        """
        reports = self.drain()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        return reports

    def __enter__(self) -> "StreamingSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _maybe_drop_index_cache(self) -> None:
        """Retire an auto-enabled cache once measured recurrence is too low.

        The build-time auto rule (:func:`resolve_index_cache`) decides
        from the schema alone; this is the runtime half of the satellite:
        after ``_CACHE_PROBATION_LOOKUPS`` lookups, a hit rate below
        ``_CACHE_MIN_HIT_RATE`` means the key population barely recurs
        and every lookup is probe overhead plus a full hash anyway -- so
        the session falls back to **cache-off**, keeping the retired
        cache only for its final stats.
        """
        cache = self._index_cache
        if cache is None or not self._index_cache_auto:
            return
        if cache.lookups < _CACHE_PROBATION_LOOKUPS:
            return
        served = cache.hits + cache.misses
        if served and cache.hits / served < _CACHE_MIN_HIT_RATE:
            self._dropped_index_cache = cache
            self._index_cache = None
            obs = self.recorder
            if obs.enabled:
                obs.event(
                    "index_cache_dropped",
                    lookups=cache.lookups,
                    hit_rate=cache.hits / served,
                )

    def _record_seal(
        self, report: IntervalDetection, n_candidates: int,
        evaluated_before: int,
    ) -> None:
        """Feed one sealed interval's outcome to the attached recorder."""
        obs = self.recorder
        obs.count("repro_detect_candidates_total", n_candidates)
        obs.count(
            "repro_detect_median_evaluated_total",
            self._detection_stats["median_evaluated"] - evaluated_before,
        )
        if report.alarm_count:
            obs.count("repro_alarms_total", report.alarm_count)
        obs.gauge("repro_interval_index", report.index)
        cache = self._index_cache
        if cache is not None:
            cache_stats = cache.stats
            obs.sync_counter("repro_index_cache_hits_total", cache_stats["hits"])
            obs.sync_counter(
                "repro_index_cache_misses_total", cache_stats["misses"]
            )
            obs.sync_counter(
                "repro_index_cache_evictions_total", cache_stats["evictions"]
            )
            obs.gauge("repro_index_cache_size", cache_stats["size"])
        for kernel, calls in kernel_call_counts().items():
            if calls:
                obs.sync_counter(
                    "repro_kernel_calls_total", calls, kernel=kernel
                )
        for kernel, secs in kernel_seconds().items():
            if secs:
                obs.sync_counter(
                    "repro_kernel_seconds", secs, kernel=kernel
                )
        obs.gauge("repro_kernel_threads", kernel_thread_count())
        obs.event(
            "interval_sealed", interval=report.index,
            alarms=report.alarm_count, candidates=n_candidates,
            error_l2=report.error_l2, threshold=report.threshold,
        )
        if report.alarm_count:
            obs.event(
                "alarm_raised", interval=report.index,
                count=report.alarm_count,
                top_keys=[a.key for a in report.alarms[:5]],
            )

    def flush(self) -> List[IntervalDetection]:
        """Seal the currently open interval (end of stream / shutdown).

        The session remains usable afterwards; the next ingested record
        opens a fresh interval (which must not predate the flushed one).
        """
        if self._current_index is None:
            return self.drain() if self.pipeline else []
        if self.pipeline:
            reports = self._seal_current_async()
            self._current_index += 1
            self._open_interval()
            reports.extend(self.drain())
            return reports
        reports = self._seal_current()
        self._current_index += 1
        self._open_interval()
        return reports
