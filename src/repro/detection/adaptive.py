"""Online model recalibration (paper Section 6, "Online change detection").

The paper's evaluation fixes forecast parameters offline; its ongoing-work
list proposes "periodically recomputing the forecast model parameters
using history data to keep up with changes in overall traffic behavior".

:class:`AdaptiveDetector` implements that: it keeps a sliding window of
recent *observed sketches* (cheap -- H=1 search sketches, not the full
detection sketches), and every ``recalibrate_every`` intervals re-runs the
multi-pass grid search over that window to refresh the forecast model's
parameters.  Detection itself runs exactly like the offline two-pass
detector; only the parameter source changes.

The search window uses small dedicated sketches so recalibration cost does
not scale with the detection sketch size.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.detection.threshold import Alarm
from repro.detection.twopass import IntervalDetection
from repro.forecast.model_zoo import make_forecaster
from repro.gridsearch.grid import grid_search, search_integer_window
from repro.gridsearch.objective import estimated_total_energy
from repro.gridsearch.search_spaces import build_search_spaces
from repro.sketch import KArySchema
from repro.streams.model import KeyedUpdates


class AdaptiveDetector:
    """Sketch change detector with periodic online parameter refresh.

    Parameters
    ----------
    schema:
        Detection sketch schema (the big, accurate one).
    model:
        Forecast model name from the registry.
    t_fraction:
        Alarm threshold parameter ``T``.
    window:
        How many recent intervals of (small) observed sketches to keep for
        recalibration.
    recalibrate_every:
        Re-run grid search after this many intervals (and once initially,
        as soon as the window holds ``min_history`` intervals).
    min_history:
        Smallest window content that justifies a search.
    search_width:
        ``K`` of the small search sketches (paper: grid search ran at
        H=1, K=8192).
    """

    def __init__(
        self,
        schema: KArySchema,
        model: str = "ewma",
        t_fraction: float = 0.05,
        window: int = 24,
        recalibrate_every: int = 6,
        min_history: int = 6,
        search_width: int = 8192,
        search_passes: int = 2,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if recalibrate_every < 1:
            raise ValueError(
                f"recalibrate_every must be >= 1, got {recalibrate_every}"
            )
        if not 2 <= min_history <= window:
            raise ValueError(
                f"min_history must be in [2, window], got {min_history}"
            )
        self.schema = schema
        self.model = model
        self.t_fraction = float(t_fraction)
        self.window = int(window)
        self.recalibrate_every = int(recalibrate_every)
        self.min_history = int(min_history)
        self.search_passes = int(search_passes)
        self._search_schema = KArySchema(depth=1, width=search_width, seed=1)
        self._space = build_search_spaces()[model]
        self._history: Deque = deque(maxlen=window)
        self._detection_history: Deque = deque(maxlen=window)
        self._params: Optional[Dict[str, object]] = None
        self._param_log: List[tuple] = []
        # Relative cadence: intervals processed since the last refresh.
        # Keying the schedule off the *absolute* batch index recalibrated
        # on multiples of recalibrate_every regardless of when the
        # initial fit happened -- a stream starting at index 5 with
        # recalibrate_every=6 would fit at 5 and immediately refit at 6.
        self._intervals_since_refresh = 0

    @property
    def parameter_log(self) -> List[tuple]:
        """``(interval, params)`` for every recalibration performed."""
        return list(self._param_log)

    @property
    def current_parameters(self) -> Optional[Dict[str, object]]:
        """The parameters currently driving detection (None before first fit)."""
        return dict(self._params) if self._params is not None else None

    def _recalibrate(self, interval: int) -> None:
        history = list(self._history)

        def objective(forecaster):
            return estimated_total_energy(history, forecaster)

        if self._space.continuous:
            result = grid_search(self._space, objective, passes=self.search_passes)
        else:
            result = search_integer_window(self._space, objective)
        self._params = self._space.to_model_kwargs(result.best_params)
        self._param_log.append((interval, dict(self._params)))
        self._intervals_since_refresh = 0

    def run(self, batches: Iterable[KeyedUpdates]) -> Iterator[IntervalDetection]:
        """Detect over a stream, refreshing model parameters periodically.

        The forecaster is rebuilt and *replayed over the history window*
        after each recalibration, so its state reflects the new parameters
        without a cold restart.
        """
        forecaster = None
        for batch in batches:
            search_observed = self._search_schema.from_items(batch.keys, batch.values)
            observed = self.schema.from_items(batch.keys, batch.values)

            due = (
                len(self._history) >= self.min_history
                and (
                    self._params is None
                    or self._intervals_since_refresh >= self.recalibrate_every
                )
            )
            if due:
                self._recalibrate(batch.index)
                forecaster = None  # rebuild with the fresh parameters

            report = None
            if self._params is not None:
                if forecaster is None:
                    forecaster = make_forecaster(self.model, **self._params)
                    # Warm the new model on the retained detection history.
                    for past in self._detection_history:
                        forecaster.observe(past)
                step = forecaster.step(observed)
                if step.error is not None:
                    report = self._report(batch, step.error)

            self._history.append(search_observed)
            self._detection_history.append(observed)
            self._intervals_since_refresh += 1
            if report is not None:
                yield report

    def _report(self, batch: KeyedUpdates, error) -> IntervalDetection:
        keys = np.unique(batch.keys)
        l2 = error.l2_norm()
        threshold = self.t_fraction * l2
        alarms: List[Alarm] = []
        if len(keys):
            indices = self.schema.bucket_indices(keys)
            estimates = error.estimate_batch(keys, indices=indices)
            hits = np.abs(estimates) >= threshold
            alarms = [
                Alarm(
                    interval=batch.index,
                    key=int(k),
                    estimated_error=float(e),
                    threshold=threshold,
                )
                for k, e in zip(keys[hits].tolist(), estimates[hits].tolist())
            ]
        return IntervalDetection(
            index=batch.index,
            threshold=threshold,
            alarms=alarms,
            top_keys=np.array([], dtype=np.uint64),
            top_errors=np.array([], dtype=np.float64),
            error_l2=l2,
        )
