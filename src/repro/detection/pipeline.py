"""The summarize -> forecast -> error engine.

One pipeline serves both worlds: pass a
:class:`~repro.sketch.kary.KArySchema` and you get the paper's
sketch-based change detection; pass a
:class:`~repro.sketch.dense.DenseSchema` (or
:class:`~repro.sketch.exact.ExactSchema`) and you get exact per-flow
analysis.  Because forecasters are state-agnostic, the *same* forecaster
code runs in both -- which is the paper's linearity argument made
executable.

The helpers are deliberately decomposed so experiment sweeps can reuse
work: ``summarize_stream`` is the expensive part (hashing every record)
and is computed once per schema, while ``forecast_error_stream`` (cheap
table arithmetic) runs once per model parameter point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Optional

import numpy as np

from repro.forecast.base import Forecaster
from repro.streams.model import KeyedUpdates


@dataclass
class PipelineStep:
    """Everything the detection layer needs about one interval."""

    index: int
    keys: np.ndarray          # distinct keys observed during the interval
    observed: Any             # So(t) summary
    forecast: Optional[Any]   # Sf(t) or None during warm-up
    error: Optional[Any]      # Se(t) or None during warm-up

    @property
    def in_warmup(self) -> bool:
        """True while the forecast model has not yet produced output."""
        return self.error is None


def summarize_stream(batches: Iterable[KeyedUpdates], schema) -> List[Any]:
    """Build the observed summary ``So(t)`` for every interval.

    ``schema`` is any object with ``from_items(keys, values)`` --
    KArySchema, DenseSchema, ExactSchema, CountMinSchema, ...
    """
    return [schema.from_items(batch.keys, batch.values) for batch in batches]


def interval_key_sets(batches: Iterable[KeyedUpdates]) -> List[np.ndarray]:
    """Distinct keys per interval -- the replay input for pass two."""
    return [np.unique(batch.keys) for batch in batches]


def forecast_error_stream(
    observed: Iterable[Any], forecaster: Forecaster
) -> Iterator[PipelineStep]:
    """Run a forecaster over precomputed summaries, yielding error states.

    ``keys`` is left empty in the yielded steps; callers that need replay
    keys should zip with :func:`interval_key_sets` (kept separate so the
    same key sets serve many model configurations).
    """
    forecaster.reset()
    empty = np.array([], dtype=np.uint64)
    for step in forecaster.run(observed):
        yield PipelineStep(
            index=step.index,
            keys=empty,
            observed=step.observed,
            forecast=step.forecast,
            error=step.error,
        )


def run_pipeline(
    batches: Iterable[KeyedUpdates], schema, forecaster: Forecaster
) -> Iterator[PipelineStep]:
    """Streaming end-to-end pipeline: summarize and forecast in one pass.

    Unlike the decomposed helpers, this holds only O(model state) summaries
    in memory, making it the right entry point for long traces and the
    online detector.
    """
    forecaster.reset()
    for batch in batches:
        observed = schema.from_items(batch.keys, batch.values)
        step = forecaster.step(observed)
        yield PipelineStep(
            index=batch.index,
            keys=np.unique(batch.keys),
            observed=observed,
            forecast=step.forecast,
            error=step.error,
        )
