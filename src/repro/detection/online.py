"""Online single-pass detection using future keys (paper Section 3.3).

The offline detector replays interval ``t``'s keys against ``Se(t)`` -- a
second pass.  Online, the stream cannot be replayed, so this detector uses
the *next* interval's arriving keys as candidates against ``Se(t)``: "use
the keys that appear after Se(t) has been constructed.  This works in both
online and offline context.  The risk is that we will miss those keys that
do not appear again after they experience significant change" -- an
acceptable miss for applications like DoS detection where a key that never
returns can do no further damage.

A sampling rate below 1.0 additionally subsamples the candidate keys
("If we can tolerate the risk of missing some very infrequent keys, we can
sample the (future) input streams").
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Union

import numpy as np

from repro.detection.keysource import (
    CANDIDATES_COUNTER,
    KEY_SOURCES,
    resolve_key_source,
)
from repro.detection.threshold import IntervalDetection, build_interval_report
from repro.forecast.base import Forecaster
from repro.forecast.model_zoo import make_forecaster
from repro.obs.recorder import NULL_RECORDER
from repro.streams.model import KeyedUpdates


class OnlineDetector:
    """Single-pass detector: candidates come from the following interval.

    The report for interval ``t`` is therefore emitted one interval late
    (when ``t+1``'s keys have arrived), which is the inherent latency of
    the future-keys strategy.

    Parameters
    ----------
    schema:
        Summary schema (normally a :class:`~repro.sketch.kary.KArySchema`).
    forecaster:
        Forecaster instance or registry name.
    t_fraction:
        Alarm threshold parameter ``T``.
    sample_rate:
        Fraction of future keys used as candidates, in (0, 1].
    seed:
        Seed for the sampling RNG.  The RNG is re-derived from this seed
        at the top of every :meth:`run` (mirroring ``forecaster.reset()``),
        so back-to-back runs over the same input subsample the same
        candidate keys and produce identical reports.  ``None`` opts out
        of reproducibility: each run draws fresh OS entropy.
    recorder:
        Optional :class:`~repro.obs.recorder.PipelineRecorder` for stage
        timings (forecast step, report build), candidate/alarm counters
        and ``interval_sealed`` trace events; default is the no-op
        :class:`~repro.obs.recorder.NullRecorder`.
    """

    def __init__(
        self,
        schema,
        forecaster: Union[Forecaster, str],
        t_fraction: float = 0.05,
        sample_rate: float = 1.0,
        seed: Optional[int] = 0,
        recorder=None,
        **model_params,
    ) -> None:
        self.schema = schema
        if isinstance(forecaster, str):
            forecaster = make_forecaster(forecaster, **model_params)
        elif model_params:
            raise ValueError(
                "model_params only apply when forecaster is given by name"
            )
        self.forecaster = forecaster
        if t_fraction < 0:
            raise ValueError(f"t_fraction must be >= 0, got {t_fraction}")
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
        self.t_fraction = float(t_fraction)
        self.sample_rate = float(sample_rate)
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self.recorder.preregister(
            "repro_intervals_sealed_total", "repro_detect_candidates_total",
            "repro_alarms_total",
        )
        self.recorder.preregister_labelled(
            CANDIDATES_COUNTER, "source", KEY_SOURCES
        )
        self.recorder.preregister_stage("recover")
        # Stash the seed so every run() re-derives a fresh RNG from it.
        # Holding only the advanced generator (the old behavior) made a
        # second run() subsample *different* candidates from identical
        # input -- silently non-reproducible reports.
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def _sample(self, keys: np.ndarray) -> np.ndarray:
        if self.sample_rate >= 1.0 or not len(keys):
            return keys
        mask = self._rng.random(len(keys)) < self.sample_rate
        return keys[mask]

    def run(self, batches: Iterable[KeyedUpdates]) -> Iterator[IntervalDetection]:
        """Stream detection reports, each one interval behind arrival.

        Both the forecaster and the candidate-sampling RNG are reset at
        the top, so ``run`` is a pure function of its input: calling it
        twice on the same batches yields identical reports (given a
        non-``None`` seed).
        """
        self.forecaster.reset()
        self._rng = np.random.default_rng(self.seed)
        obs = self.recorder
        pending_error = None
        pending_index = -1
        for batch in batches:
            # New keys arriving now are the candidates for the PREVIOUS
            # interval's error sketch.
            if pending_error is not None:
                candidates = resolve_key_source(
                    "online",
                    pending_error,
                    collected=np.unique(self._sample(batch.keys)),
                    recorder=obs if obs.enabled else None,
                )
                yield self._report(pending_index, pending_error, candidates)
            observed = self.schema.from_items(batch.keys, batch.values)
            with obs.time("forecast_step"):
                step = self.forecaster.step(observed)
            pending_error = step.error
            pending_index = batch.index
        # The final interval's error sketch never sees future keys; report
        # it with no candidates so callers know it went unchecked.
        if pending_error is not None:
            yield self._report(
                pending_index, pending_error, np.array([], dtype=np.uint64)
            )

    def _report(
        self, index: int, error, candidates: np.ndarray
    ) -> IntervalDetection:
        obs = self.recorder
        with obs.time("report_build"):
            report = build_interval_report(
                error,
                candidates,
                interval=index,
                t_fraction=self.t_fraction,
                schema=self.schema,
                recorder=obs if obs.enabled else None,
            )
        if obs.enabled:
            obs.count("repro_intervals_sealed_total")
            obs.count("repro_detect_candidates_total", len(candidates))
            if report.alarm_count:
                obs.count("repro_alarms_total", report.alarm_count)
            obs.event(
                "interval_sealed", interval=index,
                alarms=report.alarm_count, candidates=int(len(candidates)),
                error_l2=report.error_l2, threshold=report.threshold,
            )
        return report
