"""Combinatorial group-testing sketch: key recovery without a key stream.

Paper Section 3.3's fourth alternative for obtaining change keys:
"incorporate combinatorial group testing into sketches [Cormode &
Muthukrishnan, PODC 2003].  This allows one to directly infer keys from
the (modified) sketch data structure without requiring a separate stream
of keys.  However, this scheme also increases the update and estimation
costs".

Each ``(row, bucket)`` cell holds ``1 + key_bits`` counters: the bucket
total plus one counter per key bit position, incremented only when the
key has that bit set.  The structure stays **linear**, so the forecasting
module applies unchanged; the forecast-error group-testing sketch can then
be *decoded*: any bucket dominated by a single large-change key reveals
that key bit-by-bit (bit ``b`` of the culprit is 1 iff the bit-``b``
counter holds the majority of the bucket total's magnitude).

The cost trade-off the paper warns about is explicit here: UPDATE touches
``1 + key_bits`` counters per row instead of 1.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.hashing import derive_seeds, make_family
from repro.sketch.base import (
    LinearSummary,
    SummaryConvention,
    folded_width,
    resolve_folded_schema,
)


class GroupTestingSchema:
    """Dimensions and hash functions for group-testing sketches."""

    def __init__(
        self,
        depth: int = 5,
        width: int = 1024,
        key_bits: int = 32,
        seed: Optional[int] = 0,
        family: str = "tabulation",
    ) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if width < 2:
            raise ValueError(f"width must be >= 2, got {width}")
        if not 1 <= key_bits <= 64:
            raise ValueError(f"key_bits must be in [1, 64], got {key_bits}")
        self.depth = int(depth)
        self.width = int(width)
        self.key_bits = int(key_bits)
        self.seed = seed
        self.family = family
        seeds = derive_seeds(seed, depth)
        self.hashes = tuple(make_family(family, width, seed=s) for s in seeds)

    def __eq__(self, other) -> bool:
        """Structural equality: same dimensions, family and *explicit* seed."""
        if self is other:
            return True
        if not isinstance(other, GroupTestingSchema):
            return NotImplemented
        return (
            self.seed is not None
            and other.seed is not None
            and self.seed == other.seed
            and self.depth == other.depth
            and self.width == other.width
            and self.key_bits == other.key_bits
            and self.family == other.family
        )

    def __hash__(self) -> int:
        return hash((self.depth, self.width, self.key_bits, self.family, self.seed))

    def empty(self) -> "GroupTestingSketch":
        """Return a fresh zeroed group-testing sketch."""
        return GroupTestingSketch(self)

    def from_items(self, keys, values) -> "GroupTestingSketch":
        """Build a sketch from arrays of keys and updates."""
        sketch = self.empty()
        sketch.update_batch(keys, values)
        return sketch

    def bucket_indices(self, keys) -> np.ndarray:
        """Bucket index per row for each key: shape ``(depth, n)``."""
        keys = SummaryConvention.as_key_array(keys)
        return np.stack([h.hash_array(keys) for h in self.hashes])

    def folded(self) -> "GroupTestingSchema":
        """The half-width schema this family folds into (same depth/seed)."""
        return type(self)(
            depth=self.depth, width=folded_width(self),
            key_bits=self.key_bits, seed=self.seed, family=self.family,
        )


class GroupTestingSketch(LinearSummary):
    """Sketch with per-bit subcounters enabling direct key decoding.

    Table shape is ``(depth, width, 1 + key_bits)``: slot 0 is the bucket
    total (exactly a k-ary sketch row), slots ``1 + b`` count only updates
    whose key has bit ``b`` set.
    """

    __slots__ = ("_schema", "_table")

    def __init__(self, schema: GroupTestingSchema, table: Optional[np.ndarray] = None):
        self._schema = schema
        shape = (schema.depth, schema.width, 1 + schema.key_bits)
        if table is None:
            table = np.zeros(shape, dtype=np.float64)
        else:
            table = np.asarray(table, dtype=np.float64)
            if table.shape != shape:
                raise ValueError(f"table shape {table.shape} != {shape}")
        self._table = table

    @property
    def schema(self) -> GroupTestingSchema:
        """The schema (dimensions and hash functions)."""
        return self._schema

    @property
    def table(self) -> np.ndarray:
        """Underlying ``(depth, width, 1 + key_bits)`` table (read-only view)."""
        view = self._table.view()
        view.flags.writeable = False
        return view

    def copy(self) -> "GroupTestingSketch":
        """Return an independent copy sharing the schema."""
        return GroupTestingSketch(self._schema, self._table.copy())

    def reset(self) -> None:
        """Zero all counters in place."""
        self._table[:] = 0.0

    def update_batch(self, keys, values) -> None:
        keys = SummaryConvention.as_key_array(keys)
        values = SummaryConvention.as_value_array(values, len(keys))
        if not len(keys):
            return
        bits = np.arange(self._schema.key_bits, dtype=np.uint64)
        # bit_matrix[j, b] = 1 if bit b of key j is set
        bit_matrix = ((keys[:, None] >> bits[None, :]) & np.uint64(1)).astype(
            np.float64
        )
        contributions = np.concatenate(
            [values[:, None], values[:, None] * bit_matrix], axis=1
        )
        for i, h in enumerate(self._schema.hashes):
            np.add.at(self._table[i], h.hash_array(keys), contributions)

    # -- k-ary-equivalent estimation over the totals plane -----------------

    def _totals(self) -> np.ndarray:
        return self._table[:, :, 0]

    def total(self) -> float:
        """Sum of all inserted values."""
        return float(self._totals()[0].sum())

    def estimate_batch(self, keys, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-key estimate using the totals plane (same math as k-ary)."""
        keys = SummaryConvention.as_key_array(keys)
        if indices is None:
            indices = self._schema.bucket_indices(keys)
        k = self._schema.width
        raw = np.take_along_axis(self._totals(), indices, axis=1)
        per_row = (raw - self.total() / k) / (1.0 - 1.0 / k)
        return np.median(per_row, axis=0)

    def estimate_f2(self) -> float:
        """Second-moment estimate from the totals plane (same math as k-ary)."""
        k = self._schema.width
        totals = self._totals()
        sum_sq = np.einsum("ij,ij->i", totals, totals)
        total = self.total()
        per_row = (k / (k - 1.0)) * sum_sq - (total * total) / (k - 1.0)
        return float(np.median(per_row))

    # -- decoding -----------------------------------------------------------

    def recover_keys(
        self, threshold: float, verify: bool = True
    ) -> Dict[int, float]:
        """Decode keys whose (error) magnitude is at least ``threshold``.

        For every bucket whose total magnitude reaches ``threshold``, decode
        a candidate key bit-by-bit: bit ``b`` is 1 when the bit-``b``
        counter carries more of the bucket's mass than its complement.
        Candidates are then optionally verified -- re-hashed and checked
        against a median estimate -- which suppresses buckets whose mass
        comes from several colliding keys (their decoded bits are garbage).

        Returns a dict of ``key -> estimated value``.
        """
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        candidates: Dict[int, float] = {}
        bits = self._schema.key_bits
        for i in range(self._schema.depth):
            totals = self._table[i, :, 0]
            hot = np.nonzero(np.abs(totals) >= threshold)[0]
            for bucket in hot:
                total = totals[bucket]
                bit_counters = self._table[i, bucket, 1:]
                bit_set = np.abs(bit_counters) > np.abs(total - bit_counters)
                key = 0
                for b in range(bits):
                    if bit_set[b]:
                        key |= 1 << b
                candidates.setdefault(key, float(total))
        if not candidates:
            return {}
        keys = np.fromiter(candidates.keys(), dtype=np.uint64, count=len(candidates))
        estimates = self.estimate_batch(keys)
        recovered: Dict[int, float] = {}
        indices = self._schema.bucket_indices(keys) if verify else None
        for j, (key, est) in enumerate(zip(keys.tolist(), estimates.tolist())):
            if abs(est) < threshold:
                continue
            if verify:
                # The decoded key must land in a bucket whose total is
                # consistent with the estimate in every row; a majority of
                # rows within 50% relative deviation passes.
                consistent = 0
                for i in range(self._schema.depth):
                    bucket_total = self._table[i, indices[i, j], 0]
                    if abs(bucket_total - est) <= 0.5 * abs(est) + 1e-9:
                        consistent += 1
                if consistent * 2 <= self._schema.depth:
                    continue
            recovered[int(key)] = est
        return recovered

    def fold_width(
        self, schema: Optional[GroupTestingSchema] = None
    ) -> "GroupTestingSketch":
        """Halve the width exactly (Hokusai item aggregation).

        The per-bit subcounters are linear, so all ``1 + key_bits``
        subcells of buckets ``j`` and ``j + K/2`` sum into bucket
        ``j mod K/2`` -- the folded table equals the half-width build of
        the same stream (bit-for-bit for integer-valued updates), and
        decoding works unchanged at the coarser collision rate.
        """
        folded = resolve_folded_schema(self._schema, schema)
        half = folded.width
        return GroupTestingSketch(
            folded, self._table[:, :half, :] + self._table[:, half:, :]
        )

    def _linear_combination(
        self, terms: Sequence[Tuple[float, LinearSummary]]
    ) -> "GroupTestingSketch":
        table = np.zeros_like(self._table)
        for coeff, summary in terms:
            if not isinstance(summary, GroupTestingSketch):
                raise TypeError(
                    f"cannot combine GroupTestingSketch with {type(summary).__name__}"
                )
            if summary._schema != self._schema:
                raise ValueError("cannot combine sketches with different schemas")
            table += coeff * summary._table
        return GroupTestingSketch(self._schema, table)
