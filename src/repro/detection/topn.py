"""Top-N reconstruction: rank keys by absolute forecast error.

Section 5.2.1 of the paper evaluates sketches by comparing the top-N flows
(by absolute forecast error) reconstructed from the error sketch against
the exact per-flow top-N.  This module provides that ranking for any
summary type.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def top_n_keys(
    error_summary,
    candidate_keys: np.ndarray,
    n: int,
    indices: Optional[np.ndarray] = None,
    return_estimates: bool = False,
):
    """The ``n`` candidate keys with largest absolute estimated error.

    Parameters
    ----------
    error_summary:
        Any summary supporting ``estimate_batch`` (error sketch or exact
        error vector).
    candidate_keys:
        Keys to rank; duplicates are collapsed first.
    n:
        How many to return (fewer if there are fewer candidates).
    indices:
        Optional precomputed bucket indices aligned with the *deduplicated,
        sorted* candidate key array (i.e. computed on
        ``np.unique(candidate_keys)``).
    return_estimates:
        When true, also return the signed estimated errors.

    Returns
    -------
    ``keys`` sorted by decreasing ``|error|`` (ties broken by key), or the
    tuple ``(keys, estimates)`` when ``return_estimates`` is set.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    keys = np.unique(np.asarray(candidate_keys, dtype=np.uint64))
    if not len(keys) or n == 0:
        empty_keys = np.array([], dtype=np.uint64)
        if return_estimates:
            return empty_keys, np.array([], dtype=np.float64)
        return empty_keys
    estimates = error_summary.estimate_batch(keys, indices=indices)
    order = np.lexsort((keys, -np.abs(estimates)))
    chosen = order[:n]
    if return_estimates:
        return keys[chosen], estimates[chosen]
    return keys[chosen]


def similarity(set_a: np.ndarray, set_b: np.ndarray, n: Optional[int] = None) -> float:
    """The paper's similarity metric ``N_AB / N``.

    ``N_AB`` is the overlap between the two key sets; ``N`` defaults to the
    size of the smaller set (the paper's usage: per-flow top-N vs sketch
    top-X*N is normalized by N, the per-flow list size).
    """
    a = np.unique(np.asarray(set_a, dtype=np.uint64))
    b = np.unique(np.asarray(set_b, dtype=np.uint64))
    if n is None:
        n = min(len(a), len(b))
    if n == 0:
        return 1.0
    overlap = len(np.intersect1d(a, b, assume_unique=True))
    return overlap / n
