"""Session checkpoint/restore: crash-safe streaming change detection.

A deployed monitor that dies mid-trace should not have to replay the
whole trace, and -- more importantly -- the operator should be able to
trust that the resumed monitor raises *exactly* the alarms the
uninterrupted one would have.  This module provides that guarantee:

* :func:`checkpoint_session` captures a :class:`StreamingSession` (or
  :class:`ShardedStreamingSession`) as one ``KCP1`` container: session
  configuration and cursors in the meta section, forecaster internals and
  open-interval accumulation state in the body.
* :func:`restore_session` rebuilds the session and installs the state.
  Feeding it every record with ``timestamp > session.watermark`` then
  produces reports **bit-identical** to the uninterrupted run -- same
  alarms, same thresholds, same magnitudes, for every forecast model.

Why bit-identity holds:

* sketch counter tables are float64 and round-trip exactly through the
  wire format;
* forecaster recursions consume sealed summaries whole, so restoring
  their retained states (levels, trends, lag windows, innovation queues)
  reproduces the recursion exactly;
* serial sessions checkpoint the open interval's half-built sketch
  directly (the remaining records fold into the same table in the same
  order), and the accumulated candidate-key chunks collapse to one
  deduplicated array (``np.unique`` is idempotent and order-insensitive);
* sharded sessions checkpoint the raw per-shard ``(keys, values)``
  buffers and the round-robin cursor, so a restored engine routes and
  seals with the exact same per-shard batched updates.

What cannot be checkpointed raises immediately and loudly: schemas with
``seed=None`` (their hash functions die with the process), key/value
schemes not constructible from the registry, and forecaster classes
outside the model zoo.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.detection.session import StreamingSession
from repro.detection.sharded import (
    DEFAULT_RETRY_BACKOFF_MAX,
    ShardedStreamingSession,
)
from repro.forecast.arima import ArimaForecaster
from repro.forecast.holtwinters import (
    HoltWintersForecaster,
    SeasonalHoltWintersForecaster,
)
from repro.forecast.smoothing import (
    EWMAForecaster,
    MovingAverageForecaster,
    SShapedMovingAverageForecaster,
)
from repro.sketch.serialization import (
    checkpoint_meta,
    dumps_checkpoint,
    loads_checkpoint,
    schema_from_identity,
    schema_identity,
)
from repro.streams.keys import DstPrefixKey, make_key_scheme, make_value_scheme

PathLike = Union[str, os.PathLike]

_FORMAT = "streaming-session"

#: Forecaster classes that checkpoint/restore knows how to rebuild --
#: the paper's six models plus the seasonal extension.
FORECASTER_CLASSES = {
    cls.__name__: cls
    for cls in (
        MovingAverageForecaster,
        SShapedMovingAverageForecaster,
        EWMAForecaster,
        HoltWintersForecaster,
        SeasonalHoltWintersForecaster,
        ArimaForecaster,
    )
}


def _key_scheme_spec(scheme) -> dict:
    params = {}
    if isinstance(scheme, DstPrefixKey):
        params["prefix_len"] = scheme.prefix_len
    name = getattr(scheme, "name", "")
    try:
        rebuilt = make_key_scheme(name, **params)
    except (ValueError, TypeError):
        rebuilt = None
    if rebuilt is None or type(rebuilt) is not type(scheme):
        raise ValueError(
            f"key scheme {type(scheme).__name__} is not reconstructible from "
            f"the registry (name={name!r}); checkpoints require a registered "
            "key scheme"
        )
    return {"name": name, "params": params}


def _value_scheme_spec(scheme) -> dict:
    name = getattr(scheme, "name", "")
    try:
        make_value_scheme(name)
    except ValueError:
        raise ValueError(
            f"value scheme {name!r} is not in the registry; checkpoints "
            "require a registered value scheme"
        ) from None
    return {"name": name}


def _forecaster_spec(forecaster) -> dict:
    cls = type(forecaster)
    if FORECASTER_CLASSES.get(cls.__name__) is not cls:
        raise ValueError(
            f"forecaster {cls.__name__} is not checkpoint-registered; known: "
            + ", ".join(sorted(FORECASTER_CLASSES))
        )
    return {"class": cls.__name__, "config": forecaster.get_config()}


def checkpoint_session(session: StreamingSession) -> bytes:
    """Serialize a streaming session's full pipeline state to bytes.

    The session is left untouched and continues to be usable.  Restoring
    the returned bytes (:func:`restore_session`) and feeding every record
    with ``timestamp > session.watermark`` yields reports bit-identical
    to continuing this session uninterrupted.

    Pipelined sessions are drained first (a barrier on the in-flight
    seals) so the captured forecaster and cursors are quiescent; any
    reports the barrier completes are *stashed*, not dropped -- the
    session's next ``ingest``/``flush``/``drain`` call returns them
    ahead of newer reports.  The pipeline itself is an execution choice
    and is not recorded in the checkpoint (see :func:`restore_session`'s
    ``pipeline`` override).
    """
    sharded = isinstance(session, ShardedStreamingSession)
    if getattr(session, "pipeline", False):
        session._barrier()
    if type(session) not in (StreamingSession, ShardedStreamingSession):
        raise ValueError(
            f"cannot checkpoint a {type(session).__name__}; only "
            "StreamingSession and ShardedStreamingSession are supported"
        )
    meta = {
        "format": _FORMAT,
        "session": "sharded" if sharded else "serial",
        "schema": schema_identity(session.schema),
        "forecaster": _forecaster_spec(session.forecaster),
        "config": {
            "interval_seconds": session.interval_seconds,
            "key_scheme": _key_scheme_spec(session.key_scheme),
            "value_scheme": _value_scheme_spec(session.value_scheme),
            "t_fraction": session.t_fraction,
            "top_n": session.top_n,
            "lateness_tolerance": session.lateness_tolerance,
            "key_source": session.key_source,
        },
        "cursor": {
            "current_index": session.current_interval,
            "records_ingested": session.records_ingested,
            "intervals_sealed": session.intervals_sealed,
            "watermark": session.watermark,
        },
    }
    if sharded:
        engine = session._engine
        meta["sharded"] = {
            "n_workers": engine.n_workers,
            "backend": engine.backend,
            "partition": engine.partition,
            "task_timeout": engine.task_timeout,
            "max_retries": engine.max_retries,
            "retry_backoff": engine.retry_backoff,
            "retry_backoff_max": engine.retry_backoff_max,
        }
    body = {
        "forecaster": session.forecaster.get_state(),
        "accumulation": session._accumulation_state(),
    }
    return dumps_checkpoint(meta, body)


def restore_session(
    data: bytes,
    schema=None,
    backend: Optional[str] = None,
    pipeline: bool = False,
    pipeline_depth: int = 2,
) -> StreamingSession:
    """Rebuild a streaming session from :func:`checkpoint_session` bytes.

    Parameters
    ----------
    data:
        A ``KCP1`` checkpoint container.
    schema:
        Optional pre-built schema to attach to (avoids re-deriving hash
        tables).  Its identity must match the checkpointed one exactly.
    backend:
        For sharded checkpoints only: override the seal backend (e.g.
        restore a ``"process"`` checkpoint as ``"serial"`` on a
        single-core recovery box).  The backend is an execution choice,
        not part of the result -- reports are identical either way.
    pipeline, pipeline_depth:
        Execution choices for the restored session, exactly like the
        :class:`StreamingSession` constructor knobs.  Checkpoints never
        record whether the writer was pipelined (checkpointing drains
        the pipeline, so there is nothing in flight to capture); the
        restorer picks the execution mode for the resumed run.
    """
    peek = checkpoint_meta(data)
    if peek.get("format") != _FORMAT:
        raise ValueError(
            f"not a streaming-session checkpoint (format={peek.get('format')!r})"
        )
    schema = schema_from_identity(peek["schema"], schema=schema)
    meta, body = loads_checkpoint(data, schema=schema)

    fc_spec = meta["forecaster"]
    fc_cls = FORECASTER_CLASSES.get(fc_spec["class"])
    if fc_cls is None:
        raise ValueError(f"unknown forecaster class {fc_spec['class']!r}")
    forecaster = fc_cls(**fc_spec["config"])

    config = meta["config"]
    common = {
        "interval_seconds": config["interval_seconds"],
        "key_scheme": make_key_scheme(
            config["key_scheme"]["name"], **config["key_scheme"]["params"]
        ),
        "value_scheme": make_value_scheme(config["value_scheme"]["name"]),
        "t_fraction": config["t_fraction"],
        "top_n": config["top_n"],
        "lateness_tolerance": config["lateness_tolerance"],
        # Pre-key-source checkpoints (through PR 6) implicitly used the
        # two-pass collection strategy; .get keeps them restorable.
        "key_source": config.get("key_source", "twopass"),
        "pipeline": pipeline,
        "pipeline_depth": pipeline_depth,
    }
    if meta["session"] == "sharded":
        sharded = meta["sharded"]
        session: StreamingSession = ShardedStreamingSession(
            schema,
            forecaster,
            n_workers=sharded["n_workers"],
            backend=backend if backend is not None else sharded["backend"],
            partition=sharded["partition"],
            task_timeout=sharded["task_timeout"],
            max_retries=sharded["max_retries"],
            retry_backoff=sharded["retry_backoff"],
            # Pre-cap checkpoints (through PR 7) carry no ceiling; they
            # restore with the default cap rather than unbounded sleeps.
            retry_backoff_max=sharded.get(
                "retry_backoff_max", DEFAULT_RETRY_BACKOFF_MAX
            ),
            **common,
        )
    else:
        if backend is not None:
            raise ValueError("backend override only applies to sharded checkpoints")
        session = StreamingSession(schema, forecaster, **common)

    session.forecaster.set_state(body["forecaster"])
    cursor = meta["cursor"]
    session._current_index = (
        None if cursor["current_index"] is None else int(cursor["current_index"])
    )
    session._records_ingested = int(cursor["records_ingested"])
    session._intervals_sealed = int(cursor["intervals_sealed"])
    session._watermark = float(cursor["watermark"])
    session._restore_accumulation(body["accumulation"])
    return session


def save_checkpoint(session: StreamingSession, path: PathLike) -> None:
    """Write a session checkpoint to a file (atomic via rename).

    The write is reported through the session's recorder
    (``repro_checkpoints_written_total`` plus a ``checkpoint_written``
    trace event) -- but the recorder itself is never serialized:
    metrics are execution state, not result state.  A restored session
    starts with a fresh (Null) recorder and counters restart from zero;
    operators who need continuity across restarts should attach the
    same :class:`~repro.obs.recorder.PipelineRecorder` to the restored
    session and treat the restart like any other counter reset (the
    standard Prometheus ``rate()``/``increase()`` handling).
    """
    data = checkpoint_session(session)
    tmp = f"{os.fspath(path)}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
    os.replace(tmp, path)
    recorder = getattr(session, "recorder", None)
    if recorder is not None and recorder.enabled:
        recorder.count("repro_checkpoints_written_total")
        recorder.event(
            "checkpoint_written", path=os.fspath(path), bytes=len(data),
            watermark=session.watermark,
            intervals_sealed=session.intervals_sealed,
        )


def load_checkpoint(
    path: PathLike,
    schema=None,
    backend: Optional[str] = None,
    pipeline: bool = False,
    pipeline_depth: int = 2,
) -> StreamingSession:
    """Read a session checkpoint from a file and restore it."""
    with open(path, "rb") as fh:
        return restore_session(
            fh.read(), schema=schema, backend=backend,
            pipeline=pipeline, pipeline_depth=pipeline_depth,
        )
