"""Keyed update streams: the glue between records and summaries.

Converts flow-record traces into the Turnstile-model streams the sketch
and detection layers consume: per-interval ``(keys, values)`` batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple, Optional, Union

import numpy as np

from repro.streams.intervals import IntervalSlicer, RandomizedIntervalSlicer
from repro.streams.keys import KeyScheme, ValueScheme, make_key_scheme, make_value_scheme
from repro.streams.records import validate_records


class StreamItem(NamedTuple):
    """One Turnstile item ``(a_i, u_i)``: a key and a signed update."""

    key: int
    update: float


@dataclass
class KeyedUpdates:
    """A batch of Turnstile items for one interval, in columnar form."""

    index: int
    keys: np.ndarray    # uint64
    values: np.ndarray  # float64
    duration: float     # interval length in seconds

    def __len__(self) -> int:
        return len(self.keys)

    def items(self) -> Iterator[StreamItem]:
        """Iterate row-wise (mostly for tests; hot paths stay columnar)."""
        for key, value in zip(self.keys.tolist(), self.values.tolist()):
            yield StreamItem(key, value)


@dataclass
class ColumnarBlock:
    """A zero-copy columnar ingest unit: one interval's key/value columns.

    The columnar ingest path hands the engine contiguous ``uint64`` key
    and ``float64`` value arrays (typically unit-stride views into
    columns extracted once per trace) instead of per-chunk record
    objects.  Downstream consumers (:meth:`StreamingSession.ingest_columns`,
    the sharded engine, :class:`OfflineTwoPassDetector`) pass these
    arrays straight into the fused UPDATE kernels without copying --
    ``np.shares_memory`` holds from feeder to sketch.

    Duck-type compatible with :class:`KeyedUpdates` (``index``, ``keys``,
    ``values``, ``duration``, ``__len__``), so any batch consumer accepts
    either.
    """

    index: int
    keys: np.ndarray    # uint64, 1-D
    values: np.ndarray  # float64, 1-D
    duration: float = 0.0

    def __len__(self) -> int:
        return len(self.keys)


Slicer = Union[IntervalSlicer, RandomizedIntervalSlicer]


class IntervalStream:
    """Iterates a flow trace as per-interval keyed update batches.

    Parameters
    ----------
    records:
        Time-sorted flow record array.
    interval_seconds:
        Fixed interval length; ignored when ``slicer`` is given.
    key_scheme / value_scheme:
        Scheme objects or registry names (default: the paper's
        ``dst_ip`` / ``bytes``).
    slicer:
        Custom slicer (e.g. :class:`RandomizedIntervalSlicer`); overrides
        ``interval_seconds``.
    normalize_by_duration:
        Divide updates by the interval duration, turning totals into
        rates.  Required for meaningful comparison under randomized
        intervals (see paper Section 6).
    """

    def __init__(
        self,
        records: np.ndarray,
        interval_seconds: float = 300.0,
        key_scheme: Union[KeyScheme, str] = "dst_ip",
        value_scheme: Union[ValueScheme, str] = "bytes",
        slicer: Optional[Slicer] = None,
        normalize_by_duration: bool = False,
    ) -> None:
        validate_records(records)
        self.records = records
        self.key_scheme = (
            make_key_scheme(key_scheme) if isinstance(key_scheme, str) else key_scheme
        )
        self.value_scheme = (
            make_value_scheme(value_scheme)
            if isinstance(value_scheme, str)
            else value_scheme
        )
        self.slicer: Slicer = slicer or IntervalSlicer(interval_seconds)
        self.normalize_by_duration = bool(normalize_by_duration)

    def __iter__(self) -> Iterator[KeyedUpdates]:
        for index, chunk in self.slicer.slices(self.records):
            keys = self.key_scheme.extract(chunk)
            values = self.value_scheme.extract(chunk)
            duration = self.slicer.duration_of(index)
            if self.normalize_by_duration and duration > 0:
                values = values / duration
            yield KeyedUpdates(index=index, keys=keys, values=values, duration=duration)

    def interval_count(self) -> int:
        """Number of intervals the trace spans (including empty ones)."""
        count = 0
        for count, _ in enumerate(self.slicer.slices(self.records), start=1):
            pass
        return count
