"""Turnstile-model data stream abstractions and flow-record handling.

The paper's data model (Section 2.1) is the Turnstile Model: a stream of
``(key, update)`` items where each key's underlying signal accumulates the
updates.  Keys are built from packet/flow header fields; updates are bytes,
packets, or counts.

This package provides:

* :mod:`~repro.streams.records` -- the NetFlow-like flow record layout
  (a NumPy structured dtype) and synthetic record helpers.
* :mod:`~repro.streams.keys` -- key schemes mapping records to integer keys
  (destination IP as in the paper's experiments, plus source IP, address
  pairs, prefixes, ports) and value schemes (bytes, packets, count).
* :mod:`~repro.streams.intervals` -- time binning into fixed intervals,
  including the randomized-interval extension from the paper's "ongoing
  work" section.
* :mod:`~repro.streams.netflow` -- binary and CSV readers/writers for flow
  traces, standing in for the paper's NetFlow dumps.
* :mod:`~repro.streams.model` -- the keyed update stream / interval stream
  glue used by the detection pipelines.
"""

from repro.streams.intervals import (
    IntervalSlicer,
    RandomizedIntervalSlicer,
    interval_bounds,
    interval_edge,
    slice_by_interval,
)
from repro.streams.keys import (
    KeyScheme,
    ValueScheme,
    make_key_scheme,
    make_value_scheme,
)
from repro.streams.model import (
    ColumnarBlock,
    IntervalStream,
    KeyedUpdates,
    StreamItem,
)
from repro.streams.netflow import (
    NETFLOW_MAGIC,
    read_trace,
    read_trace_csv,
    write_trace,
    write_trace_csv,
)
from repro.streams.records import (
    FLOW_RECORD_DTYPE,
    concat_records,
    empty_records,
    make_records,
    sort_by_time,
    validate_records,
)
from repro.streams.sampling import (
    sample_and_hold_keys,
    sample_records,
    sampling_error_scale,
)
from repro.streams.sharding import (
    SHARD_METHODS,
    BoundedChunkFeeder,
    iter_interval_chunks,
    iter_interval_columns,
    partition_columns,
    partition_records,
    shard_assignments,
    splitmix64,
)

__all__ = [
    "BoundedChunkFeeder",
    "ColumnarBlock",
    "FLOW_RECORD_DTYPE",
    "IntervalSlicer",
    "SHARD_METHODS",
    "IntervalStream",
    "KeyScheme",
    "KeyedUpdates",
    "NETFLOW_MAGIC",
    "RandomizedIntervalSlicer",
    "StreamItem",
    "ValueScheme",
    "concat_records",
    "empty_records",
    "interval_bounds",
    "interval_edge",
    "iter_interval_chunks",
    "iter_interval_columns",
    "make_key_scheme",
    "make_records",
    "make_value_scheme",
    "partition_columns",
    "partition_records",
    "read_trace",
    "read_trace_csv",
    "sample_and_hold_keys",
    "sample_records",
    "sampling_error_scale",
    "shard_assignments",
    "slice_by_interval",
    "sort_by_time",
    "splitmix64",
    "validate_records",
    "write_trace",
    "write_trace_csv",
]
