"""Time binning: fixed intervals, plus the randomized-interval extension.

The paper breaks time into discrete intervals ``I_1, I_2, ...`` of fixed
length -- 300 s as the responsiveness/overhead compromise, 60 s to study
shorter horizons -- and computes one observed sketch per interval.

The "ongoing work" section points out that fixed intervals suffer boundary
effects (a change straddling a boundary is split between two sketches) and
suggests randomizing the interval size, e.g. exponentially distributed
lengths with totals normalized by duration.  Linearity of sketches makes
the normalization sound; :class:`RandomizedIntervalSlicer` implements it.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.streams.records import validate_records


def interval_bounds(
    duration: float, interval_seconds: float, start: float = 0.0
) -> List[Tuple[float, float]]:
    """Fixed interval boundaries covering ``[start, start + duration)``.

    The last interval is truncated at the end of the trace.
    """
    if interval_seconds <= 0:
        raise ValueError(f"interval_seconds must be > 0, got {interval_seconds}")
    bounds = []
    t = start
    end = start + duration
    while t < end:
        bounds.append((t, min(t + interval_seconds, end)))
        t += interval_seconds
    return bounds


def slice_by_interval(
    records: np.ndarray, interval_seconds: float, start: float = 0.0
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(interval_index, records_in_interval)`` over a sorted trace.

    Empty intervals in the middle of the trace are yielded with empty
    record arrays so that forecast models see a complete, evenly spaced
    series -- skipping them would silently compress time.
    """
    validate_records(records)
    if interval_seconds <= 0:
        raise ValueError(f"interval_seconds must be > 0, got {interval_seconds}")
    if not len(records):
        return
    timestamps = records["timestamp"]
    last = timestamps[-1]
    n_intervals = int((last - start) // interval_seconds) + 1
    edges = start + interval_seconds * np.arange(n_intervals + 1)
    positions = np.searchsorted(timestamps, edges)
    for index in range(n_intervals):
        yield index, records[positions[index] : positions[index + 1]]


class IntervalSlicer:
    """Object form of :func:`slice_by_interval` carrying its parameters."""

    def __init__(self, interval_seconds: float, start: float = 0.0) -> None:
        if interval_seconds <= 0:
            raise ValueError(f"interval_seconds must be > 0, got {interval_seconds}")
        self.interval_seconds = float(interval_seconds)
        self.start = float(start)

    def slices(self, records: np.ndarray) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(interval_index, records)`` pairs."""
        return slice_by_interval(records, self.interval_seconds, self.start)

    def duration_of(self, index: int) -> float:
        """Nominal duration of an interval (constant for fixed slicing)."""
        return self.interval_seconds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IntervalSlicer(interval_seconds={self.interval_seconds})"


class RandomizedIntervalSlicer:
    """Exponentially distributed interval lengths (boundary-effect extension).

    Interval lengths are drawn i.i.d. ``Exponential(mean_seconds)``,
    truncated to ``[min_fraction, max_factor]`` times the mean so no
    interval is degenerate.  Because durations vary, downstream users
    should normalize observed totals by :meth:`duration_of` -- sketches
    scale linearly, so normalization commutes with summarization.
    """

    def __init__(
        self,
        mean_seconds: float,
        seed: Optional[int] = 0,
        start: float = 0.0,
        min_fraction: float = 0.2,
        max_factor: float = 3.0,
        horizon: float = 10 * 86400.0,
    ) -> None:
        if mean_seconds <= 0:
            raise ValueError(f"mean_seconds must be > 0, got {mean_seconds}")
        self.mean_seconds = float(mean_seconds)
        self.start = float(start)
        rng = np.random.default_rng(seed)
        lengths: List[float] = []
        total = 0.0
        while total < horizon:
            length = float(
                np.clip(
                    rng.exponential(mean_seconds),
                    min_fraction * mean_seconds,
                    max_factor * mean_seconds,
                )
            )
            lengths.append(length)
            total += length
        self._edges = self.start + np.concatenate([[0.0], np.cumsum(lengths)])

    def duration_of(self, index: int) -> float:
        """Actual duration of interval ``index``."""
        return float(self._edges[index + 1] - self._edges[index])

    def slices(self, records: np.ndarray) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(interval_index, records)`` under the random boundaries."""
        validate_records(records)
        if not len(records):
            return
        timestamps = records["timestamp"]
        last = timestamps[-1]
        n_intervals = int(np.searchsorted(self._edges, last, side="right"))
        if n_intervals >= len(self._edges):
            raise ValueError(
                "trace extends beyond the pre-drawn horizon; increase `horizon`"
            )
        positions = np.searchsorted(timestamps, self._edges[: n_intervals + 1])
        for index in range(n_intervals):
            yield index, records[positions[index] : positions[index + 1]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomizedIntervalSlicer(mean_seconds={self.mean_seconds})"
