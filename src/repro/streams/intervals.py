"""Time binning: fixed intervals, plus the randomized-interval extension.

The paper breaks time into discrete intervals ``I_1, I_2, ...`` of fixed
length -- 300 s as the responsiveness/overhead compromise, 60 s to study
shorter horizons -- and computes one observed sketch per interval.

The "ongoing work" section points out that fixed intervals suffer boundary
effects (a change straddling a boundary is split between two sketches) and
suggests randomizing the interval size, e.g. exponentially distributed
lengths with totals normalized by duration.  Linearity of sketches makes
the normalization sound; :class:`RandomizedIntervalSlicer` implements it.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.streams.records import validate_records


def interval_edge(index: int, interval_seconds: float, start: float = 0.0) -> float:
    """The canonical float edge of interval ``index``: ``start + i * len``.

    Every boundary in this module is derived by this one expression.
    Accumulating ``t += interval_seconds`` instead drifts: after a few
    thousand additions of a non-dyadic length (300.1 s, say) the running
    sum disagrees with the product in the last ulps, and a record whose
    timestamp sits exactly on the true edge lands in different intervals
    depending on which derivation the caller used.
    """
    return start + interval_seconds * index


def interval_bounds(
    duration: float, interval_seconds: float, start: float = 0.0
) -> List[Tuple[float, float]]:
    """Fixed interval boundaries covering ``[start, start + duration)``.

    The last interval is truncated at the end of the trace.  Edges are
    derived by multiplication (:func:`interval_edge`), bit-identical to
    the edges :func:`slice_by_interval` partitions records with.
    """
    if interval_seconds <= 0:
        raise ValueError(f"interval_seconds must be > 0, got {interval_seconds}")
    bounds = []
    end = start + duration
    index = 0
    while True:
        lo = interval_edge(index, interval_seconds, start)
        if lo >= end:
            break
        hi = min(interval_edge(index + 1, interval_seconds, start), end)
        bounds.append((lo, hi))
        index += 1
    return bounds


def slice_by_interval(
    records: np.ndarray,
    interval_seconds: float,
    start: float = 0.0,
    *,
    on_before_start: str = "raise",
    stats: Optional[dict] = None,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(interval_index, records_in_interval)`` over a sorted trace.

    Empty intervals in the middle of the trace are yielded with empty
    record arrays so that forecast models see a complete, evenly spaced
    series -- skipping them would silently compress time.

    Records with ``timestamp < start`` belong to no interval.  They used
    to be excluded silently; now the choice is explicit:

    ``on_before_start="raise"`` (default)
        Raise :class:`ValueError` naming the count -- a record before the
        epoch almost always means the caller passed the wrong ``start``,
        and quietly losing traffic corrupts every downstream total.
    ``on_before_start="drop"``
        Skip them, exposing the count as ``stats["dropped_before_start"]``
        when a ``stats`` dict is supplied.
    """
    validate_records(records)
    if interval_seconds <= 0:
        raise ValueError(f"interval_seconds must be > 0, got {interval_seconds}")
    if on_before_start not in ("raise", "drop"):
        raise ValueError(
            f"on_before_start must be 'raise' or 'drop', got {on_before_start!r}"
        )
    if stats is not None:
        stats.setdefault("dropped_before_start", 0)
    if not len(records):
        return
    timestamps = records["timestamp"]
    n_before = int(np.searchsorted(timestamps, start, side="left"))
    if n_before:
        if on_before_start == "raise":
            raise ValueError(
                f"{n_before} record(s) predate start={start!r} "
                f"(earliest t={float(timestamps[0])!r}); pass "
                "on_before_start='drop' to skip them explicitly"
            )
        if stats is not None:
            stats["dropped_before_start"] += n_before
    last = timestamps[-1]
    if last < start:  # the whole trace predates start: nothing to slice
        return
    n_intervals = int((last - start) // interval_seconds) + 1
    # Floor division can land one short under adversarial rounding (e.g.
    # (last - start) evaluating just below a multiple); extend until the
    # final edge strictly exceeds the last record so nothing is truncated.
    while interval_edge(n_intervals, interval_seconds, start) <= last:
        n_intervals += 1
    edges = start + interval_seconds * np.arange(n_intervals + 1)
    positions = np.searchsorted(timestamps, edges)
    for index in range(n_intervals):
        yield index, records[positions[index] : positions[index + 1]]


class IntervalSlicer:
    """Object form of :func:`slice_by_interval` carrying its parameters.

    ``on_before_start`` follows the function's contract; with ``"drop"``,
    the running total of skipped records is exposed as
    :attr:`dropped_before_start`.
    """

    def __init__(
        self,
        interval_seconds: float,
        start: float = 0.0,
        on_before_start: str = "raise",
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(f"interval_seconds must be > 0, got {interval_seconds}")
        if on_before_start not in ("raise", "drop"):
            raise ValueError(
                f"on_before_start must be 'raise' or 'drop', got {on_before_start!r}"
            )
        self.interval_seconds = float(interval_seconds)
        self.start = float(start)
        self.on_before_start = on_before_start
        self._stats = {"dropped_before_start": 0}

    @property
    def dropped_before_start(self) -> int:
        """Records skipped for predating ``start`` (only in ``"drop"`` mode)."""
        return self._stats["dropped_before_start"]

    def slices(self, records: np.ndarray) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(interval_index, records)`` pairs."""
        return slice_by_interval(
            records,
            self.interval_seconds,
            self.start,
            on_before_start=self.on_before_start,
            stats=self._stats,
        )

    def duration_of(self, index: int) -> float:
        """Nominal duration of an interval (constant for fixed slicing)."""
        return self.interval_seconds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IntervalSlicer(interval_seconds={self.interval_seconds})"


class RandomizedIntervalSlicer:
    """Exponentially distributed interval lengths (boundary-effect extension).

    Interval lengths are drawn i.i.d. ``Exponential(mean_seconds)``,
    truncated to ``[min_fraction, max_factor]`` times the mean so no
    interval is degenerate.  Because durations vary, downstream users
    should normalize observed totals by :meth:`duration_of` -- sketches
    scale linearly, so normalization commutes with summarization.
    """

    def __init__(
        self,
        mean_seconds: float,
        seed: Optional[int] = 0,
        start: float = 0.0,
        min_fraction: float = 0.2,
        max_factor: float = 3.0,
        horizon: float = 10 * 86400.0,
        on_before_start: str = "raise",
    ) -> None:
        if mean_seconds <= 0:
            raise ValueError(f"mean_seconds must be > 0, got {mean_seconds}")
        if on_before_start not in ("raise", "drop"):
            raise ValueError(
                f"on_before_start must be 'raise' or 'drop', got {on_before_start!r}"
            )
        self.mean_seconds = float(mean_seconds)
        self.start = float(start)
        self.on_before_start = on_before_start
        self._stats = {"dropped_before_start": 0}
        rng = np.random.default_rng(seed)
        lengths: List[float] = []
        total = 0.0
        while total < horizon:
            length = float(
                np.clip(
                    rng.exponential(mean_seconds),
                    min_fraction * mean_seconds,
                    max_factor * mean_seconds,
                )
            )
            lengths.append(length)
            total += length
        self._edges = self.start + np.concatenate([[0.0], np.cumsum(lengths)])

    def duration_of(self, index: int) -> float:
        """Actual duration of interval ``index``."""
        return float(self._edges[index + 1] - self._edges[index])

    @property
    def dropped_before_start(self) -> int:
        """Records skipped for predating ``start`` (only in ``"drop"`` mode)."""
        return self._stats["dropped_before_start"]

    def slices(self, records: np.ndarray) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(interval_index, records)`` under the random boundaries.

        Records predating ``start`` follow the :func:`slice_by_interval`
        contract: raise by default, or count into
        :attr:`dropped_before_start` in ``"drop"`` mode.
        """
        validate_records(records)
        if not len(records):
            return
        timestamps = records["timestamp"]
        n_before = int(np.searchsorted(timestamps, self.start, side="left"))
        if n_before:
            if self.on_before_start == "raise":
                raise ValueError(
                    f"{n_before} record(s) predate start={self.start!r} "
                    f"(earliest t={float(timestamps[0])!r}); pass "
                    "on_before_start='drop' to skip them explicitly"
                )
            self._stats["dropped_before_start"] += n_before
        last = timestamps[-1]
        if last < self.start:
            return
        n_intervals = int(np.searchsorted(self._edges, last, side="right"))
        if n_intervals >= len(self._edges):
            raise ValueError(
                "trace extends beyond the pre-drawn horizon; increase `horizon`"
            )
        positions = np.searchsorted(timestamps, self._edges[: n_intervals + 1])
        for index in range(n_intervals):
            yield index, records[positions[index] : positions[index + 1]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomizedIntervalSlicer(mean_seconds={self.mean_seconds})"
