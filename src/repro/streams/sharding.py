"""Record partitioning for sharded ingestion.

The sketch's COMBINE operation makes *where* a record is counted
irrelevant: shard the stream any way at all, sketch each shard
independently, merge, and the result equals the single-stream sketch.
This module provides the shard-assignment side of that bargain:

:func:`shard_assignments` / :func:`partition_records`
    Deterministic record-to-shard routing.  ``"hash"`` routes by a
    splitmix64 mix of the record key (key-affine: every update for a key
    lands on one shard -- the natural choice when shards also maintain
    per-key state), ``"round_robin"`` deals records out cyclically
    (best load balance), ``"block"`` slices contiguous runs (best
    locality; preserves each record's neighborhood).
:func:`iter_interval_chunks`
    Re-chunk a sorted trace so no chunk straddles an analysis-interval
    boundary -- the partition step an engine runs before handing chunks
    to workers, so every worker task belongs to exactly one interval.
:func:`iter_interval_columns` / :func:`partition_columns`
    The columnar (zero-copy) counterparts: key/value columns are
    extracted **once** for the whole trace, then every yielded
    :class:`~repro.streams.model.ColumnarBlock` is a unit-stride view
    into them -- no per-chunk extraction, no per-chunk copies, and the
    arrays flow into the fused UPDATE kernels unmodified.
:class:`BoundedChunkFeeder`
    A bounded producer/consumer queue over a chunk iterator, so a slow
    source (disk, socket) is read ahead of ingestion without unbounded
    buffering.  Item-agnostic: feeds record chunks and columnar blocks
    alike.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable, Iterator, List, Optional, Union

import numpy as np

from repro.streams.keys import (
    KeyScheme,
    ValueScheme,
    make_key_scheme,
    make_value_scheme,
)
from repro.streams.model import ColumnarBlock
from repro.streams.records import validate_records

SHARD_METHODS = ("hash", "round_robin", "block")

_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_M2 = np.uint64(0x94D049BB133111EB)


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer: a cheap, well-mixed uint64 -> uint64.

    Used for shard routing rather than the sketch's 4-universal families:
    routing only needs to spread load, not satisfy moment bounds, and it
    must be independent of the sketch hashes (routing with a sketch row's
    hash would correlate shard membership with bucket membership).
    """
    x = np.asarray(x, dtype=np.uint64) + _SM64_GAMMA
    x = (x ^ (x >> np.uint64(30))) * _SM64_M1
    x = (x ^ (x >> np.uint64(27))) * _SM64_M2
    return x ^ (x >> np.uint64(31))


def shard_assignments(
    records: np.ndarray,
    n_shards: int,
    method: str = "hash",
    key_scheme: Union[KeyScheme, str] = "dst_ip",
) -> np.ndarray:
    """Assign each record to a shard in ``[0, n_shards)``.

    ``method``:

    - ``"hash"``: ``splitmix64(key) % n_shards`` over the extracted record
      key -- deterministic and key-affine.
    - ``"round_robin"``: record position mod ``n_shards``.
    - ``"block"``: ``n_shards`` contiguous, near-equal runs.
    """
    validate_records(records)
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n = len(records)
    if method == "hash":
        if isinstance(key_scheme, str):
            key_scheme = make_key_scheme(key_scheme)
        keys = key_scheme.extract(records)
        return (splitmix64(keys) % np.uint64(n_shards)).astype(np.int64)
    if method == "round_robin":
        return np.arange(n, dtype=np.int64) % n_shards
    if method == "block":
        return np.minimum(
            np.arange(n, dtype=np.int64) * n_shards // max(n, 1),
            n_shards - 1,
        )
    raise ValueError(f"unknown shard method {method!r} (expected {SHARD_METHODS})")


def partition_records(
    records: np.ndarray,
    n_shards: int,
    method: str = "hash",
    key_scheme: Union[KeyScheme, str] = "dst_ip",
) -> List[np.ndarray]:
    """Split a record chunk into ``n_shards`` per-shard chunks.

    Within each shard the records keep their original relative order, so
    per-shard streams remain time-sorted whenever the input chunk is.
    Empty shards come back as empty record arrays -- callers can zip the
    result with a worker pool without special-casing.
    """
    if n_shards == 1:
        validate_records(records)
        return [records]
    shards = shard_assignments(records, n_shards, method=method, key_scheme=key_scheme)
    # argsort(stable) groups by shard while preserving in-shard order.
    order = np.argsort(shards, kind="stable")
    grouped = records[order]
    counts = np.bincount(shards, minlength=n_shards)
    bounds = np.concatenate([[0], np.cumsum(counts)])
    return [grouped[bounds[i] : bounds[i + 1]] for i in range(n_shards)]


def iter_interval_chunks(
    records: np.ndarray,
    interval_seconds: float,
    chunk_records: Optional[int] = None,
) -> Iterator[np.ndarray]:
    """Yield time-sorted chunks that never straddle an interval boundary.

    Splits first on analysis-interval boundaries (``timestamp //
    interval_seconds``), then caps each piece at ``chunk_records`` rows.
    The concatenation of the yielded chunks is exactly ``records`` in
    time order, so feeding them to any session reproduces single-stream
    ingestion; the boundary guarantee means each chunk maps to exactly
    one per-interval sketch -- the unit of work a sharded engine
    dispatches.
    """
    validate_records(records)
    if interval_seconds <= 0:
        raise ValueError(f"interval_seconds must be > 0, got {interval_seconds}")
    if chunk_records is not None and chunk_records < 1:
        raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
    if not len(records):
        return
    timestamps = records["timestamp"]
    if len(records) > 1 and not np.all(np.diff(timestamps) >= 0):
        order = np.argsort(timestamps, kind="stable")
        records = records[order]
        timestamps = records["timestamp"]
    indices = (timestamps // interval_seconds).astype(np.int64)
    _, starts = np.unique(indices, return_index=True)
    bounds = np.append(starts, len(records))
    for b in range(len(bounds) - 1):
        lo, hi = int(bounds[b]), int(bounds[b + 1])
        if chunk_records is None:
            yield records[lo:hi]
        else:
            for start in range(lo, hi, chunk_records):
                yield records[start : min(start + chunk_records, hi)]


def iter_interval_columns(
    records: np.ndarray,
    interval_seconds: float,
    key_scheme: Union[KeyScheme, str] = "dst_ip",
    value_scheme: Union[ValueScheme, str] = "bytes",
    chunk_records: Optional[int] = None,
) -> Iterator[ColumnarBlock]:
    """Yield zero-copy :class:`ColumnarBlock` views over a sorted trace.

    The columnar twin of :func:`iter_interval_chunks`: key and value
    columns are extracted (and dtype-cast) **once** for the whole trace;
    every yielded block's ``keys``/``values`` are then unit-stride views
    into those two arrays (``np.shares_memory`` holds), split on
    analysis-interval boundaries and optionally capped at
    ``chunk_records`` rows.  Feeding the blocks to
    :meth:`StreamingSession.ingest_columns` reproduces record-chunk
    ingestion bit for bit while skipping all per-chunk extraction work
    and intermediate copies.
    """
    validate_records(records)
    if interval_seconds <= 0:
        raise ValueError(f"interval_seconds must be > 0, got {interval_seconds}")
    if chunk_records is not None and chunk_records < 1:
        raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
    if not len(records):
        return
    timestamps = records["timestamp"]
    if len(records) > 1 and not np.all(np.diff(timestamps) >= 0):
        order = np.argsort(timestamps, kind="stable")
        records = records[order]
        timestamps = records["timestamp"]
    if isinstance(key_scheme, str):
        key_scheme = make_key_scheme(key_scheme)
    if isinstance(value_scheme, str):
        value_scheme = make_value_scheme(value_scheme)
    # The only copies on this path: one cast per column, for the whole
    # trace.  Everything downstream is a view.
    keys = np.ascontiguousarray(key_scheme.extract(records), dtype=np.uint64)
    values = np.ascontiguousarray(
        value_scheme.extract(records), dtype=np.float64
    )
    indices = (timestamps // interval_seconds).astype(np.int64)
    uniq, starts = np.unique(indices, return_index=True)
    bounds = np.append(starts, len(records))
    duration = float(interval_seconds)
    for b in range(len(bounds) - 1):
        lo, hi = int(bounds[b]), int(bounds[b + 1])
        index = int(uniq[b])
        if chunk_records is None:
            yield ColumnarBlock(
                index=index, keys=keys[lo:hi], values=values[lo:hi],
                duration=duration,
            )
        else:
            for start in range(lo, hi, chunk_records):
                end = min(start + chunk_records, hi)
                yield ColumnarBlock(
                    index=index, keys=keys[start:end],
                    values=values[start:end], duration=duration,
                )


def partition_columns(
    block: ColumnarBlock,
    n_shards: int,
    method: str = "block",
) -> List[ColumnarBlock]:
    """Split one columnar block into ``n_shards`` per-shard blocks.

    ``"block"`` (the default) slices contiguous runs, so the shards stay
    zero-copy views of the parent's columns.  ``"hash"`` routes by
    ``splitmix64(key) % n_shards`` and ``"round_robin"`` deals rows out
    cyclically; both group by fancy indexing, which necessarily copies --
    use them only when key affinity or strict balance matters more than
    the copy.  In-shard relative order is preserved by every method, so
    per-cell accumulation order (and hence the sketch tables, exactly)
    matches unsharded ingestion after COMBINE.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards == 1:
        return [block]
    n = len(block)
    if method == "block":
        bounds = [n * s // n_shards for s in range(n_shards + 1)]
        return [
            ColumnarBlock(
                index=block.index,
                keys=block.keys[bounds[s] : bounds[s + 1]],
                values=block.values[bounds[s] : bounds[s + 1]],
                duration=block.duration,
            )
            for s in range(n_shards)
        ]
    if method == "hash":
        shards = (splitmix64(block.keys) % np.uint64(n_shards)).astype(np.int64)
    elif method == "round_robin":
        shards = np.arange(n, dtype=np.int64) % n_shards
    else:
        raise ValueError(
            f"unknown shard method {method!r} (expected {SHARD_METHODS})"
        )
    order = np.argsort(shards, kind="stable")
    keys = block.keys[order]
    values = block.values[order]
    counts = np.bincount(shards, minlength=n_shards)
    bounds = np.concatenate([[0], np.cumsum(counts)])
    return [
        ColumnarBlock(
            index=block.index,
            keys=keys[bounds[s] : bounds[s + 1]],
            values=values[bounds[s] : bounds[s + 1]],
            duration=block.duration,
        )
        for s in range(n_shards)
    ]


class BoundedChunkFeeder:
    """Read chunks ahead of the consumer through a bounded queue.

    A daemon thread drains ``source`` into a ``queue.Queue(maxsize)``;
    iterating the feeder yields chunks in order.  Backpressure is the
    queue bound: the producer blocks once ``maxsize`` chunks are waiting,
    so memory stays bounded no matter how fast the source is.  An
    exception in the source is re-raised to the consumer at the point of
    iteration.

    Usable as a context manager; :meth:`close` stops the producer and
    drops any queued chunks.
    """

    _DONE = object()

    def __init__(self, source: Iterable[np.ndarray], maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self._queue: "queue.Queue" = queue.Queue(maxsize=maxsize)
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._produce, args=(iter(source),), daemon=True
        )
        self._thread.start()

    def _produce(self, source: Iterator[np.ndarray]) -> None:
        try:
            for chunk in source:
                while not self._stop.is_set():
                    try:
                        self._queue.put(chunk, timeout=0.1)
                        break
                    except queue.Full:
                        continue
                if self._stop.is_set():
                    return
        except BaseException as exc:  # noqa: BLE001 - relayed to consumer
            self._error = exc
        finally:
            while not self._stop.is_set():
                try:
                    self._queue.put(self._DONE, timeout=0.1)
                    break
                except queue.Full:
                    continue

    def __iter__(self) -> Iterator[np.ndarray]:
        # A plain blocking get() would deadlock against close(): the drain
        # there can swallow the _DONE sentinel, leaving a consumer waiting
        # on a queue nothing will ever feed again.  Poll with a timeout
        # and re-check the stop flag so iteration always terminates.
        while not self._stop.is_set():
            try:
                item = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if item is self._DONE:
                break
            yield item
        if self._error is not None:
            raise self._error

    def close(self) -> None:
        """Stop the producer thread and discard buffered chunks.

        Idempotent.  A source exception captured before the close is kept;
        any consumer still iterating will observe it (or a clean stop)
        rather than hanging.
        """
        self._stop.set()
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "BoundedChunkFeeder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
