"""Record sampling (paper Section 6, "Combining with sampling").

"Given the massive volumes of data generated in large networks, sampling
is increasingly being used in ISP network measurement infrastructures...
We plan to explore combining sampling techniques with our approach for
increased scalability."

Two standard estimator-preserving samplers:

* :func:`sample_records` -- uniform record sampling at rate ``p`` with
  inverse-probability (Horvitz-Thompson) re-weighting of the value field:
  each kept record's bytes are scaled by ``1/p`` so all per-key totals --
  and hence sketch contents -- remain unbiased.
* :func:`sample_and_hold_keys` -- skip the re-weighting and keep raw
  values (what naive NetFlow sampling does); provided so the bias is
  demonstrable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.streams.records import validate_records


def sample_records(
    records: np.ndarray,
    rate: float,
    seed: Optional[int] = 0,
    reweight: bool = True,
) -> np.ndarray:
    """Uniformly sample flow records, optionally re-weighting bytes/packets.

    Parameters
    ----------
    records:
        Flow record array.
    rate:
        Keep probability ``p`` in (0, 1].
    seed:
        Sampling RNG seed.
    reweight:
        Scale kept records' ``bytes`` and ``packets`` by ``1/p`` so that
        expected per-key totals are preserved (unbiased sketches).  With
        ``reweight=False`` totals shrink by ``p`` -- fine for *relative*
        change detection as long as the rate is constant over time, but
        biased in absolute terms.

    Returns
    -------
    A new record array (the input is never modified).
    """
    validate_records(records)
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    if rate == 1.0:
        return records.copy()
    rng = np.random.default_rng(seed)
    kept = records[rng.random(len(records)) < rate].copy()
    if reweight and len(kept):
        scale = 1.0 / rate
        kept["bytes"] = np.round(kept["bytes"] * scale).astype(np.uint64)
        kept["packets"] = np.maximum(
            np.round(kept["packets"] * scale), 1
        ).astype(np.uint32)
    return kept


def sample_and_hold_keys(
    records: np.ndarray, rate: float, seed: Optional[int] = 0
) -> np.ndarray:
    """Uniform sampling *without* re-weighting (naive NetFlow sampling)."""
    return sample_records(records, rate, seed=seed, reweight=False)


def sampling_error_scale(rate: float, mean_records_per_key: float) -> float:
    """Rough relative standard error of a key's sampled total.

    For a key receiving ``n`` records of comparable size, binomial
    sampling at rate ``p`` gives a relative standard error of roughly
    ``sqrt((1 - p) / (p * n))``.  Useful for choosing a rate: keys with
    many records survive aggressive sampling; single-record keys do not.
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    if mean_records_per_key <= 0:
        raise ValueError(
            f"mean_records_per_key must be > 0, got {mean_records_per_key}"
        )
    return float(np.sqrt((1.0 - rate) / (rate * mean_records_per_key)))
