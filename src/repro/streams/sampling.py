"""Record sampling (paper Section 6, "Combining with sampling").

"Given the massive volumes of data generated in large networks, sampling
is increasingly being used in ISP network measurement infrastructures...
We plan to explore combining sampling techniques with our approach for
increased scalability."

Two standard estimator-preserving samplers:

* :func:`sample_records` -- uniform record sampling at rate ``p`` with
  inverse-probability (Horvitz-Thompson) re-weighting of the value field:
  each kept record's bytes are scaled by ``1/p`` so all per-key totals --
  and hence sketch contents -- remain unbiased.
* :func:`sample_and_hold_keys` -- skip the re-weighting and keep raw
  values (what naive NetFlow sampling does); provided so the bias is
  demonstrable.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.streams.records import validate_records

_U64_MAX = np.uint64(np.iinfo(np.uint64).max)
_U32_MAX = np.uint64(np.iinfo(np.uint32).max)
_MASK32 = np.uint64(0xFFFFFFFF)


def _exact_scale_round(values: np.ndarray, rate: float) -> np.ndarray:
    """Round-half-even ``values * (1/rate)`` in exact integer arithmetic.

    The obvious ``np.round(values * (1.0 / rate))`` computes the product
    in float64, which silently truncates any ``uint64`` above ``2**53``
    *before* scaling, and wraps around (modulo ``2**64``) on the cast
    back -- a re-weighted total could come out *smaller* than the input,
    or even zero.  This helper instead decomposes the float64 scale
    exactly as ``sig * 2**(e - 53)`` (``sig`` a 53-bit integer), forms
    the full 128-bit product ``values * sig`` with 32-bit limbs, and
    shifts it back down with round-half-even on the dropped bits -- the
    same rounding mode as ``np.round``, so results are bit-identical to
    the float path everywhere the float path was exact.  Results that
    exceed ``2**64 - 1`` saturate instead of wrapping.

    ``values`` must be uint64; returns uint64.
    """
    scale = 1.0 / rate
    m, e = math.frexp(scale)  # scale == m * 2**e, m in [0.5, 1)
    sig = int(m * (1 << 53))  # 53-bit significand; exact for any float64
    shift = 53 - e  # values * scale == (values * sig) >> shift

    b = values.astype(np.uint64, copy=False)
    b_lo = b & _MASK32
    b_hi = b >> np.uint64(32)
    s_lo = np.uint64(sig & 0xFFFFFFFF)
    s_hi = np.uint64(sig >> 32)  # < 2**21

    # 64x64 -> 128-bit product P = hi * 2**64 + lo (numpy uint64 wraps
    # silently, which is exactly what the limb arithmetic needs).
    lo = b * np.uint64(sig)
    t = b_lo * s_lo
    u = b_hi * s_lo + (t >> np.uint64(32))
    v = b_lo * s_hi + (u & _MASK32)
    hi = b_hi * s_hi + (u >> np.uint64(32)) + (v >> np.uint64(32))

    if shift <= 0:
        # Scale is >= 2**53: pure left shift, no rounding.
        k = -shift
        if k >= 64:
            return np.where(b == 0, np.uint64(0), _U64_MAX)
        overflow = hi != 0
        if k > 0:
            overflow |= (lo >> np.uint64(64 - k)) != 0
        return np.where(overflow, _U64_MAX, lo << np.uint64(k))

    # shift in [1, 52]: P >> shift with round-half-even on dropped bits.
    sh = np.uint64(shift)
    overflow = (hi >> sh) != 0
    q = (hi << np.uint64(64 - shift)) | (lo >> sh)
    dropped = lo & ((np.uint64(1) << sh) - np.uint64(1))
    half = np.uint64(1) << (sh - np.uint64(1))
    round_up = (dropped > half) | (
        (dropped == half) & ((q & np.uint64(1)) == np.uint64(1))
    )
    overflow |= round_up & (q == _U64_MAX)
    return np.where(overflow, _U64_MAX, q + round_up.astype(np.uint64))


def sample_records(
    records: np.ndarray,
    rate: float,
    seed: Optional[int] = 0,
    reweight: bool = True,
) -> np.ndarray:
    """Uniformly sample flow records, optionally re-weighting bytes/packets.

    Parameters
    ----------
    records:
        Flow record array.
    rate:
        Keep probability ``p`` in (0, 1].
    seed:
        Sampling RNG seed.
    reweight:
        Scale kept records' ``bytes`` and ``packets`` by ``1/p`` so that
        expected per-key totals are preserved (unbiased sketches).  With
        ``reweight=False`` totals shrink by ``p`` -- fine for *relative*
        change detection as long as the rate is constant over time, but
        biased in absolute terms.

    Returns
    -------
    A new record array (the input is never modified).

    Notes
    -----
    Re-weighting is integer-exact: byte counts above ``2**53`` (where
    float64 can no longer represent every integer) scale without
    precision loss, and results that would exceed the field's integer
    range saturate at its maximum rather than wrapping around.  A kept
    record with nonzero bytes therefore never re-weights to zero.  An
    earlier float64 implementation silently violated both properties --
    see ``_exact_scale_round``.
    """
    validate_records(records)
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    if rate == 1.0:
        return records.copy()
    rng = np.random.default_rng(seed)
    kept = records[rng.random(len(records)) < rate].copy()
    if reweight and len(kept):
        scaled = _exact_scale_round(kept["bytes"], rate)
        # Guard clamp: rate is in (0, 1) here so the scale is > 1 and an
        # exact nonzero product can never round to zero, but keep the
        # invariant explicit -- nonzero in, nonzero out.
        kept["bytes"] = np.maximum(
            scaled, (kept["bytes"] > 0).astype(np.uint64)
        )
        packets = _exact_scale_round(
            kept["packets"].astype(np.uint64), rate
        )
        kept["packets"] = np.maximum(
            np.minimum(packets, _U32_MAX), np.uint64(1)
        ).astype(np.uint32)
    return kept


def sample_and_hold_keys(
    records: np.ndarray, rate: float, seed: Optional[int] = 0
) -> np.ndarray:
    """Uniform sampling *without* re-weighting (naive NetFlow sampling)."""
    return sample_records(records, rate, seed=seed, reweight=False)


def sampling_error_scale(rate: float, mean_records_per_key: float) -> float:
    """Rough relative standard error of a key's sampled total.

    For a key receiving ``n`` records of comparable size, binomial
    sampling at rate ``p`` gives a relative standard error of roughly
    ``sqrt((1 - p) / (p * n))``.  Useful for choosing a rate: keys with
    many records survive aggressive sampling; single-record keys do not.
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    if mean_records_per_key <= 0:
        raise ValueError(
            f"mean_records_per_key must be > 0, got {mean_records_per_key}"
        )
    return float(np.sqrt((1.0 - rate) / (rate * mean_records_per_key)))
