"""Binary and CSV trace files: the stand-in for NetFlow dumps.

The binary format is a 16-byte header followed by raw
:data:`~repro.streams.records.FLOW_RECORD_DTYPE` records:

======  ====  =========================================
offset  size  field
======  ====  =========================================
0       4     magic ``b"KSZC"`` (the authors' initials)
4       4     format version (little-endian uint32)
8       8     record count (little-endian uint64)
======  ====  =========================================

Reading memory-maps nothing and validates the header and length, so a
truncated or foreign file fails loudly instead of yielding garbage
records.  CSV I/O is provided for interoperability and eyeballing.
"""

from __future__ import annotations

import csv
import os
import struct
from pathlib import Path
from typing import Union

import numpy as np

from repro.streams.records import FLOW_RECORD_DTYPE, empty_records, validate_records

NETFLOW_MAGIC = b"KSZC"
_FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sIQ")

PathLike = Union[str, os.PathLike]

_CSV_FIELDS = (
    "timestamp",
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "protocol",
    "packets",
    "bytes",
)


def write_trace(path: PathLike, records: np.ndarray) -> None:
    """Write a record array to a binary trace file."""
    validate_records(records)
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(NETFLOW_MAGIC, _FORMAT_VERSION, len(records)))
        records.tofile(fh)


def read_trace(path: PathLike) -> np.ndarray:
    """Read a binary trace file, validating magic, version and length."""
    path = Path(path)
    file_size = path.stat().st_size
    with open(path, "rb") as fh:
        header = fh.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise ValueError(f"{path}: file too short for a trace header")
        magic, version, count = _HEADER.unpack(header)
        if magic != NETFLOW_MAGIC:
            raise ValueError(f"{path}: bad magic {magic!r} (not a trace file)")
        if version != _FORMAT_VERSION:
            raise ValueError(f"{path}: unsupported format version {version}")
        expected = _HEADER.size + count * FLOW_RECORD_DTYPE.itemsize
        if file_size != expected:
            raise ValueError(
                f"{path}: size {file_size} does not match header "
                f"(expected {expected} for {count} records)"
            )
        return np.fromfile(fh, dtype=FLOW_RECORD_DTYPE, count=count)


def write_trace_csv(path: PathLike, records: np.ndarray) -> None:
    """Write records as CSV with a header row (for interchange/debugging)."""
    validate_records(records)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_FIELDS)
        for rec in records:
            writer.writerow(
                [
                    repr(float(rec["timestamp"])),
                    int(rec["src_ip"]),
                    int(rec["dst_ip"]),
                    int(rec["src_port"]),
                    int(rec["dst_port"]),
                    int(rec["protocol"]),
                    int(rec["packets"]),
                    int(rec["bytes"]),
                ]
            )


def read_trace_csv(path: PathLike) -> np.ndarray:
    """Read records from CSV produced by :func:`write_trace_csv`."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None or tuple(header) != _CSV_FIELDS:
            raise ValueError(f"{path}: unexpected CSV header {header}")
        rows = list(reader)
    records = empty_records(len(rows))
    for i, row in enumerate(rows):
        records[i]["timestamp"] = float(row[0])
        records[i]["src_ip"] = int(row[1])
        records[i]["dst_ip"] = int(row[2])
        records[i]["src_port"] = int(row[3])
        records[i]["dst_port"] = int(row[4])
        records[i]["protocol"] = int(row[5])
        records[i]["packets"] = int(row[6])
        records[i]["bytes"] = int(row[7])
    return records
