"""Key and value schemes: from flow records to Turnstile ``(key, update)``.

The Turnstile model is agnostic about what a key is; the paper instantiates
keys from header fields ("source and destination IP addresses, source and
destination port numbers, protocol number... network prefixes or AS numbers
to achieve higher levels of aggregation") and uses **destination IP** with
**bytes** as the update in all reported experiments.

A :class:`KeyScheme` maps a record array to a uint64 key array; a
:class:`ValueScheme` maps it to a float64 update array.  Both are
registered by name so experiment configs can reference them as strings.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict

import numpy as np

from repro.streams.records import validate_records


class KeyScheme(abc.ABC):
    """Maps flow records to integer keys in ``[0, 2**bits)``."""

    #: human-readable scheme name
    name: str = ""
    #: key width in bits (sketches pick hash families based on this)
    bits: int = 32

    @abc.abstractmethod
    def extract(self, records: np.ndarray) -> np.ndarray:
        """Return the uint64 key for every record."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class DstIPKey(KeyScheme):
    """Destination IPv4 address -- the key used in the paper's evaluation."""

    name = "dst_ip"
    bits = 32

    def extract(self, records: np.ndarray) -> np.ndarray:
        validate_records(records)
        return records["dst_ip"].astype(np.uint64)


class SrcIPKey(KeyScheme):
    """Source IPv4 address (useful for scan/worm origin detection)."""

    name = "src_ip"
    bits = 32

    def extract(self, records: np.ndarray) -> np.ndarray:
        validate_records(records)
        return records["src_ip"].astype(np.uint64)


class SrcDstPairKey(KeyScheme):
    """``src_ip * 2**32 + dst_ip``: the paper's example of a 64-bit key space."""

    name = "src_dst_pair"
    bits = 64

    def extract(self, records: np.ndarray) -> np.ndarray:
        validate_records(records)
        return (records["src_ip"].astype(np.uint64) << np.uint64(32)) | records[
            "dst_ip"
        ].astype(np.uint64)


class DstPrefixKey(KeyScheme):
    """Destination prefix of configurable length: coarser aggregation.

    The paper notes keys can be "entities like network prefixes... to
    achieve higher levels of aggregation".  A ``/8`` prefix collapses the
    key space to 256 signals; ``/24`` keeps subnet-level granularity.
    """

    name = "dst_prefix"

    def __init__(self, prefix_len: int = 24) -> None:
        if not 0 < prefix_len <= 32:
            raise ValueError(f"prefix_len must be in (0, 32], got {prefix_len}")
        self.prefix_len = int(prefix_len)
        self.bits = 32

    def extract(self, records: np.ndarray) -> np.ndarray:
        validate_records(records)
        shift = np.uint64(32 - self.prefix_len)
        return (records["dst_ip"].astype(np.uint64) >> shift) << shift

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DstPrefixKey(prefix_len={self.prefix_len})"


class DstPortKey(KeyScheme):
    """Destination port (service-level aggregation; worm signatures)."""

    name = "dst_port"
    bits = 16

    def extract(self, records: np.ndarray) -> np.ndarray:
        validate_records(records)
        return records["dst_port"].astype(np.uint64)


class ProtoPortKey(KeyScheme):
    """``protocol * 2**16 + dst_port``: distinguishes TCP/UDP services."""

    name = "proto_port"
    bits = 24

    def extract(self, records: np.ndarray) -> np.ndarray:
        validate_records(records)
        return (records["protocol"].astype(np.uint64) << np.uint64(16)) | records[
            "dst_port"
        ].astype(np.uint64)


class ValueScheme:
    """Maps flow records to float64 updates (named extractor)."""

    def __init__(self, name: str, extractor: Callable[[np.ndarray], np.ndarray]):
        self.name = name
        self._extractor = extractor

    def extract(self, records: np.ndarray) -> np.ndarray:
        """Return the update value for every record."""
        validate_records(records)
        return self._extractor(records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ValueScheme({self.name!r})"


_KEY_SCHEMES: Dict[str, Callable[..., KeyScheme]] = {
    "dst_ip": DstIPKey,
    "src_ip": SrcIPKey,
    "src_dst_pair": SrcDstPairKey,
    "dst_prefix": DstPrefixKey,
    "dst_port": DstPortKey,
    "proto_port": ProtoPortKey,
}

_VALUE_SCHEMES: Dict[str, ValueScheme] = {
    "bytes": ValueScheme("bytes", lambda r: r["bytes"].astype(np.float64)),
    "packets": ValueScheme("packets", lambda r: r["packets"].astype(np.float64)),
    "count": ValueScheme("count", lambda r: np.ones(len(r), dtype=np.float64)),
}


def make_key_scheme(name: str, **params) -> KeyScheme:
    """Construct a key scheme by name (e.g. ``"dst_ip"``)."""
    try:
        factory = _KEY_SCHEMES[name]
    except KeyError:
        known = ", ".join(sorted(_KEY_SCHEMES))
        raise ValueError(f"unknown key scheme {name!r}; known: {known}") from None
    return factory(**params)


def make_value_scheme(name: str) -> ValueScheme:
    """Look up a value scheme by name (``"bytes"``, ``"packets"``, ``"count"``)."""
    try:
        return _VALUE_SCHEMES[name]
    except KeyError:
        known = ", ".join(sorted(_VALUE_SCHEMES))
        raise ValueError(f"unknown value scheme {name!r}; known: {known}") from None
