"""Flow record layout: a NetFlow-v5-like structured dtype.

The paper processes "netflow dumps from ten different routers in the
backbone of a tier-1 ISP".  We model each flow record with the fields the
experiments actually consume -- timestamps, the IPv4 address pair, ports,
protocol, and byte/packet totals -- as a NumPy structured array, which
gives columnar access (vectorized key extraction, time slicing) at NetFlow
file densities.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: One flow record.  36 bytes per record (packed, bytes field 4-byte aligned).
FLOW_RECORD_DTYPE = np.dtype(
    [
        ("timestamp", np.float64),  # flow start, seconds since trace epoch
        ("src_ip", np.uint32),
        ("dst_ip", np.uint32),
        ("src_port", np.uint16),
        ("dst_port", np.uint16),
        ("protocol", np.uint8),
        ("_pad", np.uint8, (3,)),   # keeps bytes field 4-byte aligned
        ("packets", np.uint32),
        ("bytes", np.uint64),
    ]
)


def empty_records(count: int = 0) -> np.ndarray:
    """Allocate a zeroed record array of the given length."""
    return np.zeros(count, dtype=FLOW_RECORD_DTYPE)


def make_records(
    timestamps,
    dst_ips,
    byte_counts,
    src_ips=None,
    src_ports=None,
    dst_ports=None,
    protocols=None,
    packet_counts=None,
) -> np.ndarray:
    """Assemble a record array from per-field arrays.

    Only the fields the paper's experiments use (timestamp, destination IP,
    bytes) are required; the rest default to zero / TCP.
    """
    timestamps = np.asarray(timestamps, dtype=np.float64)
    n = len(timestamps)
    records = empty_records(n)
    records["timestamp"] = timestamps
    records["dst_ip"] = np.asarray(dst_ips, dtype=np.uint32)
    records["bytes"] = np.asarray(byte_counts, dtype=np.uint64)
    if src_ips is not None:
        records["src_ip"] = np.asarray(src_ips, dtype=np.uint32)
    if src_ports is not None:
        records["src_port"] = np.asarray(src_ports, dtype=np.uint16)
    if dst_ports is not None:
        records["dst_port"] = np.asarray(dst_ports, dtype=np.uint16)
    records["protocol"] = (
        np.asarray(protocols, dtype=np.uint8) if protocols is not None else 6
    )
    if packet_counts is not None:
        records["packets"] = np.asarray(packet_counts, dtype=np.uint32)
    else:
        # Rough packet count: bytes / 1000 rounded up, at least 1.
        records["packets"] = np.maximum(records["bytes"] // 1000, 1).astype(np.uint32)
    return records


def validate_records(records: np.ndarray) -> None:
    """Raise ``ValueError`` if ``records`` is not a valid flow record array."""
    if not isinstance(records, np.ndarray) or records.dtype != FLOW_RECORD_DTYPE:
        raise ValueError(
            f"expected array of dtype FLOW_RECORD_DTYPE, got "
            f"{getattr(records, 'dtype', type(records))}"
        )
    if records.ndim != 1:
        raise ValueError(f"records must be one-dimensional, got {records.ndim}D")


def sort_by_time(records: np.ndarray) -> np.ndarray:
    """Return the records sorted by timestamp (stable)."""
    validate_records(records)
    order = np.argsort(records["timestamp"], kind="stable")
    return records[order]


def concat_records(parts: Sequence[np.ndarray], sort: bool = True) -> np.ndarray:
    """Concatenate record arrays, optionally re-sorting by time.

    Used by the traffic generator to merge background traffic with injected
    anomaly records.
    """
    for part in parts:
        validate_records(part)
    merged = np.concatenate(parts) if parts else empty_records(0)
    return sort_by_time(merged) if sort and len(merged) else merged
