"""Multi-pass grid search (paper Section 3.4.2).

Pass one lays a coarse grid over each continuous dimension; each following
pass re-centres a grid of the same arity on the previous best point with
the cell width shrunk by the division factor ("The second pass equally
subdivides range [a0-0.1, a0+0.1] into N=10 parts and repeats the
process").  Integer dimensions are swept exhaustively.  Inadmissible
points (e.g. non-stationary ARIMA coefficients) are skipped.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.forecast.base import Forecaster
from repro.gridsearch.objective import estimated_total_energy
from repro.gridsearch.search_spaces import ParamDict, ParameterSpace


@dataclass
class GridSearchResult:
    """Outcome of a grid search."""

    best_params: ParamDict
    best_energy: float
    evaluations: int
    passes: int

    def build(self, space: ParameterSpace) -> Forecaster:
        """Instantiate the winning forecaster."""
        return space.build(self.best_params)


def _axis(low: float, high: float, divisions: int) -> np.ndarray:
    return np.linspace(low, high, divisions)


def grid_search(
    space: ParameterSpace,
    objective: Callable[[Forecaster], float],
    passes: int = 2,
) -> GridSearchResult:
    """Minimize ``objective`` over a parameter space by multi-pass grid.

    Parameters
    ----------
    space:
        The model's parameter space.
    objective:
        Maps a built forecaster to its energy (lower is better); typically
        a closure over pre-built observed sketches calling
        :func:`~repro.gridsearch.objective.estimated_total_energy`.
    passes:
        Grid refinement passes (the paper uses 2).
    """
    if passes < 1:
        raise ValueError(f"passes must be >= 1, got {passes}")

    cont_names = list(space.continuous)
    int_names = list(space.integer)
    # Integer axes never shrink: enumerate them fully every pass.
    int_axes = [
        list(range(low, high + 1)) for low, high in space.integer.values()
    ]

    ranges: Dict[str, Tuple[float, float]] = dict(space.continuous)
    best_params: Optional[ParamDict] = None
    best_energy = float("inf")
    evaluations = 0

    for _ in range(passes):
        cont_axes = [
            _axis(*ranges[name], space.divisions) for name in cont_names
        ]
        for combo in itertools.product(*cont_axes, *int_axes):
            params: ParamDict = {}
            for i, name in enumerate(cont_names):
                params[name] = float(combo[i])
            for j, name in enumerate(int_names):
                params[name] = int(combo[len(cont_names) + j])
            if not space.is_valid(params):
                continue
            energy = objective(space.build(params))
            evaluations += 1
            if energy < best_energy:
                best_energy = energy
                best_params = params
        if best_params is None:
            raise RuntimeError(
                f"no admissible parameter point found for model {space.model!r}"
            )
        # Zoom each continuous range around the best point.
        new_ranges: Dict[str, Tuple[float, float]] = {}
        for name in cont_names:
            low, high = space.continuous[name]
            cur_low, cur_high = ranges[name]
            half_cell = (cur_high - cur_low) / max(space.divisions - 1, 1)
            centre = best_params[name]
            new_ranges[name] = (
                max(low, centre - half_cell),
                min(high, centre + half_cell),
            )
        ranges = new_ranges

    assert best_params is not None
    return GridSearchResult(
        best_params=best_params,
        best_energy=best_energy,
        evaluations=evaluations,
        passes=passes,
    )


def search_integer_window(
    space: ParameterSpace, objective: Callable[[Forecaster], float]
) -> GridSearchResult:
    """Direct sweep for window-only models (MA/SMA): one pass is exact."""
    return grid_search(space, objective, passes=1)


def search_model(
    model: str,
    observed: Sequence,
    skip_intervals: int = 0,
    passes: int = 2,
    max_window: int = 10,
) -> GridSearchResult:
    """Convenience wrapper: search a model over pre-built observed summaries.

    Uses estimated total energy on the supplied summaries as the objective
    (the paper computes it on H=1, K=8K sketches; pass such sketches in).
    """
    from repro.gridsearch.search_spaces import build_search_spaces

    spaces = build_search_spaces(max_window)
    try:
        space = spaces[model]
    except KeyError:
        known = ", ".join(sorted(spaces))
        raise ValueError(f"unknown model {model!r}; known: {known}") from None

    def objective(forecaster: Forecaster) -> float:
        return estimated_total_energy(observed, forecaster, skip_intervals)

    if space.continuous:
        return grid_search(space, objective, passes=passes)
    return search_integer_window(space, objective)
