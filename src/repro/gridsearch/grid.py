"""Multi-pass grid search (paper Section 3.4.2).

Pass one lays a coarse grid over each continuous dimension; each following
pass re-centres a grid of the same arity on the previous best point with
the cell width shrunk by the division factor ("The second pass equally
subdivides range [a0-0.1, a0+0.1] into N=10 parts and repeats the
process").  Integer dimensions are swept exhaustively.  Inadmissible
points (e.g. non-stationary ARIMA coefficients) are skipped.

Evaluation engines
------------------
The search itself is model-agnostic; how a pass's candidate points get
scored is pluggable:

* default -- build a forecaster per point and call ``objective`` (the
  original per-object path; always available).
* ``evaluate_many`` -- a batch scorer receiving the whole pass's candidate
  list at once.  :func:`search_model` wires this to
  :func:`~repro.gridsearch.objective.estimated_total_energy_batched` for
  the broadcastable smoothing models, so one vectorized sweep over the
  sketch tensor replaces hundreds of per-object forecast runs.
* ``n_jobs`` -- ``ProcessPoolExecutor`` fan-out over candidates for models
  that cannot broadcast (ARIMA); requires a picklable objective such as a
  :func:`~repro.gridsearch.objective.stack_total_energy` partial.

All engines score the same candidate list in the same order, so the
winning point (first minimum) is identical across them.
"""

from __future__ import annotations

import functools
import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.forecast.base import Forecaster
from repro.forecast.vectorized import VECTORIZABLE_MODELS
from repro.obs.recorder import NULL_RECORDER
from repro.gridsearch.objective import (
    coerce_tables,
    estimated_total_energy,
    estimated_total_energy_batched,
    stack_total_energy,
)
from repro.gridsearch.search_spaces import ParamDict, ParameterSpace


@dataclass
class GridSearchResult:
    """Outcome of a grid search."""

    best_params: ParamDict
    best_energy: float
    evaluations: int
    passes: int

    def build(self, space: ParameterSpace) -> Forecaster:
        """Instantiate the winning forecaster."""
        return space.build(self.best_params)


def _axis(low: float, high: float, divisions: int) -> np.ndarray:
    return np.linspace(low, high, divisions)


def grid_search(
    space: ParameterSpace,
    objective: Callable[[Forecaster], float],
    passes: int = 2,
    evaluate_many: Optional[Callable[[List[ParamDict]], Sequence[float]]] = None,
    n_jobs: Optional[int] = None,
    recorder=None,
) -> GridSearchResult:
    """Minimize ``objective`` over a parameter space by multi-pass grid.

    Parameters
    ----------
    space:
        The model's parameter space.
    objective:
        Maps a built forecaster to its energy (lower is better); typically
        a closure over pre-built observed sketches calling
        :func:`~repro.gridsearch.objective.estimated_total_energy`.
    passes:
        Grid refinement passes (the paper uses 2).
    evaluate_many:
        Optional batch scorer: maps the full list of admissible candidate
        parameter dicts of a pass to their energies (same order).  When
        given, ``objective`` is not called.
    n_jobs:
        Optional process count for parallel per-candidate evaluation
        (ignored when ``evaluate_many`` is given or ``n_jobs <= 1``).
        ``objective`` must be picklable.
    recorder:
        Optional :class:`~repro.obs.recorder.PipelineRecorder`: times each
        refinement pass (``gridsearch_pass`` stage), counts candidate
        evaluations (``repro_gridsearch_evaluations_total``, labelled by
        model) and emits a ``gridsearch_pass`` trace event per pass.
    """
    if passes < 1:
        raise ValueError(f"passes must be >= 1, got {passes}")
    obs = NULL_RECORDER if recorder is None else recorder

    cont_names = list(space.continuous)
    int_names = list(space.integer)
    # Integer axes never shrink: enumerate them fully every pass.
    int_axes = [
        list(range(low, high + 1)) for low, high in space.integer.values()
    ]

    ranges: Dict[str, Tuple[float, float]] = dict(space.continuous)
    best_params: Optional[ParamDict] = None
    best_energy = float("inf")
    evaluations = 0

    for pass_index in range(passes):
        cont_axes = [
            _axis(*ranges[name], space.divisions) for name in cont_names
        ]
        combos: List[ParamDict] = []
        for combo in itertools.product(*cont_axes, *int_axes):
            params: ParamDict = {}
            for i, name in enumerate(cont_names):
                params[name] = float(combo[i])
            for j, name in enumerate(int_names):
                params[name] = int(combo[len(cont_names) + j])
            if space.is_valid(params):
                combos.append(params)

        with obs.time("gridsearch_pass"):
            energies = _evaluate_candidates(
                space, objective, combos, evaluate_many, n_jobs
            )
        evaluations += len(combos)
        for params, energy in zip(combos, energies):
            if energy < best_energy:
                best_energy = float(energy)
                best_params = params
        if obs.enabled:
            obs.count(
                "repro_gridsearch_evaluations_total", len(combos),
                model=space.model,
            )
            obs.event(
                "gridsearch_pass", model=space.model, index=pass_index,
                candidates=len(combos), best_energy=best_energy,
            )

        if best_params is None:
            raise RuntimeError(
                f"no admissible parameter point found for model {space.model!r}"
            )
        # Zoom each continuous range around the best point.
        new_ranges: Dict[str, Tuple[float, float]] = {}
        for name in cont_names:
            low, high = space.continuous[name]
            cur_low, cur_high = ranges[name]
            half_cell = (cur_high - cur_low) / max(space.divisions - 1, 1)
            centre = best_params[name]
            new_ranges[name] = (
                max(low, centre - half_cell),
                min(high, centre + half_cell),
            )
        ranges = new_ranges

    assert best_params is not None
    return GridSearchResult(
        best_params=best_params,
        best_energy=best_energy,
        evaluations=evaluations,
        passes=passes,
    )


def _evaluate_candidates(
    space: ParameterSpace,
    objective: Callable[[Forecaster], float],
    combos: List[ParamDict],
    evaluate_many: Optional[Callable[[List[ParamDict]], Sequence[float]]],
    n_jobs: Optional[int],
) -> Sequence[float]:
    if not combos:
        return []
    if evaluate_many is not None:
        energies = list(evaluate_many(combos))
        if len(energies) != len(combos):
            raise ValueError(
                f"evaluate_many returned {len(energies)} energies for "
                f"{len(combos)} candidates"
            )
        return energies
    if n_jobs is not None and n_jobs > 1 and len(combos) > 1:
        forecasters = [space.build(params) for params in combos]
        chunksize = max(1, len(forecasters) // (int(n_jobs) * 4))
        with ProcessPoolExecutor(max_workers=int(n_jobs)) as pool:
            return list(pool.map(objective, forecasters, chunksize=chunksize))
    return [objective(space.build(params)) for params in combos]


def search_integer_window(
    space: ParameterSpace,
    objective: Callable[[Forecaster], float],
    evaluate_many: Optional[Callable[[List[ParamDict]], Sequence[float]]] = None,
    n_jobs: Optional[int] = None,
    recorder=None,
) -> GridSearchResult:
    """Direct sweep for window-only models (MA/SMA): one pass is exact."""
    return grid_search(
        space, objective, passes=1, evaluate_many=evaluate_many, n_jobs=n_jobs,
        recorder=recorder,
    )


def search_model(
    model: str,
    observed: Sequence,
    skip_intervals: int = 0,
    passes: int = 2,
    max_window: int = 10,
    engine: str = "auto",
    n_jobs: Optional[int] = None,
    recorder=None,
) -> GridSearchResult:
    """Convenience wrapper: search a model over pre-built observed summaries.

    Uses estimated total energy on the supplied summaries as the objective
    (the paper computes it on H=1, K=8K sketches; pass such sketches -- or
    a :class:`~repro.sketch.stack.SketchStack` -- in).

    Parameters
    ----------
    engine:
        ``"auto"`` (default) scores candidates against the sketch tensor:
        broadcastable models (MA/SMA/EWMA/NSHW) use the batched
        single-pass objective; others run per-candidate on raw tables
        (optionally across ``n_jobs`` processes).  ``"reference"`` forces
        the original per-object evaluation path.  When the observations
        cannot be stacked (e.g. exact ``DictVector`` summaries), ``auto``
        silently degrades to the reference path.
    n_jobs:
        Process fan-out for non-broadcastable models under ``auto``.
    recorder:
        Optional :class:`~repro.obs.recorder.PipelineRecorder`, forwarded
        to :func:`grid_search` (pass timings + evaluation counters).
    """
    from repro.gridsearch.search_spaces import build_search_spaces

    spaces = build_search_spaces(max_window)
    try:
        space = spaces[model]
    except KeyError:
        known = ", ".join(sorted(spaces))
        raise ValueError(f"unknown model {model!r}; known: {known}") from None
    if engine not in ("auto", "reference"):
        raise ValueError(f"engine must be 'auto' or 'reference', got {engine!r}")

    coerced = coerce_tables(observed) if engine == "auto" else None
    evaluate_many = None
    if coerced is not None:
        tables, width = coerced
        # Picklable objective over raw tables (reference-identical values).
        objective = functools.partial(
            stack_total_energy, tables, width, skip_intervals=skip_intervals
        )
        if model in VECTORIZABLE_MODELS:
            evaluate_many = functools.partial(
                estimated_total_energy_batched,
                tables,
                model,
                skip_intervals=skip_intervals,
            )
    else:
        n_jobs = None  # closures over arbitrary summaries do not pickle

        def objective(forecaster: Forecaster) -> float:
            return estimated_total_energy(observed, forecaster, skip_intervals)

    if space.continuous:
        return grid_search(
            space, objective, passes=passes,
            evaluate_many=evaluate_many, n_jobs=n_jobs, recorder=recorder,
        )
    return search_integer_window(
        space, objective, evaluate_many=evaluate_many, n_jobs=n_jobs,
        recorder=recorder,
    )
