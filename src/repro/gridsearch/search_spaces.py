"""Per-model parameter spaces for grid search and random sampling.

Ranges follow Section 4.2: moving-average windows from one interval up to
10 (300 s) or 12 (60 s) intervals; EWMA/NSHW smoothing constants
partitioned into 10 parts per pass; ARIMA coefficients in ``[-2, 2]``
partitioned into 7 parts (to contain the larger search space), filtered
for stationarity and invertibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.forecast.arima import is_invertible, is_stationary
from repro.forecast.base import Forecaster
from repro.forecast.model_zoo import make_forecaster

ParamDict = Dict[str, Any]


@dataclass
class ParameterSpace:
    """A searchable parameter space for one forecast model.

    Attributes
    ----------
    model:
        Registry name the builder forwards to.
    continuous:
        ``name -> (low, high)`` continuous ranges.
    integer:
        ``name -> (low, high)`` inclusive integer ranges.
    divisions:
        Grid points per continuous dimension per pass (the paper: 10 for
        smoothing models, 7 for ARIMA).
    validator:
        Optional admissibility predicate over a parameter dict.
    to_model_kwargs:
        Maps a flat parameter dict to ``make_forecaster`` keyword
        arguments (identity by default; ARIMA packs coefficient tuples).
    """

    model: str
    continuous: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    integer: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    divisions: int = 10
    validator: Optional[Callable[[ParamDict], bool]] = None
    to_model_kwargs: Callable[[ParamDict], ParamDict] = staticmethod(dict)

    def is_valid(self, params: ParamDict) -> bool:
        """Check a parameter dict against the validator (if any)."""
        return self.validator(params) if self.validator else True

    def build(self, params: ParamDict) -> Forecaster:
        """Construct the forecaster for a parameter dict."""
        return make_forecaster(self.model, **self.to_model_kwargs(params))


def _arima_kwargs(params: ParamDict) -> ParamDict:
    # Dropping only *trailing* zeros keeps (phi1, phi2) positional meaning;
    # an interior zero must stay.
    ar_full = (params.get("ar1", 0.0), params.get("ar2", 0.0))
    while len(ar_full) > 0 and ar_full[-1] == 0.0:
        ar_full = ar_full[:-1]
    ma_full = (params.get("ma1", 0.0), params.get("ma2", 0.0))
    while len(ma_full) > 0 and ma_full[-1] == 0.0:
        ma_full = ma_full[:-1]
    return {"ar": ar_full, "ma": ma_full}


def _arima_valid(params: ParamDict) -> bool:
    kwargs = _arima_kwargs(params)
    return is_stationary(kwargs["ar"]) and is_invertible(kwargs["ma"])


def build_search_spaces(max_window: int = 10) -> Dict[str, ParameterSpace]:
    """The paper's six search spaces; ``max_window`` is 10 at 300 s, 12 at 60 s."""
    arima_kwargs = dict(
        continuous={
            "ar1": (-2.0, 2.0),
            "ar2": (-2.0, 2.0),
            "ma1": (-2.0, 2.0),
            "ma2": (-2.0, 2.0),
        },
        divisions=7,
        validator=_arima_valid,
        to_model_kwargs=_arima_kwargs,
    )
    return {
        "ma": ParameterSpace(model="ma", integer={"window": (1, max_window)}),
        "sma": ParameterSpace(model="sma", integer={"window": (1, max_window)}),
        "ewma": ParameterSpace(model="ewma", continuous={"alpha": (0.1, 1.0)}),
        "nshw": ParameterSpace(
            model="nshw",
            continuous={"alpha": (0.1, 1.0), "beta": (0.1, 1.0)},
        ),
        "arima0": ParameterSpace(model="arima0", **arima_kwargs),
        "arima1": ParameterSpace(model="arima1", **arima_kwargs),
    }


#: Default spaces at 300-second intervals.
SEARCH_SPACES: Dict[str, ParameterSpace] = build_search_spaces()


def arima_coefficient_grid(
    divisions: int = 7, bound: float = 2.0
) -> List[ParamDict]:
    """All admissible ARIMA coefficient combinations on a uniform grid."""
    axis = np.linspace(-bound, bound, divisions)
    grid: List[ParamDict] = []
    for ar1 in axis:
        for ar2 in axis:
            for ma1 in axis:
                for ma2 in axis:
                    params = {
                        "ar1": float(ar1),
                        "ar2": float(ar2),
                        "ma1": float(ma1),
                        "ma2": float(ma2),
                    }
                    if _arima_valid(params):
                        grid.append(params)
    return grid


def random_parameters(
    model: str,
    rng: np.random.Generator,
    count: int,
    max_window: int = 10,
) -> List[ParamDict]:
    """Draw ``count`` random admissible parameter dicts for a model.

    This powers the paper's "random" experiments (Figures 1-3), which
    compare sketch and per-flow energies at parameter settings that were
    *not* carefully selected.
    """
    spaces = build_search_spaces(max_window)
    try:
        space = spaces[model]
    except KeyError:
        known = ", ".join(sorted(spaces))
        raise ValueError(f"unknown model {model!r}; known: {known}") from None
    out: List[ParamDict] = []
    attempts = 0
    while len(out) < count:
        attempts += 1
        if attempts > 1000 * count:
            raise RuntimeError(
                f"could not draw {count} valid parameter sets for {model}"
            )
        params: ParamDict = {}
        for name, (low, high) in space.continuous.items():
            params[name] = float(rng.uniform(low, high))
        for name, (low, high) in space.integer.items():
            params[name] = int(rng.integers(low, high + 1))
        if space.is_valid(params):
            out.append(params)
    return out
