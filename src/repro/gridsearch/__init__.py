"""Forecast-model parameter selection (paper Section 3.4.2).

The objective is the *estimated total energy* of forecast errors,
``sum_t ESTIMATEF2(Se(t))``, computed with a cheap sketch (the paper fixes
H=1, K=8K during search) -- avoiding any per-flow work.  Continuous
parameters are found by multi-pass grid search (each pass zooms into the
best cell of the previous one); integral parameters (window sizes) by
direct sweep; ARIMA coefficient grids are filtered for
stationarity/invertibility.
"""

from repro.gridsearch.factorial import (
    FactorialEffect,
    full_factorial,
    screening_report,
    yates,
)
from repro.gridsearch.grid import (
    GridSearchResult,
    grid_search,
    search_integer_window,
    search_model,
)
from repro.gridsearch.objective import (
    coerce_tables,
    estimated_total_energy,
    estimated_total_energy_batched,
    per_interval_energies,
    stack_total_energy,
)
from repro.gridsearch.search_spaces import (
    SEARCH_SPACES,
    ParameterSpace,
    arima_coefficient_grid,
    random_parameters,
)

__all__ = [
    "FactorialEffect",
    "GridSearchResult",
    "ParameterSpace",
    "SEARCH_SPACES",
    "arima_coefficient_grid",
    "coerce_tables",
    "estimated_total_energy",
    "estimated_total_energy_batched",
    "full_factorial",
    "grid_search",
    "per_interval_energies",
    "random_parameters",
    "screening_report",
    "search_integer_window",
    "search_model",
    "stack_total_energy",
    "yates",
]
