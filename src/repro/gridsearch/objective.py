"""The grid-search objective: estimated total energy of forecast errors.

"We try to find parameters that minimize the estimated total energy of
forecast errors sum_t F2_est(Se(t))" -- evaluated on sketches so the
search never needs per-flow state.  Warm-up intervals (both the model's
own warm-up and an optional leading exclusion window) are excluded so
models with longer warm-up are not unfairly rewarded with fewer scored
intervals... the paper scores only post-warm-up intervals; we align every
model on the same scored range via ``skip_intervals``.

Three evaluation tiers share one definition of the objective:

* :func:`estimated_total_energy` -- the reference per-object loop over any
  sequence of summaries (sketches, exact vectors, a ``SketchStack``).
* :func:`stack_total_energy` -- the same loop over a raw ``(T, H, K)``
  table tensor with an arbitrary forecaster; picklable arguments, so it is
  the worker for ``grid_search(n_jobs=...)`` process fan-out.
* :func:`estimated_total_energy_batched` -- scores *many* candidate
  parameter points of one vectorizable model against one stack in a single
  pass; smoothing recursions broadcast over a leading candidate axis
  (blocked to stay cache-resident).  Bit-identical to calling
  :func:`estimated_total_energy` per candidate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.forecast.base import Forecaster
from repro.forecast.vectorized import (
    VECTORIZABLE_MODELS,
    stack_errors,
)
from repro.sketch.stack import tables_estimate_f2

#: Candidates scored concurrently by the broadcast recursions.  Small
#: blocks keep the per-candidate state tensors resident in cache; ~4 was
#: fastest across the measured (T, H, K) shapes.
DEFAULT_CANDIDATE_BLOCK = 4


def estimated_total_energy(
    observed: Sequence,
    forecaster: Forecaster,
    skip_intervals: int = 0,
) -> float:
    """``sum_t ESTIMATEF2(Se(t))`` over intervals ``>= skip_intervals``.

    Parameters
    ----------
    observed:
        Pre-built observed summaries, one per interval (sketches during
        search; exact vectors when validating the search).
    forecaster:
        The candidate model (reset before use).
    skip_intervals:
        Score only intervals with index at or beyond this -- the "set aside
        the first hour of the four hour data sets for model warmup" rule.
        Models whose own warm-up extends past this still score the
        intervals they cover; see note below.

    Notes
    -----
    Intervals where the model is still warming up contribute nothing.  To
    compare models fairly, choose ``skip_intervals`` no smaller than the
    longest warm-up among the candidates (the paper's one-hour exclusion
    dominates every model's warm-up at both 300 s and 60 s intervals).
    """
    if skip_intervals < 0:
        raise ValueError(f"skip_intervals must be >= 0, got {skip_intervals}")
    forecaster.reset()
    total = 0.0
    for step in forecaster.run(observed):
        if step.error is None or step.index < skip_intervals:
            continue
        total += max(step.error.estimate_f2(), 0.0)
    return total


def per_interval_energies(
    observed: Sequence,
    forecaster: Forecaster,
    skip_intervals: int = 0,
) -> List[float]:
    """Per-interval ``ESTIMATEF2(Se(t))`` (clamped at 0) for scored intervals."""
    if skip_intervals < 0:
        raise ValueError(f"skip_intervals must be >= 0, got {skip_intervals}")
    forecaster.reset()
    energies: List[float] = []
    for step in forecaster.run(observed):
        if step.error is None or step.index < skip_intervals:
            continue
        energies.append(max(step.error.estimate_f2(), 0.0))
    return energies


# -- stack-based evaluation ------------------------------------------------


def coerce_tables(observed) -> Optional[Tuple[np.ndarray, int]]:
    """``(tables, width)`` for stack-able observations, else ``None``.

    Accepts a :class:`~repro.sketch.stack.SketchStack`, a sequence of
    same-schema k-ary sketches, or a raw ``(T, H, K)`` ndarray.  Exact
    summaries (``DictVector``) and other non-tabular states return ``None``
    so callers fall back to the per-object path.
    """
    tables = getattr(observed, "tables", None)
    if tables is not None:
        return np.asarray(tables), observed.schema.width
    if isinstance(observed, np.ndarray):
        if observed.ndim != 3:
            return None
        return observed, observed.shape[-1]
    from repro.sketch.kary import KArySketch

    try:
        first = observed[0]
    except (TypeError, KeyError, IndexError):
        return None
    if not isinstance(first, KArySketch):
        return None
    return (
        np.stack([np.asarray(s.table) for s in observed]),
        first.schema.width,
    )


def stack_total_energy(
    tables: np.ndarray,
    width: int,
    forecaster: Forecaster,
    skip_intervals: int = 0,
) -> float:
    """:func:`estimated_total_energy` over a raw table tensor.

    Runs an arbitrary forecaster directly on the ``(H, K)`` ndarrays of a
    stack (forecasters are state-agnostic), computing each scored
    interval's ESTIMATEF2 with the k-ary estimator.  Results equal the
    sketch-based reference; every argument is picklable, making this the
    process-pool worker for models that cannot broadcast (ARIMA).
    """
    if skip_intervals < 0:
        raise ValueError(f"skip_intervals must be >= 0, got {skip_intervals}")
    forecaster.reset()
    total = 0.0
    for t in range(tables.shape[0]):
        observed = tables[t]
        predicted = forecaster.forecast()
        if predicted is not None and t >= skip_intervals:
            error = observed - predicted
            total += max(float(tables_estimate_f2(error, width)), 0.0)
        forecaster.observe(observed)
    return total


def _scored_energy(
    errors: np.ndarray, width: int, first_index: int, skip_intervals: int
) -> float:
    """Sequentially accumulate clamped F2 over scored error intervals."""
    start = max(skip_intervals - first_index, 0)
    if start >= errors.shape[0]:
        return 0.0
    f2 = tables_estimate_f2(errors[start:], width)
    total = 0.0
    for value in f2:
        total += max(float(value), 0.0)
    return total


def estimated_total_energy_batched(
    observed,
    model: str,
    candidates: Sequence[Dict],
    skip_intervals: int = 0,
    block_size: int = DEFAULT_CANDIDATE_BLOCK,
) -> np.ndarray:
    """Score many parameter points of one model against one stack.

    Parameters
    ----------
    observed:
        ``SketchStack``, sequence of same-schema sketches, or ``(T, H, K)``
        ndarray.
    model:
        One of :data:`~repro.forecast.vectorized.VECTORIZABLE_MODELS`.
    candidates:
        Flat parameter dicts (``{"window": w}`` or ``{"alpha": a}`` /
        ``{"alpha": a, "beta": b}``).
    skip_intervals:
        Same leading-exclusion rule as :func:`estimated_total_energy`.
    block_size:
        Candidates evaluated concurrently by the broadcast recursions.

    Returns
    -------
    ``(len(candidates),)`` float64 energies, bit-identical to evaluating
    :func:`estimated_total_energy` per candidate.
    """
    if model not in VECTORIZABLE_MODELS:
        raise ValueError(
            f"model {model!r} cannot be batch-scored; expected one of "
            f"{VECTORIZABLE_MODELS}"
        )
    if skip_intervals < 0:
        raise ValueError(f"skip_intervals must be >= 0, got {skip_intervals}")
    coerced = coerce_tables(observed)
    if coerced is None:
        raise TypeError(
            "observed must be a SketchStack, sequence of k-ary sketches, "
            "or (T, H, K) ndarray"
        )
    tables, width = coerced
    candidates = list(candidates)
    energies = np.zeros(len(candidates), dtype=np.float64)
    if not candidates:
        return energies

    if model in ("ma", "sma"):
        for ci, params in enumerate(candidates):
            first, errors = stack_errors(
                model, tables, window=int(params["window"])
            )
            energies[ci] = _scored_energy(errors, width, first, skip_intervals)
        return energies

    block = max(int(block_size), 1)
    for start in range(0, len(candidates), block):
        chunk = candidates[start : start + block]
        if model == "ewma":
            alphas = np.array([float(p["alpha"]) for p in chunk])
            energies[start : start + len(chunk)] = _ewma_block_energy(
                tables, width, alphas, skip_intervals
            )
        else:  # nshw
            alphas = np.array([float(p["alpha"]) for p in chunk])
            betas = np.array([float(p["beta"]) for p in chunk])
            energies[start : start + len(chunk)] = _nshw_block_energy(
                tables, width, alphas, betas, skip_intervals
            )
    return energies


def _block_f2(errors: np.ndarray, width: int) -> np.ndarray:
    """Per-candidate ESTIMATEF2 of a ``(C, H, K)`` error block."""
    k = width
    sum_sq = np.einsum("chk,chk->ch", errors, errors)
    totals = errors[:, 0, :].sum(axis=1)
    per_row = (k / (k - 1.0)) * sum_sq - (totals * totals)[:, None] / (k - 1.0)
    return np.median(per_row, axis=1)


def _ewma_block_energy(
    tables: np.ndarray, width: int, alphas: np.ndarray, skip: int
) -> np.ndarray:
    """Total energies for a block of EWMA alphas in one streamed pass."""
    t_len = tables.shape[0]
    c_len = len(alphas)
    shape = (c_len,) + tables.shape[1:]
    energies = np.zeros(c_len, dtype=np.float64)
    if t_len < 2:
        return energies
    alpha = alphas[:, None, None]
    one_minus = 1.0 - alpha
    forecast = np.broadcast_to(tables[0], shape).copy()  # Sf(2) = So(1)
    work = np.empty(shape, dtype=np.float64)
    for t in range(1, t_len):
        if t >= skip:
            np.subtract(tables[t], forecast, out=work)
            energies += np.maximum(_block_f2(work, width), 0.0)
        if t == t_len - 1:
            break
        # Sf = So*alpha + Sf_prev*(1-alpha): the two addends commute
        # bitwise, so accumulate into the forecast buffer in place.
        np.multiply(tables[t], alpha, out=work)
        forecast *= one_minus
        forecast += work
    return energies


def _nshw_block_energy(
    tables: np.ndarray,
    width: int,
    alphas: np.ndarray,
    betas: np.ndarray,
    skip: int,
) -> np.ndarray:
    """Total energies for a block of NSHW (alpha, beta) points."""
    t_len = tables.shape[0]
    c_len = len(alphas)
    shape = (c_len,) + tables.shape[1:]
    energies = np.zeros(c_len, dtype=np.float64)
    if t_len < 3:
        return energies
    alpha = alphas[:, None, None]
    beta = betas[:, None, None]
    one_minus_a = 1.0 - alpha
    one_minus_b = 1.0 - beta
    smooth = np.broadcast_to(tables[0], shape).copy()
    trend = np.broadcast_to(tables[1] - tables[0], shape).copy()
    forecast = smooth + trend
    work = np.empty(shape, dtype=np.float64)
    scratch = np.empty(shape, dtype=np.float64)
    for t in range(2, t_len):
        if t >= skip:
            np.subtract(tables[t], forecast, out=work)
            energies += np.maximum(_block_f2(work, width), 0.0)
        if t == t_len - 1:
            break
        # new_smooth = So*alpha + Sf*(1-alpha), reference term order.
        np.multiply(tables[t], alpha, out=work)
        np.multiply(forecast, one_minus_a, out=scratch)
        work += scratch
        # trend = (new_smooth - smooth)*beta + trend*(1-beta): the two terms
        # commute bitwise under IEEE addition.
        np.subtract(work, smooth, out=scratch)
        scratch *= beta
        trend *= one_minus_b
        trend += scratch
        smooth[...] = work
        np.add(smooth, trend, out=forecast)
    return energies
