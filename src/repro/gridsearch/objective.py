"""The grid-search objective: estimated total energy of forecast errors.

"We try to find parameters that minimize the estimated total energy of
forecast errors sum_t F2_est(Se(t))" -- evaluated on sketches so the
search never needs per-flow state.  Warm-up intervals (both the model's
own warm-up and an optional leading exclusion window) are excluded so
models with longer warm-up are not unfairly rewarded with fewer scored
intervals... the paper scores only post-warm-up intervals; we align every
model on the same scored range via ``skip_intervals``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.forecast.base import Forecaster


def estimated_total_energy(
    observed: Sequence,
    forecaster: Forecaster,
    skip_intervals: int = 0,
) -> float:
    """``sum_t ESTIMATEF2(Se(t))`` over intervals ``>= skip_intervals``.

    Parameters
    ----------
    observed:
        Pre-built observed summaries, one per interval (sketches during
        search; exact vectors when validating the search).
    forecaster:
        The candidate model (reset before use).
    skip_intervals:
        Score only intervals with index at or beyond this -- the "set aside
        the first hour of the four hour data sets for model warmup" rule.
        Models whose own warm-up extends past this still score the
        intervals they cover; see note below.

    Notes
    -----
    Intervals where the model is still warming up contribute nothing.  To
    compare models fairly, choose ``skip_intervals`` no smaller than the
    longest warm-up among the candidates (the paper's one-hour exclusion
    dominates every model's warm-up at both 300 s and 60 s intervals).
    """
    if skip_intervals < 0:
        raise ValueError(f"skip_intervals must be >= 0, got {skip_intervals}")
    forecaster.reset()
    total = 0.0
    for step in forecaster.run(observed):
        if step.error is None or step.index < skip_intervals:
            continue
        total += max(step.error.estimate_f2(), 0.0)
    return total


def per_interval_energies(
    observed: Sequence,
    forecaster: Forecaster,
    skip_intervals: int = 0,
) -> List[float]:
    """Per-interval ``ESTIMATEF2(Se(t))`` (clamped at 0) for scored intervals."""
    if skip_intervals < 0:
        raise ValueError(f"skip_intervals must be >= 0, got {skip_intervals}")
    forecaster.reset()
    energies: List[float] = []
    for step in forecaster.run(observed):
        if step.error is None or step.index < skip_intervals:
            continue
        energies.append(max(step.error.estimate_f2(), 0.0))
    return energies
