"""Two-level full-factorial parameter screening with Yates' algorithm.

Paper Section 6: "The full factorial method [Box, Hunter & Hunter] in the
statistical experimental design domain can help in narrowing the number of
levels... The tedium related to having multiple runs can also be reduced
for example by using Yates algorithm."

A 2^k full-factorial design evaluates a response (here: some accuracy or
cost metric of the change-detection pipeline) at every combination of k
two-level factors (e.g. H in {1, 5}, K in {8K, 32K}, interval in {60,
300}).  Yates' algorithm then converts the 2^k responses into main-effect
and interaction estimates with k passes of pairwise sums/differences --
identifying which knobs matter and which are independent, exactly the use
the paper anticipates ("H has overall impact independent of other
parameters").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class FactorialEffect:
    """One estimated effect from a 2^k design.

    ``factors`` names the interacting factors (one name = a main effect;
    several = an interaction).  ``effect`` is the average response change
    when all named factors move low -> high together (standard Yates
    scaling: contrast / 2^(k-1); the empty term is the grand mean).
    """

    factors: Tuple[str, ...]
    effect: float

    @property
    def order(self) -> int:
        """1 for main effects, 2 for two-way interactions, ..."""
        return len(self.factors)

    @property
    def name(self) -> str:
        """Conventional label, e.g. ``"H"`` or ``"H:K"`` (``"mean"`` for order 0)."""
        return ":".join(self.factors) if self.factors else "mean"


def yates(responses: Sequence[float]) -> List[float]:
    """Yates' algorithm: contrasts of a 2^k design in standard order.

    ``responses`` must be in *standard (Yates) order*: the first factor
    alternates fastest.  Returns the 2^k contrast column after k passes of
    pairwise (sum, difference) operations; dividing entry ``i > 0`` by
    ``2^(k-1)`` gives the effect, and entry 0 by ``2^k`` the mean.
    """
    values = [float(v) for v in responses]
    n = len(values)
    if n == 0 or n & (n - 1):
        raise ValueError(f"need 2^k responses, got {n}")
    k = n.bit_length() - 1
    for _ in range(k):
        sums = [values[2 * i] + values[2 * i + 1] for i in range(n // 2)]
        diffs = [values[2 * i + 1] - values[2 * i] for i in range(n // 2)]
        values = sums + diffs
    return values


def full_factorial(
    factors: Mapping[str, Tuple[object, object]],
    response: Callable[[Dict[str, object]], float],
) -> List[FactorialEffect]:
    """Run a 2^k full-factorial experiment and estimate all effects.

    Parameters
    ----------
    factors:
        Ordered mapping ``name -> (low_level, high_level)``.
    response:
        Called once per combination with ``{name: level}``; its float
        result is the measured response.

    Returns
    -------
    Effects sorted by decreasing absolute magnitude (grand mean first
    removed to its own entry at the end).
    """
    if not factors:
        raise ValueError("need at least one factor")
    names = list(factors)
    k = len(names)
    # Standard (Yates) order: the first factor alternates fastest, i.e.
    # bit 0 of the run index drives factor 0.
    responses = []
    for index in range(2**k):
        setting = {
            name: factors[name][(index >> bit) & 1]
            for bit, name in enumerate(names)
        }
        responses.append(float(response(setting)))

    contrasts = yates(responses)
    effects = []
    for index in range(2**k):
        involved = tuple(
            names[bit] for bit in range(k) if (index >> bit) & 1
        )
        if index == 0:
            effect = contrasts[0] / 2**k  # grand mean
        else:
            effect = contrasts[index] / 2 ** (k - 1)
        effects.append(FactorialEffect(factors=involved, effect=effect))
    mean = effects[0]
    rest = sorted(effects[1:], key=lambda e: -abs(e.effect))
    return rest + [mean]


def screening_report(effects: Sequence[FactorialEffect]) -> str:
    """Text table of effects, largest magnitude first."""
    lines = [f"{'term':>12}  {'order':>5}  {'effect':>14}"]
    lines.append(f"{'-' * 12}  {'-' * 5}  {'-' * 14}")
    for effect in effects:
        lines.append(
            f"{effect.name:>12}  {effect.order:>5}  {effect.effect:>14.6g}"
        )
    return "\n".join(lines)
