"""Grid-searched (and random) forecast parameters, memoized per dataset.

The paper runs grid search once per (model, router, interval) combination
with H = 1, K = 8192 sketches, then reuses the winning parameters in every
accuracy experiment.  We do the same, memoizing results in-process so the
figure functions share one search.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from repro.detection.pipeline import summarize_stream
from repro.experiments.datasets import router_batches, warmup_intervals
from repro.gridsearch import random_parameters, search_model
from repro.sketch import KArySchema, SketchStack

#: Sketch dimensions the paper fixes during grid search.
SEARCH_DEPTH = 1
SEARCH_WIDTH = 8192


def _max_window(interval_seconds: float) -> int:
    """Paper Section 4.2: max MA window 10 at 300 s, 12 at 60 s."""
    return 12 if interval_seconds <= 60 else 10


@lru_cache(maxsize=128)
def best_parameters(
    router: str, model: str, interval_seconds: float = 300.0
) -> Tuple[Tuple[str, object], ...]:
    """Grid-search a model on a router trace; returns sorted param items.

    (Returned as a tuple of items so the result is hashable/cacheable;
    call ``dict()`` on it.)
    """
    batches = router_batches(router, interval_seconds)
    schema = KArySchema(depth=SEARCH_DEPTH, width=SEARCH_WIDTH, seed=0)
    # Stack the interval sketches into one (T, H, K) tensor so the search
    # runs on the vectorized engine (identical winner, one batched pass).
    observed = SketchStack.from_sketches(summarize_stream(batches, schema))
    result = search_model(
        model,
        observed,
        skip_intervals=warmup_intervals(interval_seconds),
        max_window=_max_window(interval_seconds),
    )
    from repro.gridsearch.search_spaces import build_search_spaces

    space = build_search_spaces(_max_window(interval_seconds))[model]
    kwargs = space.to_model_kwargs(result.best_params)
    return tuple(sorted(kwargs.items()))


def best_parameters_dict(
    router: str, model: str, interval_seconds: float = 300.0
) -> Dict[str, object]:
    """Dict form of :func:`best_parameters`."""
    return dict(best_parameters(router, model, interval_seconds))


def random_model_parameters(
    model: str,
    count: int,
    interval_seconds: float = 300.0,
    seed: int = 2003,
) -> List[Dict[str, object]]:
    """Random admissible parameter draws (the Figures 1-3 'random' runs).

    Returned dicts are already in ``make_forecaster`` keyword form (e.g.
    ARIMA grid axes ``ar1/ar2/ma1/ma2`` are packed into coefficient
    tuples).
    """
    from repro.gridsearch.search_spaces import build_search_spaces

    rng = np.random.default_rng(seed)
    space = build_search_spaces(_max_window(interval_seconds))[model]
    raw = random_parameters(
        model, rng, count, max_window=_max_window(interval_seconds)
    )
    return [space.to_model_kwargs(params) for params in raw]
