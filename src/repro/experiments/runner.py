"""Experiment registry and result container.

Figure/table functions register themselves under the paper's exhibit ids
(``fig01`` ... ``fig15``, ``table1``, ``gridsearch``); the CLI and the
benchmark harness run them by id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List


@dataclass
class FigureResult:
    """The regenerated data behind one paper exhibit.

    Attributes
    ----------
    experiment_id:
        Registry id (``"fig05"``, ``"table1"``, ...).
    title:
        The paper's caption, abbreviated.
    series:
        Structured data -- whatever shape the figure naturally has
        (dict of series name to values, nested dicts for panels).
    text:
        Pre-rendered tables matching the plotted rows/series.
    notes:
        Shape observations (who wins, where knees fall) for EXPERIMENTS.md.
    """

    experiment_id: str
    title: str
    series: Dict[str, Any]
    text: str
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable reproduction of the exhibit."""
        parts = [f"== {self.experiment_id}: {self.title} ==", self.text]
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n".join(parts)


_REGISTRY: Dict[str, Callable[..., FigureResult]] = {}


def register(experiment_id: str):
    """Decorator adding an experiment function to the registry."""

    def _register(func: Callable[..., FigureResult]):
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = func
        return func

    return _register


def list_experiments() -> List[str]:
    """Registered experiment ids, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def run_experiment(experiment_id: str, **kwargs) -> FigureResult:
    """Run one registered experiment by id."""
    _ensure_loaded()
    try:
        func = _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return func(**kwargs)


def _ensure_loaded() -> None:
    """Import the modules whose decorators populate the registry."""
    from repro.experiments import (  # noqa: F401  (import for side effects)
        figures_random,
        figures_threshold,
        figures_topn,
        tables,
    )
