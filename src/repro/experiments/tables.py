"""Table 1: running time of hash computation, UPDATE and ESTIMATE.

The paper times 10 million operations of its C implementation on two
workstations (400 MHz SGI R12k, 900 MHz UltraSPARC-III).  Absolute numbers
are incomparable across languages and two decades of hardware; the claims
that survive are *relative*: per-item costs are constant, UPDATE is of the
same order as hashing, and ESTIMATE costs a few times UPDATE.  We measure
the same three operations (H=5, K=2**16, as in the paper) over NumPy-batched
streams and report seconds per 10 M operations.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.evaluation.report import format_table
from repro.experiments.runner import FigureResult, register
from repro.sketch import KArySchema


def _time_op(func, total_items: int, batch: np.ndarray, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        func(batch)
    elapsed = time.perf_counter() - start
    done = repeats * len(batch)
    return elapsed * (total_items / done)


@register("table1")
def table1(
    items: int = 10_000_000,
    batch_size: int = 100_000,
    repeats: int = 10,
    depth: int = 5,
    width: int = 1 << 16,
) -> FigureResult:
    """Running time (seconds) to perform 10 M hash / UPDATE / ESTIMATE ops.

    ``repeats`` batches of ``batch_size`` keys are timed and scaled to
    ``items`` operations (timing all 10 M directly would only add noise).
    """
    schema = KArySchema(depth=depth, width=width, seed=0)
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 1 << 32, size=batch_size, dtype=np.uint64)
    values = rng.random(batch_size)
    sketch = schema.from_items(keys, values)

    def do_hash(batch):
        for h in schema.hashes:
            h.hash_array(batch)

    def do_update(batch):
        sketch.update_batch(batch, values)

    def do_estimate(batch):
        sketch.estimate_batch(batch)

    timings: Dict[str, float] = {
        f"compute {depth} hash values": _time_op(do_hash, items, keys, repeats),
        f"UPDATE (H={depth}, K=2^16)": _time_op(do_update, items, keys, repeats),
        f"ESTIMATE (H={depth}, K=2^16)": _time_op(do_estimate, items, keys, repeats),
    }
    rows = [[name, seconds] for name, seconds in timings.items()]
    text = format_table(
        ("operation", "seconds / 10M ops"),
        rows,
        title="Table 1: running time for 10 million operations (this machine)",
    )
    update_per_item_us = timings[f"UPDATE (H={depth}, K=2^16)"] / items * 1e6
    notes = [
        "paper (C, 2003 hardware): hash 0.34-0.89s, UPDATE 0.45-0.81s, "
        "ESTIMATE 1.46-2.69s per 10M ops",
        "surviving claims: constant per-item cost; ESTIMATE a small multiple "
        "of UPDATE",
        f"measured UPDATE cost: {update_per_item_us:.3f} microseconds/item",
    ]
    return FigureResult("table1", "Operation running time", timings, text, notes)
