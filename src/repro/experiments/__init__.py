"""Reproduction of every table and figure in the paper's evaluation.

Each ``figure__`/``table_`` function regenerates one exhibit's data on the
synthetic router fleet and returns a :class:`~repro.experiments.runner.FigureResult`
whose ``render()`` prints the same rows/series the paper plots.  See
DESIGN.md Section 4 for the experiment index and EXPERIMENTS.md for
paper-vs-measured numbers.
"""

from repro.experiments.datasets import (
    DEFAULT_DURATION,
    batches_for,
    clear_caches,
    router_batches,
    router_trace,
    warmup_intervals,
)
from repro.experiments.params import best_parameters, random_model_parameters
from repro.experiments.runner import FigureResult, list_experiments, run_experiment

__all__ = [
    "DEFAULT_DURATION",
    "FigureResult",
    "batches_for",
    "best_parameters",
    "clear_caches",
    "list_experiments",
    "random_model_parameters",
    "router_batches",
    "router_trace",
    "run_experiment",
    "warmup_intervals",
]
