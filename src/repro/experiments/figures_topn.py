"""Figures 4-9: top-N accuracy of sketch vs per-flow (paper Section 5.2.1).

For each interval, both pipelines rank that interval's keys by absolute
forecast error; the metric is the overlap similarity ``N_AB / N`` between
the per-flow top-N and the sketch top-N (or top-X*N).  Model parameters
come from grid search, as in the paper.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence

import numpy as np

from repro.evaluation.report import format_series_table
from repro.experiments.common import (
    PerFlowRun,
    SketchRun,
    cached_schema,
    mean_similarity,
    run_perflow,
    run_sketch,
)
from repro.experiments.datasets import router_batches, warmup_intervals
from repro.experiments.params import best_parameters_dict
from repro.experiments.runner import FigureResult, register

#: The N values the paper sweeps.
TOP_NS = (50, 100, 500, 1000)
#: The X factors for top-N vs top-X*N.
X_FACTORS = (1.0, 1.25, 1.5, 1.75, 2.0)


@lru_cache(maxsize=32)
def _perflow_run(router: str, model: str, interval_seconds: float) -> PerFlowRun:
    params = best_parameters_dict(router, model, interval_seconds)
    batches = router_batches(router, interval_seconds)
    return run_perflow(batches, model, skip=warmup_intervals(interval_seconds), **params)


def _sketch_run(
    router: str,
    model: str,
    interval_seconds: float,
    depth: int,
    width: int,
    rank_depth: int,
) -> SketchRun:
    params = best_parameters_dict(router, model, interval_seconds)
    batches = router_batches(router, interval_seconds)
    return run_sketch(
        batches,
        cached_schema(depth, width),
        model,
        rank_depth=rank_depth,
        skip=warmup_intervals(interval_seconds),
        **params,
    )


def _similarity_by_n(
    sketch: SketchRun,
    perflow: PerFlowRun,
    ns: Sequence[int] = TOP_NS,
    x: float = 1.0,
) -> Dict[int, float]:
    """Mean top-N (vs top-X*N sketch) similarity for each N."""
    out: Dict[int, float] = {}
    for n in ns:
        keep = int(round(x * n))
        sketch_lists = [keys[:keep] for keys in sketch.ranked_keys]
        perflow_lists = [perflow.top_n(i, n) for i in sketch.indices]
        out[n] = mean_similarity(sketch_lists, perflow_lists, n)
    return out


@register("fig04")
def figure04(router: str = "large", model: str = "ewma") -> FigureResult:
    """Similarity across time, H=5, K=32768, both intervals."""
    series: Dict[str, Dict[int, List[float]]] = {}
    texts = []
    for interval in (300.0, 60.0):
        sketch = _sketch_run(router, model, interval, depth=5, width=32768,
                             rank_depth=max(TOP_NS))
        perflow = _perflow_run(router, model, interval)
        per_time: Dict[int, List[float]] = {n: [] for n in TOP_NS}
        for pos, idx in enumerate(sketch.indices):
            for n in TOP_NS:
                pf = perflow.top_n(idx, n)
                sk = sketch.ranked_keys[pos][:n]
                overlap = len(np.intersect1d(np.unique(pf), np.unique(sk),
                                             assume_unique=True))
                per_time[n].append(overlap / (min(n, len(pf)) or 1))
        series[f"interval={int(interval)}"] = per_time
        texts.append(
            format_series_table(
                "t",
                sketch.indices,
                {f"TopN={n}": per_time[n] for n in TOP_NS},
                title=f"Similarity over time ({router} router, H=5, K=32768, "
                f"interval={int(interval)}s, model={model})",
            )
        )
    mins = [min(vals) for per_time in series.values() for vals in per_time.values()]
    notes = [
        "paper: similarity ~0.95 across all intervals even for N=1000",
        f"measured minimum similarity across time/N: {min(mins):.3f}",
        "dips align with the planted DoS/flash-crowd intervals: while one "
        "key's error dominates F2, the sketch noise floor (~L2/sqrt(K)) "
        "rises and mid-rank keys shuffle; small N stays near 1.0 throughout",
    ]
    return FigureResult("fig04", "Similarity across time", series, "\n\n".join(texts), notes)


def _similarity_vs_k(
    router: str,
    model: str,
    interval: float,
    widths: Sequence[int],
    depth: int = 5,
) -> Dict[int, Dict[int, float]]:
    """``{K: {N: mean similarity}}`` at fixed H."""
    perflow = _perflow_run(router, model, interval)
    out: Dict[int, Dict[int, float]] = {}
    for width in widths:
        sketch = _sketch_run(router, model, interval, depth, width,
                             rank_depth=max(TOP_NS))
        out[width] = _similarity_by_n(sketch, perflow)
    return out


def _render_vs_k(data: Dict[int, Dict[int, float]], title: str) -> str:
    widths = sorted(data)
    return format_series_table(
        "K",
        widths,
        {f"TopN={n}": [data[w][n] for w in widths] for n in TOP_NS},
        title=title,
    )


@register("fig05")
def figure05(router: str = "large", model: str = "ewma") -> FigureResult:
    """Mean similarity vs K (EWMA, large router, H=5, both intervals)."""
    widths = (8192, 32768, 65536)
    series = {}
    texts = []
    for interval in (300.0, 60.0):
        data = _similarity_vs_k(router, model, interval, widths)
        series[f"interval={int(interval)}"] = data
        texts.append(_render_vs_k(
            data,
            f"Mean similarity vs K ({router}, {model}, H=5, interval={int(interval)}s)",
        ))
    k32 = series["interval=300"][32768]
    notes = [
        "paper: for K=32K similarity is over 0.95 even for large N; "
        "K beyond 32K gives limited additional benefit",
        f"measured at K=32768 (300s): {k32}",
    ]
    return FigureResult("fig05", "Similarity vs K (EWMA, large)", series,
                        "\n\n".join(texts), notes)


@register("fig06")
def figure06(router: str = "large", model: str = "ewma") -> FigureResult:
    """Top-N vs top-X*N similarity (EWMA, K=8192, H=5, both intervals)."""
    ns = (50, 100, 500)
    series = {}
    texts = []
    for interval in (300.0, 60.0):
        perflow = _perflow_run(router, model, interval)
        sketch = _sketch_run(router, model, interval, depth=5, width=8192,
                             rank_depth=int(2.0 * max(ns)))
        data = {
            x: _similarity_by_n(sketch, perflow, ns=ns, x=x) for x in X_FACTORS
        }
        series[f"interval={int(interval)}"] = data
        texts.append(format_series_table(
            "X",
            list(X_FACTORS),
            {f"TopN={n}": [data[x][n] for x in X_FACTORS] for n in ns},
            title=f"Top-N vs top-X*N ({router}, {model}, H=5, K=8192, "
            f"interval={int(interval)}s)",
        ))
    d300 = series["interval=300"]
    notes = [
        "paper: X=1.5 already yields very high accuracy; larger X marginal",
        f"measured (300s) N=500: X=1.0 -> {d300[1.0][500]:.3f}, "
        f"X=1.5 -> {d300[1.5][500]:.3f}, X=2.0 -> {d300[2.0][500]:.3f}",
    ]
    return FigureResult("fig06", "Top-N vs top-X*N", series, "\n\n".join(texts), notes)


@register("fig07")
def figure07(router: str = "large", model: str = "ewma") -> FigureResult:
    """Effect of H at fixed K: (a) K=8192 @300s, (b) K=32768 @60s."""
    depths = (1, 5, 9, 25)
    panels = {"K=8192, interval=300": (8192, 300.0), "K=32768, interval=60": (32768, 60.0)}
    series = {}
    texts = []
    for label, (width, interval) in panels.items():
        perflow = _perflow_run(router, model, interval)
        data: Dict[int, Dict[int, float]] = {}
        for depth in depths:
            sketch = _sketch_run(router, model, interval, depth, width,
                                 rank_depth=max(TOP_NS))
            data[depth] = _similarity_by_n(sketch, perflow)
        series[label] = data
        texts.append(format_series_table(
            "H",
            list(depths),
            {f"TopN={n}": [data[h][n] for h in depths] for n in TOP_NS},
            title=f"Similarity vs H ({router}, {model}, {label})",
        ))
    notes = [
        "paper: with K=8192, H must reach ~9 for high similarity at large N; "
        "with K=32768, H=5 already suffices",
    ]
    return FigureResult("fig07", "Effect of H and K", series, "\n\n".join(texts), notes)


@register("fig08")
def figure08(router: str = "medium", model: str = "ewma") -> FigureResult:
    """Medium router, EWMA: (a) similarity vs K @300s, (b) top-X*N @60s."""
    data_a = _similarity_vs_k(router, model, 300.0, (8192, 32768, 65536))
    ns = (50, 100, 500)
    perflow = _perflow_run(router, model, 60.0)
    sketch = _sketch_run(router, model, 60.0, depth=5, width=8192,
                         rank_depth=int(2.0 * max(ns)))
    data_b = {x: _similarity_by_n(sketch, perflow, ns=ns, x=x) for x in X_FACTORS}
    texts = [
        _render_vs_k(data_a, f"(a) Similarity vs K ({router}, {model}, H=5, 300s)"),
        format_series_table(
            "X",
            list(X_FACTORS),
            {f"TopN={n}": [data_b[x][n] for x in X_FACTORS] for n in ns},
            title=f"(b) Top-N vs top-X*N ({router}, {model}, H=5, K=8192, 60s)",
        ),
    ]
    notes = ["paper: all router files show similar behaviour to the large router"]
    return FigureResult("fig08", "Similarity, medium router",
                        {"vs_k": data_a, "vs_x": data_b}, "\n\n".join(texts), notes)


@register("fig09")
def figure09(model: str = "arima0") -> FigureResult:
    """ARIMA0 similarity vs K for large and medium routers (300s)."""
    series = {}
    texts = []
    for router in ("large", "medium"):
        data = _similarity_vs_k(router, model, 300.0, (8192, 32768, 65536))
        series[router] = data
        texts.append(_render_vs_k(
            data, f"Similarity vs K ({router}, {model}, H=5, 300s)"
        ))
    notes = ["paper: all models show results similar to EWMA"]
    return FigureResult("fig09", "Similarity, ARIMA0", series, "\n\n".join(texts), notes)
