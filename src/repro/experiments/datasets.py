"""Synthetic dataset construction and caching for the experiments.

Each router trace is four simulated hours of background traffic (matching
the paper's "four hours worth of netflow dumps") plus a light sprinkling
of injected anomalies so forecast errors contain genuine changes, not just
sampling noise.  Traces and their interval batchings are memoized
in-process; ``REPRO_SCALE`` scales record volumes for heavier runs.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.streams import IntervalStream, concat_records
from repro.streams.model import KeyedUpdates
from repro.traffic import (
    TrafficGenerator,
    get_profile,
    inject_dos,
    inject_flash_crowd,
)

#: Four hours, as in the paper.
DEFAULT_DURATION = 4 * 3600.0


def _scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


@lru_cache(maxsize=16)
def router_trace(name: str, duration: float = DEFAULT_DURATION) -> np.ndarray:
    """Build (and memoize) the synthetic trace for one router.

    Two modest anomalies are planted in the second half of every trace --
    a DoS burst and a flash crowd -- so that "significant change" is a real
    phenomenon in the data rather than only tail noise.  Their actors live
    in address space the background never uses.
    """
    profile = get_profile(name, scale=_scale())
    records = TrafficGenerator(profile, duration=duration).generate()
    rng = np.random.default_rng(profile.seed + 9000)
    # Size anomalies relative to the router so they are significant but do
    # not dominate the trace's total energy.
    rate = max(2.0, profile.records_per_interval / 600.0)
    dos, _ = inject_dos(
        rng,
        start=duration * 0.55,
        end=duration * 0.60,
        records_per_second=rate,
        bytes_per_record=4000.0,
    )
    crowd, _ = inject_flash_crowd(
        rng,
        start=duration * 0.75,
        end=duration * 0.85,
        peak_records_per_second=rate,
        mean_bytes=6000.0,
    )
    return concat_records([records, dos, crowd])


@lru_cache(maxsize=32)
def router_batches(
    name: str,
    interval_seconds: float = 300.0,
    duration: float = DEFAULT_DURATION,
) -> Tuple[KeyedUpdates, ...]:
    """Interval batches (dst-IP keys, byte values) for one router trace."""
    records = router_trace(name, duration)
    stream = IntervalStream(records, interval_seconds=interval_seconds)
    return tuple(stream)


def batches_for(
    names,
    interval_seconds: float = 300.0,
    duration: float = DEFAULT_DURATION,
) -> List[Tuple[KeyedUpdates, ...]]:
    """Interval batches for several routers at once."""
    return [router_batches(name, interval_seconds, duration) for name in names]


def warmup_intervals(interval_seconds: float) -> int:
    """Intervals in the paper's one-hour warm-up exclusion window."""
    return int(round(3600.0 / interval_seconds))


def clear_caches() -> None:
    """Drop all memoized traces and batches (tests use this for isolation)."""
    router_trace.cache_clear()
    router_batches.cache_clear()
