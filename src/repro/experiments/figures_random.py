"""Figures 1-3 and the grid-search validation (paper Section 5.1).

These experiments compare the *total energy* of forecast errors computed
by the sketch pipeline against exact per-flow analysis, at randomly drawn
forecast parameters, across the router fleet.  The metric is the Relative
Difference (percent).  Figure 1 fixes (H=1, K=1024) and sweeps models;
Figure 2 sweeps H; Figure 3 sweeps K.

The Section 5.1.1 text experiment ("grid search is never worse than
random; in at least 20% of the cases random is at least twice as bad") is
reproduced by :func:`grid_search_validation`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.detection.pipeline import summarize_stream
from repro.evaluation.cdf import EmpiricalCDF
from repro.evaluation.metrics import relative_difference, total_energy
from repro.evaluation.report import format_table
from repro.experiments.common import cached_schema
from repro.experiments.datasets import router_batches, warmup_intervals
from repro.experiments.params import best_parameters_dict, random_model_parameters
from repro.experiments.runner import FigureResult, register
from repro.forecast import MODEL_NAMES, make_forecaster
from repro.gridsearch.objective import per_interval_energies
from repro.sketch.dense import DenseSchema, KeyIndex

#: The synthetic router fleet standing in for the paper's ten routers.
FLEET = ("large", "medium", "small", "edge-1", "edge-2", "peering")


def _dense_observed(batches):
    index = KeyIndex.from_streams([b.keys for b in batches])
    return summarize_stream(batches, DenseSchema(index))


def _relative_difference_samples(
    routers: Sequence[str],
    model: str,
    depth: int,
    width: int,
    interval_seconds: float,
    points: int,
    seed: int,
) -> List[float]:
    """Relative-difference samples over routers x random parameter points."""
    skip = warmup_intervals(interval_seconds)
    params_list = random_model_parameters(
        model, points, interval_seconds, seed=seed
    )
    samples: List[float] = []
    schema = cached_schema(depth, width)
    for router in routers:
        batches = router_batches(router, interval_seconds)
        dense_obs = _dense_observed(batches)
        sketch_obs = summarize_stream(batches, schema)
        for params in params_list:
            forecaster = make_forecaster(model, **params)
            exact = total_energy(per_interval_energies(dense_obs, forecaster, skip))
            est = total_energy(per_interval_energies(sketch_obs, forecaster, skip))
            samples.append(relative_difference(est, exact))
    return samples


def _cdf_rows(samples_by_series: Dict[str, List[float]]):
    """Quantile summary rows, one per series (the text form of a CDF plot)."""
    rows = []
    for name, samples in samples_by_series.items():
        cdf = EmpiricalCDF(samples)
        rows.append(
            [
                name,
                len(samples),
                cdf.quantile(0.05),
                cdf.quantile(0.5),
                cdf.quantile(0.95),
                cdf.worst_absolute(),
                100.0 * cdf.mass_within(-1.0, 1.0),
            ]
        )
    return rows


_CDF_HEADERS = (
    "series",
    "samples",
    "p5 (%)",
    "median (%)",
    "p95 (%)",
    "worst |.| (%)",
    "within ±1%",
)


@register("fig01")
def figure01(points_per_model: int = 5, routers: Sequence[str] = FLEET) -> FigureResult:
    """Relative-difference CDF, all six models, interval=300s, H=1, K=1024."""
    samples = {
        model: _relative_difference_samples(
            routers, model, depth=1, width=1024, interval_seconds=300.0,
            points=points_per_model, seed=11,
        )
        for model in MODEL_NAMES
    }
    text = format_table(
        _CDF_HEADERS,
        _cdf_rows(samples),
        title="Relative Difference CDF summary (interval=300s, H=1, K=1024, random params)",
    )
    worst = max(EmpiricalCDF(s).worst_absolute() for s in samples.values())
    notes = [
        "paper: mass concentrated near 0%; worst case -3.5% (NSHW)",
        f"measured worst absolute relative difference: {worst:.2f}%",
    ]
    return FigureResult("fig01", "Relative Difference CDF, all models", samples, text, notes)


@register("fig02")
def figure02(points_per_model: int = 5, routers: Sequence[str] = FLEET) -> FigureResult:
    """Relative-difference CDFs varying H (EWMA @K=1024, ARIMA0 @K=8192)."""
    panels = {"ewma": 1024, "arima0": 8192}
    samples: Dict[str, List[float]] = {}
    for model, width in panels.items():
        for depth in (1, 5, 9, 25):
            samples[f"{model} H={depth} K={width}"] = _relative_difference_samples(
                routers, model, depth=depth, width=width,
                interval_seconds=300.0, points=points_per_model, seed=13,
            )
    text = format_table(
        _CDF_HEADERS,
        _cdf_rows(samples),
        title="Relative Difference varying H (interval=300s, random params)",
    )
    notes = ["paper: no need to increase H beyond 5 for low relative difference"]
    return FigureResult("fig02", "Effect of H on Relative Difference", samples, text, notes)


@register("fig03")
def figure03(points_per_model: int = 5, routers: Sequence[str] = FLEET) -> FigureResult:
    """Relative-difference CDFs varying K at H=5 (EWMA, ARIMA0)."""
    samples: Dict[str, List[float]] = {}
    for model in ("ewma", "arima0"):
        for width in (1024, 8192, 65536):
            samples[f"{model} H=5 K={width}"] = _relative_difference_samples(
                routers, model, depth=5, width=width,
                interval_seconds=300.0, points=points_per_model, seed=17,
            )
    text = format_table(
        _CDF_HEADERS,
        _cdf_rows(samples),
        title="Relative Difference varying K (interval=300s, H=5, random params)",
    )
    notes = ["paper: once K = 8192 the relative difference becomes insignificant"]
    return FigureResult("fig03", "Effect of K on Relative Difference", samples, text, notes)


@register("gridsearch")
def grid_search_validation(
    routers: Sequence[str] = ("large", "medium", "small"),
    points_per_model: int = 5,
    interval_seconds: float = 300.0,
) -> FigureResult:
    """Section 5.1.1: grid-searched vs random parameters, scored per-flow.

    For every (router, model): run grid search (on H=1, K=8K sketches as
    the paper does), then score both the winner and random parameter draws
    with *exact per-flow* energy.  Verifies the paper's two claims: the
    winner is never worse than any random draw, and a sizable fraction of
    random draws are at least twice as bad.
    """
    skip = warmup_intervals(interval_seconds)
    rows = []
    never_worse = True
    ratios: List[float] = []
    for router in routers:
        batches = router_batches(router, interval_seconds)
        dense_obs = _dense_observed(batches)
        for model in MODEL_NAMES:
            best = best_parameters_dict(router, model, interval_seconds)
            best_energy = total_energy(
                per_interval_energies(dense_obs, make_forecaster(model, **best), skip)
            )
            random_energies = [
                total_energy(
                    per_interval_energies(
                        dense_obs, make_forecaster(model, **params), skip
                    )
                )
                for params in random_model_parameters(
                    model, points_per_model, interval_seconds, seed=23
                )
            ]
            worst_ratio = max(random_energies) / best_energy
            ratios.extend(e / best_energy for e in random_energies)
            if min(random_energies) < best_energy * (1.0 - 1e-9):
                never_worse = False
            rows.append(
                [router, model, best_energy, min(random_energies), worst_ratio]
            )
    frac_twice = float(np.mean([r >= 2.0 for r in ratios]))
    text = format_table(
        ("router", "model", "grid energy", "best random", "worst random / grid"),
        rows,
        title="Grid search vs random parameters (per-flow scored)",
    )
    notes = [
        f"grid search never worse than random: {never_worse} (paper: always true)",
        f"fraction of random draws >= 2x worse: {frac_twice:.0%} (paper: at least 20%)",
    ]
    series = {"rows": rows, "never_worse": never_worse, "frac_twice": frac_twice}
    return FigureResult("gridsearch", "Grid search validation", series, text, notes)
