"""Shared experiment machinery: streaming sketch runs and comparisons.

The accuracy figures all reduce to comparing, interval by interval, the
output of the sketch pipeline against the exact per-flow pipeline.  This
module runs the sketch side *streaming* (error sketches are consumed and
discarded immediately -- at H=25, K=64K a materialized 4-hour run would
hold hundreds of MB of tables) and materializes only the small artifacts
each figure needs: ranked key lists, over-threshold key sets and energy
series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.detection.perflow import PerFlowResult, run_per_flow
from repro.detection.pipeline import run_pipeline
from repro.evaluation.metrics import total_energy
from repro.forecast.base import Forecaster
from repro.forecast.model_zoo import make_forecaster
from repro.sketch import KArySchema
from repro.streams.model import KeyedUpdates


@dataclass
class SketchRun:
    """Streamed sketch-pipeline output for the intervals that scored.

    ``ranked_keys[i]`` holds that interval's keys sorted by decreasing
    absolute estimated error, truncated to ``rank_depth``;
    ``threshold_sets[T][i]`` the keys whose absolute error reached
    ``T * sqrt(ESTIMATEF2(Se))``.
    """

    indices: List[int] = field(default_factory=list)
    energies: List[float] = field(default_factory=list)
    ranked_keys: List[np.ndarray] = field(default_factory=list)
    threshold_sets: Dict[float, List[np.ndarray]] = field(default_factory=dict)

    @property
    def total_energy(self) -> float:
        """``sqrt(sum_t F2est(Se(t)))`` over scored intervals."""
        return total_energy(self.energies)


def run_sketch(
    batches: Sequence[KeyedUpdates],
    schema: KArySchema,
    forecaster: Union[Forecaster, str],
    rank_depth: int = 0,
    thresholds: Sequence[float] = (),
    skip: int = 0,
    **model_params,
) -> SketchRun:
    """Run the sketch pipeline once, harvesting per-interval artifacts.

    Parameters
    ----------
    batches:
        Interval batches of keyed updates.
    schema:
        The k-ary schema (H, K, hash functions).
    forecaster:
        Forecaster instance or model name (+ ``model_params``).
    rank_depth:
        Keep this many top keys by absolute error per interval (0: none).
    thresholds:
        ``T`` fractions for which to record over-threshold key sets.
    skip:
        Warm-up intervals excluded from scoring.
    """
    if isinstance(forecaster, str):
        forecaster = make_forecaster(forecaster, **model_params)
    elif model_params:
        raise ValueError("model_params only apply when forecaster is given by name")

    run = SketchRun(threshold_sets={t: [] for t in thresholds})
    for step in run_pipeline(batches, schema, forecaster):
        if step.error is None or step.index < skip:
            continue
        error = step.error
        keys = step.keys
        run.indices.append(step.index)
        f2 = max(error.estimate_f2(), 0.0)
        run.energies.append(f2)

        if not (rank_depth or thresholds):
            continue
        indices = schema.bucket_indices(keys) if len(keys) else None
        estimates = (
            error.estimate_batch(keys, indices=indices)
            if len(keys)
            else np.array([], dtype=np.float64)
        )
        magnitudes = np.abs(estimates)
        if rank_depth:
            order = np.lexsort((keys, -magnitudes))
            run.ranked_keys.append(keys[order[:rank_depth]])
        l2 = float(np.sqrt(f2))
        for t in thresholds:
            run.threshold_sets[t].append(keys[magnitudes >= t * l2])
    return run


@dataclass
class PerFlowRun:
    """Exact per-flow artifacts aligned with a :class:`SketchRun`."""

    indices: List[int]
    energies: List[float]
    result: PerFlowResult

    @property
    def total_energy(self) -> float:
        """Exact ``sqrt(sum_t F2(Se(t)))`` over scored intervals."""
        return total_energy(self.energies)

    def top_n(self, interval: int, n: int) -> np.ndarray:
        """Exact top-N keys at an (absolute) interval index."""
        return self.result.top_n(interval, n)

    def threshold_keys(self, interval: int, t: float) -> np.ndarray:
        """Exact over-threshold keys at an (absolute) interval index."""
        return self.result.threshold_keys(interval, t)


def run_perflow(
    batches: Sequence[KeyedUpdates],
    forecaster: Union[Forecaster, str],
    skip: int = 0,
    **model_params,
) -> PerFlowRun:
    """Exact per-flow pipeline with scoring aligned to :func:`run_sketch`."""
    result = run_per_flow(list(batches), forecaster, **model_params)
    indices = [
        i
        for i, err in enumerate(result.errors)
        if err is not None and i >= skip
    ]
    energies = [result.energies[i] for i in indices]
    return PerFlowRun(indices=indices, energies=energies, result=result)


def mean_similarity(
    sketch_lists: Sequence[np.ndarray],
    perflow_lists: Sequence[np.ndarray],
    n: int,
) -> float:
    """Mean over intervals of the paper's ``N_AB / N`` similarity."""
    if len(sketch_lists) != len(perflow_lists):
        raise ValueError(
            f"interval mismatch: {len(sketch_lists)} vs {len(perflow_lists)}"
        )
    if not sketch_lists:
        raise ValueError("no intervals to compare")
    sims = []
    for sk, pf in zip(sketch_lists, perflow_lists):
        pf_set = np.unique(pf)
        sk_set = np.unique(sk)
        denominator = min(n, len(pf_set)) or 1
        overlap = len(np.intersect1d(pf_set, sk_set, assume_unique=True))
        sims.append(overlap / denominator)
    return float(np.mean(sims))


@lru_cache(maxsize=64)
def cached_schema(depth: int, width: int, seed: int = 0) -> KArySchema:
    """Memoized schemas so repeated figures share hash tables."""
    return KArySchema(depth=depth, width=width, seed=seed)
