"""Figures 10-15: thresholding accuracy (paper Section 5.2.2).

Flows are selected when their absolute forecast error reaches a fraction
``T`` of the interval's error L2 norm.  Metrics: mean alarms per interval
(sketch vs per-flow), mean false-negative ratio and mean false-positive
ratio, as functions of K, H and T.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.evaluation.metrics import false_negative_ratio, false_positive_ratio
from repro.evaluation.report import format_series_table
from repro.experiments.common import (
    PerFlowRun,
    SketchRun,
    cached_schema,
    run_perflow,
    run_sketch,
)
from repro.experiments.datasets import router_batches, warmup_intervals
from repro.experiments.params import best_parameters_dict
from repro.experiments.runner import FigureResult, register

#: The threshold fractions the paper sweeps.
THRESHOLDS = (0.01, 0.02, 0.05, 0.07, 0.1)
#: K values in the thresholding figures.
WIDTHS = (8192, 32768, 65536)


@lru_cache(maxsize=32)
def _perflow_run(router: str, model: str, interval_seconds: float) -> PerFlowRun:
    params = best_parameters_dict(router, model, interval_seconds)
    batches = router_batches(router, interval_seconds)
    return run_perflow(batches, model, skip=warmup_intervals(interval_seconds), **params)


def _sketch_threshold_run(
    router: str, model: str, interval: float, depth: int, width: int
) -> SketchRun:
    params = best_parameters_dict(router, model, interval)
    batches = router_batches(router, interval)
    return run_sketch(
        batches,
        cached_schema(depth, width),
        model,
        thresholds=THRESHOLDS,
        skip=warmup_intervals(interval),
        **params,
    )


def _threshold_stats(
    sketch: SketchRun, perflow: PerFlowRun
) -> Dict[float, Tuple[float, float, float, float]]:
    """Per threshold: (pf alarms, sk alarms, mean FN ratio, mean FP ratio)."""
    out = {}
    for t in THRESHOLDS:
        pf_sets = [perflow.threshold_keys(i, t) for i in sketch.indices]
        sk_sets = sketch.threshold_sets[t]
        fn = [false_negative_ratio(pf, sk) for pf, sk in zip(pf_sets, sk_sets)]
        fp = [false_positive_ratio(pf, sk) for pf, sk in zip(pf_sets, sk_sets)]
        out[t] = (
            float(np.mean([len(s) for s in pf_sets])),
            float(np.mean([len(np.unique(s)) for s in sk_sets])),
            float(np.mean(fn)),
            float(np.mean(fp)),
        )
    return out


def _threshold_panel(
    router: str, model: str, interval: float
) -> Tuple[Dict, str, List[str]]:
    """The full three-panel exhibit used by Figures 10 and 11."""
    perflow = _perflow_run(router, model, interval)
    configs = [(1, 8192), (5, 8192), (5, 32768), (5, 65536)]
    stats = {
        (h, k): _threshold_stats(
            _sketch_threshold_run(router, model, interval, h, k), perflow
        )
        for h, k in configs
    }
    # Panel (a): number of alarms vs threshold.
    alarm_series = {
        f"sk(K={k},H={h})": [stats[(h, k)][t][1] for t in THRESHOLDS]
        for h, k in configs
    }
    alarm_series["pf"] = [stats[configs[0]][t][0] for t in THRESHOLDS]
    text_a = format_series_table(
        "T", list(THRESHOLDS), alarm_series,
        title=f"(a) mean #alarms vs threshold ({router}, {model}, "
        f"{int(interval)}s)",
    )
    # Panels (b) and (c): FN and FP vs K at H=5.
    h5 = [(5, k) for k in WIDTHS]
    fn_series = {
        f"Thresh={t}, H=5": [stats[hk][t][2] for hk in h5] for t in THRESHOLDS[:4]
    }
    fp_series = {
        f"Thresh={t}, H=5": [stats[hk][t][3] for hk in h5] for t in THRESHOLDS[:4]
    }
    text_b = format_series_table(
        "K", list(WIDTHS), fn_series,
        title=f"(b) mean false-negative ratio vs K ({router}, {model}, "
        f"{int(interval)}s)",
    )
    text_c = format_series_table(
        "K", list(WIDTHS), fp_series,
        title=f"(c) mean false-positive ratio vs K ({router}, {model}, "
        f"{int(interval)}s)",
    )
    fn32 = max(stats[(5, 32768)][t][2] for t in THRESHOLDS[1:])
    fp32 = max(stats[(5, 32768)][t][3] for t in THRESHOLDS[1:])
    notes = [
        "paper: H=1 inflates alarms; H=5 and K>=8K track per-flow closely; "
        "K>=32K keeps FN and FP ratios in the low percent range",
        f"measured at K=32768, H=5 (T>=0.02): worst FN={fn32:.3f}, worst FP={fp32:.3f}",
    ]
    return stats, "\n\n".join([text_a, text_b, text_c]), notes


@register("fig10")
def figure10(router: str = "large", model: str = "nshw") -> FigureResult:
    """Thresholding, large router, 60s interval, NSHW."""
    stats, text, notes = _threshold_panel(router, model, 60.0)
    return FigureResult("fig10", "Thresholding, NSHW, 60s", stats, text, notes)


@register("fig11")
def figure11(router: str = "large", model: str = "nshw") -> FigureResult:
    """Thresholding, large router, 300s interval, NSHW."""
    stats, text, notes = _threshold_panel(router, model, 300.0)
    return FigureResult("fig11", "Thresholding, NSHW, 300s", stats, text, notes)


def _ratio_figure(
    fig_id: str,
    models: Sequence[str],
    metric_index: int,
    metric_name: str,
    router: str = "medium",
    interval: float = 300.0,
) -> FigureResult:
    """FN or FP ratios vs K at H=5 for a pair of models (Figures 12-15)."""
    series = {}
    texts = []
    for model in models:
        perflow = _perflow_run(router, model, interval)
        data = {
            k: _threshold_stats(
                _sketch_threshold_run(router, model, interval, 5, k), perflow
            )
            for k in WIDTHS
        }
        series[model] = data
        texts.append(format_series_table(
            "K",
            list(WIDTHS),
            {
                f"Thresh={t}, H=5": [data[k][t][metric_index] for k in WIDTHS]
                for t in THRESHOLDS[:4]
            },
            title=f"mean {metric_name} ratio vs K ({router}, {model}, "
            f"{int(interval)}s)",
        ))
    worst = max(
        data[k][t][metric_index]
        for data in series.values()
        for k in (32768, 65536)
        for t in THRESHOLDS[1:]
    )
    notes = [
        f"paper: {metric_name} ratios well below 1% for thresholds > 0.01 at K>=32K",
        f"measured worst {metric_name} at K>=32K, T>=0.02: {worst:.4f}",
    ]
    title = f"{metric_name} ratios, {router} router, {'/'.join(models)}"
    return FigureResult(fig_id, title, series, "\n\n".join(texts), notes)


@register("fig12")
def figure12() -> FigureResult:
    """False negatives, medium router, 300s: EWMA and NSHW."""
    return _ratio_figure("fig12", ("ewma", "nshw"), 2, "false-negative")


@register("fig13")
def figure13() -> FigureResult:
    """False negatives, medium router, 300s: ARIMA0 and ARIMA1."""
    return _ratio_figure("fig13", ("arima0", "arima1"), 2, "false-negative")


@register("fig14")
def figure14() -> FigureResult:
    """False positives, medium router, 300s: EWMA and NSHW."""
    return _ratio_figure("fig14", ("ewma", "nshw"), 3, "false-positive")


@register("fig15")
def figure15() -> FigureResult:
    """False positives, medium router, 300s: ARIMA0 and ARIMA1."""
    return _ratio_figure("fig15", ("arima0", "arima1"), 3, "false-positive")
