"""Common interface for linear stream summaries.

A *linear summary* of a keyed update stream is any structure ``S`` such that
summarizing stream ``A`` then stream ``B`` equals summarizing ``A + B``, and
scaling the stream scales the summary.  Exact per-key vectors, k-ary
sketches, Count-Min tables and Count Sketches all satisfy this.

Linearity is the property the paper exploits to move time-series
forecasting from per-flow space into sketch space: since every forecast
model in Section 3.2 computes a *linear combination* of past observations,
one can apply the model to summaries instead of raw vectors and obtain the
summary of the forecast (and, crucially, of the forecast *error*).

Concrete implementations provide:

``update(key, value)`` / ``update_batch(keys, values)``
    Turnstile-model point updates (values may be negative).
``estimate(key)`` / ``estimate_batch(keys)``
    Reconstruct the per-key total (exact for :class:`DictVector`,
    probabilistic for sketches).
``estimate_f2()``
    Estimate the second moment ``F2 = sum_a v_a**2``.
``+``, ``-``, unary ``-``, ``*`` by scalar
    Linear arithmetic.  Sketches may only be combined when they share a
    schema (identical hash functions).
"""

from __future__ import annotations

import abc
import math
from typing import Iterable, Sequence, Tuple

import numpy as np


class SummaryConvention:
    """Shared helpers for argument normalization across summary types."""

    @staticmethod
    def as_key_array(keys) -> np.ndarray:
        """Coerce keys to a 1-D uint64 array."""
        arr = np.asarray(keys, dtype=np.uint64)
        if arr.ndim != 1:
            raise ValueError(f"keys must be one-dimensional, got shape {arr.shape}")
        return arr

    @staticmethod
    def as_value_array(values, length: int) -> np.ndarray:
        """Coerce values to a 1-D float64 array of ``length``.

        Non-finite updates are rejected: a single NaN would silently
        poison every counter its key touches (and the shared F2 estimate),
        so it must fail at the boundary, not corrupt downstream.
        """
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim == 0:
            arr = np.full(length, float(arr), dtype=np.float64)
        if arr.shape != (length,):
            raise ValueError(
                f"values must have shape ({length},), got {arr.shape}"
            )
        if len(arr) and not np.all(np.isfinite(arr)):
            bad = int(np.flatnonzero(~np.isfinite(arr))[0])
            raise ValueError(
                f"updates must be finite; found {arr[bad]} at position {bad}"
            )
        return arr


def accumulate_arrays(
    out: np.ndarray,
    terms: Sequence[Tuple[float, np.ndarray]],
    scratch: "np.ndarray | None" = None,
) -> np.ndarray:
    """In-place ``out[...] = sum(coeff * arr for coeff, arr in terms)``.

    The allocating reference loop (``acc = zeros; acc += coeff * arr``)
    materializes a fresh ``coeff * arr`` temporary per term.  This helper
    produces the same values with zero per-term temporaries:
    ``x + 1.0*y == x + y`` and ``x + (-1.0)*y == x - y`` exactly in
    IEEE-754, the first term is written directly instead of added to a
    zeroed table (identical except that exact-zero cells keep their sign
    instead of being normalized to ``+0.0`` -- invisible to ``==``), and
    the general-coefficient case routes the identical multiply-then-add
    through one reusable ``scratch`` buffer (allocated lazily when the
    caller does not supply it).

    ``out`` must not alias any term array -- it is overwritten first.
    """
    for _, arr in terms:
        if arr is out:
            raise ValueError(
                "accumulate_arrays destination may not appear in terms"
            )
    if not terms:
        out[...] = 0.0
        return out
    first_coeff, first = terms[0]
    if first_coeff == 1.0:
        np.copyto(out, first)
    elif first_coeff == -1.0:
        np.negative(first, out=out)
    else:
        np.multiply(first, first_coeff, out=out)
    for coeff, arr in terms[1:]:
        if coeff == 1.0:
            np.add(out, arr, out=out)
        elif coeff == -1.0:
            np.subtract(out, arr, out=out)
        else:
            if scratch is None:
                scratch = np.empty_like(out)
            np.multiply(arr, coeff, out=scratch)
            np.add(out, scratch, out=out)
    return out


class LinearSummary(abc.ABC):
    """Abstract base class for linear summaries of keyed update streams.

    Concrete types additionally implement ``combine_into(terms)`` -- the
    in-place counterpart of :meth:`_linear_combination` that overwrites the
    receiver with ``sum(c * s)`` without allocating a new summary, which is
    what lets the detection seal path reuse scratch summaries interval
    after interval.
    """

    @abc.abstractmethod
    def update_batch(self, keys, values) -> None:
        """Apply point updates ``A[keys[i]] += values[i]`` for all ``i``."""

    def update(self, key: int, value: float) -> None:
        """Apply a single point update ``A[key] += value``."""
        self.update_batch(
            np.asarray([key], dtype=np.uint64), np.asarray([value], dtype=np.float64)
        )

    @abc.abstractmethod
    def estimate_batch(self, keys) -> np.ndarray:
        """Reconstruct the totals for an array of keys."""

    def estimate(self, key: int) -> float:
        """Reconstruct the total for a single key."""
        return float(self.estimate_batch(np.asarray([key], dtype=np.uint64))[0])

    @abc.abstractmethod
    def estimate_f2(self) -> float:
        """Estimate the second moment ``F2 = sum_a v_a**2``."""

    def l2_norm(self) -> float:
        """The L2 norm ``sqrt(F2)`` (paper Section 3.1).

        The estimated F2 of an error summary can be marginally negative due
        to the unbiased estimator's variance; clamp at zero so the norm is
        always defined.
        """
        return math.sqrt(max(self.estimate_f2(), 0.0))

    # -- linear arithmetic -------------------------------------------------

    @abc.abstractmethod
    def _linear_combination(
        self, terms: Sequence[Tuple[float, "LinearSummary"]]
    ) -> "LinearSummary":
        """Return ``sum(c * s for c, s in terms)`` as a new summary."""

    def __add__(self, other: "LinearSummary") -> "LinearSummary":
        return self._linear_combination([(1.0, self), (1.0, other)])

    def __sub__(self, other: "LinearSummary") -> "LinearSummary":
        return self._linear_combination([(1.0, self), (-1.0, other)])

    def __mul__(self, scalar: float) -> "LinearSummary":
        if not np.isscalar(scalar):
            return NotImplemented
        return self._linear_combination([(float(scalar), self)])

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "LinearSummary":
        if not np.isscalar(scalar):
            return NotImplemented
        return self._linear_combination([(1.0 / float(scalar), self)])

    def __neg__(self) -> "LinearSummary":
        return self._linear_combination([(-1.0, self)])


def folded_width(schema) -> int:
    """Validate that ``schema`` can halve its width; return ``width // 2``.

    Width folding (Hokusai item aggregation) relies on every hash family
    reducing a width-independent 64-bit value modulo ``K``: since
    ``K/2`` divides ``K``, bucket ``j`` at width ``K`` is exactly bucket
    ``j mod K/2`` at width ``K/2``, so summing the two halves of each row
    reproduces the half-width table bit-for-bit.  That argument needs an
    even width, and a recoverable seed -- an entropy-seeded schema
    (``seed=None``) cannot rebuild matching half-width hash functions.
    """
    if schema.seed is None:
        raise ValueError(
            "cannot fold an entropy-seeded schema (seed=None): the "
            "half-width hash functions could not be rebuilt to match"
        )
    width = int(schema.width)
    if width % 2:
        raise ValueError(f"cannot fold odd width {width} in half")
    return width // 2


def resolve_folded_schema(schema, folded):
    """Return the half-width schema for a fold, validating a supplied one.

    ``folded=None`` builds a fresh schema via ``schema.folded()`` --
    expensive for tabulation families (2 MiB of tables per row), so
    callers folding repeatedly should build it once and pass it in.
    """
    half = folded_width(schema)
    if folded is None:
        return schema.folded()
    if type(folded) is not type(schema):
        raise TypeError(
            f"folded schema must be {type(schema).__name__}, "
            f"got {type(folded).__name__}"
        )
    if (
        folded.width != half
        or folded.depth != schema.depth
        or folded.seed != schema.seed
        or folded.family != schema.family
        or getattr(folded, "key_bits", 0) != getattr(schema, "key_bits", 0)
    ):
        raise ValueError(
            f"folded schema {folded!r} does not match half of {schema!r}: "
            "it must share depth, seed, and family at exactly half the width"
        )
    return folded


def linear_combination(
    coefficients: Iterable[float], summaries: Iterable[LinearSummary]
) -> LinearSummary:
    """Compute ``sum(c_i * S_i)`` -- the paper's COMBINE operation.

    All summaries must share a schema.  This is more efficient than chained
    ``+``/``*`` operators because intermediate summaries are not
    materialized.
    """
    terms = [(float(c), s) for c, s in zip(coefficients, summaries)]
    if not terms:
        raise ValueError("linear_combination requires at least one term")
    return terms[0][1]._linear_combination(terms)
