"""Exact per-key vectors: the per-flow ground truth.

Every accuracy experiment in the paper compares sketch output against exact
per-flow analysis.  :class:`DictVector` implements the same
:class:`~repro.sketch.base.LinearSummary` interface as the sketches -- so
the identical forecasting and change-detection pipeline can run in *exact*
space simply by swapping the schema -- but stores true per-key totals in a
dictionary.

This is precisely the thing the paper argues does not scale ("keeping
per-flow state is either too expensive or too slow"); here it is the oracle
that accuracy is measured against.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.sketch.base import LinearSummary, SummaryConvention


class ExactSchema:
    """Schema counterpart for exact summaries.

    Exists so exact and sketched pipelines are interchangeable: both expose
    ``empty()`` and ``from_items()``.  Carries no hash state.
    """

    def empty(self) -> "DictVector":
        """Return an empty exact vector."""
        return DictVector()

    def from_items(self, keys, values) -> "DictVector":
        """Build an exact vector from arrays of keys and updates."""
        vec = self.empty()
        vec.update_batch(keys, values)
        return vec

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ExactSchema()"


class DictVector(LinearSummary):
    """Exact keyed vector over the turnstile model.

    Supports the full linear-summary interface with zero error:
    ``estimate`` returns the true total and ``estimate_f2`` the true second
    moment.  Keys that were never updated (or whose total has been cancelled
    to exactly zero by negative updates) report 0.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Optional[Dict[int, float]] = None) -> None:
        self._data: Dict[int, float] = dict(data) if data else {}

    # -- updates -----------------------------------------------------------

    def update_batch(self, keys, values) -> None:
        keys = SummaryConvention.as_key_array(keys)
        values = SummaryConvention.as_value_array(values, len(keys))
        if not len(keys):
            return
        uniq, inverse = np.unique(keys, return_inverse=True)
        sums = np.bincount(inverse, weights=values, minlength=len(uniq))
        data = self._data
        for key, total in zip(uniq.tolist(), sums.tolist()):
            data[key] = data.get(key, 0.0) + total

    # -- queries -----------------------------------------------------------

    def estimate_batch(self, keys, indices=None) -> np.ndarray:
        """Exact totals for an array of keys.

        ``indices`` is accepted (and ignored) for signature compatibility
        with :meth:`repro.sketch.kary.KArySketch.estimate_batch`.
        """
        keys = SummaryConvention.as_key_array(keys)
        data = self._data
        return np.array([data.get(k, 0.0) for k in keys.tolist()], dtype=np.float64)

    def estimate_f2(self) -> float:
        """The true second moment ``sum_a v_a**2``."""
        values = np.fromiter(self._data.values(), dtype=np.float64, count=len(self._data))
        return float(values @ values)

    def total(self) -> float:
        """The exact sum of all updates."""
        return float(sum(self._data.values()))

    # -- container behaviour -------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return int(key) in self._data

    def __getitem__(self, key: int) -> float:
        return self._data.get(int(key), 0.0)

    def keys(self) -> Iterator[int]:
        """Iterate over keys that have received at least one update."""
        return iter(self._data.keys())

    def items(self) -> Iterator[Tuple[int, float]]:
        """Iterate over ``(key, total)`` pairs."""
        return iter(self._data.items())

    def key_array(self) -> np.ndarray:
        """All touched keys as a uint64 array."""
        return np.fromiter(self._data.keys(), dtype=np.uint64, count=len(self._data))

    def top_n(self, n: int) -> List[Tuple[int, float]]:
        """The ``n`` keys with largest absolute value, descending.

        Ties are broken by key so the ordering is deterministic.
        """
        ranked = sorted(
            self._data.items(), key=lambda kv: (-abs(kv[1]), kv[0])
        )
        return ranked[:n]

    def compact(self, tolerance: float = 0.0) -> None:
        """Drop entries whose absolute value is ``<= tolerance``.

        Turnstile streams with negative updates can cancel keys back to
        zero; compaction keeps the dictionary proportional to the number of
        live keys.
        """
        self._data = {
            k: v for k, v in self._data.items() if abs(v) > tolerance
        }

    # -- linearity -----------------------------------------------------------

    def _accumulate(
        self, out: Dict[int, float], terms: Sequence[Tuple[float, LinearSummary]]
    ) -> None:
        for coeff, summary in terms:
            if not isinstance(summary, DictVector):
                raise TypeError(
                    f"cannot combine DictVector with {type(summary).__name__}"
                )
            for key, value in summary._data.items():
                out[key] = out.get(key, 0.0) + coeff * value

    def combine_into(
        self, terms: Sequence[Tuple[float, LinearSummary]], scratch=None
    ) -> "DictVector":
        """In-place COMBINE: rebuild this vector's dict from ``terms``.

        A dict has no fixed-size buffer to reuse, so the win is API parity
        (the seal path can treat every summary type uniformly) rather than
        allocation savings; ``scratch`` is accepted and ignored.  The
        receiver must not appear in ``terms``.
        """
        for _, summary in terms:
            if summary is self:
                raise ValueError(
                    "combine_into destination may not appear in terms"
                )
        self._data.clear()
        self._accumulate(self._data, terms)
        return self

    def _linear_combination(
        self, terms: Sequence[Tuple[float, LinearSummary]]
    ) -> "DictVector":
        out: Dict[int, float] = {}
        self._accumulate(out, terms)
        return DictVector(out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DictVector(len={len(self._data)}, total={self.total():.6g})"
