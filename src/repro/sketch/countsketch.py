"""Count Sketch baseline (Charikar, Chen & Farach-Colton, ICALP 2002).

The paper describes the k-ary sketch as "similar to the count sketch data
structure recently proposed by Charikar et al.  However, the most common
operations on k-ary sketch use simpler operations and are more efficient".
The structural difference: Count Sketch pairs every bucket hash ``h_i`` with
a second *sign* hash ``s_i : [u] -> {-1, +1}`` and updates
``T[i][h_i(a)] += s_i(a) * u``; estimation multiplies the cell by the sign
again.  The sign randomization cancels collision bias, so no mean
correction is needed -- at the cost of one extra hash evaluation per row
per item, which is exactly the overhead the k-ary design removes.

Implemented here so the ablation benchmark can measure both structures'
accuracy (near-identical) and update cost (Count Sketch ~2x hash work) on
the same stream.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.hashing import (
    derive_seeds,
    fused_signed_update,
    gather_indices,
    make_family,
    make_stacked,
)
from repro.sketch.base import (
    LinearSummary,
    SummaryConvention,
    accumulate_arrays,
    folded_width,
    resolve_folded_schema,
)


class CountSketchSchema:
    """Shared bucket and sign hash functions for Count Sketches."""

    def __init__(
        self,
        depth: int = 5,
        width: int = 8192,
        seed: Optional[int] = 0,
        family: str = "tabulation",
    ) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if width < 2:
            raise ValueError(f"width must be >= 2, got {width}")
        self.depth = int(depth)
        self.width = int(width)
        self.seed = seed
        self.family = family
        seeds = derive_seeds(seed, 2 * depth)
        self.bucket_hashes = tuple(
            make_family(family, width, seed=s) for s in seeds[:depth]
        )
        # Sign hash: 4-universal into {0, 1}, mapped to {-1, +1}.
        self.sign_hashes = tuple(
            make_family(family, 2, seed=s) for s in seeds[depth:]
        )
        self._bucket_stacked = make_stacked(self.bucket_hashes, width)
        self._sign_stacked = make_stacked(self.sign_hashes, 2)

    def __eq__(self, other) -> bool:
        """Structural equality: same dimensions, family and *explicit* seed."""
        if self is other:
            return True
        if not isinstance(other, CountSketchSchema):
            return NotImplemented
        return (
            self.seed is not None
            and other.seed is not None
            and self.seed == other.seed
            and self.depth == other.depth
            and self.width == other.width
            and self.family == other.family
        )

    def __hash__(self) -> int:
        return hash((self.depth, self.width, self.family, self.seed))

    def empty(self) -> "CountSketch":
        """Return a fresh zeroed Count Sketch."""
        return CountSketch(self)

    def from_items(self, keys, values) -> "CountSketch":
        """Build a sketch from arrays of keys and updates."""
        sketch = self.empty()
        sketch.update_batch(keys, values)
        return sketch

    def bucket_indices(self, keys) -> np.ndarray:
        """Bucket indices for ``keys``: shape ``(depth, n)``."""
        keys = SummaryConvention.as_key_array(keys)
        return self._bucket_stacked.hash_all(keys)

    def signs(self, keys) -> np.ndarray:
        """Sign values in {-1, +1} for ``keys``: shape ``(depth, n)``."""
        keys = SummaryConvention.as_key_array(keys)
        bits = self._sign_stacked.hash_all(keys)
        return (2 * bits - 1).astype(np.float64)

    def folded(self) -> "CountSketchSchema":
        """The half-width schema this family folds into (same depth/seed).

        The sign hashes are derived from ``seeds[depth:]`` into a fixed
        range of 2 regardless of width, so the folded schema's signs are
        identical -- folding preserves the signed-update structure, not
        just the bucket totals.
        """
        return type(self)(
            depth=self.depth, width=folded_width(self),
            seed=self.seed, family=self.family,
        )


class CountSketch(LinearSummary):
    """Count Sketch with median-of-rows signed estimation."""

    __slots__ = ("_schema", "_table")

    def __init__(self, schema: CountSketchSchema, table: Optional[np.ndarray] = None):
        self._schema = schema
        if table is None:
            table = np.zeros((schema.depth, schema.width), dtype=np.float64)
        else:
            table = np.ascontiguousarray(table, dtype=np.float64)
            if table.shape != (schema.depth, schema.width):
                raise ValueError(
                    f"table shape {table.shape} does not match schema "
                    f"({schema.depth}, {schema.width})"
                )
        self._table = table

    @property
    def schema(self) -> CountSketchSchema:
        """The schema this sketch was built from."""
        return self._schema

    @property
    def table(self) -> np.ndarray:
        """Underlying counter table (read-only view)."""
        view = self._table.view()
        view.flags.writeable = False
        return view

    def copy(self) -> "CountSketch":
        """Return an independent copy sharing the schema."""
        return CountSketch(self._schema, self._table.copy())

    def reset(self) -> None:
        """Zero all counters in place."""
        self._table[:] = 0.0

    def update_batch(self, keys, values) -> None:
        """Batched signed UPDATE (fused C kernel when compiled).

        Large batches are sharded across the kernel thread pool by
        sketch row; the result is bit-identical to the NumPy fallback
        below at any thread count.
        """
        keys = SummaryConvention.as_key_array(keys)
        values = SummaryConvention.as_value_array(values, len(keys))
        schema = self._schema
        if fused_signed_update(
            schema._bucket_stacked, schema._sign_stacked, self._table, keys, values
        ):
            return
        signs = schema.signs(keys)
        indices = schema._bucket_stacked.hash_all(keys)
        for i in range(schema.depth):
            np.add.at(self._table[i], indices[i], signs[i] * values)

    def estimate_rows(
        self, keys, indices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-row signed estimates ``s_i(a) * T[i][h_i(a)]``: shape ``(H, n)``.

        ``np.median(..., axis=0)`` of this equals :meth:`estimate_batch`
        bit-for-bit; exposed for the detection prescreen (same contract as
        :meth:`repro.sketch.kary.KArySketch.estimate_rows`).
        """
        keys = SummaryConvention.as_key_array(keys)
        if indices is None:
            raw = self._schema._bucket_stacked.gather(self._table, keys)
        else:
            raw = gather_indices(self._table, indices)
        signs = self._schema.signs(keys)
        signs *= raw
        return signs

    def estimate_batch(
        self, keys, indices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Median over rows of ``s_i(a) * T[i][h_i(a)]`` (unbiased)."""
        return np.median(self.estimate_rows(keys, indices=indices), axis=0)

    def estimate_f2(self) -> float:
        """Median over rows of the row sum-of-squares (AMS-style, unbiased).

        With sign randomization each row's ``sum_j T[i][j]**2`` is an
        unbiased F2 estimator -- no mean correction needed, unlike k-ary.
        """
        sum_sq = np.einsum("ij,ij->i", self._table, self._table)
        return float(np.median(sum_sq))

    def fold_width(
        self, schema: Optional[CountSketchSchema] = None
    ) -> "CountSketch":
        """Halve the width exactly (Hokusai item aggregation).

        Bucket indices fold as for k-ary (width-``K`` index mod ``K/2``),
        and the sign hashes are width-independent (see
        :meth:`CountSketchSchema.folded`), so the folded table equals the
        half-width build of the same signed stream (bit-for-bit for
        integer-valued updates).
        """
        folded = resolve_folded_schema(self._schema, schema)
        half = folded.width
        return CountSketch(
            folded, self._table[:, :half] + self._table[:, half:]
        )

    def _check_terms(
        self, terms: Sequence[Tuple[float, LinearSummary]]
    ) -> list:
        tables = []
        for coeff, summary in terms:
            if not isinstance(summary, CountSketch):
                raise TypeError(
                    f"cannot combine CountSketch with {type(summary).__name__}"
                )
            if summary._schema != self._schema:
                raise ValueError("cannot combine sketches with different schemas")
            tables.append((float(coeff), summary._table))
        return tables

    def combine_into(
        self,
        terms: Sequence[Tuple[float, LinearSummary]],
        scratch: Optional[np.ndarray] = None,
    ) -> "CountSketch":
        """In-place COMBINE reusing this sketch's table (allocation-free)."""
        accumulate_arrays(self._table, self._check_terms(terms), scratch)
        return self

    def _linear_combination(
        self, terms: Sequence[Tuple[float, LinearSummary]]
    ) -> "CountSketch":
        result = CountSketch(self._schema)
        accumulate_arrays(result._table, self._check_terms(terms))
        return result
