"""Sketch data structures: compact linear summaries of keyed update streams.

The centerpiece is the paper's :class:`~repro.sketch.kary.KArySketch` with
its four operations (UPDATE, ESTIMATE, ESTIMATEF2, COMBINE).  Alongside it:

* :class:`~repro.sketch.countmin.CountMinSketch` and
  :class:`~repro.sketch.countsketch.CountSketch` -- the two standard
  alternatives the paper positions k-ary sketches against (Count Sketch is
  the Charikar et al. structure the k-ary sketch is "similar to", with
  simpler/faster operations).
* :class:`~repro.sketch.invertible.InvertibleKArySketch` -- a k-ary sketch
  extended with per-bucket majority-vote candidate slots, so heavy changers
  can be *recovered* from the sealed error sketch in O(H*K) without
  replaying the interval's key stream.
* :class:`~repro.sketch.exact.DictVector` -- an *exact* keyed vector with
  the same linear-summary interface, used as the per-flow ground truth in
  every accuracy experiment.

All summaries are **linear**: they support ``+``, ``-`` and multiplication
by a scalar, which is what lets the forecasting module run time-series
models directly in sketch space (paper Section 3.2).
"""

from repro.sketch.base import LinearSummary, SummaryConvention, linear_combination
from repro.sketch.countmin import CountMinSketch, CountMinSchema
from repro.sketch.countsketch import CountSketch, CountSketchSchema
from repro.sketch.dense import DenseSchema, DenseVector, KeyIndex
from repro.sketch.exact import DictVector, ExactSchema
from repro.sketch.invertible import InvertibleKArySchema, InvertibleKArySketch
from repro.sketch.kary import KArySchema, KArySketch
from repro.sketch.mergeable import (
    SchemaHandle,
    SharedTableBlock,
    combine,
    detach_shared,
    fold_width,
    from_shared,
    half_width_schema,
    kind_of,
    merge,
    summary_from_table,
    table_shape,
    to_shared,
)
from repro.sketch.serialization import (
    SketchDecodeError,
    dump,
    dumps,
    load,
    loads,
)
from repro.sketch.stack import SketchStack, tables_estimate_f2

__all__ = [
    "CountMinSchema",
    "CountMinSketch",
    "CountSketch",
    "CountSketchSchema",
    "DenseSchema",
    "DenseVector",
    "DictVector",
    "ExactSchema",
    "InvertibleKArySchema",
    "InvertibleKArySketch",
    "KArySchema",
    "KArySketch",
    "KeyIndex",
    "LinearSummary",
    "SchemaHandle",
    "SharedTableBlock",
    "SketchDecodeError",
    "SketchStack",
    "SummaryConvention",
    "combine",
    "fold_width",
    "half_width_schema",
    "detach_shared",
    "from_shared",
    "kind_of",
    "merge",
    "summary_from_table",
    "table_shape",
    "tables_estimate_f2",
    "to_shared",
    "dump",
    "dumps",
    "linear_combination",
    "load",
    "loads",
]
