"""Binary serialization of sketches and their schema identity.

The COMBINE deployment story (routers sketch locally, a collector merges)
needs sketches on the wire.  A serialized sketch must carry enough schema
identity that a collector cannot silently combine sketches built with
different hash functions -- COMBINE is only meaningful when ``(kind,
depth, width, key_bits, family, seed)`` all agree, so those are embedded
and checked.

Two formats, both little-endian:

``KSK1`` (legacy, k-ary only)

======  =====  ==============================================
offset  size   field
======  =====  ==============================================
0       4      magic ``b"KSK1"``
4       4      depth ``H`` (uint32)
8       4      width ``K`` (uint32)
12      8      schema seed (int64; -1 encodes ``None``)
20      2      hash family name length (uint16)
22      n      hash family name (UTF-8)
22+n    8*H*K  counter table (float64, C order)
======  =====  ==============================================

``KSK2`` (any summary kind)

======  =====  ==============================================
offset  size   field
======  =====  ==============================================
0       4      magic ``b"KSK2"``
4       1      kind code (uint8: 1 kary, 2 countmin,
               3 countsketch, 4 grouptesting)
5       4      depth (uint32)
9       4      width (uint32)
13      4      key_bits (uint32; 0 except grouptesting)
17      8      schema seed (int64; -1 encodes ``None``)
25      2      hash family name length (uint16)
27      n      hash family name (UTF-8)
27+n    --     counter table (float64, C order)
======  =====  ==============================================

k-ary sketches keep writing ``KSK1`` so artifacts from earlier versions
round-trip unchanged; every other kind writes ``KSK2``.  ``loads``/``load``
accept both, reconstruct the schema (hash tables are re-derived from the
seed -- deterministic, so only a few dozen bytes of schema travel, not
the megabytes of tabulation tables) or attach to a caller-provided schema
after verifying identity.
"""

from __future__ import annotations

import os
import struct
from typing import Optional, Union

import numpy as np

from repro.sketch.countmin import CountMinSchema, CountMinSketch
from repro.sketch.countsketch import CountSketch, CountSketchSchema
from repro.sketch.kary import KArySchema, KArySketch

_MAGIC = b"KSK1"
_HEADER = struct.Struct("<4sIIqH")

_MAGIC2 = b"KSK2"
_HEADER2 = struct.Struct("<4sBIIIqH")
_KIND_CODES = {"kary": 1, "countmin": 2, "countsketch": 3, "grouptesting": 4}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}

PathLike = Union[str, os.PathLike]


def _seed_code(schema) -> int:
    seed = schema.seed
    if seed is not None and not isinstance(seed, (int, np.integer)):
        raise ValueError("only integer (or None) schema seeds are serializable")
    code = -1 if seed is None else int(seed)
    if code < -1:
        raise ValueError(f"negative seeds are not serializable, got {seed}")
    return code


def dumps(sketch) -> bytes:
    """Serialize any supported sketch (with schema identity) to bytes."""
    from repro.sketch.mergeable import kind_of

    schema = sketch.schema
    kind = kind_of(schema)
    family = schema.family.encode("utf-8")
    table = np.ascontiguousarray(np.asarray(sketch.table), dtype="<f8")
    if kind == "kary":
        # Legacy format: keeps pre-KSK2 artifacts and tooling compatible.
        header = _HEADER.pack(
            _MAGIC, schema.depth, schema.width, _seed_code(schema), len(family)
        )
    else:
        key_bits = schema.key_bits if kind == "grouptesting" else 0
        header = _HEADER2.pack(
            _MAGIC2,
            _KIND_CODES[kind],
            schema.depth,
            schema.width,
            key_bits,
            _seed_code(schema),
            len(family),
        )
    return header + family + table.tobytes()


def _check_schema(schema, kind, depth, width, key_bits, seed, family) -> None:
    from repro.sketch.mergeable import kind_of

    mismatches = []
    if kind_of(schema) != kind:
        mismatches.append(f"kind {kind_of(schema)!r} != {kind!r}")
    if schema.depth != depth:
        mismatches.append(f"depth {schema.depth} != {depth}")
    if schema.width != width:
        mismatches.append(f"width {schema.width} != {width}")
    schema_bits = schema.key_bits if kind == "grouptesting" else 0
    if schema_bits != key_bits:
        mismatches.append(f"key_bits {schema_bits} != {key_bits}")
    if schema.family != family:
        mismatches.append(f"family {schema.family!r} != {family!r}")
    if schema.seed != seed:
        mismatches.append(f"seed {schema.seed} != {seed}")
    if mismatches:
        raise ValueError(
            "serialized sketch does not match the provided schema: "
            + "; ".join(mismatches)
        )


def _build_schema(kind, depth, width, key_bits, seed, family):
    if kind == "kary":
        return KArySchema(depth=depth, width=width, seed=seed, family=family)
    if kind == "countmin":
        return CountMinSchema(depth=depth, width=width, seed=seed, family=family)
    if kind == "countsketch":
        return CountSketchSchema(depth=depth, width=width, seed=seed, family=family)
    from repro.detection.grouptesting import GroupTestingSchema

    return GroupTestingSchema(
        depth=depth, width=width, key_bits=key_bits, seed=seed, family=family
    )


def loads(data: bytes, schema=None):
    """Deserialize a sketch (either wire format).

    Parameters
    ----------
    data:
        Bytes produced by :func:`dumps`.
    schema:
        Optional existing schema to attach to (avoids rebuilding hash
        tables when deserializing many sketches).  Its identity must
        match the serialized one exactly, or ``ValueError`` is raised --
        this is the guard that makes cross-machine COMBINE safe.
    """
    if len(data) < 4:
        raise ValueError("data too short for a sketch header")
    magic = data[:4]
    if magic == _MAGIC:
        if len(data) < _HEADER.size:
            raise ValueError("data too short for a sketch header")
        _, depth, width, seed_code, name_len = _HEADER.unpack_from(data)
        kind = "kary"
        key_bits = 0
        offset = _HEADER.size
    elif magic == _MAGIC2:
        if len(data) < _HEADER2.size:
            raise ValueError("data too short for a sketch header")
        _, kind_code, depth, width, key_bits, seed_code, name_len = (
            _HEADER2.unpack_from(data)
        )
        kind = _CODE_KINDS.get(kind_code)
        if kind is None:
            raise ValueError(f"unknown summary kind code {kind_code}")
        offset = _HEADER2.size
    else:
        raise ValueError(f"bad magic {magic!r} (not a serialized sketch)")

    family = data[offset : offset + name_len].decode("utf-8")
    offset += name_len
    seed = None if seed_code == -1 else seed_code

    if schema is None:
        schema = _build_schema(kind, depth, width, key_bits, seed, family)
    else:
        _check_schema(schema, kind, depth, width, key_bits, seed, family)

    shape = (depth, width, 1 + key_bits) if kind == "grouptesting" else (depth, width)
    expected = int(np.prod(shape)) * 8
    body = data[offset:]
    if len(body) != expected:
        raise ValueError(f"table payload is {len(body)} bytes, expected {expected}")
    table = np.frombuffer(body, dtype="<f8").reshape(shape).copy()
    if kind == "kary":
        return KArySketch(schema, table)
    if kind == "countmin":
        return CountMinSketch(schema, table)
    if kind == "countsketch":
        return CountSketch(schema, table)
    from repro.detection.grouptesting import GroupTestingSketch

    return GroupTestingSketch(schema, table)


def dump(sketch, path: PathLike) -> None:
    """Write a serialized sketch to a file."""
    with open(path, "wb") as fh:
        fh.write(dumps(sketch))


def load(path: PathLike, schema=None):
    """Read a serialized sketch from a file."""
    with open(path, "rb") as fh:
        return loads(fh.read(), schema=schema)
