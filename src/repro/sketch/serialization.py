"""Binary serialization of k-ary sketches and schemas.

The COMBINE deployment story (routers sketch locally, a collector merges)
needs sketches on the wire.  A serialized sketch must carry enough schema
identity that a collector cannot silently combine sketches built with
different hash functions -- COMBINE is only meaningful when ``(depth,
width, family, seed)`` all agree, so those are embedded and checked.

Format (little-endian):

======  =====  ==============================================
offset  size   field
======  =====  ==============================================
0       4      magic ``b"KSK1"``
4       4      depth ``H`` (uint32)
8       4      width ``K`` (uint32)
12      8      schema seed (int64; -1 encodes ``None``)
20      2      hash family name length (uint16)
22      n      hash family name (UTF-8)
22+n    8*H*K  counter table (float64, C order)
======  =====  ==============================================

``loads``/``load`` reconstruct the schema (hash tables are re-derived from
the seed -- deterministic, so only 20-odd bytes of schema travel, not the
2 MiB tabulation tables) or attach to a caller-provided schema after
verifying identity.
"""

from __future__ import annotations

import os
import struct
from typing import Optional, Union

import numpy as np

from repro.sketch.kary import KArySchema, KArySketch

_MAGIC = b"KSK1"
_HEADER = struct.Struct("<4sIIqH")

PathLike = Union[str, os.PathLike]


def dumps(sketch: KArySketch) -> bytes:
    """Serialize a sketch (with schema identity) to bytes."""
    schema = sketch.schema
    seed = schema._seed  # schemas are immutable; seed is their identity
    if seed is not None and not isinstance(seed, (int, np.integer)):
        raise ValueError(
            "only integer (or None) schema seeds are serializable"
        )
    seed_code = -1 if seed is None else int(seed)
    if seed_code < -1:
        raise ValueError(f"negative seeds are not serializable, got {seed}")
    family = schema.family.encode("utf-8")
    header = _HEADER.pack(
        _MAGIC, schema.depth, schema.width, seed_code, len(family)
    )
    table = np.ascontiguousarray(np.asarray(sketch.table), dtype="<f8")
    return header + family + table.tobytes()


def loads(data: bytes, schema: Optional[KArySchema] = None) -> KArySketch:
    """Deserialize a sketch.

    Parameters
    ----------
    data:
        Bytes produced by :func:`dumps`.
    schema:
        Optional existing schema to attach to (avoids rebuilding hash
        tables when deserializing many sketches).  Its identity must
        match the serialized one exactly, or ``ValueError`` is raised --
        this is the guard that makes cross-machine COMBINE safe.
    """
    if len(data) < _HEADER.size:
        raise ValueError("data too short for a sketch header")
    magic, depth, width, seed_code, name_len = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ValueError(f"bad magic {magic!r} (not a serialized k-ary sketch)")
    offset = _HEADER.size
    family = data[offset : offset + name_len].decode("utf-8")
    offset += name_len
    seed = None if seed_code == -1 else seed_code

    if schema is None:
        schema = KArySchema(depth=depth, width=width, seed=seed, family=family)
    else:
        mismatches = []
        if schema.depth != depth:
            mismatches.append(f"depth {schema.depth} != {depth}")
        if schema.width != width:
            mismatches.append(f"width {schema.width} != {width}")
        if schema.family != family:
            mismatches.append(f"family {schema.family!r} != {family!r}")
        if schema._seed != seed:
            mismatches.append(f"seed {schema._seed} != {seed}")
        if mismatches:
            raise ValueError(
                "serialized sketch does not match the provided schema: "
                + "; ".join(mismatches)
            )

    expected = depth * width * 8
    body = data[offset:]
    if len(body) != expected:
        raise ValueError(
            f"table payload is {len(body)} bytes, expected {expected}"
        )
    table = np.frombuffer(body, dtype="<f8").reshape(depth, width).copy()
    return KArySketch(schema, table)


def dump(sketch: KArySketch, path: PathLike) -> None:
    """Write a serialized sketch to a file."""
    with open(path, "wb") as fh:
        fh.write(dumps(sketch))


def load(path: PathLike, schema: Optional[KArySchema] = None) -> KArySketch:
    """Read a serialized sketch from a file."""
    with open(path, "rb") as fh:
        return loads(fh.read(), schema=schema)
