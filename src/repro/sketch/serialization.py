"""Binary serialization of sketches and their schema identity.

The COMBINE deployment story (routers sketch locally, a collector merges)
needs sketches on the wire.  A serialized sketch must carry enough schema
identity that a collector cannot silently combine sketches built with
different hash functions -- COMBINE is only meaningful when ``(kind,
depth, width, key_bits, family, seed)`` all agree, so those are embedded
and checked.

Two formats, both little-endian:

``KSK1`` (legacy, k-ary only)

======  =====  ==============================================
offset  size   field
======  =====  ==============================================
0       4      magic ``b"KSK1"``
4       4      depth ``H`` (uint32)
8       4      width ``K`` (uint32)
12      8      schema seed (int64; legacy blobs used -1 for ``None``,
               which is now refused at both ends -- see below)
20      2      hash family name length (uint16)
22      n      hash family name (UTF-8)
22+n    8*H*K  counter table (float64, C order)
======  =====  ==============================================

``KSK2`` (any summary kind)

======  =====  ==============================================
offset  size   field
======  =====  ==============================================
0       4      magic ``b"KSK2"``
4       1      kind code (uint8: 1 kary, 2 countmin,
               3 countsketch, 4 grouptesting, 5 invertible)
5       4      depth (uint32)
9       4      width (uint32)
13      4      key_bits (uint32; 0 except grouptesting)
17      8      schema seed (int64; -1 encodes ``None``)
25      2      hash family name length (uint16)
27      n      hash family name (UTF-8)
27+n    --     counter table (float64, C order)
======  =====  ==============================================

k-ary sketches keep writing ``KSK1`` so artifacts from earlier versions
round-trip unchanged; every other kind writes ``KSK2``.  ``loads``/``load``
accept both, reconstruct the schema (hash tables are re-derived from the
seed -- deterministic, so only a few dozen bytes of schema travel, not
the megabytes of tabulation tables) or attach to a caller-provided schema
after verifying identity.

Entropy-seeded schemas (``seed=None``) are **refused** at both ends: their
hash functions exist only in the creating process, so a deserialized
sketch would silently estimate garbage.  Legacy blobs carrying the old
``-1`` seed sentinel raise the same error at load.

``KCP1`` (checkpoint container)

A versioned envelope for structured pipeline state -- the on-disk form of
a :class:`~repro.detection.session.StreamingSession` checkpoint:

======  =====  ==============================================
offset  size   field
======  =====  ==============================================
0       4      magic ``b"KCP1"``
4       2      container version (uint16)
6       4      meta length ``m`` (uint32)
10      m      meta: one packed value (no summaries permitted)
10+m    --     body: one packed value (summaries permitted)
======  =====  ==============================================

Values are packed with a small tagged codec (:func:`pack_state` /
:func:`unpack_state`) covering ``None``, bools, ints, floats, strings,
bytes, NumPy arrays, nested lists/tuples/dicts, and -- in the body --
any serializable summary (embedded as a full KSK blob, so every embedded
sketch carries the same schema-identity guards as a standalone one).
The meta section is summary-free so a reader can inspect the schema
identity *before* deciding how (or whether) to materialize the body.
"""

from __future__ import annotations

import os
import struct
from typing import Optional, Tuple, Union

import numpy as np

from repro.sketch.countmin import CountMinSchema, CountMinSketch
from repro.sketch.countsketch import CountSketch, CountSketchSchema
from repro.sketch.invertible import InvertibleKArySchema, InvertibleKArySketch
from repro.sketch.kary import KArySchema, KArySketch

_MAGIC = b"KSK1"
_HEADER = struct.Struct("<4sIIqH")

_MAGIC2 = b"KSK2"
_HEADER2 = struct.Struct("<4sBIIIqH")
_KIND_CODES = {
    "kary": 1,
    "countmin": 2,
    "countsketch": 3,
    "grouptesting": 4,
    "invertible": 5,
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}

PathLike = Union[str, os.PathLike]


class SketchDecodeError(ValueError):
    """A serialized sketch blob is malformed.

    Raised by :func:`loads` when the *bytes themselves* are wrong --
    truncated, oversized, bad magic, an unknown kind code, a mangled
    family name.  Network codecs catch this one type to classify a frame
    as corrupt (drop it, count it, keep the connection's state machine
    intact) without also swallowing programming errors such as a schema
    mismatch, which stays a plain :class:`ValueError`.  Subclasses
    ``ValueError`` so existing callers that catch broadly keep working.
    """


def _seed_code(schema) -> int:
    seed = schema.seed
    if seed is None:
        # An entropy-seeded schema's hash functions exist only in this
        # process; the wire format carries the seed, not the tables, so a
        # reader would re-derive *different* hashes and every estimate of
        # the loaded sketch would be garbage.  Refuse loudly.
        raise ValueError(
            "sketches over entropy-seeded schemas (seed=None) cannot be "
            "serialized: their hash functions are not recoverable from the "
            "wire format; construct the schema with an explicit seed"
        )
    if not isinstance(seed, (int, np.integer)):
        raise ValueError("only integer schema seeds are serializable")
    code = int(seed)
    if not 0 <= code < 2**63:
        # Unreachable for schemas built through derive_seeds (validated at
        # construction); kept as a defensive guard for duck-typed schemas.
        raise ValueError(f"schema seed {seed} does not fit the int64 wire field")
    return code


def dumps(sketch) -> bytes:
    """Serialize any supported sketch (with schema identity) to bytes."""
    from repro.sketch.mergeable import kind_of

    schema = sketch.schema
    kind = kind_of(schema)
    family = schema.family.encode("utf-8")
    table = np.ascontiguousarray(np.asarray(sketch.table), dtype="<f8")
    if kind == "kary":
        # Legacy format: keeps pre-KSK2 artifacts and tooling compatible.
        header = _HEADER.pack(
            _MAGIC, schema.depth, schema.width, _seed_code(schema), len(family)
        )
    else:
        key_bits = schema.key_bits if kind == "grouptesting" else 0
        header = _HEADER2.pack(
            _MAGIC2,
            _KIND_CODES[kind],
            schema.depth,
            schema.width,
            key_bits,
            _seed_code(schema),
            len(family),
        )
    return header + family + table.tobytes()


def _check_schema(schema, kind, depth, width, key_bits, seed, family) -> None:
    from repro.sketch.mergeable import kind_of

    mismatches = []
    if kind_of(schema) != kind:
        mismatches.append(f"kind {kind_of(schema)!r} != {kind!r}")
    if schema.depth != depth:
        mismatches.append(f"depth {schema.depth} != {depth}")
    if schema.width != width:
        mismatches.append(f"width {schema.width} != {width}")
    schema_bits = schema.key_bits if kind == "grouptesting" else 0
    if schema_bits != key_bits:
        mismatches.append(f"key_bits {schema_bits} != {key_bits}")
    if schema.family != family:
        mismatches.append(f"family {schema.family!r} != {family!r}")
    if schema.seed != seed:
        mismatches.append(f"seed {schema.seed} != {seed}")
    if mismatches:
        raise ValueError(
            "serialized sketch does not match the provided schema: "
            + "; ".join(mismatches)
        )


def _build_schema(kind, depth, width, key_bits, seed, family):
    if kind == "kary":
        return KArySchema(depth=depth, width=width, seed=seed, family=family)
    if kind == "invertible":
        return InvertibleKArySchema(
            depth=depth, width=width, seed=seed, family=family
        )
    if kind == "countmin":
        return CountMinSchema(depth=depth, width=width, seed=seed, family=family)
    if kind == "countsketch":
        return CountSketchSchema(depth=depth, width=width, seed=seed, family=family)
    from repro.detection.grouptesting import GroupTestingSchema

    return GroupTestingSchema(
        depth=depth, width=width, key_bits=key_bits, seed=seed, family=family
    )


def loads(data: bytes, schema=None):
    """Deserialize a sketch (either wire format).

    Parameters
    ----------
    data:
        Bytes produced by :func:`dumps`.
    schema:
        Optional existing schema to attach to (avoids rebuilding hash
        tables when deserializing many sketches).  Its identity must
        match the serialized one exactly, or ``ValueError`` is raised --
        this is the guard that makes cross-machine COMBINE safe.
    """
    if len(data) < 4:
        raise SketchDecodeError("data too short for a sketch header")
    magic = data[:4]
    if magic == _MAGIC:
        if len(data) < _HEADER.size:
            raise SketchDecodeError("data too short for a sketch header")
        _, depth, width, seed_code, name_len = _HEADER.unpack_from(data)
        kind = "kary"
        key_bits = 0
        offset = _HEADER.size
    elif magic == _MAGIC2:
        if len(data) < _HEADER2.size:
            raise SketchDecodeError("data too short for a sketch header")
        _, kind_code, depth, width, key_bits, seed_code, name_len = (
            _HEADER2.unpack_from(data)
        )
        kind = _CODE_KINDS.get(kind_code)
        if kind is None:
            raise SketchDecodeError(f"unknown summary kind code {kind_code}")
        offset = _HEADER2.size
    else:
        raise SketchDecodeError(f"bad magic {magic!r} (not a serialized sketch)")

    if offset + name_len > len(data):
        raise SketchDecodeError(
            f"data too short for the {name_len}-byte hash family name"
        )
    try:
        family = data[offset : offset + name_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SketchDecodeError(f"hash family name is not UTF-8: {exc}") from None
    offset += name_len
    if seed_code == -1:
        # Legacy writers encoded seed=None as -1.  Such blobs were never
        # loadable in any meaningful sense: rebuilding the schema draws
        # fresh OS entropy, and no caller-provided schema can be verified
        # against them (the original seed is unknowable).
        raise ValueError(
            "serialized sketch was built over an entropy-seeded schema "
            "(seed=None); its hash functions are not recoverable, so it "
            "cannot be deserialized"
        )
    if seed_code < 0:
        raise ValueError(f"invalid seed {seed_code} in serialized sketch")
    seed = seed_code

    if schema is None:
        schema = _build_schema(kind, depth, width, key_bits, seed, family)
    else:
        _check_schema(schema, kind, depth, width, key_bits, seed, family)

    if kind == "grouptesting":
        shape = (depth, width, 1 + key_bits)
    elif kind == "invertible":
        # counters + candidate-key bit patterns + votes; the same-dtype
        # float64 round trip is a memcpy, so the uint64 key bits survive.
        shape = (3, depth, width)
    else:
        shape = (depth, width)
    expected = int(np.prod(shape)) * 8
    body = data[offset:]
    if len(body) != expected:
        raise SketchDecodeError(
            f"table payload is {len(body)} bytes, expected {expected}"
        )
    table = np.frombuffer(body, dtype="<f8").reshape(shape).copy()
    if kind == "kary":
        return KArySketch(schema, table)
    if kind == "invertible":
        return InvertibleKArySketch(schema, table)
    if kind == "countmin":
        return CountMinSketch(schema, table)
    if kind == "countsketch":
        return CountSketch(schema, table)
    from repro.detection.grouptesting import GroupTestingSketch

    return GroupTestingSketch(schema, table)


def schema_identity(schema) -> dict:
    """The schema's wire identity as a plain dict (checkpoint meta form).

    Raises for entropy-seeded schemas (``seed=None``), exactly as
    :func:`dumps` does -- identity without a recoverable seed is useless.
    """
    from repro.sketch.mergeable import kind_of

    kind = kind_of(schema)
    return {
        "kind": kind,
        "depth": int(schema.depth),
        "width": int(schema.width),
        "key_bits": int(schema.key_bits) if kind == "grouptesting" else 0,
        "seed": _seed_code(schema),
        "family": schema.family,
    }


def schema_from_identity(identity: dict, schema=None):
    """Rebuild (or verify a caller-provided) schema from its identity dict."""
    kind = identity["kind"]
    depth = int(identity["depth"])
    width = int(identity["width"])
    key_bits = int(identity["key_bits"])
    seed = int(identity["seed"])
    family = identity["family"]
    if schema is None:
        return _build_schema(kind, depth, width, key_bits, seed, family)
    _check_schema(schema, kind, depth, width, key_bits, seed, family)
    return schema


# -- KCP1: tagged state codec + checkpoint container --------------------------

_MAGIC_KCP = b"KCP1"
_KCP_VERSION = 1
_KCP_HEADER = struct.Struct("<4sHI")

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


def _pack_value(out: list, value, allow_summaries: bool) -> None:
    from repro.sketch.base import LinearSummary

    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, (int, np.integer)):
        v = int(value)
        if -(2**63) <= v < 2**63:
            out.append(b"i" + _I64.pack(v))
        else:
            digits = str(v).encode("ascii")
            out.append(b"I" + _U32.pack(len(digits)) + digits)
    elif isinstance(value, (float, np.floating)):
        out.append(b"f" + _F64.pack(float(value)))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"s" + _U32.pack(len(raw)) + raw)
    elif isinstance(value, (bytes, bytearray)):
        out.append(b"b" + _U32.pack(len(value)) + bytes(value))
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        dt = arr.dtype.str.encode("ascii")
        out.append(
            b"a"
            + struct.pack("<B", len(dt))
            + dt
            + struct.pack("<B", arr.ndim)
            + struct.pack(f"<{arr.ndim}q", *arr.shape)
        )
        out.append(arr.tobytes())
    elif isinstance(value, LinearSummary):
        if not allow_summaries:
            raise ValueError(
                "summaries are not permitted in the checkpoint meta section"
            )
        blob = dumps(value)
        out.append(b"S" + _U32.pack(len(blob)) + blob)
    elif isinstance(value, tuple):
        out.append(b"t" + _U32.pack(len(value)))
        for item in value:
            _pack_value(out, item, allow_summaries)
    elif isinstance(value, list):
        out.append(b"l" + _U32.pack(len(value)))
        for item in value:
            _pack_value(out, item, allow_summaries)
    elif isinstance(value, dict):
        out.append(b"d" + _U32.pack(len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"checkpoint dict keys must be str, got {type(key).__name__}"
                )
            raw = key.encode("utf-8")
            out.append(_U32.pack(len(raw)) + raw)
            _pack_value(out, item, allow_summaries)
    else:
        raise TypeError(
            f"value of type {type(value).__name__} is not checkpoint-serializable"
        )


def pack_state(value, allow_summaries: bool = True) -> bytes:
    """Encode a nested state value with the KCP1 tagged codec.

    Supported: ``None``, bools, ints (arbitrary precision), floats,
    strings, bytes, NumPy arrays (any dtype/shape, C order), serializable
    summaries (embedded as KSK blobs), and lists/tuples/dicts thereof.
    """
    out: list = []
    _pack_value(out, value, allow_summaries)
    return b"".join(out)


def _unpack_value(data: bytes, offset: int, schema):
    tag = data[offset : offset + 1]
    offset += 1
    if tag == b"N":
        return None, offset
    if tag == b"T":
        return True, offset
    if tag == b"F":
        return False, offset
    if tag == b"i":
        (v,) = _I64.unpack_from(data, offset)
        return v, offset + _I64.size
    if tag == b"I":
        (n,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        return int(data[offset : offset + n].decode("ascii")), offset + n
    if tag == b"f":
        (v,) = _F64.unpack_from(data, offset)
        return v, offset + _F64.size
    if tag == b"s":
        (n,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        return data[offset : offset + n].decode("utf-8"), offset + n
    if tag == b"b":
        (n,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        return data[offset : offset + n], offset + n
    if tag == b"a":
        (dt_len,) = struct.unpack_from("<B", data, offset)
        offset += 1
        dtype = np.dtype(data[offset : offset + dt_len].decode("ascii"))
        offset += dt_len
        (ndim,) = struct.unpack_from("<B", data, offset)
        offset += 1
        shape = struct.unpack_from(f"<{ndim}q", data, offset)
        offset += 8 * ndim
        count = int(np.prod(shape)) if ndim else 1
        nbytes = count * dtype.itemsize
        arr = np.frombuffer(data, dtype=dtype, count=count, offset=offset)
        return arr.reshape(shape).copy(), offset + nbytes
    if tag == b"S":
        (n,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        return loads(data[offset : offset + n], schema=schema), offset + n
    if tag == b"t":
        (n,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        items = []
        for _ in range(n):
            item, offset = _unpack_value(data, offset, schema)
            items.append(item)
        return tuple(items), offset
    if tag == b"l":
        (n,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        items = []
        for _ in range(n):
            item, offset = _unpack_value(data, offset, schema)
            items.append(item)
        return items, offset
    if tag == b"d":
        (n,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        result = {}
        for _ in range(n):
            (key_len,) = _U32.unpack_from(data, offset)
            offset += _U32.size
            key = data[offset : offset + key_len].decode("utf-8")
            offset += key_len
            result[key], offset = _unpack_value(data, offset, schema)
        return result, offset
    raise ValueError(f"unknown state tag {tag!r} at offset {offset - 1}")


def unpack_state(data: bytes, schema=None):
    """Decode a value packed with :func:`pack_state`.

    ``schema``, when given, is attached to every embedded summary (their
    identity is verified against it, exactly as in :func:`loads`) -- the
    natural mode for a session checkpoint, whose summaries all share one
    schema.
    """
    value, offset = _unpack_value(data, 0, schema)
    if offset != len(data):
        raise ValueError(
            f"trailing garbage after packed state ({len(data) - offset} bytes)"
        )
    return value


def dumps_checkpoint(meta: dict, body: dict) -> bytes:
    """Serialize a two-section KCP1 checkpoint container.

    ``meta`` must be summary-free (it is what a reader inspects to build
    or verify the schema); ``body`` may embed summaries.
    """
    meta_blob = pack_state(meta, allow_summaries=False)
    body_blob = pack_state(body, allow_summaries=True)
    header = _KCP_HEADER.pack(_MAGIC_KCP, _KCP_VERSION, len(meta_blob))
    return header + meta_blob + body_blob


def _split_checkpoint(data: bytes) -> Tuple[dict, bytes]:
    if len(data) < _KCP_HEADER.size:
        raise ValueError("data too short for a checkpoint header")
    magic, version, meta_len = _KCP_HEADER.unpack_from(data)
    if magic != _MAGIC_KCP:
        raise ValueError(f"bad magic {magic!r} (not a KCP checkpoint)")
    if version != _KCP_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version} (expected {_KCP_VERSION})"
        )
    meta_end = _KCP_HEADER.size + meta_len
    if len(data) < meta_end:
        raise ValueError("data too short for the checkpoint meta section")
    meta = unpack_state(data[_KCP_HEADER.size : meta_end])
    if not isinstance(meta, dict):
        raise ValueError("checkpoint meta section must be a dict")
    return meta, data[meta_end:]


def checkpoint_meta(data: bytes) -> dict:
    """Read only the meta section of a KCP1 container (cheap peek)."""
    meta, _ = _split_checkpoint(data)
    return meta


def loads_checkpoint(data: bytes, schema=None) -> Tuple[dict, dict]:
    """Deserialize a KCP1 container into ``(meta, body)`` dicts.

    ``schema`` is attached to (and verified against) every summary
    embedded in the body.
    """
    meta, body_blob = _split_checkpoint(data)
    body = unpack_state(body_blob, schema=schema)
    if not isinstance(body, dict):
        raise ValueError("checkpoint body section must be a dict")
    return meta, body


def dump(sketch, path: PathLike) -> None:
    """Write a serialized sketch to a file."""
    with open(path, "wb") as fh:
        fh.write(dumps(sketch))


def load(path: PathLike, schema=None):
    """Read a serialized sketch from a file."""
    with open(path, "rb") as fh:
        return loads(fh.read(), schema=schema)
