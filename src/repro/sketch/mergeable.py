"""Uniform mergeable-summary API: COMBINE across workers and processes.

The paper's COMBINE operation makes sketches a vector space, so summaries
built *independently* -- per worker thread, per process, per router -- can
be merged into the summary of the union stream without a second pass.
This module is the machinery that makes merging practical for every
summary type in the package (k-ary, Count-Min, Count Sketch, and the
group-testing variant):

:func:`combine`
    Type-generic COMBINE over same-schema summaries.
:class:`SchemaHandle`
    A pickle-cheap (~100 byte) schema identity.  Hash tables are
    megabytes but fully determined by ``(kind, dims, family, seed)``, so
    only the identity crosses the process boundary; each worker process
    rebuilds -- and caches -- the actual schema on first use.
:class:`SharedTableBlock` / :func:`to_shared` / :func:`from_shared`
    Counter tables placed in :mod:`multiprocessing.shared_memory`, with
    **zero-copy** summary views over each slot.  A worker process updates
    its slot in place; the parent wraps the same physical memory in a
    summary object and COMBINEs -- no table ever travels through a pipe.

Every function dispatches on the schema *kind* (``"kary"``,
``"countmin"``, ``"countsketch"``, ``"grouptesting"``) resolved by
:func:`kind_of`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.sketch.base import LinearSummary
from repro.sketch.countmin import CountMinSchema, CountMinSketch
from repro.sketch.countsketch import CountSketch, CountSketchSchema
from repro.sketch.invertible import InvertibleKArySchema, InvertibleKArySketch
from repro.sketch.kary import KArySchema, KArySketch

KINDS = ("kary", "invertible", "countmin", "countsketch", "grouptesting")


def _grouptesting():
    # Imported lazily: repro.detection pulls in repro.sketch at import
    # time, so a module-level import here would be circular.
    from repro.detection import grouptesting

    return grouptesting


def kind_of(schema) -> str:
    """Return the schema kind string for any supported schema object."""
    # The invertible schema subclasses KArySchema, so it must be checked
    # first or it would silently lose its candidate planes as "kary".
    if isinstance(schema, InvertibleKArySchema):
        return "invertible"
    if isinstance(schema, KArySchema):
        return "kary"
    if isinstance(schema, CountMinSchema):
        return "countmin"
    if isinstance(schema, CountSketchSchema):
        return "countsketch"
    gt = _grouptesting()
    if isinstance(schema, gt.GroupTestingSchema):
        return "grouptesting"
    raise TypeError(f"unsupported schema type {type(schema).__name__}")


def table_shape(schema) -> Tuple[int, ...]:
    """Counter-table shape for one summary of ``schema``."""
    kind = kind_of(schema)
    if kind == "grouptesting":
        return (schema.depth, schema.width, 1 + schema.key_bits)
    if kind == "invertible":
        # counters + candidate keys (uint64 bit patterns) + votes
        return (3, schema.depth, schema.width)
    return (schema.depth, schema.width)


def summary_from_table(schema, table: np.ndarray) -> LinearSummary:
    """Wrap an existing counter table in a summary object -- zero-copy.

    The table must already be C-contiguous float64 of
    :func:`table_shape`; summaries write through to it, which is what
    makes shared-memory slots live views rather than snapshots.
    """
    kind = kind_of(schema)
    if kind == "invertible":
        return InvertibleKArySketch(schema, table)
    if kind == "kary":
        return KArySketch(schema, table)
    if kind == "countmin":
        return CountMinSketch(schema, table)
    if kind == "countsketch":
        return CountSketch(schema, table)
    return _grouptesting().GroupTestingSketch(schema, table)


def combine(
    coefficients: Iterable[float], summaries: Iterable[LinearSummary]
) -> LinearSummary:
    """COMBINE: return ``sum(c_i * S_i)`` over same-schema summaries.

    The paper's fourth sketch operation, generalized to every summary
    type in the package (each summary's ``_linear_combination`` enforces
    type and schema compatibility).
    """
    terms = [(float(c), s) for c, s in zip(coefficients, summaries)]
    if not terms:
        raise ValueError("combine requires at least one term")
    return terms[0][1]._linear_combination(terms)


def merge(summaries: Iterable[LinearSummary]) -> LinearSummary:
    """Unit-coefficient COMBINE: the summary of the concatenated streams."""
    summaries = list(summaries)
    return combine([1.0] * len(summaries), summaries)


def half_width_schema(schema):
    """The half-width schema ``schema`` folds into (same depth/seed/family).

    Type-generic front for the per-schema ``folded()`` constructors.
    Building one re-derives hash tables (2 MiB per tabulation row), so
    archive tiers cache the result per source schema.
    """
    kind_of(schema)  # raises on unsupported types
    return schema.folded()


def fold_width(summary: LinearSummary, schema=None) -> LinearSummary:
    """FOLD: halve a summary's width using linearity (Hokusai item
    aggregation).

    The fifth mergeable-summary operation: ``T'[i][j] = T[i][j] +
    T[i][j + K/2]`` over the half-width schema.  Because every hash
    family reduces a width-independent 64-bit value modulo ``K`` and
    ``K/2`` divides ``K``, the folded summary is **exactly** what the
    half-width schema would have built from the same stream -- fold
    commutes with UPDATE and COMBINE, which is what lets an archive age
    summaries down in resolution and still merge them with natively
    half-width ones.  Estimation variance roughly doubles per fold.
    Exactness is bit-for-bit for integer-valued updates (traffic
    counts); float updates regroup per-cell summation order, so
    equality then holds up to float associativity.

    Candidate-carrying summaries (the invertible sketch) fold their
    counters exactly and MV-merge the collapsing candidate buckets;
    group-testing summaries fold all per-bit subcounters.

    Pass the prebuilt half-width ``schema`` when folding many summaries;
    ``None`` builds a fresh one per call.
    """
    return summary.fold_width(schema=schema)


# -- pickle-cheap schema identity -------------------------------------------

_RESOLVE_CACHE: Dict["SchemaHandle", object] = {}


@dataclass(frozen=True)
class SchemaHandle:
    """Everything needed to rebuild a schema, in ~100 picklable bytes.

    Worker processes must share the parent's hash functions (COMBINE is
    only meaningful over identical hashes), but tabulation tables are
    ~2 MiB per row.  Since hash tables are derived deterministically from
    the seed, shipping ``(kind, depth, width, key_bits, seed, family)``
    and rebuilding is equivalent -- and :meth:`resolve` caches per
    process, so the rebuild happens once per worker, not per task.
    """

    kind: str
    depth: int
    width: int
    seed: int
    family: str
    key_bits: int = 0

    @classmethod
    def from_schema(cls, schema) -> "SchemaHandle":
        kind = kind_of(schema)
        seed = schema.seed
        if seed is None:
            raise ValueError(
                "schemas seeded from OS entropy (seed=None) cannot be "
                "handed to other processes: the rebuilt hash functions "
                "would differ, silently breaking COMBINE"
            )
        return cls(
            kind=kind,
            depth=schema.depth,
            width=schema.width,
            seed=int(seed),
            family=schema.family,
            key_bits=schema.key_bits if kind == "grouptesting" else 0,
        )

    def resolve(self):
        """Rebuild (or fetch the cached) schema object in this process."""
        schema = _RESOLVE_CACHE.get(self)
        if schema is None:
            if self.kind == "kary":
                schema = KArySchema(
                    depth=self.depth, width=self.width,
                    seed=self.seed, family=self.family,
                )
            elif self.kind == "invertible":
                schema = InvertibleKArySchema(
                    depth=self.depth, width=self.width,
                    seed=self.seed, family=self.family,
                )
            elif self.kind == "countmin":
                schema = CountMinSchema(
                    depth=self.depth, width=self.width,
                    seed=self.seed, family=self.family,
                )
            elif self.kind == "countsketch":
                schema = CountSketchSchema(
                    depth=self.depth, width=self.width,
                    seed=self.seed, family=self.family,
                )
            elif self.kind == "grouptesting":
                schema = _grouptesting().GroupTestingSchema(
                    depth=self.depth, width=self.width,
                    key_bits=self.key_bits, seed=self.seed, family=self.family,
                )
            else:
                raise ValueError(f"unknown schema kind {self.kind!r}")
            _RESOLVE_CACHE[self] = schema
        return schema


# -- shared-memory counter tables -------------------------------------------


class SharedTableBlock:
    """``n_slots`` counter tables for one schema in a shared-memory segment.

    Layout: one :class:`multiprocessing.shared_memory.SharedMemory`
    segment holding a C-contiguous float64 array of shape
    ``(n_slots, *table_shape(schema))``.  Worker ``i`` owns slot ``i``:
    it zeroes and updates ``slot(i)`` in place; the parent wraps the same
    slot with :meth:`summary` and COMBINEs the live views.  Nothing is
    copied in either direction.

    The creating process owns the segment (``unlink`` on :meth:`close`);
    attachers only detach.  Attaching unregisters the segment from the
    resource tracker so worker exits do not tear down memory the parent
    still uses (the tracker assumes per-process ownership, which is wrong
    for this deliberately shared block).
    """

    def __init__(self, schema, n_slots: int, shm, owner: bool) -> None:
        self._schema = schema
        self._n_slots = int(n_slots)
        self._shm = shm
        self._owner = owner
        shape = (self._n_slots,) + table_shape(schema)
        self._tables = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)

    @classmethod
    def create(cls, schema, n_slots: int) -> "SharedTableBlock":
        """Allocate a zeroed block for ``n_slots`` summaries of ``schema``."""
        from multiprocessing import shared_memory

        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        nbytes = int(np.prod(table_shape(schema))) * 8 * int(n_slots)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        block = cls(schema, n_slots, shm, owner=True)
        block._tables[:] = 0.0
        return block

    @classmethod
    def attach(cls, name: str, handle: SchemaHandle, n_slots: int) -> "SharedTableBlock":
        """Attach to an existing block by segment name (worker side)."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
        schema = handle.resolve() if isinstance(handle, SchemaHandle) else handle
        return cls(schema, n_slots, shm, owner=False)

    @property
    def name(self) -> str:
        """Shared-memory segment name (pass to :meth:`attach`)."""
        return self._shm.name

    @property
    def schema(self):
        """The schema every slot's summary uses."""
        return self._schema

    @property
    def n_slots(self) -> int:
        """Number of summary slots in the block."""
        return self._n_slots

    def slot(self, i: int) -> np.ndarray:
        """Writable counter-table view of slot ``i`` (no copy).

        Valid only while the block is alive and open: ``SharedMemory``
        tears down the mapping when the block is garbage-collected, and
        numpy's flattened base chain does not keep the block reachable.
        Hold the block for as long as any slot view or summary is in use.
        """
        if not 0 <= i < self._n_slots:
            raise IndexError(f"slot {i} out of range [0, {self._n_slots})")
        return self._tables[i]

    def summary(self, i: int) -> LinearSummary:
        """Zero-copy summary over slot ``i`` -- updates write to the block."""
        return summary_from_table(self._schema, self.slot(i))

    def reset(self) -> None:
        """Zero every slot in place."""
        self._tables[:] = 0.0

    def close(self) -> None:
        """Detach; the creator also unlinks the segment."""
        # Views into shm.buf must be dropped before close() or the
        # exported-pointer check raises.
        self._tables = None
        self._shm.close()
        if self._owner:
            try:
                # A same-process attach() unregistered the segment; put the
                # registration back so unlink()'s own unregister matches and
                # the tracker daemon stays quiet.
                from multiprocessing import resource_tracker

                resource_tracker.register(self._shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals vary
                pass
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedTableBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def to_shared(summary: LinearSummary) -> SharedTableBlock:
    """Copy a summary's table into a fresh one-slot shared-memory block.

    The returned block's ``summary(0)`` is a live view: further updates
    through it are visible to every process attached to the block.
    """
    block = SharedTableBlock.create(summary.schema, 1)
    # .table is the full backing store (for the invertible sketch that is
    # the (3, H, K) block including candidate planes, not just counters).
    block.slot(0)[:] = summary.table
    return block


# Blocks attached via from_shared(), pinned so the returned summary's
# memory mapping outlives the call (a block that is garbage-collected
# closes its mapping under the summary).  Released by detach_shared().
_ATTACHED_VIEW_BLOCKS: Dict[str, SharedTableBlock] = {}


def from_shared(
    name: str, handle: SchemaHandle, n_slots: int = 1, slot: int = 0
) -> LinearSummary:
    """Attach to a shared block by name and view one slot as a summary.

    Convenience for the worker side of a one-summary exchange: the
    attached block is pinned in a module registry so the zero-copy view
    stays mapped; call :func:`detach_shared` when done with the segment.
    Engines managing many slots should instead hold the
    :class:`SharedTableBlock` from :meth:`SharedTableBlock.attach` and
    call :meth:`~SharedTableBlock.summary`.
    """
    block = _ATTACHED_VIEW_BLOCKS.get(name)
    if block is None:
        block = SharedTableBlock.attach(name, handle, n_slots)
        _ATTACHED_VIEW_BLOCKS[name] = block
    return block.summary(slot)


def detach_shared(name: str) -> None:
    """Release a block pinned by :func:`from_shared` (no-op if unknown)."""
    block = _ATTACHED_VIEW_BLOCKS.pop(name, None)
    if block is not None:
        block.close()
