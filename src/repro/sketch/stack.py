"""The sketch tensor: a time series of k-ary sketches as one ndarray.

Forecasting and grid search operate on *series* of same-schema sketches --
one observed sketch per interval.  Holding them as ``T`` separate
``KArySketch`` objects forces every linear-space operation (forecast
recursions, error differencing, per-interval ``ESTIMATEF2``) through
object-at-a-time dispatch.  :class:`SketchStack` stores the series as one
C-contiguous ``(T, H, K)`` float64 tensor instead, so whole-series
operations become single NumPy calls: per-interval F2 of every interval is
one ``einsum`` over the stack, and the vectorized forecast engine
(:mod:`repro.forecast.vectorized`) runs its recursions directly on the
tensor.

The stack stays interchangeable with a plain sequence of sketches:
iterating yields :class:`~repro.sketch.kary.KArySketch` *views* onto the
tensor rows, so every existing per-object API (``Forecaster.run``,
``estimated_total_energy``, detection pipelines) accepts a ``SketchStack``
unchanged.  All batched results are bit-identical to the per-object paths;
the equivalence tests assert this.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.sketch.kary import KArySchema, KArySketch


class SketchStack:
    """A ``(T, H, K)`` tensor of ``T`` same-schema k-ary sketch tables.

    Parameters
    ----------
    schema:
        The shared :class:`KArySchema`.
    tables:
        Array of shape ``(T, H, K)`` (copied to C-contiguous float64 if
        necessary).  Omit for an empty stack of length ``length``.
    length:
        Number of zeroed intervals when ``tables`` is omitted.
    """

    __slots__ = ("_schema", "_tables")

    def __init__(
        self,
        schema: KArySchema,
        tables: Optional[np.ndarray] = None,
        length: int = 0,
    ) -> None:
        self._schema = schema
        if tables is None:
            tables = np.zeros(
                (int(length), schema.depth, schema.width), dtype=np.float64
            )
        else:
            tables = np.ascontiguousarray(tables, dtype=np.float64)
            if tables.ndim != 3 or tables.shape[1:] != (schema.depth, schema.width):
                raise ValueError(
                    f"tables shape {tables.shape} does not match schema "
                    f"(T, {schema.depth}, {schema.width})"
                )
        self._tables = tables

    # -- construction ------------------------------------------------------

    @classmethod
    def from_sketches(cls, sketches: Sequence[KArySketch]) -> "SketchStack":
        """Stack a sequence of same-schema sketches (tables are copied)."""
        sketches = list(sketches)
        if not sketches:
            raise ValueError("from_sketches requires at least one sketch")
        schema = sketches[0].schema
        for s in sketches[1:]:
            if s.schema is not schema and s.schema != schema:
                raise ValueError(
                    "all sketches must share one schema "
                    "(hash functions must be identical)"
                )
        tables = np.stack([np.asarray(s.table) for s in sketches])
        return cls(schema, tables)

    # -- accessors ---------------------------------------------------------

    @property
    def schema(self) -> KArySchema:
        """The shared schema of every interval sketch."""
        return self._schema

    @property
    def tables(self) -> np.ndarray:
        """The underlying ``(T, H, K)`` tensor (read-only view)."""
        view = self._tables.view()
        view.flags.writeable = False
        return view

    @property
    def shape(self) -> tuple:
        """``(T, H, K)``."""
        return self._tables.shape

    @property
    def nbytes(self) -> int:
        """Memory used by the tensor."""
        return self._tables.nbytes

    def __len__(self) -> int:
        return self._tables.shape[0]

    def as_sketch(self, t: int) -> KArySketch:
        """Interval ``t`` as a :class:`KArySketch` *view* (shares memory)."""
        return KArySketch(self._schema, self._tables[t])

    def __getitem__(self, item):
        if isinstance(item, slice):
            return SketchStack(self._schema, self._tables[item])
        return self.as_sketch(int(item))

    def __iter__(self) -> Iterator[KArySketch]:
        for t in range(len(self)):
            yield self.as_sketch(t)

    def as_sketches(self) -> List[KArySketch]:
        """All intervals as sketch views."""
        return list(self)

    def copy(self) -> "SketchStack":
        """Independent copy sharing the schema."""
        return SketchStack(self._schema, self._tables.copy())

    # -- batched estimation ------------------------------------------------

    def totals(self) -> np.ndarray:
        """``sum(S)`` of every interval: shape ``(T,)``."""
        return self._tables[:, 0, :].sum(axis=1)

    def estimate_f2_all(self) -> np.ndarray:
        """ESTIMATEF2 of every interval in one pass: shape ``(T,)``.

        Bit-identical to ``[self.as_sketch(t).estimate_f2() for t in ...]``.
        """
        return tables_estimate_f2(self._tables, self._schema.width)

    def estimate_all(
        self, keys, indices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """ESTIMATE ``keys`` against every interval: shape ``(T, n)``.

        Keys are hashed once (stacked evaluator) and gathered from all
        ``T`` tables; bit-identical to per-interval ``estimate_batch``.
        """
        if indices is None:
            indices = self._schema.hash_all_rows(keys)
        k = self._schema.width
        depth = self._schema.depth
        # raw[t, i, j] = tables[t, i, indices[i, j]]
        raw = self._tables[:, np.arange(depth)[:, None], indices]
        mean_share = self.totals() / k
        per_row = (raw - mean_share[:, None, None]) / (1.0 - 1.0 / k)
        return np.median(per_row, axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        t, h, k = self._tables.shape
        return f"SketchStack(T={t}, H={h}, K={k})"


def tables_estimate_f2(tables: np.ndarray, width: int) -> np.ndarray:
    """Per-slice ESTIMATEF2 over an ``(..., H, K)`` table tensor.

    Vectorized transliteration of :meth:`KArySketch.estimate_f2`: for each
    leading slice, the median over rows of ``K/(K-1) * sum_j T[i][j]**2 -
    sum(S)**2 / (K-1)``.  Every arithmetic step matches the per-object
    implementation operation for operation, so results are bit-identical.
    """
    tables = np.asarray(tables, dtype=np.float64)
    lead = tables.shape[:-2]
    depth, k = tables.shape[-2], int(width)
    if tables.shape[-1] != k:
        raise ValueError(f"table width {tables.shape[-1]} != {k}")
    flat = tables.reshape((-1, depth, k))
    sum_sq = np.einsum("thk,thk->th", flat, flat)
    totals = flat[:, 0, :].sum(axis=1)
    per_row = (k / (k - 1.0)) * sum_sq - (totals * totals)[:, None] / (k - 1.0)
    return np.median(per_row, axis=1).reshape(lead)
