"""The k-ary sketch (paper Section 3.1).

A k-ary sketch is an ``H x K`` table of counters.  Row ``i`` is paired with
an independent 4-universal hash function ``h_i : [u] -> [K]``.  The four
operations defined by the paper:

UPDATE(S, a, u)
    ``T[i][h_i(a)] += u`` for every row ``i``.

ESTIMATE(S, a)
    Per-row unbiased estimate ``v_a^{h_i} = (T[i][h_i(a)] - sum(S)/K) /
    (1 - 1/K)``, then the **median** across rows.  The subtraction removes
    the expected contribution of colliding keys; the ``1 - 1/K`` factor
    re-scales after removing the key's own share of the mean (Theorem 1
    shows unbiasedness with variance ``<= F2 / (K - 1)``).

ESTIMATEF2(S)
    Per-row ``F2^{h_i} = K/(K-1) * sum_j T[i][j]**2 - 1/(K-1) * sum(S)**2``,
    then the median across rows (Theorem 4: unbiased, variance
    ``<= 8 F2**2 / (K - 1)``).

COMBINE(c_1, S_1, ..., c_l, S_l)
    Entry-wise linear combination -- sketches form a vector space, which is
    what allows the forecasting module to run entirely in sketch space.

Design notes
------------
* Hash functions live in a :class:`KArySchema` shared by every sketch of an
  experiment.  Sharing is semantic (only same-schema sketches may be
  combined or compared) and practical (tabulation tables are ~2 MiB per
  row).
* Counters are ``float64``: turnstile updates are integral, but forecast
  sketches are fractional linear combinations of past sketches.
* ``K >= 2`` is required; the estimator divides by ``K - 1``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.hashing import (
    derive_seeds,
    estimate_median_indices,
    gather_indices,
    make_family,
    make_stacked,
    scatter_add_indices,
)
from repro.sketch.base import (
    LinearSummary,
    SummaryConvention,
    accumulate_arrays,
    folded_width,
    resolve_folded_schema,
)


class KArySchema:
    """Immutable description of a k-ary sketch family: ``(H, K, hashes)``.

    Every sketch produced by :meth:`empty` shares these hash functions, so
    they can be combined, differenced, and compared cell-for-cell.

    Parameters
    ----------
    depth:
        Number of hash functions / table rows ``H``.  The paper uses
        ``H in {1, 5, 9, 25}``; odd values make the median unambiguous.
    width:
        Hash table size ``K``.  The paper explores ``K`` from 1024 to 64K.
    seed:
        Master seed; per-row seeds are derived deterministically.
    family:
        Hash family name (``"tabulation"``, ``"polynomial"``, or
        ``"two-universal"`` for ablations).
    """

    def __init__(
        self,
        depth: int = 5,
        width: int = 8192,
        seed: Optional[int] = 0,
        family: str = "tabulation",
    ) -> None:
        if depth < 1:
            raise ValueError(f"depth (H) must be >= 1, got {depth}")
        if width < 2:
            raise ValueError(f"width (K) must be >= 2, got {width}")
        self._depth = int(depth)
        self._width = int(width)
        self._seed = seed
        self._family = family
        seeds = derive_seeds(seed, depth)
        self._hashes = tuple(make_family(family, width, seed=s) for s in seeds)
        # Stacked evaluator serving all H rows per pass (bit-identical to
        # looping over self._hashes; see repro.hashing.stacked).
        self._stacked = make_stacked(self._hashes, width)

    @property
    def depth(self) -> int:
        """Number of rows ``H``."""
        return self._depth

    @property
    def width(self) -> int:
        """Number of buckets per row ``K``."""
        return self._width

    @property
    def family(self) -> str:
        """Name of the hash family in use."""
        return self._family

    @property
    def seed(self) -> Optional[int]:
        """Master seed (None when seeded from OS entropy)."""
        return self._seed

    @property
    def hashes(self) -> tuple:
        """The per-row hash functions."""
        return self._hashes

    def hash_all_rows(self, keys) -> np.ndarray:
        """Hash ``keys`` with every row function: shape ``(H, n)`` int64.

        This is the stacked fast path -- one vectorized pass over the batch
        computes all ``H`` rows (for tabulation: three gathers into
        interleaved pre-reduced strips plus two XORs), bit-identical to
        evaluating the per-row functions one by one.
        """
        keys = SummaryConvention.as_key_array(keys)
        return self._stacked.hash_all(keys)

    def bucket_indices(self, keys) -> np.ndarray:
        """Alias of :meth:`hash_all_rows`.

        Detection code that estimates many sketches over the same key set
        (e.g. reconstructing forecast errors for every key of an interval)
        should compute this once and pass it to
        :meth:`KArySketch.estimate_batch`.
        """
        return self.hash_all_rows(keys)

    def empty(self) -> "KArySketch":
        """Return a fresh all-zeros sketch over this schema."""
        return KArySketch(self)

    def from_items(self, keys, values) -> "KArySketch":
        """Build a sketch directly from arrays of keys and updates."""
        sketch = self.empty()
        sketch.update_batch(keys, values)
        return sketch

    @property
    def table_bytes(self) -> int:
        """Memory footprint of one sketch table (excluding hash tables)."""
        return self._depth * self._width * 8

    def folded(self) -> "KArySchema":
        """The half-width schema this family folds into (same depth/seed).

        Because every hash family reduces a width-independent 64-bit
        value modulo ``K``, the returned schema's bucket index for any
        key equals this schema's index mod ``K/2`` -- the structural fact
        :meth:`KArySketch.fold_width` relies on.
        """
        return type(self)(
            depth=self._depth, width=folded_width(self),
            seed=self._seed, family=self._family,
        )

    def __eq__(self, other) -> bool:
        """Structural equality: same dimensions, family and *explicit* seed.

        Two schemas with explicit equal seeds derive identical hash
        functions, so their sketches are COMBINE-compatible even when the
        objects were built independently (e.g. after wire transfer).
        Schemas seeded from OS entropy (``seed=None``) are only equal to
        themselves -- their hash functions genuinely differ.
        """
        if self is other:
            return True
        if not isinstance(other, KArySchema):
            return NotImplemented
        return (
            self._seed is not None
            and other._seed is not None
            and self._seed == other._seed
            and self._depth == other._depth
            and self._width == other._width
            and self._family == other._family
        )

    def __hash__(self) -> int:
        return hash((self._depth, self._width, self._family, self._seed))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KArySchema(depth={self._depth}, width={self._width}, "
            f"seed={self._seed}, family={self._family!r})"
        )


class KArySketch(LinearSummary):
    """One k-ary sketch instance: an ``H x K`` counter table over a schema."""

    __slots__ = ("_schema", "_table")

    def __init__(self, schema: KArySchema, table: Optional[np.ndarray] = None) -> None:
        self._schema = schema
        if table is None:
            table = np.zeros((schema.depth, schema.width), dtype=np.float64)
        else:
            # C-contiguity lets the fused update/gather kernels run; an
            # already-contiguous float64 array passes through unchanged.
            table = np.ascontiguousarray(table, dtype=np.float64)
            if table.shape != (schema.depth, schema.width):
                raise ValueError(
                    f"table shape {table.shape} does not match schema "
                    f"({schema.depth}, {schema.width})"
                )
        self._table = table

    # -- accessors ---------------------------------------------------------

    @property
    def schema(self) -> KArySchema:
        """The schema (hash functions and dimensions) this sketch uses."""
        return self._schema

    @property
    def table(self) -> np.ndarray:
        """The underlying ``H x K`` counter table (read-only view)."""
        view = self._table.view()
        view.flags.writeable = False
        return view

    @property
    def nbytes(self) -> int:
        """Memory used by the counter table."""
        return self._table.nbytes

    def copy(self) -> "KArySketch":
        """Return an independent copy sharing the schema."""
        return KArySketch(self._schema, self._table.copy())

    def reset(self) -> None:
        """Zero all counters in place."""
        self._table[:] = 0.0

    # -- UPDATE ------------------------------------------------------------

    def update_batch(self, keys, values) -> None:
        """UPDATE for a batch: ``T[i][h_i(a_j)] += u_j`` for all rows, items.

        All ``H`` rows are served by one stacked pass (fused hash +
        scatter-add when the C kernel is available, sharded across the
        kernel thread pool by sketch row for large batches); repeated
        keys within the batch accumulate correctly, and the resulting
        table is bit-identical to per-row ``np.add.at`` over
        ``schema.hashes`` at any thread count.
        """
        keys = SummaryConvention.as_key_array(keys)
        values = SummaryConvention.as_value_array(values, len(keys))
        self._schema._stacked.scatter_add(self._table, keys, values)

    def update_from_indices(self, indices: np.ndarray, values) -> None:
        """UPDATE with precomputed bucket indices (shape ``(H, n)``).

        One scatter over the whole table (C kernel, or a single flat-index
        ``np.add.at`` over the raveled table) instead of a Python-level
        per-row loop; accumulation order per cell is stream order within
        each row, bit-identical to the per-row reference.
        """
        values = SummaryConvention.as_value_array(values, indices.shape[1])
        scatter_add_indices(self._table, indices, values)

    # -- ESTIMATE ----------------------------------------------------------

    def total(self) -> float:
        """``sum(S)``: the sum of all values inserted into the sketch.

        Every row holds the same total, so row 0 suffices (as in the paper's
        definition of ``sum(S)``).
        """
        return float(self._table[0].sum())

    def estimate_rows(
        self, keys, indices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-row unbiased estimates ``v_a^{h_i}``: shape ``(H, n)``.

        ``np.median(estimate_rows(keys), axis=0)`` equals
        :meth:`estimate_batch` bit-for-bit; exposing the rows lets callers
        compute exact bounds on the median (``|median| <= max_i |row_i|``)
        from one gather and defer the median to surviving keys only -- the
        detection prescreen (:mod:`repro.detection.threshold`).

        Parameters
        ----------
        keys:
            Keys to reconstruct.
        indices:
            Optional precomputed ``schema.bucket_indices(keys)`` to avoid
            re-hashing when several sketches are probed with one key set.
        """
        keys = SummaryConvention.as_key_array(keys)
        if indices is None:
            # raw[i, j] = T[i][h_i(a_j)], fused hash + gather.
            raw = self._schema._stacked.gather(self._table, keys)
        else:
            raw = gather_indices(self._table, indices)
        k = self._schema.width
        mean_share = self.total() / k
        raw -= mean_share
        raw /= 1.0 - 1.0 / k
        return raw

    def estimate_batch(
        self, keys, indices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """ESTIMATE for a batch of keys: median of per-row unbiased estimates.

        Parameters
        ----------
        keys:
            Keys to reconstruct.
        indices:
            Optional precomputed ``schema.bucket_indices(keys)`` to avoid
            re-hashing when several sketches are probed with one key set.

        When the compiled kernels are available the whole pipeline --
        hash (or index gather), the per-row unbiased transform, and the
        median across rows -- runs fused in C, one pass per key, with no
        ``(H, n)`` intermediate.  The result is bit-identical to the
        NumPy reference either way.
        """
        k = self._schema.width
        mean_share = self.total() / k
        denom = 1.0 - 1.0 / k
        if indices is None:
            keys = SummaryConvention.as_key_array(keys)
            fused = self._schema._stacked.estimate_median(
                self._table, keys, mean_share, denom
            )
        else:
            fused = estimate_median_indices(
                self._table, indices, mean_share, denom
            )
        if fused is not None:
            return fused
        return np.median(self.estimate_rows(keys, indices=indices), axis=0)

    # -- ESTIMATEF2 --------------------------------------------------------

    def estimate_f2(self) -> float:
        """ESTIMATEF2: median of per-row unbiased second-moment estimates."""
        k = self._schema.width
        sum_sq = np.einsum("ij,ij->i", self._table, self._table)
        total = self.total()
        per_row = (k / (k - 1.0)) * sum_sq - (total * total) / (k - 1.0)
        return float(np.median(per_row))

    # -- FOLD --------------------------------------------------------------

    def fold_width(self, schema: Optional[KArySchema] = None) -> "KArySketch":
        """Halve the width exactly (Hokusai item aggregation).

        ``T'[i][j] = T[i][j] + T[i][j + K/2]`` over a half-width schema
        with the same depth, seed, and family.  Because bucket indices at
        width ``K/2`` are the width-``K`` indices mod ``K/2`` (see
        :meth:`KArySchema.folded`), the result is **exactly** the sketch
        the half-width schema would have built from the same stream --
        not an approximation of it -- and linearity makes the fold
        commute with COMBINE.  ("Exactly" is bit-for-bit when updates
        are integer-valued counts, the archive's case; for arbitrary
        float updates the fold regroups the per-cell summation order,
        so equality holds up to float associativity.)  Estimation variance roughly doubles
        (``F2/(K/2 - 1)``): resolution is traded for memory, which is the
        point of aging archives.

        Pass the prebuilt half-width ``schema`` when folding repeatedly;
        building one on the fly re-derives the hash tables.
        """
        folded = resolve_folded_schema(self._schema, schema)
        half = folded.width
        return KArySketch(
            folded, self._table[:, :half] + self._table[:, half:]
        )

    # -- COMBINE -----------------------------------------------------------

    def _check_terms(
        self, terms: Sequence[Tuple[float, LinearSummary]]
    ) -> list:
        tables = []
        for coeff, summary in terms:
            if not isinstance(summary, KArySketch):
                raise TypeError(
                    f"cannot combine KArySketch with {type(summary).__name__}"
                )
            if summary._schema != self._schema:
                raise ValueError(
                    "cannot combine sketches with different schemas "
                    "(hash functions must be identical)"
                )
            tables.append((float(coeff), summary._table))
        return tables

    def combine_into(
        self,
        terms: Sequence[Tuple[float, LinearSummary]],
        scratch: Optional[np.ndarray] = None,
    ) -> "KArySketch":
        """In-place COMBINE: overwrite this sketch with ``sum(c_i * S_i)``.

        Reuses this sketch's table (and an optional caller-provided
        ``(H, K)`` float64 ``scratch`` for non-unit coefficients) so a
        seal-path COMBINE allocates nothing.  Bit-identical to
        :func:`combine`; the receiver must not itself appear in ``terms``.
        """
        accumulate_arrays(self._table, self._check_terms(terms), scratch)
        return self

    def _linear_combination(
        self, terms: Sequence[Tuple[float, LinearSummary]]
    ) -> "KArySketch":
        result = KArySketch(self._schema)
        accumulate_arrays(result._table, self._check_terms(terms))
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KArySketch(H={self._schema.depth}, K={self._schema.width}, "
            f"total={self.total():.6g})"
        )


def combine(
    coefficients: Iterable[float], sketches: Iterable[KArySketch]
) -> KArySketch:
    """COMBINE: return ``sum(c_i * S_i)`` over same-schema sketches.

    This is the paper's fourth sketch operation, exposed as a free function
    mirroring the ``COMBINE(c1, S1, ..., cl, Sl)`` signature.
    """
    terms = [(float(c), s) for c, s in zip(coefficients, sketches)]
    if not terms:
        raise ValueError("combine requires at least one term")
    return terms[0][1]._linear_combination(terms)
