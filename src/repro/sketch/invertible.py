"""Invertible k-ary sketch: replay-free heavy-changer key recovery.

The plain k-ary sketch can *score* any key but cannot *enumerate* the keys
it saw -- detection needs a second pass over the traffic (or an online
candidate list) to know which keys to probe.  This module augments every
``(row, bucket)`` cell with one MV-style candidate field, following the
majority-vote scheme of the MV-sketch (Tang et al., "A Fast and Compact
Invertible Sketch for Network-Wide Heavy Flow Detection"):

candidate maintenance (per UPDATE of key ``a`` with weight ``w``)
    ``candidate == a``  ->  ``vote += w``
    ``vote >= w``       ->  ``vote -= w``
    otherwise           ->  ``candidate = a``; ``vote = w - vote``

This is the Boyer-Moore majority element argument per bucket: whichever key
contributes the majority of a bucket's mass ends up holding the candidate
slot.  A heavy changer dominates every bucket it hashes to (in the error
sketch, after forecasting), so walking the ``H x K`` buckets and collecting
candidates whose *single-row* unbiased estimate clears the alarm threshold
recovers the heavy-changer keys in ``O(H * K)`` -- no second pass over the
stream.  Each recovered candidate is then verified with the ordinary
median ESTIMATE, so false bucket winners cost a probe, never a report.

Storage layout
--------------
One contiguous ``(3, H, K)`` float64 block:

* plane 0 -- the ordinary k-ary counters.  It is handed to the
  :class:`~repro.sketch.kary.KArySketch` base constructor unchanged (a
  contiguous slice of a contiguous block is itself contiguous), so every
  inherited operation (UPDATE scatter, ESTIMATE, ESTIMATEF2, prescreen
  gathers, fused kernels) runs on it exactly as on a plain sketch.
* plane 1 -- candidate keys, stored as the ``uint64`` bit-cast view of the
  float64 plane.  Same-dtype copies are memcpy, so key bit patterns
  survive serialization, shared-memory transfer, and checkpointing
  without a separate integer buffer.
* plane 2 -- candidate votes (nonnegative float64).

Counter bit-identity
--------------------
Plane 0 is updated by the inherited stream-order scatter, so an invertible
sketch fed a stream has counters bit-identical to a plain
:class:`KArySketch` fed the same stream -- every estimate, threshold, and
report built on the counters is unchanged by the candidate planes.

COMBINE
-------
Counter planes combine linearly as always.  Candidate planes merge with
the same MV rule (votes scaled by ``|c_i|``), folded pairwise left to
right.  The fold is order-*dependent* (MV is not associative), so sharded
recovery is validated against serial at the report level; the counter
planes remain bit-exact regardless of shard order because integral
float64 sums are order-independent.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.hashing import (
    mv_combine2_planes,
    mv_merge_planes,
    mv_recover_mask,
)
from repro.sketch.base import (
    LinearSummary,
    SummaryConvention,
    accumulate_arrays,
)
from repro.sketch.kary import KArySchema, KArySketch


class InvertibleKArySchema(KArySchema):
    """Schema for invertible k-ary sketches.

    Identical hash structure to :class:`KArySchema` -- same derived per-row
    functions for the same ``(depth, width, seed, family)`` -- but its
    sketches carry candidate planes and are *not* COMBINE-compatible with
    plain k-ary sketches (merging would silently drop votes), so equality
    is restricted to other invertible schemas.
    """

    def empty(self) -> "InvertibleKArySketch":
        """Return a fresh all-zeros invertible sketch over this schema."""
        return InvertibleKArySketch(self)

    @property
    def table_bytes(self) -> int:
        """Footprint of one sketch: counters + candidate keys + votes."""
        return 3 * self._depth * self._width * 8

    def __eq__(self, other) -> bool:
        """Equality additionally requires the invertible layout.

        Python dispatches to the subclass ``__eq__`` first whenever either
        operand is an :class:`InvertibleKArySchema`, so a plain
        :class:`KArySchema` never compares equal to an invertible one in
        either direction.
        """
        if self is other:
            return True
        if not isinstance(other, InvertibleKArySchema):
            return False
        return KArySchema.__eq__(self, other)

    __hash__ = KArySchema.__hash__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InvertibleKArySchema(depth={self._depth}, width={self._width}, "
            f"seed={self._seed}, family={self._family!r})"
        )


class InvertibleKArySketch(KArySketch):
    """k-ary sketch with per-bucket MV candidate (key, vote) fields."""

    __slots__ = ("_store", "_cand_keys", "_cand_votes")

    def __init__(
        self,
        schema: InvertibleKArySchema,
        store: Optional[np.ndarray] = None,
    ) -> None:
        if not isinstance(schema, InvertibleKArySchema):
            raise TypeError(
                "InvertibleKArySketch requires an InvertibleKArySchema"
            )
        shape = (3, schema.depth, schema.width)
        if store is None:
            store = np.zeros(shape, dtype=np.float64)
        else:
            store = np.ascontiguousarray(store, dtype=np.float64)
            if store.shape != shape:
                raise ValueError(
                    f"store shape {store.shape} does not match schema "
                    f"{shape}"
                )
        self._store = store
        self._cand_keys = store[1].view(np.uint64)
        self._cand_votes = store[2]
        super().__init__(schema, store[0])

    # -- accessors ---------------------------------------------------------

    @property
    def table(self) -> np.ndarray:
        """The full ``(3, H, K)`` store (read-only view).

        Plane 0 holds the counters, plane 1 the candidate keys (as float64
        bit patterns; view as ``uint64`` to read them), plane 2 the votes.
        Exposing the whole store here is what lets the serialization and
        shared-memory layers round-trip the candidate planes without
        special-casing every call site.
        """
        view = self._store.view()
        view.flags.writeable = False
        return view

    @property
    def counters(self) -> np.ndarray:
        """The ``H x K`` counter plane alone (read-only view)."""
        view = self._table.view()
        view.flags.writeable = False
        return view

    @property
    def candidate_keys(self) -> np.ndarray:
        """Per-bucket candidate keys, shape ``(H, K)`` uint64 (read-only)."""
        view = self._cand_keys.view()
        view.flags.writeable = False
        return view

    @property
    def candidate_votes(self) -> np.ndarray:
        """Per-bucket candidate votes, shape ``(H, K)`` float64 (read-only)."""
        view = self._cand_votes.view()
        view.flags.writeable = False
        return view

    @property
    def nbytes(self) -> int:
        """Memory used by counters plus candidate planes."""
        return self._store.nbytes

    def copy(self) -> "InvertibleKArySketch":
        """Return an independent copy sharing the schema."""
        return InvertibleKArySketch(self._schema, self._store.copy())

    def reset(self) -> None:
        """Zero counters, candidate keys, and votes in place."""
        self._store[:] = 0.0

    # -- UPDATE ------------------------------------------------------------

    def update_batch(self, keys, values) -> None:
        """UPDATE counters and candidate fields for a batch.

        The counter plane is updated by the inherited stream-order scatter
        first, so it stays bit-identical to a plain k-ary sketch fed the
        same stream.  The candidate planes are then updated with the batch
        aggregated per unique key (ascending key order, per-key summed
        weights) -- a canonical operation sequence that the C kernels and
        the NumPy fallback replay identically, and that makes the vote
        pass O(unique keys) rather than O(records).  Both the scatter and
        the vote pass shard large batches across the kernel thread pool
        by sketch row (one writer per row), so the tables stay
        bit-identical at any thread count.
        """
        keys = SummaryConvention.as_key_array(keys)
        values = SummaryConvention.as_value_array(values, len(keys))
        self._schema._stacked.scatter_add(self._table, keys, values)
        if len(keys) == 0:
            return
        uniq, inverse = np.unique(keys, return_inverse=True)
        weights = np.bincount(inverse, weights=values, minlength=len(uniq))
        self._schema._stacked.mv_vote(
            self._cand_keys, self._cand_votes, uniq, weights
        )

    def update_from_indices(self, indices: np.ndarray, values) -> None:
        """Unsupported: precomputed indices carry no keys to vote with."""
        raise TypeError(
            "InvertibleKArySketch.update_from_indices is unsupported: "
            "bucket indices do not identify the keys, so candidate votes "
            "cannot be maintained; use update_batch"
        )

    # -- RECOVER -----------------------------------------------------------

    def recover_candidates(self, threshold: float = 0.0) -> np.ndarray:
        """Walk the buckets and return candidate heavy keys, ``O(H * K)``.

        For every bucket the *single-row* unbiased estimate
        ``(T[i][j] - sum(S)/K) / (1 - 1/K)`` is computed; buckets whose
        estimate magnitude clears ``threshold`` (strictly exceeds zero when
        ``threshold == 0``, matching the detection layer's zero-threshold
        alarm rule) and that hold a live vote surrender their candidate
        key.  If a key's true change magnitude has ``|median| >= threshold``
        then at least ``ceil((H+1)/2)`` of its buckets pass the magnitude
        mask, so the key is recovered whenever it won the vote in at least
        one of those buckets -- the MV majority argument makes that the
        overwhelmingly common case for genuine heavy changers.

        Returns the unique candidate keys as a ``uint64`` array, sorted
        ascending.  Callers verify each against the full median estimator
        (:meth:`estimate_batch`), so recovery errs on the side of
        returning a candidate.
        """
        if threshold < 0.0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        k = self._schema.width
        mask = mv_recover_mask(
            self._table,
            self._cand_votes,
            self.total() / k,
            1.0 - 1.0 / k,
            threshold,
        )
        if not mask.any():
            return np.empty(0, dtype=np.uint64)
        return np.unique(self._cand_keys[mask])

    # -- FOLD --------------------------------------------------------------

    def fold_width(
        self, schema: Optional[InvertibleKArySchema] = None
    ) -> "InvertibleKArySketch":
        """Halve the width: exact counter fold + MV merge of candidates.

        The counter plane folds exactly like the plain k-ary sketch
        (bucket ``j`` and ``j + K/2`` sum into bucket ``j mod K/2`` of
        the half-width schema).  The candidate planes cannot fold
        linearly -- two buckets collapsing into one must elect a single
        candidate -- so the right half merges into the left with the
        same MV rule COMBINE uses (unit coefficient): the surviving
        candidate is whichever key's vote mass dominates the merged
        bucket.  Counters stay exact; candidate recovery after a fold is
        best-effort exactly as it is after any COMBINE.
        """
        from repro.sketch.base import resolve_folded_schema

        folded = resolve_folded_schema(self._schema, schema)
        half = folded.width
        store = np.empty((3, self._schema.depth, half), dtype=np.float64)
        np.add(self._table[:, :half], self._table[:, half:], out=store[0])
        result = InvertibleKArySketch(folded, store)
        np.copyto(result._cand_keys, self._cand_keys[:, :half])
        np.copyto(result._cand_votes, self._cand_votes[:, :half])
        mv_merge_planes(
            result._cand_keys,
            result._cand_votes,
            np.ascontiguousarray(self._cand_keys[:, half:]),
            np.ascontiguousarray(self._cand_votes[:, half:]),
            1.0,
        )
        return result

    # -- COMBINE -----------------------------------------------------------

    def _check_terms(
        self, terms: Sequence[Tuple[float, LinearSummary]]
    ) -> list:
        for _, summary in terms:
            if not isinstance(summary, InvertibleKArySketch):
                raise TypeError(
                    "cannot combine InvertibleKArySketch with "
                    f"{type(summary).__name__}"
                )
        return super()._check_terms(terms)

    def combine_into(
        self,
        terms: Sequence[Tuple[float, LinearSummary]],
        scratch: Optional[np.ndarray] = None,
    ) -> "InvertibleKArySketch":
        """In-place COMBINE of counters plus MV merge of candidate planes.

        Counters combine linearly (bit-identical to the plain sketch).
        Candidate planes fold pairwise left to right with the MV rule,
        votes scaled by ``|c_i|`` -- a negated sketch carries the same
        evidence about *which* key dominates a bucket, only the counter
        sign flips.  The receiver must not itself appear in ``terms``.
        """
        merged = self._check_terms(terms)
        accumulate_arrays(self._table, merged, scratch)
        self._merge_candidates(terms)
        return self

    def _linear_combination(
        self, terms: Sequence[Tuple[float, LinearSummary]]
    ) -> "InvertibleKArySketch":
        # combine_into overwrites every plane (accumulate_arrays writes
        # the first counter term directly; the candidate fold copies the
        # first term's planes, and zeroes them when there are no terms),
        # so the fresh store can skip page-zeroing.  This runs once per
        # forecast step on the EWMA level update, where the zeroing of a
        # 3-plane production-width store is measurable.
        shape = (3, self._schema.depth, self._schema.width)
        result = InvertibleKArySketch(
            self._schema, np.empty(shape, dtype=np.float64)
        )
        return result.combine_into(terms)

    def _merge_candidates(
        self, terms: Sequence[Tuple[float, LinearSummary]]
    ) -> None:
        """Fold the terms' candidate planes into this sketch's, MV-style."""
        ak = self._cand_keys
        av = self._cand_votes
        if len(terms) == 2:
            # The forecast hot path (error seal, EWMA level update) is
            # always a two-term COMBINE into a scratch: fuse the fold.
            (ca, sa), (cb, sb) = terms
            mv_combine2_planes(
                ak, av,
                sa._cand_keys, sa._cand_votes, ca,
                sb._cand_keys, sb._cand_votes, cb,
            )
            return
        first = True
        for coeff, summary in terms:
            tk = summary._cand_keys
            tv_src = summary._cand_votes
            if first:
                np.copyto(ak, tk)
                np.multiply(tv_src, abs(coeff), out=av)
                first = False
                continue
            mv_merge_planes(ak, av, tk, tv_src, coeff)
        if first:  # no terms: candidate planes are empty
            ak[...] = 0
            av[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        live = int(np.count_nonzero(self._cand_votes))
        return (
            f"InvertibleKArySketch(H={self._schema.depth}, "
            f"K={self._schema.width}, total={self.total():.6g}, "
            f"live_candidates={live})"
        )
