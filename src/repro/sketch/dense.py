"""Dense exact vectors over a fixed key index: the fast per-flow baseline.

Per-flow analysis over a known key universe is dramatically faster with a
dense NumPy vector than with a dictionary: an offline evaluation first
enumerates the trace's distinct keys into a :class:`KeyIndex`, then every
interval's observed state is a dense float64 vector and all forecasting
arithmetic is vectorized.

This mirrors how one would actually run the paper's per-flow comparison
offline, and is what makes whole-paper experiment sweeps feasible in
Python.  :class:`DenseVector` implements the same
:class:`~repro.sketch.base.LinearSummary` interface as the sketches, so
the identical pipeline code runs in exact space.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.sketch.base import LinearSummary, SummaryConvention, accumulate_arrays


class KeyIndex:
    """Immutable sorted index of a key universe, with O(log n) lookup."""

    def __init__(self, keys) -> None:
        keys = SummaryConvention.as_key_array(keys)
        self._keys = np.unique(keys)

    @classmethod
    def from_streams(cls, batches) -> "KeyIndex":
        """Build an index from an iterable of per-interval key arrays."""
        chunks = [SummaryConvention.as_key_array(b) for b in batches]
        if not chunks:
            return cls(np.array([], dtype=np.uint64))
        return cls(np.concatenate(chunks))

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def keys(self) -> np.ndarray:
        """The sorted key universe (read-only view)."""
        view = self._keys.view()
        view.flags.writeable = False
        return view

    def positions(self, keys) -> np.ndarray:
        """Map keys to dense positions; raises ``KeyError`` on unknown keys."""
        keys = SummaryConvention.as_key_array(keys)
        pos = np.searchsorted(self._keys, keys)
        pos_clipped = np.minimum(pos, len(self._keys) - 1) if len(self._keys) else pos
        if len(self._keys) == 0 or not np.all(self._keys[pos_clipped] == keys):
            missing = (
                keys[self._keys[pos_clipped] != keys][:5]
                if len(self._keys)
                else keys[:5]
            )
            raise KeyError(f"keys not in index (first few): {missing.tolist()}")
        return pos_clipped

    def contains(self, keys) -> np.ndarray:
        """Boolean mask of which keys are present in the index."""
        keys = SummaryConvention.as_key_array(keys)
        if len(self._keys) == 0:
            return np.zeros(len(keys), dtype=bool)
        pos = np.minimum(np.searchsorted(self._keys, keys), len(self._keys) - 1)
        return self._keys[pos] == keys


class DenseSchema:
    """Schema for dense exact vectors over a shared :class:`KeyIndex`."""

    def __init__(self, index: KeyIndex) -> None:
        self.index = index

    def empty(self) -> "DenseVector":
        """Return an all-zeros vector over the index."""
        return DenseVector(self.index)

    def from_items(self, keys, values) -> "DenseVector":
        """Build a vector from arrays of keys and updates."""
        vec = self.empty()
        vec.update_batch(keys, values)
        return vec

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DenseSchema(universe={len(self.index)})"


class DenseVector(LinearSummary):
    """Exact keyed vector with dense float64 storage over a KeyIndex."""

    __slots__ = ("_index", "_values")

    def __init__(self, index: KeyIndex, values: Optional[np.ndarray] = None) -> None:
        self._index = index
        if values is None:
            values = np.zeros(len(index), dtype=np.float64)
        else:
            values = np.asarray(values, dtype=np.float64)
            if values.shape != (len(index),):
                raise ValueError(
                    f"values shape {values.shape} does not match index "
                    f"size {len(index)}"
                )
        self._values = values

    @property
    def index(self) -> KeyIndex:
        """The key universe this vector is defined over."""
        return self._index

    @property
    def values(self) -> np.ndarray:
        """Dense value array aligned with ``index.keys`` (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def update_batch(self, keys, values) -> None:
        keys = SummaryConvention.as_key_array(keys)
        values = SummaryConvention.as_value_array(values, len(keys))
        pos = self._index.positions(keys)
        np.add.at(self._values, pos, values)

    def estimate_batch(self, keys, indices=None) -> np.ndarray:
        """Exact totals (``indices`` ignored; kept for API parity)."""
        pos = self._index.positions(keys)
        return self._values[pos]

    def estimate_f2(self) -> float:
        return float(self._values @ self._values)

    def total(self) -> float:
        """Exact sum of all updates."""
        return float(self._values.sum())

    def top_n(self, n: int, absolute: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Top ``n`` keys by (absolute) value: ``(keys, values)`` descending.

        Ties broken by key for determinism.
        """
        magnitudes = np.abs(self._values) if absolute else self._values
        order = np.lexsort((self._index.keys, -magnitudes))
        chosen = order[:n]
        return self._index.keys[chosen], self._values[chosen]

    def _check_terms(
        self, terms: Sequence[Tuple[float, LinearSummary]]
    ) -> list:
        arrays = []
        for coeff, summary in terms:
            if not isinstance(summary, DenseVector):
                raise TypeError(
                    f"cannot combine DenseVector with {type(summary).__name__}"
                )
            if summary._index is not self._index:
                raise ValueError("cannot combine vectors over different key indexes")
            arrays.append((float(coeff), summary._values))
        return arrays

    def combine_into(
        self,
        terms: Sequence[Tuple[float, LinearSummary]],
        scratch: Optional[np.ndarray] = None,
    ) -> "DenseVector":
        """In-place COMBINE reusing this vector's storage (allocation-free)."""
        accumulate_arrays(self._values, self._check_terms(terms), scratch)
        return self

    def _linear_combination(
        self, terms: Sequence[Tuple[float, LinearSummary]]
    ) -> "DenseVector":
        result = DenseVector(self._index)
        accumulate_arrays(result._values, self._check_terms(terms))
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DenseVector(universe={len(self._index)}, total={self.total():.6g})"
