"""Count-Min sketch baseline (Cormode & Muthukrishnan).

Included as a comparison point for ablation: Count-Min's ``min``-of-rows
estimator is biased upward under cash-register streams (non-negative
updates) and breaks down entirely under turnstile streams with negative
updates, whereas the k-ary sketch's mean-corrected median estimator remains
unbiased.  The ablation benchmark quantifies this on the change-detection
workload, where forecast-error streams are signed by construction.

For signed streams the estimator falls back to the median of raw row cells
(the "Count-Median" variant), which is unbiased up to the +F1/K collision
bias that k-ary's correction removes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.hashing import (
    derive_seeds,
    gather_indices,
    make_family,
    make_stacked,
    scatter_add_indices,
)
from repro.sketch.base import (
    LinearSummary,
    SummaryConvention,
    accumulate_arrays,
    folded_width,
    resolve_folded_schema,
)


class CountMinSchema:
    """Shared hash functions and dimensions for Count-Min sketches."""

    def __init__(
        self,
        depth: int = 5,
        width: int = 8192,
        seed: Optional[int] = 0,
        family: str = "tabulation",
    ) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.depth = int(depth)
        self.width = int(width)
        self.seed = seed
        self.family = family
        seeds = derive_seeds(seed, depth)
        self.hashes = tuple(make_family(family, width, seed=s) for s in seeds)
        self._stacked = make_stacked(self.hashes, width)

    def __eq__(self, other) -> bool:
        """Structural equality: same dimensions, family and *explicit* seed.

        Matches :class:`~repro.sketch.kary.KArySchema` semantics: schemas
        rebuilt from the same explicit seed derive identical hash functions
        and are COMBINE-compatible; entropy-seeded schemas (``seed=None``)
        are only equal to themselves.
        """
        if self is other:
            return True
        if not isinstance(other, CountMinSchema):
            return NotImplemented
        return (
            self.seed is not None
            and other.seed is not None
            and self.seed == other.seed
            and self.depth == other.depth
            and self.width == other.width
            and self.family == other.family
        )

    def __hash__(self) -> int:
        return hash((self.depth, self.width, self.family, self.seed))

    def empty(self) -> "CountMinSketch":
        """Return a fresh zeroed Count-Min sketch."""
        return CountMinSketch(self)

    def from_items(self, keys, values) -> "CountMinSketch":
        """Build a sketch from arrays of keys and updates."""
        sketch = self.empty()
        sketch.update_batch(keys, values)
        return sketch

    def bucket_indices(self, keys) -> np.ndarray:
        """Hash ``keys`` with every row function: shape ``(depth, n)``.

        Served by the stacked evaluator (one pass for all rows).
        """
        keys = SummaryConvention.as_key_array(keys)
        return self._stacked.hash_all(keys)

    def folded(self) -> "CountMinSchema":
        """The half-width schema this family folds into (same depth/seed)."""
        return type(self)(
            depth=self.depth, width=folded_width(self),
            seed=self.seed, family=self.family,
        )


class CountMinSketch(LinearSummary):
    """Count-Min sketch with min (cash-register) or median (signed) estimation."""

    __slots__ = ("_schema", "_table")

    def __init__(self, schema: CountMinSchema, table: Optional[np.ndarray] = None):
        self._schema = schema
        if table is None:
            table = np.zeros((schema.depth, schema.width), dtype=np.float64)
        else:
            table = np.ascontiguousarray(table, dtype=np.float64)
            if table.shape != (schema.depth, schema.width):
                raise ValueError(
                    f"table shape {table.shape} does not match schema "
                    f"({schema.depth}, {schema.width})"
                )
        self._table = table

    @property
    def schema(self) -> CountMinSchema:
        """The schema this sketch was built from."""
        return self._schema

    @property
    def table(self) -> np.ndarray:
        """Underlying counter table (read-only view)."""
        view = self._table.view()
        view.flags.writeable = False
        return view

    def copy(self) -> "CountMinSketch":
        """Return an independent copy sharing the schema."""
        return CountMinSketch(self._schema, self._table.copy())

    def reset(self) -> None:
        """Zero all counters in place."""
        self._table[:] = 0.0

    def update_batch(self, keys, values) -> None:
        """Batched UPDATE via the stacked scatter-add.

        Dispatches to the fused C kernel when compiled, which shards
        large batches across the kernel thread pool by sketch row --
        bit-identical to the serial/NumPy path at any thread count.
        """
        keys = SummaryConvention.as_key_array(keys)
        values = SummaryConvention.as_value_array(values, len(keys))
        self._schema._stacked.scatter_add(self._table, keys, values)

    def update_from_indices(self, indices: np.ndarray, values) -> None:
        """UPDATE with precomputed bucket indices (shape ``(depth, n)``).

        Same surface as :meth:`KArySketch.update_from_indices`, so callers
        holding cached ``schema.bucket_indices(keys)`` (the detection
        index cache, recovery verification) can feed any summary kind
        uniformly.  Bit-identical to :meth:`update_batch` on the same
        keys: accumulation order per cell is stream order within each row.
        """
        values = SummaryConvention.as_value_array(values, indices.shape[1])
        scatter_add_indices(self._table, indices, values)

    def estimate_rows(
        self, keys, indices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Raw per-row cell reads ``T[i][h_i(a_j)]``: shape ``(depth, n)``.

        The Count-Min analogue of :meth:`KArySketch.estimate_rows` --
        what recovery verification probes uniformly across summary
        types.  Unlike k-ary there is no mean correction: the rows *are*
        the per-row estimates.  ``np.median(rows, axis=0)`` equals
        ``estimate_batch(signed=True)`` bit for bit; note that the
        default (cash-register) estimator is the row *minimum*, so
        ``|median of rows|`` upper-bounds nothing there -- callers doing
        bound-based prescreens should stick to the signed estimator.
        """
        keys = SummaryConvention.as_key_array(keys)
        if indices is None:
            return self._schema._stacked.gather(self._table, keys)
        return gather_indices(self._table, indices)

    def estimate_batch(
        self, keys, indices: Optional[np.ndarray] = None, signed: bool = False
    ) -> np.ndarray:
        """Point estimates: row minimum, or row median when ``signed``.

        The classical Count-Min guarantee (``est <= true + eps * F1`` with
        probability ``1 - delta``) only holds for non-negative updates; use
        ``signed=True`` for turnstile streams.
        """
        keys = SummaryConvention.as_key_array(keys)
        if indices is None:
            raw = self._schema._stacked.gather(self._table, keys)
        else:
            raw = gather_indices(self._table, indices)
        if signed:
            return np.median(raw, axis=0)
        return raw.min(axis=0)

    def estimate_f2(self) -> float:
        """Crude F2 upper bound: the minimum row sum-of-squares.

        Count-Min has no unbiased F2 estimator (that is one of the k-ary /
        Count-Sketch advantages); each row's sum of squares over-counts by
        the colliding cross-terms, so the minimum row is the tightest bound
        available from the table alone.
        """
        sum_sq = np.einsum("ij,ij->i", self._table, self._table)
        return float(sum_sq.min())

    def total(self) -> float:
        """Sum of all inserted values (row 0)."""
        return float(self._table[0].sum())

    def fold_width(
        self, schema: Optional[CountMinSchema] = None
    ) -> "CountMinSketch":
        """Halve the width exactly (Hokusai item aggregation).

        Same structural argument as :meth:`KArySketch.fold_width`:
        bucket indices at width ``K/2`` are the width-``K`` indices mod
        ``K/2``, so summing the row halves reproduces the half-width
        table (bit-for-bit for integer-valued updates).  The cash-register error bound degrades from
        ``eps = e/K`` to ``2e/K`` -- resolution traded for memory.
        """
        folded = resolve_folded_schema(self._schema, schema)
        half = folded.width
        return CountMinSketch(
            folded, self._table[:, :half] + self._table[:, half:]
        )

    def _check_terms(
        self, terms: Sequence[Tuple[float, LinearSummary]]
    ) -> list:
        tables = []
        for coeff, summary in terms:
            if not isinstance(summary, CountMinSketch):
                raise TypeError(
                    f"cannot combine CountMinSketch with {type(summary).__name__}"
                )
            if summary._schema != self._schema:
                raise ValueError("cannot combine sketches with different schemas")
            tables.append((float(coeff), summary._table))
        return tables

    def combine_into(
        self,
        terms: Sequence[Tuple[float, LinearSummary]],
        scratch: Optional[np.ndarray] = None,
    ) -> "CountMinSketch":
        """In-place COMBINE reusing this sketch's table (allocation-free)."""
        accumulate_arrays(self._table, self._check_terms(terms), scratch)
        return self

    def _linear_combination(
        self, terms: Sequence[Tuple[float, LinearSummary]]
    ) -> "CountMinSketch":
        result = CountMinSketch(self._schema)
        accumulate_arrays(result._table, self._check_terms(terms))
        return result
