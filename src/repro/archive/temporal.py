"""Multi-resolution temporal archive of sealed interval sketches.

The live pipeline (Sections 2-4 of the paper) answers "did the traffic
change *now*?" and then discards each interval's sketch as soon as the
forecast model has consumed it.  Operators, however, ask retrospective
questions -- "was this host already ramping up last Tuesday?", "compare
this morning's mix against the same window yesterday" -- which need the
sealed summaries *kept*, under a bounded memory footprint.

:class:`TemporalArchive` keeps them the way Hokusai (Matusevych, Smola &
Ahmed, UAI 2012) does, by exploiting the same linearity that makes
COMBINE work:

* **Time aggregation** -- adjacent spans of equal length merge via a
  unit-coefficient COMBINE into a span of twice the width in time.  The
  merged summary is exactly the sketch of the concatenated streams.
* **Item aggregation** -- a span's summary halves its bucket width via
  :func:`~repro.sketch.mergeable.fold_width`; the folded table is
  exactly what the half-width schema would have built, at roughly twice
  the estimation variance.

Recent intervals stay at full resolution (one span per interval, keys
retained, so live detection reports can be reproduced bit-identically);
older spans are compacted along both axes until the archive fits its
byte budget.  Every span remains a linear summary over a known schema,
so the full query machinery -- ESTIMATE, ESTIMATEF2, the
``T * sqrt(F2)`` alarm threshold, hierarchical drill-down -- applies to
any time range the archive covers.

Thread-safety: none.  With a pipelined session the sink runs on the
single FIFO seal worker, which is safe; run queries only after
``session.drain()`` (or from the ingest thread).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.detection.threshold import IntervalDetection, build_interval_report
from repro.forecast.base import Forecaster
from repro.forecast.model_zoo import make_forecaster
from repro.obs.recorder import NULL_RECORDER
from repro.sketch.base import LinearSummary
from repro.sketch.mergeable import combine, fold_width, half_width_schema, merge
from repro.sketch.serialization import (
    dumps,
    dumps_checkpoint,
    loads,
    loads_checkpoint,
    schema_from_identity,
    schema_identity,
)

_FORMAT = "temporal-archive"
_VERSION = 1

#: Counter series preregistered at zero when a real recorder attaches.
_ARCHIVE_COUNTERS = (
    "repro_archive_intervals_ingested_total",
    "repro_archive_keys_dropped_total",
)
_COMPACTION_AXES = ("time", "item")


@dataclass
class ArchiveSpan:
    """One archived span: ``length`` consecutive intervals in one summary.

    ``folds`` counts the width halvings applied (0 = native width).
    ``keys`` holds the span's observed key set (``np.unique`` output)
    while the span is still at full resolution; compaction drops it.
    """

    start: int
    length: int
    folds: int
    summary: LinearSummary
    keys: Optional[np.ndarray]

    @property
    def end(self) -> int:
        """One past the last interval index the span covers."""
        return self.start + self.length

    @property
    def nbytes(self) -> int:
        """Resident bytes: counter table plus retained keys."""
        n = int(np.asarray(self.summary.table).nbytes)
        if self.keys is not None:
            n += int(self.keys.nbytes)
        return n


class TemporalArchive:
    """Byte-budgeted multi-resolution store of sealed interval summaries.

    Parameters
    ----------
    schema:
        Schema of the sealed summaries fed to :meth:`ingest`.  Must carry
        an explicit seed: folding rebuilds half-width schemas and
        persistence re-derives hash functions, neither of which is
        possible for entropy-seeded schemas.
    interval_seconds:
        The session's analysis interval length (time queries divide by
        it to find interval indices).
    byte_budget:
        Resident-size ceiling in bytes; crossing it triggers compaction
        on ingest.  ``None`` disables automatic compaction (call
        :meth:`compact_once` manually).
    max_folds:
        Width-halving ceiling per span.  The tier schedule folds a span
        of ``2**j`` intervals ``min(j, max_folds)`` times, so resolution
        degrades with age but never below ``width / 2**max_folds``.
    tail_intervals:
        The newest ``tail_intervals`` intervals are never compacted --
        this is the full-resolution tail over which retrospective
        queries reproduce live detection exactly.
    recorder:
        Optional :class:`~repro.obs.recorder.PipelineRecorder` for
        compaction/residency metrics.  Execution state only: queries
        and archived counters are identical with or without one.

    Attach to a session with ``StreamingSession(..., sink=archive.ingest)``.
    """

    def __init__(
        self,
        schema,
        interval_seconds: float = 300.0,
        *,
        byte_budget: Optional[int] = None,
        max_folds: int = 3,
        tail_intervals: int = 8,
        recorder=None,
    ) -> None:
        if getattr(schema, "seed", None) is None:
            raise ValueError(
                "TemporalArchive requires a schema with an explicit seed: "
                "folding and persistence must re-derive its hash functions"
            )
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        if byte_budget is not None and byte_budget <= 0:
            raise ValueError(f"byte_budget must be > 0, got {byte_budget}")
        if max_folds < 0:
            raise ValueError(f"max_folds must be >= 0, got {max_folds}")
        if max_folds and (
            schema.width % (1 << max_folds)
            or (schema.width >> max_folds) < 2
        ):
            raise ValueError(
                f"width {schema.width} cannot fold {max_folds} times "
                f"(needs divisibility by {1 << max_folds} and >= 2 buckets left)"
            )
        if tail_intervals < 1:
            raise ValueError(
                f"tail_intervals must be >= 1, got {tail_intervals}"
            )
        self.schema = schema
        self.interval_seconds = float(interval_seconds)
        self.byte_budget = None if byte_budget is None else int(byte_budget)
        self.max_folds = int(max_folds)
        self.tail_intervals = int(tail_intervals)
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self._spans: List[ArchiveSpan] = []
        # _schemas[f] is the schema after f folds; built lazily because
        # each half-width tabulation schema costs megabytes of tables.
        self._schemas: List = [schema]
        self._stats = {
            "intervals_ingested": 0,
            "time_compactions": 0,
            "item_compactions": 0,
            "keys_dropped": 0,
        }
        self._preregister_obs()

    # -- observability -------------------------------------------------------

    def _preregister_obs(self) -> None:
        obs = self.recorder
        obs.preregister(*_ARCHIVE_COUNTERS)
        obs.preregister_labelled(
            "repro_archive_compactions_total", "axis", _COMPACTION_AXES
        )
        if obs.enabled:
            obs.gauge("repro_archive_bytes", self.nbytes)
            obs.gauge("repro_archive_spans", len(self._spans))
            obs.gauge("repro_archive_over_budget", 0)

    def attach_recorder(self, recorder) -> None:
        """Attach (or replace, or with ``None`` detach) the recorder."""
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self._preregister_obs()

    def _record_residency(self) -> None:
        obs = self.recorder
        if not obs.enabled:
            return
        nbytes = self.nbytes
        obs.gauge("repro_archive_bytes", nbytes)
        obs.gauge("repro_archive_spans", len(self._spans))
        if self._spans:
            obs.gauge("repro_archive_max_folds", self._spans[0].folds)
        obs.gauge(
            "repro_archive_over_budget",
            int(self.byte_budget is not None and nbytes > self.byte_budget),
        )

    # -- introspection -------------------------------------------------------

    @property
    def spans(self) -> Tuple[ArchiveSpan, ...]:
        """The archived spans, oldest first (treat as read-only)."""
        return tuple(self._spans)

    @property
    def nbytes(self) -> int:
        """Total resident bytes across all spans."""
        return sum(span.nbytes for span in self._spans)

    @property
    def coverage(self) -> Optional[Tuple[int, int]]:
        """``(first, last_exclusive)`` interval-index range, or ``None``."""
        if not self._spans:
            return None
        return self._spans[0].start, self._spans[-1].end

    @property
    def stats(self) -> dict:
        """Compaction and residency counters."""
        return {**self._stats, "spans": len(self._spans), "bytes": self.nbytes}

    def index_of(self, timestamp: float) -> int:
        """Interval index containing ``timestamp`` (seconds, origin 0)."""
        return int(np.floor(timestamp / self.interval_seconds))

    def _schema_at(self, folds: int):
        while len(self._schemas) <= folds:
            self._schemas.append(half_width_schema(self._schemas[-1]))
        return self._schemas[folds]

    # -- ingest --------------------------------------------------------------

    def ingest(self, observed, keys, index: int) -> None:
        """Archive one sealed interval (the session ``sink`` signature).

        ``observed`` is copied (the forecaster retains the original in
        its model state); ``keys`` (the interval's deduplicated key set,
        or ``None``) is copied too.  Intervals must arrive in strictly
        increasing index order -- exactly what a session seal stream
        delivers.  When a byte budget is set, crossing it compacts
        oldest-first until the archive fits (or no legal compaction
        remains, which the over-budget gauge surfaces).
        """
        if observed.schema != self.schema:
            raise ValueError(
                "sealed summary schema does not match the archive schema"
            )
        index = int(index)
        if self._spans and index < self._spans[-1].end:
            raise ValueError(
                f"interval {index} predates archived coverage "
                f"(next ingestable index is {self._spans[-1].end})"
            )
        stored_keys = (
            None if keys is None else np.array(keys, dtype=np.uint64, copy=True)
        )
        self._spans.append(
            ArchiveSpan(
                start=index, length=1, folds=0,
                summary=observed.copy(), keys=stored_keys,
            )
        )
        self._stats["intervals_ingested"] += 1
        obs = self.recorder
        if obs.enabled:
            obs.count("repro_archive_intervals_ingested_total")
        if self.byte_budget is not None:
            self.compact()
        self._record_residency()

    # -- compaction ----------------------------------------------------------

    def _tier_folds(self, length: int) -> int:
        """Target fold count for a span of ``length = 2**j`` intervals."""
        return min(self.max_folds, max(0, int(length).bit_length() - 1))

    def _fold_span_to(self, span: ArchiveSpan, folds: int) -> ArchiveSpan:
        summary = span.summary
        for f in range(span.folds, folds):
            summary = fold_width(summary, schema=self._schema_at(f + 1))
        return ArchiveSpan(
            start=span.start, length=span.length, folds=folds,
            summary=summary, keys=None,
        )

    def _drop_keys(self, *spans: ArchiveSpan) -> None:
        dropped = sum(len(s.keys) for s in spans if s.keys is not None)
        if dropped:
            self._stats["keys_dropped"] += dropped
            if self.recorder.enabled:
                self.recorder.count(
                    "repro_archive_keys_dropped_total", dropped
                )

    def compact_once(self) -> bool:
        """Apply the single highest-priority compaction step.

        Only spans entirely older than the protected tail are eligible.
        Preference order:

        1. **Time aggregation**: merge the oldest adjacent contiguous
           pair of equal-length spans (both brought to the merged tier's
           fold count first -- fold commutes with COMBINE, so the result
           equals folding after merging).
        2. **Item aggregation**: fold the oldest span still above its
           width floor.

        Returns ``False`` when nothing is eligible (archive already at
        maximum compaction, or everything is inside the tail).
        """
        if not self._spans:
            return False
        horizon = self._spans[-1].end - self.tail_intervals
        # Rightmost span index whose coverage ends at or before the horizon.
        last = -1
        for i, span in enumerate(self._spans):
            if span.end <= horizon:
                last = i
            else:
                break

        for i in range(last):
            a, b = self._spans[i], self._spans[i + 1]
            if a.length == b.length and a.end == b.start:
                folds = max(
                    a.folds, b.folds, self._tier_folds(2 * a.length)
                )
                self._drop_keys(a, b)
                a = self._fold_span_to(a, folds)
                b = self._fold_span_to(b, folds)
                merged = ArchiveSpan(
                    start=a.start, length=2 * a.length, folds=folds,
                    summary=merge([a.summary, b.summary]), keys=None,
                )
                self._spans[i : i + 2] = [merged]
                self._stats["time_compactions"] += 1
                if self.recorder.enabled:
                    self.recorder.count(
                        "repro_archive_compactions_total", axis="time"
                    )
                return True

        for i in range(last + 1):
            span = self._spans[i]
            if span.folds < self.max_folds:
                self._drop_keys(span)
                self._spans[i] = self._fold_span_to(span, span.folds + 1)
                self._stats["item_compactions"] += 1
                if self.recorder.enabled:
                    self.recorder.count(
                        "repro_archive_compactions_total", axis="item"
                    )
                return True
        return False

    def compact(self) -> int:
        """Compact until under the byte budget; returns steps applied."""
        if self.byte_budget is None:
            return 0
        steps = 0
        while self.nbytes > self.byte_budget:
            if not self.compact_once():
                break
            steps += 1
        return steps

    # -- queries -------------------------------------------------------------

    def _select(self, lo: int, hi: int) -> List[ArchiveSpan]:
        if hi <= lo:
            raise ValueError(f"empty interval range [{lo}, {hi})")
        picked = [s for s in self._spans if s.start < hi and s.end > lo]
        if not picked:
            cov = self.coverage
            raise ValueError(
                f"interval range [{lo}, {hi}) is outside archived "
                f"coverage {cov}"
            )
        return picked

    def range_summary(
        self, lo: int, hi: int
    ) -> Tuple[LinearSummary, int, int]:
        """COMBINE all spans overlapping interval range ``[lo, hi)``.

        Spans are archived whole, so the query snaps *outward* to span
        boundaries; the actual range covered is returned alongside the
        merged summary.  Mixed-resolution spans are folded to the
        coarsest width present before merging (fold commutes with
        COMBINE, so this loses nothing the coarse span had not already
        lost).

        Returns ``(summary, actual_lo, actual_hi)``.
        """
        picked = self._select(lo, hi)
        folds = max(s.folds for s in picked)
        summaries = [self._fold_span_to(s, folds).summary for s in picked]
        return merge(summaries), picked[0].start, picked[-1].end

    def estimate(self, key: int, t0: float, t1: float) -> float:
        """Estimated total update volume for ``key`` over ``[t0, t1)`` seconds.

        The range snaps outward to archived span boundaries (use
        :meth:`snap` to see what was actually covered); each span
        contributes its own-resolution estimate, summed.
        """
        lo, hi = self.index_of(t0), self.index_of(t1 - 1e-9) + 1
        key_arr = np.asarray([key], dtype=np.uint64)
        return float(
            sum(
                float(s.summary.estimate_batch(key_arr)[0])
                for s in self._select(lo, hi)
            )
        )

    def snap(self, t0: float, t1: float) -> Tuple[int, int]:
        """The interval-index range a time query actually covers."""
        lo, hi = self.index_of(t0), self.index_of(t1 - 1e-9) + 1
        picked = self._select(lo, hi)
        return picked[0].start, picked[-1].end

    def _range_keys(self, picked: Sequence[ArchiveSpan]) -> np.ndarray:
        chunks = [s.keys for s in picked if s.keys is not None]
        if len(chunks) != len(picked):
            raise ValueError(
                "candidate keys were compacted away for part of the "
                "queried range; pass keys= explicitly (or query inside "
                "the full-resolution tail)"
            )
        return (
            np.unique(np.concatenate(chunks))
            if chunks
            else np.array([], dtype=np.uint64)
        )

    def diff(
        self,
        range_a: Tuple[int, int],
        range_b: Tuple[int, int],
        *,
        t_fraction: float = 0.05,
        top_n: int = 0,
        keys: Optional[np.ndarray] = None,
        prescreen: bool = True,
    ) -> "ArchiveDiff":
        """Retrospective change query: range ``a`` versus baseline ``b``.

        Both ranges are interval-index ranges ``(lo, hi)`` (half-open;
        convert times with :meth:`index_of`).  The error summary is

            ``Se = S_a - (n_a / n_b) * S_b``

        -- the baseline is rate-normalized when the ranges cover a
        different number of intervals, and for equal-length ranges this
        is exactly the live detector's ``So(t) - Sf(t)`` shape.  The
        error then runs through the standard threshold machinery
        (:func:`~repro.detection.threshold.build_interval_report`) with
        alarm threshold ``t_fraction * sqrt(ESTIMATEF2(Se))``.

        ``keys`` defaults to the stored key sets of range ``a`` (the
        "current" side, matching the live session's candidate source);
        that requires range ``a`` to lie in the full-resolution tail --
        pass candidates explicitly to query compacted history.

        Over adjacent single-interval full-resolution spans with a
        moving-average(1) live model this reproduces the live session's
        report bit-identically: stored tables are exact copies, both
        paths compute the error with the same fused COMBINE, and the
        candidate key sets are the same arrays.
        """
        summary_a, lo_a, hi_a = self.range_summary(*range_a)
        summary_b, lo_b, hi_b = self.range_summary(*range_b)
        folds = max(
            self._fold_count(summary_a), self._fold_count(summary_b)
        )
        summary_a = self._fold_summary_to(summary_a, folds)
        summary_b = self._fold_summary_to(summary_b, folds)
        n_a, n_b = hi_a - lo_a, hi_b - lo_b
        scale = n_a / n_b
        error = combine([1.0, -scale], [summary_a, summary_b])
        if keys is None:
            keys = self._range_keys(self._select(lo_a, hi_a))
        else:
            keys = np.unique(np.asarray(keys, dtype=np.uint64))
        report = build_interval_report(
            error,
            keys,
            interval=lo_a,
            t_fraction=t_fraction,
            top_n=top_n,
            schema=error.schema,
            prescreen=prescreen,
        )
        return ArchiveDiff(
            report=report,
            error=error,
            keys=keys,
            range_a=(lo_a, hi_a),
            range_b=(lo_b, hi_b),
            scale=scale,
        )

    def _fold_count(self, summary) -> int:
        width = summary.schema.width
        folds = 0
        while width < self.schema.width:
            width *= 2
            folds += 1
        return folds

    def _fold_summary_to(self, summary, folds: int):
        while self._fold_count(summary) < folds:
            summary = fold_width(
                summary, schema=self._schema_at(self._fold_count(summary) + 1)
            )
        return summary

    def drilldown(
        self,
        range_a: Tuple[int, int],
        range_b: Tuple[int, int],
        *,
        t_fraction: float = 0.05,
        levels: Sequence[int] = (8, 16, 24, 32),
        keys: Optional[np.ndarray] = None,
    ):
        """Post-alarm forensics: attribute a retrospective diff to prefixes.

        Runs :meth:`diff`, then hands the candidate keys' estimated
        errors to
        :func:`~repro.detection.drilldown.attribute_key_errors`,
        producing the hierarchical prefix attribution the live
        drill-down emits -- keys must therefore be 32-bit ``dst_ip``
        hosts.  Returns ``(diff, drilldown_report)``.
        """
        from repro.detection.drilldown import attribute_key_errors

        result = self.diff(
            range_a, range_b, t_fraction=t_fraction, keys=keys
        )
        if len(result.keys):
            errors = result.error.estimate_batch(result.keys)
        else:
            errors = np.array([], dtype=np.float64)
        report = attribute_key_errors(
            result.keys,
            errors,
            threshold=result.report.threshold,
            levels=levels,
            interval=result.range_a[0],
        )
        return result, report

    def replay(
        self,
        forecaster: Union[Forecaster, str] = "ma",
        *,
        t_fraction: float = 0.05,
        top_n: int = 0,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
        prescreen: bool = True,
        **model_params,
    ) -> List[IntervalDetection]:
        """Re-run live detection over the archive's full-resolution tail.

        Steps a fresh forecaster over the stored single-interval spans in
        ``[lo, hi)`` (default: every full-resolution span) and rebuilds
        each interval's report with the stored candidate keys -- the same
        seal machinery the session runs live, so with matching model and
        parameters the reports are bit-identical to the live run's.
        Raises if the requested range includes compacted spans (their
        unit intervals are gone; replay cannot cross a compaction).
        """
        if isinstance(forecaster, str):
            forecaster = make_forecaster(forecaster, **model_params)
        elif model_params:
            raise ValueError(
                "model_params only apply when forecaster is given by name"
            )
        reports: List[IntervalDetection] = []
        for span in self._spans:
            if lo is not None and span.start < lo:
                continue
            if hi is not None and span.end > hi:
                break
            if span.length != 1 or span.folds != 0:
                if lo is None and hi is None:
                    continue
                raise ValueError(
                    f"span [{span.start}, {span.end}) was compacted; "
                    "replay only runs over full-resolution spans"
                )
            step = forecaster.step(span.summary)
            if step.error is None:
                continue
            keys = (
                span.keys
                if span.keys is not None
                else np.array([], dtype=np.uint64)
            )
            reports.append(
                build_interval_report(
                    step.error,
                    keys,
                    interval=span.start,
                    t_fraction=t_fraction,
                    top_n=top_n,
                    schema=self.schema,
                    prescreen=prescreen,
                )
            )
        return reports

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        """Atomically write the archive as a KCP1 container."""
        save_archive(self, path)


@dataclass
class ArchiveDiff:
    """Result of :meth:`TemporalArchive.diff`.

    ``report`` is the thresholded detection report; ``error`` the full
    error summary (for follow-up estimates or drill-down); ``range_a`` /
    ``range_b`` the snapped interval ranges actually compared; ``scale``
    the rate-normalization coefficient applied to the baseline.
    """

    report: IntervalDetection
    error: LinearSummary
    keys: np.ndarray
    range_a: Tuple[int, int]
    range_b: Tuple[int, int]
    scale: float


def save_archive(archive: TemporalArchive, path) -> None:
    """Serialize an archive to ``path`` (atomic: tmp file + rename).

    Span summaries are embedded as raw serialized-sketch blobs (not the
    codec's summary tag) because spans sit at *different* widths -- each
    blob carries its own schema identity and is re-attached to the right
    folded schema at load.
    """
    meta = {
        "format": _FORMAT,
        "version": _VERSION,
        "schema": schema_identity(archive.schema),
        "interval_seconds": archive.interval_seconds,
        "byte_budget": archive.byte_budget,
        "max_folds": archive.max_folds,
        "tail_intervals": archive.tail_intervals,
        "spans": len(archive.spans),
    }
    body = {
        "stats": {k: int(v) for k, v in archive._stats.items()},
        "spans": [
            {
                "start": span.start,
                "length": span.length,
                "folds": span.folds,
                "blob": dumps(span.summary),
                "keys": span.keys,
            }
            for span in archive.spans
        ],
    }
    blob = dumps_checkpoint(meta, body)
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, path)
    obs = archive.recorder
    if obs.enabled:
        obs.event(
            "archive_saved", path=path, bytes=len(blob),
            spans=len(archive.spans),
        )


def load_archive(
    path, schema=None, recorder=None
) -> TemporalArchive:
    """Rebuild a :func:`save_archive` file into a live archive.

    ``schema``, when provided, is verified against the stored identity
    (and reused, skipping the hash-table rebuild); otherwise the schema
    is re-derived from the stored seed.  Folded span schemas are rebuilt
    once per fold level and shared across spans.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    meta, body = loads_checkpoint(data)
    if meta.get("format") != _FORMAT:
        raise ValueError(
            f"not a temporal-archive checkpoint (format={meta.get('format')!r})"
        )
    if meta.get("version") != _VERSION:
        raise ValueError(
            f"unsupported temporal-archive version {meta.get('version')}"
        )
    schema = schema_from_identity(meta["schema"], schema)
    archive = TemporalArchive(
        schema,
        meta["interval_seconds"],
        byte_budget=meta["byte_budget"],
        max_folds=meta["max_folds"],
        tail_intervals=meta["tail_intervals"],
        recorder=recorder,
    )
    for entry in body["spans"]:
        folds = int(entry["folds"])
        summary = loads(entry["blob"], schema=archive._schema_at(folds))
        keys = entry["keys"]
        archive._spans.append(
            ArchiveSpan(
                start=int(entry["start"]),
                length=int(entry["length"]),
                folds=folds,
                summary=summary,
                keys=None if keys is None else np.asarray(keys, dtype=np.uint64),
            )
        )
    for key, value in body.get("stats", {}).items():
        if key in archive._stats:
            archive._stats[key] = int(value)
    archive._record_residency()
    return archive
