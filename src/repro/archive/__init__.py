"""Multi-resolution temporal archive with retrospective change queries.

Consumes sealed interval summaries from a streaming session (via its
``sink`` hook) and keeps them under a byte budget by compacting with age
along both Hokusai axes -- adjacent-interval COMBINE in time and
width-halving :func:`~repro.sketch.mergeable.fold_width` in item space --
while the recent tail stays at full resolution so live detection reports
remain reproducible bit-for-bit.
"""

from repro.archive.temporal import (
    ArchiveDiff,
    ArchiveSpan,
    TemporalArchive,
    load_archive,
    save_archive,
)

__all__ = [
    "ArchiveDiff",
    "ArchiveSpan",
    "TemporalArchive",
    "load_archive",
    "save_archive",
]
