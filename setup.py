"""Setup shim for environments without the ``wheel`` package.

Modern metadata lives in ``pyproject.toml``; this file only enables legacy
editable installs (``pip install -e . --no-use-pep517``) on offline boxes
where PEP 660 wheel building is unavailable.
"""

from setuptools import setup

setup()
