"""Import sweep: every module in the package imports cleanly.

Catches broken imports in rarely-exercised corners (CLI subcommand
bodies import lazily; this pins the module graph itself).
"""

import importlib
import pkgutil

import pytest

import repro

_MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if name != "repro.__main__"  # runs main() (and exits) on import
)


@pytest.mark.parametrize("module_name", _MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


def test_public_api_symbols_resolve():
    for symbol in repro.__all__:
        assert getattr(repro, symbol, None) is not None, symbol


def test_subpackage_alls_resolve():
    for package_name in (
        "repro.analysis",
        "repro.detection",
        "repro.evaluation",
        "repro.forecast",
        "repro.gridsearch",
        "repro.hashing",
        "repro.sketch",
        "repro.streams",
        "repro.traffic",
    ):
        package = importlib.import_module(package_name)
        for symbol in getattr(package, "__all__", ()):
            assert getattr(package, symbol, None) is not None, (
                f"{package_name}.{symbol}"
            )
