"""Tests for the multi-resolution temporal archive."""
