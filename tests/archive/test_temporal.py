"""Tests for the multi-resolution temporal archive."""

import numpy as np
import pytest

from repro.archive import ArchiveSpan, TemporalArchive, load_archive, save_archive
from repro.detection import ShardedStreamingSession, StreamingSession
from repro.obs import PipelineRecorder
from repro.sketch import KArySchema
from repro.sketch.serialization import dumps_checkpoint
from repro.streams import make_records

INTERVAL = 300.0


@pytest.fixture
def schema():
    return KArySchema(depth=3, width=1024, seed=11)


def _records(rng, intervals=12, per_interval=1500, population=600):
    """Integer-valued background traffic covering ``intervals`` intervals."""
    n = intervals * per_interval
    return make_records(
        timestamps=np.sort(rng.uniform(0, intervals * INTERVAL, n)),
        dst_ips=rng.integers(0, population, n),
        byte_counts=rng.integers(40, 2000, n),
    )


def _session_kwargs():
    return dict(
        interval_seconds=INTERVAL, t_fraction=0.05, top_n=8, window=1
    )


def _run_live(schema, records, archive, session_cls=StreamingSession, **extra):
    session = session_cls(
        schema, "ma", sink=archive.ingest, **_session_kwargs(), **extra
    )
    reports = session.ingest(records) + session.flush()
    if hasattr(session, "close"):
        session.close()
    return reports


def _assert_report_identical(a, b):
    assert a.index == b.index
    assert a.threshold == b.threshold
    assert a.error_l2 == b.error_l2
    assert np.array_equal(a.top_keys, b.top_keys)
    assert np.array_equal(a.top_errors, b.top_errors)
    assert [(al.key, al.estimated_error) for al in a.alarms] == [
        (al.key, al.estimated_error) for al in b.alarms
    ]


class TestValidation:
    def test_entropy_seed_refused(self):
        with pytest.raises(ValueError, match="explicit seed"):
            TemporalArchive(KArySchema(depth=3, width=1024, seed=None))

    def test_parameter_validation(self, schema):
        with pytest.raises(ValueError):
            TemporalArchive(schema, interval_seconds=0)
        with pytest.raises(ValueError):
            TemporalArchive(schema, byte_budget=0)
        with pytest.raises(ValueError):
            TemporalArchive(schema, max_folds=-1)
        with pytest.raises(ValueError):
            TemporalArchive(schema, tail_intervals=0)
        # 1024 folds down to 2 buckets after 9 halvings; 10 is one too many.
        with pytest.raises(ValueError):
            TemporalArchive(schema, max_folds=10)

    def test_schema_mismatch_refused(self, schema, rng):
        archive = TemporalArchive(schema, INTERVAL)
        other = KArySchema(depth=3, width=1024, seed=99)
        sketch = other.from_items(
            rng.integers(0, 100, 50, dtype=np.uint64), np.ones(50)
        )
        with pytest.raises(ValueError, match="schema"):
            archive.ingest(sketch, np.arange(5, dtype=np.uint64), 0)

    def test_monotonic_index_enforced(self, schema, rng):
        archive = TemporalArchive(schema, INTERVAL)
        keys = rng.integers(0, 100, 50, dtype=np.uint64)
        sketch = schema.from_items(keys, np.ones(50))
        archive.ingest(sketch, np.unique(keys), 3)
        with pytest.raises(ValueError, match="predates"):
            archive.ingest(sketch, np.unique(keys), 3)


class TestBitIdentity:
    """Retrospective queries over the full-resolution tail reproduce the
    live session's reports bit for bit (MA window=1 live model)."""

    def test_replay_matches_live(self, schema, rng):
        records = _records(rng)
        archive = TemporalArchive(schema, INTERVAL)
        live = _run_live(schema, records, archive)
        replayed = archive.replay("ma", window=1, t_fraction=0.05, top_n=8)
        assert len(replayed) == len(live)
        for a, b in zip(replayed, live):
            _assert_report_identical(a, b)

    def test_diff_of_adjacent_intervals_matches_live(self, schema, rng):
        records = _records(rng)
        archive = TemporalArchive(schema, INTERVAL)
        live = {r.index: r for r in _run_live(schema, records, archive)}
        for t, report in live.items():
            result = archive.diff(
                (t, t + 1), (t - 1, t), t_fraction=0.05, top_n=8
            )
            _assert_report_identical(result.report, report)
            assert result.scale == 1.0
            assert result.range_a == (t, t + 1)

    def test_sharded_session_sink(self, schema, rng):
        records = _records(rng, intervals=8)
        serial_archive = TemporalArchive(schema, INTERVAL)
        live = _run_live(schema, records, serial_archive)

        sharded_archive = TemporalArchive(schema, INTERVAL)
        sharded = _run_live(
            schema, records, sharded_archive,
            session_cls=ShardedStreamingSession,
            n_workers=2, backend="thread",
        )
        assert sharded_archive.coverage == serial_archive.coverage
        for a, b in zip(sharded, live):
            _assert_report_identical(a, b)
        for a, b in zip(
            sharded_archive.replay("ma", window=1, t_fraction=0.05, top_n=8),
            live,
        ):
            _assert_report_identical(a, b)

    def test_pipelined_session_sink(self, schema, rng):
        records = _records(rng, intervals=8)
        archive = TemporalArchive(schema, INTERVAL)
        live = _run_live(schema, records, archive, pipeline=True)
        assert archive.stats["intervals_ingested"] == 8
        for a, b in zip(
            archive.replay("ma", window=1, t_fraction=0.05, top_n=8), live
        ):
            _assert_report_identical(a, b)


def _fill(archive, schema, rng, intervals, population=400, per_interval=800):
    """Ingest synthetic sealed intervals directly (no session)."""
    for t in range(intervals):
        keys = rng.integers(0, population, per_interval).astype(np.uint64)
        values = rng.integers(40, 2000, per_interval).astype(np.float64)
        archive.ingest(schema.from_items(keys, values), np.unique(keys), t)


class TestCompaction:
    def test_tiers_form_and_budget_holds(self, schema, rng):
        budget = 5 * schema.table_bytes
        archive = TemporalArchive(
            schema, INTERVAL, byte_budget=budget,
            max_folds=2, tail_intervals=2,
        )
        _fill(archive, schema, rng, intervals=24)
        assert archive.nbytes <= budget
        spans = archive.spans
        assert archive.coverage == (0, 24)
        # Spans tile [0, 24) contiguously, oldest first.
        assert spans[0].start == 0
        for a, b in zip(spans, spans[1:]):
            assert a.end == b.start
        assert spans[-1].end == 24
        # Compacted spans follow the tier schedule and lose their keys;
        # the protected tail stays full-resolution with keys retained.
        for span in spans:
            if span.length > 1:
                assert span.folds == min(2, span.length.bit_length() - 1)
                assert span.keys is None
        for span in spans[-2:]:
            assert span.length == 1 and span.folds == 0
            assert span.keys is not None
        stats = archive.stats
        assert stats["time_compactions"] > 0
        assert stats["keys_dropped"] > 0
        assert stats["spans"] == len(spans)

    def test_compact_once_returns_false_at_max_compaction(self, schema, rng):
        archive = TemporalArchive(
            schema, INTERVAL, max_folds=1, tail_intervals=1
        )
        _fill(archive, schema, rng, intervals=8)
        while archive.compact_once():
            pass
        assert archive.compact_once() is False
        # 7 eligible intervals collapse to the dyadic floor [0,4) [4,6)
        # [6,7), all folded to the max, plus the protected tail interval.
        assert [(s.start, s.length, s.folds) for s in archive.spans] == [
            (0, 4, 1), (4, 2, 1), (6, 1, 1), (7, 1, 0)
        ]

    def test_range_summary_folds_to_coarsest(self, schema, rng):
        archive = TemporalArchive(schema, INTERVAL, max_folds=2,
                                  tail_intervals=2)
        _fill(archive, schema, rng, intervals=12)
        while archive.compact_once():
            pass
        summary, lo, hi = archive.range_summary(0, 12)
        assert (lo, hi) == (0, 12)
        coarsest = max(span.folds for span in archive.spans)
        assert summary.schema.width == schema.width >> coarsest

    def test_keys_compacted_away_raises(self, schema, rng):
        archive = TemporalArchive(schema, INTERVAL, tail_intervals=2)
        _fill(archive, schema, rng, intervals=8)
        while archive.compact_once():
            pass
        with pytest.raises(ValueError, match="compacted away"):
            archive.diff((0, 4), (4, 6))

    def test_replay_refuses_compacted_range(self, schema, rng):
        archive = TemporalArchive(schema, INTERVAL, tail_intervals=2)
        _fill(archive, schema, rng, intervals=8)
        while archive.compact_once():
            pass
        with pytest.raises(ValueError, match="compacted"):
            archive.replay("ma", window=1, lo=0)
        # The default range silently skips compacted spans instead.
        reports = archive.replay("ma", window=1)
        assert [r.index for r in reports] == [7]


class TestPlantedChangeRecall:
    def test_recall_after_aging_into_compacted_tier(self, schema, rng):
        """A change planted in intervals that later age into a folded,
        merged tier is still recovered by a retrospective diff."""
        planted = np.arange(10_000, 10_020, dtype=np.uint64)
        archive = TemporalArchive(
            schema, INTERVAL, max_folds=2, tail_intervals=4
        )
        for t in range(16):
            keys = rng.integers(0, 600, 1500).astype(np.uint64)
            values = rng.integers(40, 2000, 1500).astype(np.float64)
            if 8 <= t < 12:  # the change lives in [8, 12)
                keys = np.concatenate([keys, planted])
                values = np.concatenate(
                    [values, np.full(len(planted), 5e6)]
                )
            archive.ingest(schema.from_items(keys, values), np.unique(keys), t)
        while archive.compact_once():
            pass
        # The planted range is now inside compacted spans.
        touched = [s for s in archive.spans if s.start < 12 and s.end > 8]
        assert all(s.length > 1 or s.folds > 0 for s in touched)

        candidates = np.concatenate(
            [planted, rng.integers(0, 600, 400).astype(np.uint64)]
        )
        result = archive.diff(
            (8, 12), (0, 8), t_fraction=0.05, keys=candidates
        )
        alarmed = {a.key for a in result.report.alarms}
        recall = len(alarmed & set(planted.tolist())) / len(planted)
        assert recall >= 0.9
        assert result.scale == pytest.approx(0.5)

    def test_drilldown_attributes_planted_change(self, schema, rng):
        victim = np.uint64(0x0A010200 + 4)  # 10.1.2.4
        archive = TemporalArchive(schema, INTERVAL)
        for t in range(6):
            keys = rng.integers(0, 2**32, 1200, dtype=np.uint64)
            values = rng.integers(40, 2000, 1200).astype(np.float64)
            if t == 4:
                keys = np.concatenate([keys, np.repeat(victim, 30)])
                values = np.concatenate([values, np.full(30, 1e6)])
            archive.ingest(schema.from_items(keys, values), np.unique(keys), t)
        result, report = archive.drilldown((4, 5), (3, 4), t_fraction=0.05)
        assert int(victim) in {a.key for a in result.report.alarms}
        leaves = {
            leaf.prefix
            for root in report.roots
            for leaf in root.leaves()
            if leaf.prefix_len == 32
        }
        assert int(victim) in leaves


class TestQueries:
    def test_estimate_and_snap(self, schema, rng):
        heavy = np.uint64(77)
        archive = TemporalArchive(schema, INTERVAL, tail_intervals=2)
        total = 0.0
        for t in range(8):
            keys = rng.integers(100, 500, 800).astype(np.uint64)
            values = rng.integers(40, 400, 800).astype(np.float64)
            keys = np.concatenate([keys, [heavy]])
            values = np.concatenate([values, [1e6]])
            total += 1e6
            archive.ingest(schema.from_items(keys, values), np.unique(keys), t)
        while archive.compact_once():
            pass
        est = archive.estimate(int(heavy), 0.0, 8 * INTERVAL)
        assert est == pytest.approx(total, rel=0.05)
        # A query landing mid-span snaps outward to span boundaries.
        lo, hi = archive.snap(0.0, INTERVAL)
        assert lo == 0 and hi >= 1

    def test_empty_and_out_of_range_queries(self, schema, rng):
        archive = TemporalArchive(schema, INTERVAL)
        with pytest.raises(ValueError):
            archive.range_summary(0, 0)
        _fill(archive, schema, rng, intervals=2)
        with pytest.raises(ValueError, match="coverage"):
            archive.range_summary(10, 12)


class TestPersistence:
    def test_round_trip(self, schema, rng, tmp_path):
        path = tmp_path / "archive.kcp"
        archive = TemporalArchive(
            schema, INTERVAL, byte_budget=6 * schema.table_bytes,
            max_folds=2, tail_intervals=2,
        )
        _fill(archive, schema, rng, intervals=16)
        save_archive(archive, path)
        restored = load_archive(path)
        assert restored.schema == schema
        assert restored.interval_seconds == archive.interval_seconds
        assert restored.byte_budget == archive.byte_budget
        assert restored.coverage == archive.coverage
        assert restored.stats == archive.stats
        assert len(restored.spans) == len(archive.spans)
        for a, b in zip(restored.spans, archive.spans):
            assert (a.start, a.length, a.folds) == (b.start, b.length, b.folds)
            assert np.array_equal(
                np.asarray(a.summary.table), np.asarray(b.summary.table)
            )
            if b.keys is None:
                assert a.keys is None
            else:
                assert np.array_equal(a.keys, b.keys)
        # Queries agree bit for bit after the round trip.
        lo, hi = archive.coverage
        for t in range(hi - 2, hi):
            orig = archive.diff((t, t + 1), (t - 1, t))
            back = restored.diff((t, t + 1), (t - 1, t))
            _assert_report_identical(back.report, orig.report)

    def test_load_with_matching_schema(self, schema, rng, tmp_path):
        path = tmp_path / "archive.kcp"
        archive = TemporalArchive(schema, INTERVAL)
        _fill(archive, schema, rng, intervals=3)
        archive.save(path)
        restored = load_archive(path, schema=schema)
        assert restored.schema is schema
        with pytest.raises(ValueError):
            load_archive(path, schema=KArySchema(depth=3, width=1024, seed=5))

    def test_foreign_checkpoint_refused(self, tmp_path):
        path = tmp_path / "other.kcp"
        path.write_bytes(dumps_checkpoint({"format": "other"}, {}))
        with pytest.raises(ValueError, match="temporal-archive"):
            load_archive(path)


class TestObservability:
    def test_metrics_track_ground_truth(self, schema, rng):
        recorder = PipelineRecorder()
        archive = TemporalArchive(
            schema, INTERVAL, byte_budget=5 * schema.table_bytes,
            max_folds=2, tail_intervals=2, recorder=recorder,
        )
        _fill(archive, schema, rng, intervals=16)
        reg = recorder.registry
        assert (
            reg.get("repro_archive_intervals_ingested_total").value() == 16
        )
        assert (
            reg.get("repro_archive_compactions_total").value(axis="time")
            == archive.stats["time_compactions"]
        )
        assert (
            reg.get("repro_archive_keys_dropped_total").value()
            == archive.stats["keys_dropped"]
        )
        assert reg.get("repro_archive_bytes").value() == archive.nbytes
        assert reg.get("repro_archive_spans").value() == len(archive.spans)
        assert reg.get("repro_archive_over_budget").value() == 0

    def test_recorder_never_changes_results(self, schema, rng):
        records = _records(rng, intervals=6)
        plain = TemporalArchive(schema, INTERVAL)
        _run_live(schema, records, plain)
        observed = TemporalArchive(
            schema, INTERVAL, recorder=PipelineRecorder()
        )
        _run_live(schema, records, observed)
        for a, b in zip(
            observed.replay("ma", window=1), plain.replay("ma", window=1)
        ):
            _assert_report_identical(a, b)


class TestArchiveSpan:
    def test_nbytes_counts_keys(self, schema):
        sketch = schema.empty()
        keys = np.arange(10, dtype=np.uint64)
        with_keys = ArchiveSpan(
            start=0, length=1, folds=0, summary=sketch, keys=keys
        )
        without = ArchiveSpan(
            start=0, length=1, folds=0, summary=sketch, keys=None
        )
        assert with_keys.nbytes == without.nbytes + keys.nbytes
        assert with_keys.end == 1
