"""Tests for the memory accounting module."""

import pytest

from repro.analysis.space import (
    PER_FLOW_ENTRY_BYTES,
    SpaceReport,
    compare,
    crossover_keys,
    hash_state_bytes,
    per_flow_state_bytes,
    pipeline_state_bytes,
    sketch_table_bytes,
)


class TestComponents:
    def test_sketch_table_bytes(self):
        assert sketch_table_bytes(5, 32768) == 5 * 32768 * 8

    def test_hash_state_tabulation(self):
        # 2 MiB per row.
        assert hash_state_bytes(1) == (2**16 + 2**16 + 2**17) * 8

    def test_hash_state_polynomial_tiny(self):
        assert hash_state_bytes(5, "polynomial") == 5 * 4 * 8
        assert hash_state_bytes(5, "two-universal") == 5 * 2 * 8

    def test_pipeline_includes_model_state(self):
        ewma = pipeline_state_bytes(5, 8192, "ewma")
        ma = pipeline_state_bytes(5, 8192, "ma")
        assert ma > ewma  # the MA window dominates

    def test_per_flow_scales_linearly(self):
        assert per_flow_state_bytes(2_000_000) == 2 * per_flow_state_bytes(
            1_000_000
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            sketch_table_bytes(0, 8)
        with pytest.raises(ValueError):
            hash_state_bytes(5, "md5")
        with pytest.raises(ValueError):
            pipeline_state_bytes(5, 8192, "lstm")
        with pytest.raises(ValueError):
            per_flow_state_bytes(-1)


class TestCrossover:
    def test_sketch_wins_at_paper_scale(self):
        """Tens of millions of signals: the paper's regime."""
        report = compare(5, 65536, concurrent_keys=10_000_000)
        assert report.ratio > 10

    def test_per_flow_wins_for_tiny_key_spaces(self):
        report = compare(5, 65536, concurrent_keys=1000)
        assert report.ratio < 1

    def test_crossover_consistency(self):
        keys = crossover_keys(5, 32768, "ewma")
        below = compare(5, 32768, keys - 1)
        above = compare(5, 32768, keys + 1)
        assert below.per_flow_bytes <= below.sketch_bytes
        assert above.per_flow_bytes > above.sketch_bytes

    def test_report_render(self):
        text = compare(5, 32768, 1_000_000).render()
        assert "MiB" in text
        assert "advantage" in text
