"""Tests for time-series diagnostics (ACF, PACF, Ljung-Box, differencing)."""

import numpy as np
import pytest

from repro.analysis.timeseries import (
    acf,
    difference,
    ljung_box,
    pacf,
    suggest_differencing,
)


class TestACF:
    def test_lag_zero_is_one(self, rng):
        assert acf(rng.normal(size=200), 5)[0] == pytest.approx(1.0)

    def test_white_noise_near_zero(self, rng):
        rho = acf(rng.normal(size=5000), 10)
        assert np.all(np.abs(rho[1:]) < 0.1)

    def test_ar1_geometric_decay(self, rng):
        phi = 0.8
        x = np.zeros(20000)
        for t in range(1, len(x)):
            x[t] = phi * x[t - 1] + rng.normal()
        rho = acf(x, 4)
        for lag in range(1, 5):
            assert rho[lag] == pytest.approx(phi**lag, abs=0.08)

    def test_constant_series_convention(self):
        rho = acf(np.ones(50), 3)
        assert rho[0] == 1.0
        assert np.all(rho[1:] == 0.0)

    def test_max_lag_clamped(self):
        rho = acf([1.0, 2.0, 3.0], 10)
        assert len(rho) == 3  # lags 0..2

    def test_validation(self):
        with pytest.raises(ValueError):
            acf([1.0], 3)
        with pytest.raises(ValueError):
            acf([1.0, 2.0], -1)
        with pytest.raises(ValueError):
            acf(np.zeros((3, 3)), 2)


class TestPACF:
    def test_ar1_cuts_off_after_lag1(self, rng):
        phi = 0.7
        x = np.zeros(20000)
        for t in range(1, len(x)):
            x[t] = phi * x[t - 1] + rng.normal()
        partial = pacf(x, 5)
        assert partial[1] == pytest.approx(phi, abs=0.05)
        assert np.all(np.abs(partial[2:]) < 0.05)

    def test_ar2_cuts_off_after_lag2(self, rng):
        x = np.zeros(20000)
        for t in range(2, len(x)):
            x[t] = 0.5 * x[t - 1] + 0.3 * x[t - 2] + rng.normal()
        partial = pacf(x, 5)
        assert abs(partial[2]) > 0.2
        assert np.all(np.abs(partial[3:]) < 0.05)

    def test_lag_zero_one(self, rng):
        assert pacf(rng.normal(size=100), 3)[0] == 1.0


class TestLjungBox:
    def test_white_noise_passes(self):
        # Fixed, non-borderline draw: with the shared test seed the sample
        # lands at p=0.0494, a by-design 5% false positive.
        x = np.random.default_rng(7).normal(size=2000)
        result = ljung_box(x, lags=10)
        assert result.is_white
        assert result.p_value > 0.05

    def test_autocorrelated_fails(self, rng):
        x = np.zeros(2000)
        for t in range(1, len(x)):
            x[t] = 0.6 * x[t - 1] + rng.normal()
        result = ljung_box(x, lags=10)
        assert not result.is_white
        assert result.p_value < 0.001

    def test_fitted_params_reduce_df(self, rng):
        x = rng.normal(size=500)
        full = ljung_box(x, lags=10, fitted_params=0)
        reduced = ljung_box(x, lags=10, fitted_params=3)
        assert full.statistic == pytest.approx(reduced.statistic)
        # Same statistic, fewer df -> different (here smaller) p-value.
        assert reduced.p_value != full.p_value

    def test_validation(self, rng):
        x = rng.normal(size=100)
        with pytest.raises(ValueError):
            ljung_box(x, lags=0)
        with pytest.raises(ValueError):
            ljung_box(x, lags=3, fitted_params=3)


class TestDifferencing:
    def test_first_difference(self):
        assert difference([1.0, 3.0, 6.0]).tolist() == [2.0, 3.0]

    def test_d_zero_identity(self):
        assert difference([1.0, 2.0], 0).tolist() == [1.0, 2.0]

    def test_second_difference(self):
        assert difference([1.0, 3.0, 6.0, 10.0], 2).tolist() == [1.0, 1.0]

    def test_too_short(self):
        with pytest.raises(ValueError):
            difference([1.0, 2.0], 2)

    def test_suggest_on_stationary(self, rng):
        assert suggest_differencing(rng.normal(size=500)) == 0

    def test_suggest_on_random_walk(self, rng):
        walk = np.cumsum(rng.normal(size=2000))
        assert suggest_differencing(walk) == 1

    def test_suggest_respects_max(self, rng):
        # A double-integrated series wants d=2, but max_d=1 caps it.
        walk2 = np.cumsum(np.cumsum(rng.normal(size=2000)))
        assert suggest_differencing(walk2, max_d=1) == 1
