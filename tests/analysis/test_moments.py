"""Tests for exact moment helpers."""

import numpy as np
import pytest

from repro.analysis import exact_f2, exact_l2


class TestExactF2:
    def test_aggregates_before_squaring(self):
        # Key 1 receives 3+4=7; F2 = 49, not 9+16=25.
        assert exact_f2([1, 1], [3.0, 4.0]) == pytest.approx(49.0)

    def test_multiple_keys(self):
        assert exact_f2([1, 2], [3.0, 4.0]) == pytest.approx(25.0)

    def test_cancellation(self):
        assert exact_f2([1, 1], [5.0, -5.0]) == pytest.approx(0.0)

    def test_empty(self):
        assert exact_f2([], []) == 0.0

    def test_l2(self):
        assert exact_l2([1, 2], [3.0, 4.0]) == pytest.approx(5.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            exact_f2(np.array([1, 2]), np.array([1.0]))

    def test_matches_dictvector(self, rng):
        from repro.sketch import DictVector

        keys = rng.integers(0, 100, 1000, dtype=np.uint64)
        values = rng.normal(size=1000)
        vec = DictVector()
        vec.update_batch(keys, values)
        assert exact_f2(keys, values) == pytest.approx(vec.estimate_f2())
