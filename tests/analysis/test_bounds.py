"""Tests for the Theorem 1-5 analytical bounds."""

import numpy as np
import pytest

from repro.analysis import (
    estimate_variance_bound,
    f2_relative_error_probability,
    f2_variance_bound,
    false_alarm_probability,
    miss_probability,
    recommend_dimensions,
)
from repro.sketch import DictVector, KArySchema


class TestClosedForms:
    def test_theorem1_bound(self):
        assert estimate_variance_bound(1025, f2=2.0) == pytest.approx(2.0 / 1024)

    def test_theorem4_bound(self):
        assert f2_variance_bound(1025, f2=3.0) == pytest.approx(2 * 9.0 / 1024)

    def test_paper_example_theorem2(self):
        """K=2^16, alpha=2, T=1/32, H=20 => miss prob below ~9.0e-13."""
        p = miss_probability(h=20, k=2**16, t=1.0 / 32, alpha=2.0)
        assert p == pytest.approx(9.0e-13, rel=0.2)

    def test_paper_example_theorem3(self):
        """K=2^16, beta=0.5, T=1/32, H=20 => false alarm below ~4e-11.

        (The paper states the same setup; our closed form gives
        [4/((K-1)(1-beta)^2 T^2)]^(H/2).)
        """
        p = false_alarm_probability(h=20, k=2**16, t=1.0 / 32, beta=0.5)
        expected = (4.0 / ((2**16 - 1) * 0.25 * (1.0 / 32) ** 2)) ** 10
        assert p == pytest.approx(expected)

    def test_paper_example_theorem5(self):
        """K=2^16, lambda=0.05, H=20 => below 7.7e-14."""
        p = f2_relative_error_probability(h=20, k=2**16, lam=0.05)
        assert p < 7.7e-14 * 1.1
        assert p > 7.7e-14 * 0.5

    def test_probabilities_clamped_to_one(self):
        assert miss_probability(h=1, k=2, t=0.01, alpha=1.5) == 1.0

    def test_monotone_in_h(self):
        values = [
            miss_probability(h=h, k=4096, t=0.05, alpha=2.0) for h in (1, 5, 9, 25)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_monotone_in_k(self):
        values = [
            false_alarm_probability(h=5, k=k, t=0.05, beta=0.5)
            for k in (1024, 8192, 65536)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_alpha_one_vacuous(self):
        assert miss_probability(h=5, k=1024, t=0.1, alpha=1.0) == 1.0

    def test_beta_one_vacuous(self):
        assert false_alarm_probability(h=5, k=1024, t=0.1, beta=1.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            miss_probability(h=0, k=16, t=0.1, alpha=2.0)
        with pytest.raises(ValueError):
            miss_probability(h=1, k=16, t=1.5, alpha=2.0)
        with pytest.raises(ValueError):
            miss_probability(h=1, k=16, t=0.1, alpha=0.5)
        with pytest.raises(ValueError):
            false_alarm_probability(h=1, k=16, t=0.1, beta=-0.1)
        with pytest.raises(ValueError):
            f2_relative_error_probability(h=1, k=16, lam=0.0)
        with pytest.raises(ValueError):
            estimate_variance_bound(1)


class TestRecommendDimensions:
    def test_meets_target(self):
        h, k = recommend_dimensions(t=1.0 / 32, failure_probability=1e-9)
        assert miss_probability(h, k, 1.0 / 32, 2.0) <= 1e-9
        assert false_alarm_probability(h, k, 1.0 / 32, 0.5) <= 1e-9

    def test_tighter_target_needs_more_cells(self):
        loose = recommend_dimensions(t=0.05, failure_probability=1e-6)
        tight = recommend_dimensions(t=0.05, failure_probability=1e-15)
        assert tight[0] * tight[1] >= loose[0] * loose[1]

    def test_h_is_odd(self):
        h, _ = recommend_dimensions(t=0.05, failure_probability=1e-9)
        assert h % 2 == 1

    def test_impossible_target(self):
        with pytest.raises(ValueError, match="failure probability"):
            recommend_dimensions(t=0.001, failure_probability=1e-300, max_h=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_dimensions(t=0.05, failure_probability=2.0)


class TestBoundsHoldEmpirically:
    def test_theorem1_variance_bound_holds(self, rng):
        """Empirical per-row estimator variance must respect F2/(K-1)."""
        keys = rng.integers(0, 2**32, 3000, dtype=np.uint64)
        values = rng.pareto(1.5, 3000) * 100
        exact = DictVector()
        exact.update_batch(keys, values)
        key, true_value = exact.top_n(1)[0]
        f2 = exact.estimate_f2()
        k = 512
        estimates = [
            KArySchema(depth=1, width=k, seed=seed)
            .from_items(keys, values)
            .estimate(key)
            for seed in range(200)
        ]
        empirical_var = float(np.var(estimates))
        bound = f2 / (k - 1)
        # Allow sampling slack: 200 draws estimate variance within ~20%.
        assert empirical_var <= 1.5 * bound

    def test_theorem4_variance_bound_holds(self, rng):
        keys = rng.integers(0, 2**32, 3000, dtype=np.uint64)
        values = rng.pareto(1.5, 3000) * 100
        exact = DictVector()
        exact.update_batch(keys, values)
        f2 = exact.estimate_f2()
        k = 512
        estimates = [
            KArySchema(depth=1, width=k, seed=seed)
            .from_items(keys, values)
            .estimate_f2()
            for seed in range(200)
        ]
        empirical_var = float(np.var(estimates))
        bound = 2.0 * f2 * f2 / (k - 1)
        assert empirical_var <= 1.5 * bound
