"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch import KArySchema
from repro.streams.model import KeyedUpdates


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_schema() -> KArySchema:
    """A small k-ary schema suitable for fast unit tests."""
    return KArySchema(depth=5, width=512, seed=7)


@pytest.fixture
def zipf_stream(rng) -> tuple:
    """A heavy-tailed keyed update stream: (keys, values)."""
    population = rng.integers(0, 2**32, size=2000, dtype=np.uint64)
    ranks = np.arange(1, len(population) + 1, dtype=np.float64)
    probs = ranks**-1.0
    probs /= probs.sum()
    idx = rng.choice(len(population), size=20000, p=probs)
    keys = population[idx]
    values = rng.pareto(1.3, size=20000) * 100 + 40
    return keys, values


def make_batches(
    rng: np.random.Generator,
    intervals: int = 12,
    keys_per_interval: int = 3000,
    population: int = 1500,
    drift: float = 0.0,
) -> list:
    """Synthetic per-interval keyed-update batches for pipeline tests.

    ``drift`` adds a deterministic per-interval multiplicative trend so
    trend-aware forecasters have signal.
    """
    pop = rng.integers(0, 2**32, size=population, dtype=np.uint64)
    ranks = np.arange(1, population + 1, dtype=np.float64)
    probs = ranks**-1.0
    probs /= probs.sum()
    batches = []
    for t in range(intervals):
        idx = rng.choice(population, size=keys_per_interval, p=probs)
        keys = pop[idx]
        scale = 1.0 + drift * t
        values = (rng.pareto(1.3, size=keys_per_interval) * 100 + 40) * scale
        batches.append(
            KeyedUpdates(index=t, keys=keys, values=values, duration=300.0)
        )
    return batches


@pytest.fixture
def batches(rng) -> list:
    """Default small batch stream."""
    return make_batches(rng)
