"""Wire-frame codec tests: roundtrips, truncation, budget enforcement."""

import asyncio

import numpy as np
import pytest

from repro.distributed.frames import (
    DEFAULT_MAX_PAYLOAD,
    FRAME_HEADER_SIZE,
    FRAME_TYPES,
    FrameError,
    FrameTooLargeError,
    TruncatedFrameError,
    decode_frame,
    decode_header,
    encode_frame,
    read_frame,
    write_frame,
)


async def _read_one(
    data: bytes, eof: bool = True, max_payload: int = DEFAULT_MAX_PAYLOAD
):
    # The StreamReader must be built inside the running loop (it binds
    # the current event loop at construction on 3.11).
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return await read_frame(reader, max_payload)


class TestSyncCodec:
    @pytest.mark.parametrize("frame_type", sorted(FRAME_TYPES))
    def test_roundtrip_every_type(self, frame_type):
        payload = {
            "site": "pop-west",
            "interval": 42,
            "blob": b"\x00\x01\x02",
            "keys": np.array([1, 2, 3], dtype=np.uint64),
            "drift": 1.5,
        }
        blob = encode_frame(frame_type, payload)
        name, decoded, consumed = decode_frame(blob)
        assert name == frame_type
        assert consumed == len(blob)
        assert decoded["site"] == "pop-west"
        assert decoded["interval"] == 42
        assert decoded["blob"] == b"\x00\x01\x02"
        assert np.array_equal(decoded["keys"], payload["keys"])
        assert decoded["drift"] == 1.5

    def test_empty_payload(self):
        blob = encode_frame("heartbeat")
        name, payload, consumed = decode_frame(blob)
        assert name == "heartbeat"
        assert payload == {}
        assert consumed == len(blob)
        # Header + the tagged codec's empty-dict encoding; tiny either way.
        assert consumed < FRAME_HEADER_SIZE + 16

    def test_unknown_type_rejected_at_encode(self):
        with pytest.raises(ValueError, match="unknown frame type"):
            encode_frame("nonsense", {})

    def test_every_prefix_is_a_typed_error(self):
        blob = encode_frame("sketch", {"interval": 7, "data": b"x" * 100})
        for cut in range(len(blob)):
            with pytest.raises(FrameError):
                decode_frame(blob[:cut])

    def test_bad_magic(self):
        blob = bytearray(encode_frame("ack", {}))
        blob[0] = 0x58
        with pytest.raises(FrameError, match="magic"):
            decode_header(bytes(blob))

    def test_unknown_type_code(self):
        blob = bytearray(encode_frame("ack", {}))
        blob[4] = 200
        with pytest.raises(FrameError, match="type code"):
            decode_header(bytes(blob))

    def test_oversized_declared_payload(self):
        blob = encode_frame("sketch", {"data": b"x" * 1000})
        with pytest.raises(FrameTooLargeError):
            decode_frame(blob, max_payload=100)

    def test_garbage_payload_is_frame_error(self):
        header = encode_frame("ack", {})[:FRAME_HEADER_SIZE]
        garbage = bytes([0xEE] * 10)
        rebuilt = bytearray(encode_frame("ack", {}))
        rebuilt[5:9] = (10).to_bytes(4, "little")
        with pytest.raises(FrameError):
            decode_frame(bytes(rebuilt) + garbage)
        assert header  # silence unused warning paths


class TestAsyncStream:
    def test_reads_back_to_back_frames(self):
        data = encode_frame("hello", {"site": "a"}) + encode_frame(
            "bye", {"site": "a"}
        )

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            third = await read_frame(reader)
            return first, second, third

        first, second, third = asyncio.run(run())
        assert first == ("hello", {"site": "a"})
        assert second == ("bye", {"site": "a"})
        assert third is None  # clean EOF between frames

    def test_eof_mid_header_is_truncated(self):
        with pytest.raises(TruncatedFrameError, match="header"):
            asyncio.run(_read_one(encode_frame("ack", {})[:4]))

    def test_eof_mid_payload_is_truncated(self):
        blob = encode_frame("sketch", {"data": b"y" * 64})
        with pytest.raises(TruncatedFrameError, match="payload"):
            asyncio.run(_read_one(blob[:-10]))

    def test_over_budget_frame_refused_before_buffering(self):
        blob = encode_frame("sketch", {"data": b"z" * 2048})
        with pytest.raises(FrameTooLargeError):
            asyncio.run(_read_one(blob, max_payload=64))

    def test_default_budget_accepts_large_sketches(self):
        # An H=5, K=64k float64 table is ~2.6 MiB -- well within budget.
        assert DEFAULT_MAX_PAYLOAD >= 8 * 5 * 65536

    def test_write_frame_reports_wire_bytes(self):
        class _Writer:
            def __init__(self):
                self.chunks = []

            def write(self, data):
                self.chunks.append(data)

            async def drain(self):
                pass

        writer = _Writer()
        n = asyncio.run(write_frame(writer, "digest", {"drift": 0.5}))
        assert n == sum(len(c) for c in writer.chunks)
        name, payload, _ = decode_frame(b"".join(writer.chunks))
        assert name == "digest"
        assert payload == {"drift": 0.5}
