"""IntervalMerger unit tests: merge policy, counters, durability.

These drive the deterministic core directly -- no sockets, no event
loop, fake clock -- so every quorum/deadline/substitution path is
exercised synchronously.
"""

import numpy as np
import pytest

from repro.distributed.coordinator import IntervalMerger, restore_merger
from repro.sketch import KArySchema
from repro.sketch.mergeable import merge


@pytest.fixture
def schema():
    return KArySchema(depth=3, width=256, seed=21)


class _FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now


def _sketch(schema, rng, keys=None):
    summary = schema.empty()
    if keys is None:
        keys = rng.integers(0, 5000, 40).astype(np.uint64)
    values = np.full(len(keys), 100.0)
    summary.update_batch(np.asarray(keys, dtype=np.uint64), values)
    return summary, np.unique(np.asarray(keys, dtype=np.uint64))


def _merger(schema, **kwargs):
    kwargs.setdefault("clock", _FakeClock())
    return IntervalMerger(schema, "ewma", t_fraction=0.05, **kwargs)


class TestSealPolicy:
    def test_waits_for_every_active_site(self, schema, rng):
        merger = _merger(schema)
        merger.register("a")
        merger.register("b")
        s, keys = _sketch(schema, rng)
        merger.on_sketch("a", 0, s, keys)
        assert merger.sealed_through is None  # b outstanding
        s2, keys2 = _sketch(schema, rng)
        merger.on_sketch("b", 0, s2, keys2)
        assert merger.sealed_through == 0
        assert merger.stats["intervals_sealed"] == 1

    def test_later_contribution_accounts_for_earlier_interval(
        self, schema, rng
    ):
        """Agents send in order: b sending t=1 proves b has nothing for t=0."""
        merger = _merger(schema)
        merger.register("a")
        merger.register("b")
        merger.on_sketch("a", 0, *_sketch(schema, rng))
        merger.on_sketch("a", 1, *_sketch(schema, rng))
        assert merger.sealed_through is None
        merger.on_sketch("b", 1, *_sketch(schema, rng))
        # b skipped interval 0 (its traffic starts later): both seal.
        assert merger.sealed_through == 1
        assert merger.stats["intervals_sealed"] == 2

    def test_bye_releases_pending_seals(self, schema, rng):
        merger = _merger(schema)
        merger.register("a")
        merger.register("b")
        merger.on_sketch("a", 0, *_sketch(schema, rng))
        assert merger.sealed_through is None
        merger.on_bye("b")
        assert merger.sealed_through == 0
        assert not merger.complete  # a is still active
        merger.on_bye("a")
        assert merger.complete

    def test_gap_intervals_seal_empty(self, schema, rng):
        merger = _merger(schema)
        merger.register("a")
        merger.on_sketch("a", 0, *_sketch(schema, rng))
        merger.on_sketch("a", 4, *_sketch(schema, rng))
        # 1..3 sealed as empty gaps; the forecast series stays evenly
        # spaced exactly as a single-process session's would.
        assert merger.sealed_through == 4
        assert merger.stats["intervals_sealed"] == 5

    def test_late_contribution_dropped_and_counted(self, schema, rng):
        merger = _merger(schema)
        merger.register("a")
        merger.on_sketch("a", 0, *_sketch(schema, rng))
        merger.on_sketch("a", 1, *_sketch(schema, rng))
        sealed = merger.stats["intervals_sealed"]
        merger.on_sketch("a", 0, *_sketch(schema, rng))  # replay
        assert merger.stats["late_frames"] == 1
        assert merger.stats["intervals_sealed"] == sealed
        assert merger.site_stats()["a"]["late"] == 1


class TestSubstitution:
    def test_digest_substitutes_cached_sketch(self, schema, rng):
        merger = _merger(schema)
        merger.register("a")
        s, keys = _sketch(schema, rng, keys=[1, 2, 3])
        merger.on_sketch("a", 0, s, keys)
        merger.on_digest("a", 1, drift=0.01)
        assert merger.stats["suppressed"] == 1
        assert merger.stats["substituted"] == 1
        assert merger.sealed_through == 1
        # Interval 1's merged summary was the cached interval-0 sketch:
        # EWMA saw identical consecutive observations, so the error
        # summary is exactly the drift the gate bounded (here: reuse).
        assert merger.site_stats()["a"]["digests"] == 1

    def test_lost_site_substitutes_cache(self, schema, rng):
        merger = _merger(schema)
        merger.register("a")
        merger.register("b")
        merger.on_sketch("a", 0, *_sketch(schema, rng))
        merger.on_sketch("b", 0, *_sketch(schema, rng))
        merger.on_sketch("a", 1, *_sketch(schema, rng))
        merger.on_lost("b", reason="read timeout")
        # b's cached interval-0 sketch stands in for interval 1.
        assert merger.sealed_through == 1
        assert merger.stats["lost_sites"] == 1
        assert merger.stats["substituted"] == 1
        assert merger.site_stats()["b"]["substituted"] == 1

    def test_reconnect_reactivates_lost_site(self, schema, rng):
        merger = _merger(schema)
        merger.register("a")
        merger.on_lost("a")
        merger.register("a")
        assert merger.sites["a"].active


class TestDeadlineQuorum:
    def test_deadline_seal_with_quorum(self, schema, rng):
        clock = _FakeClock()
        merger = _merger(
            schema, deadline_seconds=10.0, quorum=1, clock=clock
        )
        merger.register("a")
        merger.register("b")
        merger.on_sketch("a", 0, *_sketch(schema, rng))
        assert merger.sealed_through is None
        clock.now += 5.0
        merger.check_deadlines()
        assert merger.sealed_through is None  # deadline not reached
        clock.now += 6.0
        merger.check_deadlines()
        assert merger.sealed_through == 0
        assert merger.stats["deadline_seals"] == 1
        # b had no cache yet -> nothing to substitute, but the straggler
        # slot is still tallied.
        assert merger.stats["substituted"] == 1

    def test_quorum_blocks_underpopulated_seal(self, schema, rng):
        clock = _FakeClock()
        merger = _merger(
            schema, deadline_seconds=10.0, quorum=2, clock=clock
        )
        for site in ("a", "b", "c"):
            merger.register(site)
        merger.on_sketch("a", 0, *_sketch(schema, rng))
        clock.now += 100.0
        merger.check_deadlines()
        assert merger.sealed_through is None  # 1 contribution < quorum 2
        merger.on_sketch("b", 0, *_sketch(schema, rng))
        merger.check_deadlines()
        assert merger.sealed_through == 0

    def test_no_deadline_waits_forever(self, schema, rng):
        clock = _FakeClock()
        merger = _merger(schema, clock=clock)
        merger.register("a")
        merger.register("b")
        merger.on_sketch("a", 0, *_sketch(schema, rng))
        clock.now += 1e9
        merger.check_deadlines()
        assert merger.sealed_through is None


class TestNetworkWideDetection:
    def test_merged_seal_equals_combined_contributions(self, schema, rng):
        """The sealed observation is the COMBINE of site contributions."""
        clock = _FakeClock()
        merger = _merger(schema, clock=clock)
        merger.register("a")
        merger.register("b")
        sa, ka = _sketch(schema, rng, keys=[10, 20, 30])
        sb, kb = _sketch(schema, rng, keys=[30, 40])
        expected = merge([sa, sb])
        merger.on_sketch("a", 0, sa, ka)
        merger.on_sketch("b", 0, sb, kb)
        retained = merger.forecaster.get_state()
        # EWMA retains the observed summary verbatim after one step.
        found = [
            np.asarray(v.table)
            for v in (
                retained.values() if isinstance(retained, dict) else [retained]
            )
            if hasattr(v, "table")
        ]
        assert any(
            np.array_equal(t, np.asarray(expected.table)) for t in found
        )

    def test_decode_error_counter(self, schema):
        merger = _merger(schema)
        merger.on_decode_error("a", "bad blob")
        assert merger.stats["decode_errors"] == 1


class TestDurability:
    def test_checkpoint_roundtrip(self, schema, rng):
        merger = _merger(schema)
        merger.register("a")
        merger.register("b")
        for t in range(4):
            merger.on_sketch("a", t, *_sketch(schema, rng))
            merger.on_sketch("b", t, *_sketch(schema, rng))
        data = merger.checkpoint_bytes()
        restored = restore_merger(data, schema=schema)
        assert restored.sealed_through == 3
        assert restored.stats["intervals_sealed"] == 4
        assert set(restored.sites) == {"a", "b"}
        # Caches survive: the restored coordinator can substitute.
        assert restored.sites["a"].last_sketch is not None
        assert restored.sites["a"].max_contributed == 3
        # Until they re-HELLO, crashed-with-us sites must not block seals.
        assert not restored.sites["a"].active
        assert restored.forecaster.get_config() == merger.forecaster.get_config()

    def test_restored_merger_continues_identically(self, schema, rng):
        """Reports after restore match the uninterrupted coordinator's."""
        contributions = [
            (t, _sketch(schema, rng)) for t in range(8)
        ]
        straight = _merger(schema)
        straight.register("a")
        reports_straight = []
        for t, (s, keys) in contributions:
            reports_straight.extend(merge_copy(straight, "a", t, s, keys))

        resumed = _merger(schema)
        resumed.register("a")
        reports_resumed = []
        for t, (s, keys) in contributions[:4]:
            reports_resumed.extend(merge_copy(resumed, "a", t, s, keys))
        restored = restore_merger(resumed.checkpoint_bytes(), schema=schema)
        restored.register("a")
        for t, (s, keys) in contributions[4:]:
            reports_resumed.extend(merge_copy(restored, "a", t, s, keys))

        assert len(reports_straight) == len(reports_resumed)
        for x, y in zip(reports_straight, reports_resumed):
            assert x.index == y.index
            assert x.threshold == y.threshold
            assert x.error_l2 == y.error_l2
            assert [(a.key, a.estimated_error) for a in x.alarms] == [
                (a.key, a.estimated_error) for a in y.alarms
            ]

    def test_wrong_format_rejected(self, schema):
        from repro.sketch.serialization import dumps_checkpoint

        bogus = dumps_checkpoint({"format": "something-else"}, {})
        with pytest.raises(ValueError, match="coordinator checkpoint"):
            restore_merger(bogus)

    def test_auto_checkpoint_every_n_seals(self, schema, rng, tmp_path):
        path = tmp_path / "coord.kcp"
        merger = _merger(
            schema, checkpoint_path=str(path), checkpoint_every=2
        )
        merger.register("a")
        merger.on_sketch("a", 0, *_sketch(schema, rng))
        assert not path.exists()
        merger.on_sketch("a", 1, *_sketch(schema, rng))
        assert path.exists()
        restored = restore_merger(path.read_bytes(), schema=schema)
        assert restored.sealed_through == 1


def merge_copy(merger, site, t, summary, keys):
    """Feed a COPY so both runs see independent summary objects."""
    dup = merge([summary])
    return merger.on_sketch(site, t, dup, np.array(keys, dtype=np.uint64))
