"""End-to-end distributed detection over loopback TCP.

The acceptance bar for the distributed tier:

* filtering OFF -> coordinator reports bit-identical to a single-process
  session over the concatenated traffic;
* filtering ON over a low-drift trace -> transmitted bytes drop by at
  least 30% while every injected change is still detected (recall 1.0).
"""

import asyncio

import numpy as np
import pytest

from repro.distributed import (
    partition_records,
    run_loopback,
    run_serial_reference,
)
from repro.distributed.agent import run_agent
from repro.distributed.coordinator import CoordinatorServer, IntervalMerger
from repro.distributed.frames import encode_frame, read_frame
from repro.sketch import KArySchema
from repro.streams import make_records

INTERVAL = 300.0
N_SITES = 3


@pytest.fixture
def schema():
    return KArySchema(depth=5, width=1024, seed=77)


@pytest.fixture
def random_trace(rng):
    """12 intervals of iid traffic -- the worst case for filtering,
    the generic case for bit-identity."""
    n = 9000
    ts = np.sort(rng.uniform(0, 12 * INTERVAL, n))
    dst = rng.integers(0, 600, n).astype(np.uint32)
    byts = rng.integers(40, 1500, n).astype(np.uint64)
    return make_records(ts, dst, byts)


CHANGE_KEY = 1040
CHANGE_INTERVAL = 8


def _low_drift_trace():
    """12 intervals of EXACTLY repeating traffic + one injected change.

    Every interval replays the same 198 records (66 keys x 3), and 198
    is a multiple of the site count, so after round-robin partitioning
    each site's per-interval sketch is constant -- zero local drift.
    The one change: CHANGE_KEY's bytes spike in CHANGE_INTERVAL.
    """
    per = 198
    intervals = 12
    ts = np.concatenate(
        [
            t * INTERVAL + np.arange(per) * (INTERVAL / (per + 1))
            for t in range(intervals)
        ]
    )
    keys = np.tile(1000 + (np.arange(per) % 66), intervals).astype(np.uint32)
    byts = np.tile(500.0 + (np.arange(per) % 66) * 7.0, intervals)
    change = (keys == CHANGE_KEY) & (
        (ts >= CHANGE_INTERVAL * INTERVAL)
        & (ts < (CHANGE_INTERVAL + 1) * INTERVAL)
    )
    assert change.sum() > 0
    byts = byts + np.where(change, 5e5, 0.0)
    return make_records(ts, keys, byts.astype(np.uint64))


class TestPartition:
    def test_round_robin_covers_everything(self, random_trace):
        parts = partition_records(random_trace, 4)
        assert len(parts) == 4
        assert sum(len(p) for p in parts.values()) == len(random_trace)
        for part in parts.values():
            assert np.all(np.diff(part["timestamp"]) >= 0)

    def test_invalid_site_count(self, random_trace):
        with pytest.raises(ValueError, match="n_sites"):
            partition_records(random_trace, 0)


class TestBitIdentity:
    def test_filtering_off_is_bit_identical(self, schema, random_trace):
        reference = run_serial_reference(
            random_trace, schema, "ewma",
            interval_seconds=INTERVAL, t_fraction=0.05, top_n=10,
        )
        result = run_loopback(
            random_trace, schema, "ewma",
            n_sites=N_SITES, interval_seconds=INTERVAL,
            t_fraction=0.05, top_n=10, drift_fraction=0.0,
            chunk_records=701,  # deliberately not interval-aligned
        )
        assert result.complete
        assert result.coordinator_stats["suppressed"] == 0
        assert len(result.reports) == len(reference)
        for ours, ref in zip(result.reports, reference):
            assert ours.index == ref.index
            assert ours.threshold == ref.threshold
            assert ours.error_l2 == ref.error_l2
            assert np.array_equal(ours.top_keys, ref.top_keys)
            assert np.array_equal(ours.top_errors, ref.top_errors)
            assert [(a.key, a.estimated_error) for a in ours.alarms] == [
                (a.key, a.estimated_error) for a in ref.alarms
            ]

    def test_site_count_does_not_change_reports(self, schema, random_trace):
        one = run_loopback(
            random_trace, schema, "ewma", n_sites=1,
            interval_seconds=INTERVAL, t_fraction=0.05,
        )
        five = run_loopback(
            random_trace, schema, "ewma", n_sites=5,
            interval_seconds=INTERVAL, t_fraction=0.05,
        )
        assert len(one.reports) == len(five.reports)
        for a, b in zip(one.reports, five.reports):
            assert a.error_l2 == b.error_l2
            assert [al.key for al in a.alarms] == [al.key for al in b.alarms]


class TestCommunicationFiltering:
    def test_bytes_drop_with_full_recall(self, schema):
        trace = _low_drift_trace()
        kwargs = dict(
            n_sites=N_SITES, interval_seconds=INTERVAL,
            t_fraction=0.05, top_n=5, chunk_records=66,
        )
        off = run_loopback(trace, schema, "ewma", drift_fraction=0.0, **kwargs)
        on = run_loopback(trace, schema, "ewma", drift_fraction=0.5, **kwargs)
        assert off.complete and on.complete

        # Suppression really happened, and the coordinator tallied it.
        assert on.suppressed > 0
        assert on.coordinator_stats["suppressed"] == on.suppressed
        assert on.coordinator_stats["substituted"] >= on.suppressed

        # Acceptance: >= 30% fewer bytes on the wire.
        assert on.sketch_bytes_sent <= 0.7 * off.sketch_bytes_sent

        # Recall 1.0: the injected change still raises its alarm.
        def found(reports):
            return any(
                any(alarm.key == CHANGE_KEY for alarm in r.alarms)
                for r in reports
                if r.index == CHANGE_INTERVAL
            )

        assert found(off.reports)
        assert found(on.reports)

    def test_zero_drift_intervals_are_suppressed_exactly(self, schema):
        """On the constant trace, all but first/change-adjacent intervals
        suppress -- the drift is exactly zero, under any budget."""
        trace = _low_drift_trace()
        result = run_loopback(
            trace, schema, "ewma",
            n_sites=N_SITES, interval_seconds=INTERVAL,
            t_fraction=0.05, drift_fraction=0.1, chunk_records=66,
        )
        # Each site ships interval 0 (nothing cached), the change
        # interval and the drop back down; everything else suppresses.
        for stats in result.agent_stats.values():
            assert stats.suppressed >= 7
            assert stats.sketches_sent <= 5


class TestFaultPaths:
    def _start(self, schema, **server_kwargs):
        merger = IntervalMerger(
            schema, "ewma", interval_seconds=INTERVAL, t_fraction=0.05
        )
        server = CoordinatorServer(merger, **server_kwargs)
        return merger, server

    def test_schema_mismatch_refused(self, schema, random_trace):
        async def run():
            merger, server = self._start(schema)
            await server.start()
            try:
                other = KArySchema(depth=5, width=2048, seed=77)
                with pytest.raises(ConnectionError, match="refused"):
                    await run_agent(
                        random_trace[:100], server.host, server.port,
                        schema=other, site="bad",
                        interval_seconds=INTERVAL,
                    )
                assert "bad" not in merger.sites
            finally:
                await server.stop()

        asyncio.run(run())

    def test_interval_mismatch_refused(self, schema, random_trace):
        async def run():
            merger, server = self._start(schema)
            await server.start()
            try:
                with pytest.raises(ConnectionError, match="interval"):
                    await run_agent(
                        random_trace[:100], server.host, server.port,
                        schema=schema, site="bad",
                        interval_seconds=INTERVAL * 2,
                    )
            finally:
                await server.stop()

        asyncio.run(run())

    def test_disconnect_without_bye_marks_site_lost(self, schema):
        from repro.sketch.serialization import schema_identity

        async def run():
            merger, server = self._start(schema)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(
                    encode_frame(
                        "hello",
                        {
                            "site": "flaky",
                            "schema": schema_identity(schema),
                            "interval_seconds": INTERVAL,
                        },
                    )
                )
                await writer.drain()
                assert (await read_frame(reader))[0] == "ack"
                writer.close()  # vanish without BYE
                await writer.wait_closed()
                for _ in range(100):
                    if merger.stats["lost_sites"]:
                        break
                    await asyncio.sleep(0.02)
                assert merger.stats["lost_sites"] == 1
                assert not merger.sites["flaky"].active
            finally:
                await server.stop()

        asyncio.run(run())

    def test_read_timeout_marks_site_lost(self, schema):
        from repro.sketch.serialization import schema_identity

        async def run():
            merger, server = self._start(schema, read_timeout=0.2)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(
                    encode_frame(
                        "hello",
                        {
                            "site": "silent",
                            "schema": schema_identity(schema),
                            "interval_seconds": INTERVAL,
                        },
                    )
                )
                await writer.drain()
                assert (await read_frame(reader))[0] == "ack"
                # Send nothing: the per-connection read timeout fires.
                for _ in range(200):
                    if merger.stats["lost_sites"]:
                        break
                    await asyncio.sleep(0.02)
                assert merger.stats["lost_sites"] == 1
                writer.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_corrupt_frame_counted_and_connection_dropped(self, schema):
        from repro.sketch.serialization import schema_identity

        async def run():
            merger, server = self._start(schema)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(
                    encode_frame(
                        "hello",
                        {
                            "site": "noisy",
                            "schema": schema_identity(schema),
                            "interval_seconds": INTERVAL,
                        },
                    )
                )
                await writer.drain()
                assert (await read_frame(reader))[0] == "ack"
                writer.write(b"NOT A FRAME AT ALL")
                await writer.drain()
                for _ in range(100):
                    if merger.stats["decode_errors"]:
                        break
                    await asyncio.sleep(0.02)
                assert merger.stats["decode_errors"] == 1
                writer.close()
            finally:
                await server.stop()

        asyncio.run(run())
