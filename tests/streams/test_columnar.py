"""Columnar zero-copy batch ingest: blocks are views, not copies.

``iter_interval_columns`` extracts the key/value columns once per trace
and yields :class:`ColumnarBlock` slices of them; these tests pin down
the two halves of that contract -- the blocks reproduce record-chunk
iteration exactly (same interval split, same rows in the same order),
and they alias the trace-wide column arrays (``np.shares_memory``), so
feeding them to the fused UPDATE kernels moves zero bytes.
"""

import numpy as np
import pytest

from repro.streams import (
    ColumnarBlock,
    IntervalStream,
    iter_interval_chunks,
    iter_interval_columns,
    make_key_scheme,
    make_records,
    make_value_scheme,
    partition_columns,
)

INTERVAL = 300.0


@pytest.fixture
def records(rng):
    n = 12000
    return make_records(
        timestamps=np.sort(rng.uniform(0, 3000, n)),
        dst_ips=rng.integers(0, 5000, n).astype(np.uint32),
        byte_counts=rng.pareto(1.3, n) * 500 + 40,
    )


class TestIterIntervalColumns:
    def test_matches_record_chunks(self, records):
        key_scheme = make_key_scheme("dst_ip")
        value_scheme = make_value_scheme("bytes")
        chunks = list(iter_interval_chunks(records, INTERVAL))
        blocks = list(iter_interval_columns(records, INTERVAL))
        assert len(blocks) == len(chunks)
        for block, chunk in zip(blocks, chunks):
            assert block.index == int(chunk["timestamp"][0] // INTERVAL)
            assert block.duration == INTERVAL
            assert len(block) == len(chunk)
            np.testing.assert_array_equal(
                block.keys, key_scheme.extract(chunk).astype(np.uint64)
            )
            np.testing.assert_array_equal(
                block.values, value_scheme.extract(chunk).astype(np.float64)
            )

    def test_blocks_are_zero_copy_views(self, records):
        blocks = list(iter_interval_columns(records, INTERVAL))
        assert len(blocks) > 1
        first = blocks[0]
        assert first.keys.base is not None  # a view, not an owner
        for block in blocks[1:]:
            # Every block aliases the same trace-wide column arrays
            # (disjoint slices, so compare bases rather than ranges).
            assert block.keys.base is first.keys.base
            assert block.values.base is first.values.base
        for block in blocks:
            assert block.keys.dtype == np.uint64
            assert block.values.dtype == np.float64
            assert block.keys.flags.c_contiguous  # unit-stride slices
            assert block.values.flags.c_contiguous

    def test_chunk_records_cap_preserves_order(self, records):
        whole = list(iter_interval_columns(records, INTERVAL))
        capped = list(
            iter_interval_columns(records, INTERVAL, chunk_records=512)
        )
        assert all(len(b) <= 512 for b in capped)
        for index in {b.index for b in whole}:
            ref = [b for b in whole if b.index == index]
            got = [b for b in capped if b.index == index]
            np.testing.assert_array_equal(
                np.concatenate([b.keys for b in got]), ref[0].keys
            )
            np.testing.assert_array_equal(
                np.concatenate([b.values for b in got]), ref[0].values
            )
        bases = {id(b.keys.base) for b in capped}
        assert bases == {id(capped[0].keys.base)}  # capped blocks stay views
        assert capped[0].keys.base is not None

    def test_unsorted_input_sorted_like_chunks(self, rng, records):
        shuffled = records[rng.permutation(len(records))]
        ref = list(iter_interval_columns(records, INTERVAL))
        got = list(iter_interval_columns(shuffled, INTERVAL))
        assert [b.index for b in got] == [b.index for b in ref]
        np.testing.assert_array_equal(
            np.concatenate([b.values for b in got]),
            np.concatenate([b.values for b in ref]),
        )

    def test_empty_and_validation(self, records):
        empty = records[:0]
        assert list(iter_interval_columns(empty, INTERVAL)) == []
        with pytest.raises(ValueError):
            list(iter_interval_columns(records, 0.0))
        with pytest.raises(ValueError):
            list(iter_interval_columns(records, INTERVAL, chunk_records=0))

    def test_matches_interval_stream_batches(self, records):
        """Same intervals, same rows as the KeyedUpdates batch iterator."""
        batches = list(IntervalStream(records, interval_seconds=INTERVAL))
        blocks = list(iter_interval_columns(records, INTERVAL))
        by_index = {b.index: b for b in blocks}
        for batch in batches:
            block = by_index[batch.index]
            np.testing.assert_array_equal(
                block.keys, batch.keys.astype(np.uint64)
            )
            np.testing.assert_array_equal(block.values, batch.values)


class TestPartitionColumns:
    def _block(self, rng, n=4096):
        return ColumnarBlock(
            index=3,
            keys=rng.integers(0, 2**32, n).astype(np.uint64),
            values=rng.normal(100.0, 30.0, n),
            duration=INTERVAL,
        )

    def test_block_method_is_zero_copy_partition(self, rng):
        block = self._block(rng)
        parts = partition_columns(block, 4, method="block")
        assert len(parts) == 4
        for part in parts:
            assert np.shares_memory(part.keys, block.keys)
            assert np.shares_memory(part.values, block.values)
            assert part.index == block.index
        np.testing.assert_array_equal(
            np.concatenate([p.keys for p in parts]), block.keys
        )
        np.testing.assert_array_equal(
            np.concatenate([p.values for p in parts]), block.values
        )

    @pytest.mark.parametrize("method", ["hash", "round_robin"])
    def test_grouping_methods_preserve_multiset_and_order(self, rng, method):
        block = self._block(rng)
        parts = partition_columns(block, 3, method=method)
        all_keys = np.concatenate([p.keys for p in parts])
        all_values = np.concatenate([p.values for p in parts])
        np.testing.assert_array_equal(np.sort(all_keys), np.sort(block.keys))
        np.testing.assert_array_equal(
            np.sort(all_values), np.sort(block.values)
        )
        if method == "hash":
            from repro.streams import splitmix64

            for s, part in enumerate(parts):
                assert np.all(
                    splitmix64(part.keys) % np.uint64(3) == np.uint64(s)
                )

    def test_single_shard_returns_block_itself(self, rng):
        block = self._block(rng)
        (part,) = partition_columns(block, 1)
        assert part is block

    def test_validation(self, rng):
        block = self._block(rng, n=16)
        with pytest.raises(ValueError):
            partition_columns(block, 0)
        with pytest.raises(ValueError):
            partition_columns(block, 2, method="bogus")
