"""Tests for the keyed update stream glue."""

import numpy as np
import pytest

from repro.streams import (
    IntervalStream,
    RandomizedIntervalSlicer,
    StreamItem,
    make_records,
)
from repro.streams.model import KeyedUpdates


@pytest.fixture
def records():
    return make_records(
        timestamps=[10.0, 20.0, 320.0, 330.0, 650.0],
        dst_ips=[1, 1, 2, 3, 2],
        byte_counts=[100, 200, 300, 400, 500],
    )


class TestIntervalStream:
    def test_batches(self, records):
        batches = list(IntervalStream(records, interval_seconds=300.0))
        assert [b.index for b in batches] == [0, 1, 2]
        assert batches[0].keys.tolist() == [1, 1]
        assert batches[0].values.tolist() == [100.0, 200.0]
        assert batches[2].values.tolist() == [500.0]

    def test_key_scheme_by_name(self, records):
        batches = list(
            IntervalStream(records, 300.0, key_scheme="dst_ip", value_scheme="count")
        )
        assert batches[0].values.tolist() == [1.0, 1.0]

    def test_duration(self, records):
        batches = list(IntervalStream(records, interval_seconds=60.0))
        assert batches[0].duration == 60.0

    def test_normalize_by_duration(self, records):
        batches = list(
            IntervalStream(records, 300.0, normalize_by_duration=True)
        )
        assert batches[0].values.tolist() == [100.0 / 300.0, 200.0 / 300.0]

    def test_randomized_slicer(self, records):
        slicer = RandomizedIntervalSlicer(300.0, seed=0)
        batches = list(IntervalStream(records, slicer=slicer))
        assert sum(len(b) for b in batches) == len(records)

    def test_interval_count(self, records):
        stream = IntervalStream(records, interval_seconds=300.0)
        assert stream.interval_count() == 3

    def test_items_iteration(self):
        batch = KeyedUpdates(
            index=0,
            keys=np.array([1, 2], dtype=np.uint64),
            values=np.array([3.0, 4.0]),
            duration=300.0,
        )
        assert list(batch.items()) == [StreamItem(1, 3.0), StreamItem(2, 4.0)]
        assert len(batch) == 2

    def test_stream_reiterable(self, records):
        stream = IntervalStream(records, interval_seconds=300.0)
        assert len(list(stream)) == len(list(stream))

    def test_validates_records(self):
        with pytest.raises(ValueError):
            IntervalStream(np.zeros(3), interval_seconds=300.0)
