"""Tests for record partitioning and the bounded chunk feeder."""

import numpy as np
import pytest

from repro.streams import (
    BoundedChunkFeeder,
    iter_interval_chunks,
    make_records,
    partition_records,
    shard_assignments,
    sort_by_time,
    splitmix64,
)


@pytest.fixture
def records(rng):
    n = 5000
    return make_records(
        timestamps=np.sort(rng.uniform(0, 1500, n)),
        dst_ips=rng.integers(0, 5000, n),
        byte_counts=rng.integers(40, 1500, n),
    )


class TestSplitmix64:
    def test_deterministic(self):
        x = np.arange(100, dtype=np.uint64)
        assert np.array_equal(splitmix64(x), splitmix64(x))

    def test_mixes(self):
        # Consecutive inputs must land on very different outputs.
        out = splitmix64(np.arange(10000, dtype=np.uint64))
        assert len(np.unique(out)) == 10000
        assert len(np.unique(out % np.uint64(4))) == 4


class TestShardAssignments:
    @pytest.mark.parametrize("method", ["hash", "round_robin", "block"])
    def test_in_range_and_deterministic(self, records, method):
        shards = shard_assignments(records, 4, method=method)
        assert shards.min() >= 0 and shards.max() < 4
        assert np.array_equal(
            shards, shard_assignments(records, 4, method=method)
        )

    def test_hash_is_key_affine(self, records):
        shards = shard_assignments(records, 4, method="hash")
        # All records of one key land on one shard.
        for key in np.unique(records["dst_ip"])[:200]:
            assert len(np.unique(shards[records["dst_ip"] == key])) == 1

    def test_round_robin_balances(self, records):
        counts = np.bincount(
            shard_assignments(records, 4, method="round_robin"), minlength=4
        )
        assert counts.max() - counts.min() <= 1

    def test_block_is_contiguous(self, records):
        shards = shard_assignments(records, 4, method="block")
        assert np.all(np.diff(shards) >= 0)

    def test_invalid_args(self, records):
        with pytest.raises(ValueError, match="n_shards"):
            shard_assignments(records, 0)
        with pytest.raises(ValueError, match="method"):
            shard_assignments(records, 2, method="bogus")


class TestPartitionRecords:
    @pytest.mark.parametrize("method", ["hash", "round_robin", "block"])
    def test_partition_is_conservative(self, records, method):
        parts = partition_records(records, 4, method=method)
        assert len(parts) == 4
        assert sum(len(p) for p in parts) == len(records)
        rebuilt = sort_by_time(np.concatenate(parts))
        assert np.array_equal(rebuilt, records)

    def test_in_shard_order_preserved(self, records):
        for part in partition_records(records, 4, method="hash"):
            if len(part) > 1:
                assert np.all(np.diff(part["timestamp"]) >= 0)

    def test_single_shard_passthrough(self, records):
        (only,) = partition_records(records, 1)
        assert only is records

    def test_empty_shards_are_empty_arrays(self):
        records = make_records([1.0], [7], [100])
        parts = partition_records(records, 4, method="hash")
        assert sum(len(p) for p in parts) == 1
        assert all(p.dtype == records.dtype for p in parts)


class TestIterIntervalChunks:
    def test_chunks_never_straddle_intervals(self, records):
        for chunk in iter_interval_chunks(records, 300.0, chunk_records=333):
            indices = (chunk["timestamp"] // 300.0).astype(int)
            assert len(np.unique(indices)) == 1
            assert len(chunk) <= 333

    def test_concatenation_reproduces_stream(self, records):
        chunks = list(iter_interval_chunks(records, 300.0, chunk_records=500))
        assert np.array_equal(np.concatenate(chunks), records)

    def test_unsorted_input_is_sorted(self, records, rng):
        shuffled = records[rng.permutation(len(records))]
        chunks = list(iter_interval_chunks(shuffled, 300.0))
        assert np.array_equal(np.concatenate(chunks), records)

    def test_no_cap_yields_one_chunk_per_interval(self, records):
        chunks = list(iter_interval_chunks(records, 300.0))
        assert len(chunks) == 5

    def test_empty_input(self):
        assert list(iter_interval_chunks(make_records([], [], []), 300.0)) == []

    def test_invalid_args(self, records):
        with pytest.raises(ValueError, match="interval_seconds"):
            list(iter_interval_chunks(records, 0.0))
        with pytest.raises(ValueError, match="chunk_records"):
            list(iter_interval_chunks(records, 300.0, chunk_records=0))


class TestBoundedChunkFeeder:
    def test_yields_in_order(self, records):
        chunks = list(iter_interval_chunks(records, 300.0, chunk_records=256))
        with BoundedChunkFeeder(iter(chunks), maxsize=3) as feeder:
            fed = list(feeder)
        assert len(fed) == len(chunks)
        assert np.array_equal(np.concatenate(fed), records)

    def test_source_error_propagates(self, records):
        def source():
            yield records[:10]
            raise RuntimeError("collector went away")

        with BoundedChunkFeeder(source()) as feeder:
            with pytest.raises(RuntimeError, match="collector went away"):
                list(feeder)

    def test_close_without_draining(self, records):
        chunks = iter_interval_chunks(records, 300.0, chunk_records=64)
        feeder = BoundedChunkFeeder(chunks, maxsize=2)
        feeder.close()  # must not hang even with a blocked producer

    def test_iterate_after_close_terminates(self, records):
        # Regression: close() drains the queue and can swallow the _DONE
        # sentinel; the old blocking-get iterator then hung forever.
        chunks = iter_interval_chunks(records, 300.0, chunk_records=64)
        feeder = BoundedChunkFeeder(chunks, maxsize=2)
        feeder.close()
        assert list(feeder) == []  # must return promptly, not deadlock

    def test_close_mid_iteration_terminates(self, records):
        chunks = iter_interval_chunks(records, 300.0, chunk_records=64)
        feeder = BoundedChunkFeeder(chunks, maxsize=2)
        it = iter(feeder)
        next(it)
        feeder.close()
        remaining = list(it)  # stops cleanly; buffered chunks discarded
        assert len(remaining) <= 2

    def test_error_surfaces_after_close(self):
        # Regression: a pending source error was dropped when close()
        # drained the _DONE sentinel that carried it.
        import threading

        produced = threading.Event()

        def source():
            yield np.zeros(1, dtype=[("timestamp", "f8")])
            produced.set()
            raise RuntimeError("collector went away")

        feeder = BoundedChunkFeeder(source(), maxsize=4)
        assert produced.wait(timeout=5.0)
        # Give the producer a moment to store the error and finish.
        feeder._thread.join(timeout=5.0)
        feeder.close()
        with pytest.raises(RuntimeError, match="collector went away"):
            list(feeder)

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError, match="maxsize"):
            BoundedChunkFeeder(iter([]), maxsize=0)
