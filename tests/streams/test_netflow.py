"""Tests for binary and CSV trace I/O."""

import numpy as np
import pytest

from repro.streams import (
    make_records,
    read_trace,
    read_trace_csv,
    write_trace,
    write_trace_csv,
)


@pytest.fixture
def records(rng):
    n = 200
    return make_records(
        timestamps=np.sort(rng.uniform(0, 1000, n)),
        dst_ips=rng.integers(0, 2**32, n),
        byte_counts=rng.integers(40, 10**6, n),
        src_ips=rng.integers(0, 2**32, n),
        src_ports=rng.integers(0, 2**16, n),
        dst_ports=rng.integers(0, 2**16, n),
        protocols=rng.choice([6, 17], n),
        packet_counts=rng.integers(1, 100, n),
    )


class TestBinaryFormat:
    def test_roundtrip(self, records, tmp_path):
        path = tmp_path / "trace.bin"
        write_trace(path, records)
        loaded = read_trace(path)
        assert np.array_equal(loaded, records)

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "empty.bin"
        write_trace(path, make_records([], [], []))
        assert len(read_trace(path)) == 0

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 12)
        with pytest.raises(ValueError, match="bad magic"):
            read_trace(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"KS")
        with pytest.raises(ValueError, match="too short"):
            read_trace(path)

    def test_truncated_body_rejected(self, records, tmp_path):
        path = tmp_path / "cut.bin"
        write_trace(path, records)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(ValueError, match="size"):
            read_trace(path)

    def test_wrong_version_rejected(self, records, tmp_path):
        path = tmp_path / "v99.bin"
        write_trace(path, records)
        data = bytearray(path.read_bytes())
        data[4] = 99
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="version"):
            read_trace(path)


class TestCSVFormat:
    def test_roundtrip(self, records, tmp_path):
        path = tmp_path / "trace.csv"
        write_trace_csv(path, records)
        loaded = read_trace_csv(path)
        assert np.array_equal(loaded["dst_ip"], records["dst_ip"])
        assert np.array_equal(loaded["bytes"], records["bytes"])
        assert np.allclose(loaded["timestamp"], records["timestamp"])

    def test_header_validated(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            read_trace_csv(path)

    def test_empty_csv(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_trace_csv(path, make_records([], [], []))
        assert len(read_trace_csv(path)) == 0
