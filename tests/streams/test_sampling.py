"""Tests for record sampling."""

import numpy as np
import pytest

from repro.streams import (
    make_records,
    sample_and_hold_keys,
    sample_records,
    sampling_error_scale,
)


@pytest.fixture
def records(rng):
    n = 50_000
    return make_records(
        timestamps=np.sort(rng.uniform(0, 1000, n)),
        dst_ips=rng.integers(0, 500, n),
        byte_counts=rng.integers(100, 2000, n),
    )


class TestSampleRecords:
    def test_rate_one_is_identity(self, records):
        out = sample_records(records, 1.0)
        assert np.array_equal(out, records)
        assert out is not records  # a copy, never a view

    def test_keep_fraction(self, records):
        out = sample_records(records, 0.25, seed=1)
        assert len(out) == pytest.approx(0.25 * len(records), rel=0.1)

    def test_reweighting_preserves_total(self, records):
        out = sample_records(records, 0.25, seed=1)
        assert out["bytes"].sum() == pytest.approx(
            records["bytes"].sum(), rel=0.05
        )

    def test_unbiased_over_seeds(self, records):
        totals = [
            sample_records(records, 0.2, seed=s)["bytes"].sum()
            for s in range(30)
        ]
        true_total = records["bytes"].sum()
        assert np.mean(totals) == pytest.approx(true_total, rel=0.02)

    def test_no_reweight_shrinks_total(self, records):
        out = sample_and_hold_keys(records, 0.25, seed=1)
        assert out["bytes"].sum() == pytest.approx(
            0.25 * records["bytes"].sum(), rel=0.1
        )

    def test_packets_stay_positive(self, records):
        out = sample_records(records, 0.1, seed=2)
        assert out["packets"].min() >= 1

    def test_deterministic_per_seed(self, records):
        a = sample_records(records, 0.5, seed=7)
        b = sample_records(records, 0.5, seed=7)
        assert np.array_equal(a, b)

    def test_input_unmodified(self, records):
        before = records.copy()
        sample_records(records, 0.3, seed=1)
        assert np.array_equal(records, before)

    def test_validation(self, records):
        with pytest.raises(ValueError):
            sample_records(records, 0.0)
        with pytest.raises(ValueError):
            sample_records(records, 1.1)

    def test_sketch_estimates_survive_sampling(self, records, rng):
        """Per-key totals from reweighted samples track the truth for keys
        with many records."""
        from repro.sketch import DictVector

        exact = DictVector()
        exact.update_batch(
            records["dst_ip"].astype(np.uint64),
            records["bytes"].astype(np.float64),
        )
        sampled = sample_records(records, 0.2, seed=3)
        approx = DictVector()
        approx.update_batch(
            sampled["dst_ip"].astype(np.uint64),
            sampled["bytes"].astype(np.float64),
        )
        key, truth = exact.top_n(1)[0]
        # ~100 records per key at rate .2 -> ~20 kept; rel err ~ 1/sqrt(20).
        assert approx[key] == pytest.approx(truth, rel=0.5)


class TestSamplingErrorScale:
    def test_formula(self):
        assert sampling_error_scale(0.5, 10.0) == pytest.approx(
            np.sqrt(0.5 / (0.5 * 10))
        )

    def test_rate_one_is_exact(self):
        assert sampling_error_scale(1.0, 5.0) == 0.0

    def test_monotone_in_rate(self):
        errors = [sampling_error_scale(r, 10.0) for r in (0.1, 0.5, 0.9)]
        assert errors[0] > errors[1] > errors[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            sampling_error_scale(0.0, 10.0)
        with pytest.raises(ValueError):
            sampling_error_scale(0.5, 0.0)
