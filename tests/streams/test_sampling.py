"""Tests for record sampling."""

import numpy as np
import pytest

from repro.streams import (
    make_records,
    sample_and_hold_keys,
    sample_records,
    sampling_error_scale,
)


@pytest.fixture
def records(rng):
    n = 50_000
    return make_records(
        timestamps=np.sort(rng.uniform(0, 1000, n)),
        dst_ips=rng.integers(0, 500, n),
        byte_counts=rng.integers(100, 2000, n),
    )


class TestSampleRecords:
    def test_rate_one_is_identity(self, records):
        out = sample_records(records, 1.0)
        assert np.array_equal(out, records)
        assert out is not records  # a copy, never a view

    def test_keep_fraction(self, records):
        out = sample_records(records, 0.25, seed=1)
        assert len(out) == pytest.approx(0.25 * len(records), rel=0.1)

    def test_reweighting_preserves_total(self, records):
        out = sample_records(records, 0.25, seed=1)
        assert out["bytes"].sum() == pytest.approx(
            records["bytes"].sum(), rel=0.05
        )

    def test_unbiased_over_seeds(self, records):
        totals = [
            sample_records(records, 0.2, seed=s)["bytes"].sum()
            for s in range(30)
        ]
        true_total = records["bytes"].sum()
        assert np.mean(totals) == pytest.approx(true_total, rel=0.02)

    def test_no_reweight_shrinks_total(self, records):
        out = sample_and_hold_keys(records, 0.25, seed=1)
        assert out["bytes"].sum() == pytest.approx(
            0.25 * records["bytes"].sum(), rel=0.1
        )

    def test_packets_stay_positive(self, records):
        out = sample_records(records, 0.1, seed=2)
        assert out["packets"].min() >= 1

    def test_deterministic_per_seed(self, records):
        a = sample_records(records, 0.5, seed=7)
        b = sample_records(records, 0.5, seed=7)
        assert np.array_equal(a, b)

    def test_input_unmodified(self, records):
        before = records.copy()
        sample_records(records, 0.3, seed=1)
        assert np.array_equal(records, before)

    def test_validation(self, records):
        with pytest.raises(ValueError):
            sample_records(records, 0.0)
        with pytest.raises(ValueError):
            sample_records(records, 1.1)

    def test_sketch_estimates_survive_sampling(self, records, rng):
        """Per-key totals from reweighted samples track the truth for keys
        with many records."""
        from repro.sketch import DictVector

        exact = DictVector()
        exact.update_batch(
            records["dst_ip"].astype(np.uint64),
            records["bytes"].astype(np.float64),
        )
        sampled = sample_records(records, 0.2, seed=3)
        approx = DictVector()
        approx.update_batch(
            sampled["dst_ip"].astype(np.uint64),
            sampled["bytes"].astype(np.float64),
        )
        key, truth = exact.top_n(1)[0]
        # ~100 records per key at rate .2 -> ~20 kept; rel err ~ 1/sqrt(20).
        assert approx[key] == pytest.approx(truth, rel=0.5)


class TestExactReweighting:
    """Regression tests for the float64 precision-loss reweighting bug.

    The original implementation computed ``np.round(bytes * (1/rate))``
    in float64: byte counts above 2**53 lost their low bits before
    scaling, and products above 2**64 wrapped around on the uint64 cast
    -- a nonzero total could silently come out smaller, or zero.
    """

    @staticmethod
    def _records_with_bytes(byte_counts):
        n = len(byte_counts)
        return make_records(
            timestamps=np.arange(n, dtype=np.float64),
            dst_ips=np.arange(n),
            byte_counts=np.asarray(byte_counts, dtype=np.uint64),
        )

    @staticmethod
    def _keep_all_seed(n, rate):
        """Find a seed whose sampling mask keeps every one of n records."""
        for seed in range(10_000):
            if (np.random.default_rng(seed).random(n) < rate).all():
                return seed
        raise AssertionError("no keep-all seed found")

    def test_exact_above_float53_boundary(self):
        """Bytes above 2**53 reweight without precision loss."""
        byte_counts = [2**53 + 1, 2**53 + 3, 2**60 + 12345]
        records = self._records_with_bytes(byte_counts)
        rate = 0.5
        seed = self._keep_all_seed(len(records), rate)
        out = sample_records(records, rate, seed=seed)
        assert len(out) == len(records)
        # Exact doubling; the float path would have dropped the low bit.
        assert out["bytes"].tolist() == [2 * b for b in byte_counts]

    def test_reference_big_int_rounding(self):
        """Reweighting matches exact big-int round-half-even arithmetic."""
        import math

        byte_counts = [1, 7, 2**53 - 1, 2**53 + 1, 2**61 + 17]
        records = self._records_with_bytes(byte_counts)
        rate = 0.3
        seed = self._keep_all_seed(len(records), rate)
        out = sample_records(records, rate, seed=seed)
        m, e = math.frexp(1.0 / rate)
        sig, shift = int(m * (1 << 53)), 53 - e
        half = 1 << (shift - 1)
        for b, got in zip(byte_counts, out["bytes"].tolist()):
            q, r = divmod(b * sig, 1 << shift)
            expected = q + (1 if (r > half or (r == half and q & 1)) else 0)
            assert got == expected

    def test_saturates_instead_of_wrapping(self):
        """Products beyond uint64 clamp to the max, never wrap to small."""
        records = self._records_with_bytes([2**63, 2**64 - 1, 100])
        rate = 0.25
        seed = self._keep_all_seed(len(records), rate)
        out = sample_records(records, rate, seed=seed)
        u64_max = np.iinfo(np.uint64).max
        assert out["bytes"][0] == u64_max
        assert out["bytes"][1] == u64_max
        assert out["bytes"][2] == 400

    def test_nonzero_never_reweights_to_zero(self):
        """Every kept nonzero byte count stays nonzero after reweighting."""
        rng = np.random.default_rng(42)
        byte_counts = rng.integers(1, 2**63, size=1000, dtype=np.uint64)
        records = self._records_with_bytes(byte_counts)
        for rate in (0.9, 0.5, 0.01, 1e-6):
            out = sample_records(records, rate, seed=5)
            if len(out):
                assert out["bytes"].min() > 0

    def test_packets_clamp_to_uint32(self):
        """Packet reweighting saturates at the uint32 max, never wraps."""
        records = self._records_with_bytes([1000])
        records["packets"] = np.array([2**32 - 1], dtype=np.uint32)
        rate = 0.5
        seed = self._keep_all_seed(1, rate)
        out = sample_records(records, rate, seed=seed)
        assert out["packets"][0] == np.iinfo(np.uint32).max

    def test_small_values_unchanged_from_float_path(self):
        """Typical traffic volumes reweight exactly as before the fix."""
        rng = np.random.default_rng(7)
        byte_counts = rng.integers(100, 10**9, size=5000, dtype=np.uint64)
        records = self._records_with_bytes(byte_counts)
        for rate in (0.5, 0.25, 0.1, 1 / 3):
            out = sample_records(records, rate, seed=3)
            mask = np.random.default_rng(3).random(len(records)) < rate
            old = np.round(
                records["bytes"][mask] * (1.0 / rate)
            ).astype(np.uint64)
            assert np.array_equal(out["bytes"], old)


class TestSamplingErrorScale:
    def test_formula(self):
        assert sampling_error_scale(0.5, 10.0) == pytest.approx(
            np.sqrt(0.5 / (0.5 * 10))
        )

    def test_rate_one_is_exact(self):
        assert sampling_error_scale(1.0, 5.0) == 0.0

    def test_monotone_in_rate(self):
        errors = [sampling_error_scale(r, 10.0) for r in (0.1, 0.5, 0.9)]
        assert errors[0] > errors[1] > errors[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            sampling_error_scale(0.0, 10.0)
        with pytest.raises(ValueError):
            sampling_error_scale(0.5, 0.0)
