"""Tests for the flow record layout."""

import numpy as np
import pytest

from repro.streams import (
    FLOW_RECORD_DTYPE,
    concat_records,
    empty_records,
    make_records,
    sort_by_time,
    validate_records,
)


class TestRecords:
    def test_dtype_size(self):
        assert FLOW_RECORD_DTYPE.itemsize == 36

    def test_empty(self):
        records = empty_records(5)
        assert len(records) == 5
        assert records["bytes"].sum() == 0

    def test_make_records_minimal(self):
        records = make_records([1.0, 2.0], [100, 200], [1500, 40])
        assert records["timestamp"].tolist() == [1.0, 2.0]
        assert records["dst_ip"].tolist() == [100, 200]
        assert records["bytes"].tolist() == [1500, 40]
        assert records["protocol"].tolist() == [6, 6]
        assert records["packets"].min() >= 1

    def test_make_records_full(self):
        records = make_records(
            [1.0], [100], [999], src_ips=[7], src_ports=[1234],
            dst_ports=[80], protocols=[17], packet_counts=[3],
        )
        assert records["src_ip"][0] == 7
        assert records["src_port"][0] == 1234
        assert records["dst_port"][0] == 80
        assert records["protocol"][0] == 17
        assert records["packets"][0] == 3

    def test_validate_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            validate_records(np.zeros(3))

    def test_validate_rejects_2d(self):
        with pytest.raises(ValueError):
            validate_records(empty_records(4).reshape(2, 2))

    def test_sort_by_time(self):
        records = make_records([3.0, 1.0, 2.0], [1, 2, 3], [10, 20, 30])
        ordered = sort_by_time(records)
        assert ordered["timestamp"].tolist() == [1.0, 2.0, 3.0]
        assert ordered["dst_ip"].tolist() == [2, 3, 1]

    def test_sort_is_stable(self):
        records = make_records([1.0, 1.0], [5, 6], [1, 2])
        ordered = sort_by_time(records)
        assert ordered["dst_ip"].tolist() == [5, 6]

    def test_concat_records(self):
        a = make_records([2.0], [1], [10])
        b = make_records([1.0], [2], [20])
        merged = concat_records([a, b])
        assert merged["timestamp"].tolist() == [1.0, 2.0]

    def test_concat_empty_list(self):
        assert len(concat_records([])) == 0

    def test_concat_no_sort(self):
        a = make_records([2.0], [1], [10])
        b = make_records([1.0], [2], [20])
        merged = concat_records([a, b], sort=False)
        assert merged["timestamp"].tolist() == [2.0, 1.0]
